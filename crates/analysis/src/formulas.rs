//! The basic cost identities of paper §2.1.
//!
//! With `E` the fraction of a segment that is empty (dead pages) when it is cleaned:
//!
//! * writing one segment's worth of new data requires `1/E` segment reads for cleaning,
//!   `(1 − E)/E` segment writes to relocate live pages, plus the write of the new
//!   segment itself — a total I/O cost of `Cost_seg = 2/E` (Equation 1);
//! * the write amplification is the relocation term alone, `W_amp = (1 − E)/E`
//!   (Equation 2);
//! * `R = E/(1 − F)` measures how much better a cleaning policy does than the average
//!   slack `1 − F` would suggest.

/// Total I/O cost of writing one segment of new data, `2/E` (paper Equation 1).
///
/// Returns `+∞` when `E <= 0` (a full segment can never be cleaned profitably).
pub fn cost_per_segment(emptiness: f64) -> f64 {
    if emptiness <= 0.0 {
        f64::INFINITY
    } else {
        2.0 / emptiness
    }
}

/// Write amplification `(1 − E)/E` (paper Equation 2).
pub fn write_amplification(emptiness: f64) -> f64 {
    if emptiness <= 0.0 {
        f64::INFINITY
    } else {
        (1.0 - emptiness) / emptiness
    }
}

/// Emptiness achieved relative to the available slack space, `R = E/(1 − F)`.
pub fn emptiness_ratio(emptiness: f64, fill_factor: f64) -> f64 {
    let slack = 1.0 - fill_factor;
    if slack <= 0.0 {
        f64::INFINITY
    } else {
        emptiness / slack
    }
}

/// Inverse of [`write_amplification`]: the emptiness that corresponds to a given write
/// amplification, `E = 1/(1 + W)`.
pub fn emptiness_from_write_amplification(wamp: f64) -> f64 {
    1.0 / (1.0 + wamp)
}

/// Inverse of [`cost_per_segment`]: `E = 2/Cost`.
pub fn emptiness_from_cost(cost: f64) -> f64 {
    if cost <= 0.0 {
        1.0
    } else {
        (2.0 / cost).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_and_write_amplification_match_the_paper_example() {
        // Paper §2.1: with F = 0.8, E >= 0.2, so IO/seg <= 10.
        assert!((cost_per_segment(0.2) - 10.0).abs() < 1e-12);
        assert!((write_amplification(0.2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_emptiness_yields_infinite_cost() {
        assert!(cost_per_segment(0.0).is_infinite());
        assert!(write_amplification(0.0).is_infinite());
        assert!(emptiness_ratio(0.5, 1.0).is_infinite());
    }

    #[test]
    fn wamp_is_cost_over_two_minus_one() {
        for e in [0.1, 0.25, 0.5, 0.9] {
            let lhs = write_amplification(e);
            let rhs = cost_per_segment(e) / 2.0 - 1.0;
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn inverses_round_trip() {
        for e in [0.05, 0.2, 0.5, 0.95] {
            assert!((emptiness_from_write_amplification(write_amplification(e)) - e).abs() < 1e-12);
            assert!((emptiness_from_cost(cost_per_segment(e)) - e).abs() < 1e-12);
        }
    }

    #[test]
    fn emptiness_ratio_is_linear_in_emptiness() {
        assert!((emptiness_ratio(0.4, 0.8) - 2.0).abs() < 1e-12);
        assert!((emptiness_ratio(0.2, 0.8) - 1.0).abs() < 1e-12);
    }
}
