//! Managing hot and cold data separately: slack-space division and minimum cleaning cost
//! (paper §3, Table 2, and the "opt" reference line of Figure 3).
//!
//! Two page pools with different update rates are managed in separate spaces. Holding the
//! total data size and total slack constant, the slack `1 − F` is divided between the
//! pools (`g_hot + g_cold = 1`); each pool then behaves like an independent uniformly
//! updated store whose emptiness follows the Table 1 fixpoint at its own local fill
//! factor
//!
//! ```text
//! F_i = (F · Dist_i) / ((1 − F) · g_i + F · Dist_i)
//! ```
//!
//! and the overall cost is the update-weighted sum `Σ U_i · 2/E(F_i)`. The paper shows
//! that for `m : (1−m)` distributions the optimal split is `g_hot/g_cold = sqrt(R_cold/R_hot) ≈ 1`,
//! i.e. share the slack roughly equally; this module both reproduces that closed-form
//! result and finds the exact numerical optimum.

use crate::formulas::write_amplification;
use crate::table1::uniform_emptiness;
use serde::{Deserialize, Serialize};

/// A two-pool skewed workload: a hot pool receiving most updates and a cold pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotColdSpec {
    /// Fraction of all data that is hot (`Dist_hot`), e.g. 0.2 for "80:20".
    pub hot_data_fraction: f64,
    /// Fraction of all updates that go to the hot pool (`U_hot`), e.g. 0.8 for "80:20".
    pub hot_update_fraction: f64,
}

impl HotColdSpec {
    /// The paper's `m:(1−m)` shorthand: `m`% of updates go to `(100−m)`% of the data.
    pub fn from_skew_percent(m: u32) -> Self {
        assert!(
            (50..=99).contains(&m),
            "skew percent must be in 50..=99, got {m}"
        );
        let m = m as f64 / 100.0;
        Self {
            hot_data_fraction: 1.0 - m,
            hot_update_fraction: m,
        }
    }

    /// Fraction of data that is cold.
    pub fn cold_data_fraction(&self) -> f64 {
        1.0 - self.hot_data_fraction
    }

    /// Fraction of updates that go to the cold pool.
    pub fn cold_update_fraction(&self) -> f64 {
        1.0 - self.hot_update_fraction
    }
}

/// Result of the hot/cold slack-division analysis at one overall fill factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotColdAnalysis {
    /// Overall fill factor `F`.
    pub fill_factor: f64,
    /// The workload analysed.
    pub spec: HotColdSpec,
    /// Slack share given to the hot pool at the optimum (`g_hot`).
    pub best_hot_slack_share: f64,
    /// Minimum update-weighted cost `Σ U_i · 2/E_i`.
    pub min_cost: f64,
    /// Update-weighted write amplification at the optimum, `Σ U_i · (1−E_i)/E_i`.
    pub min_write_amplification: f64,
    /// Local fill factor of the hot pool at the optimum.
    pub hot_fill_factor: f64,
    /// Local fill factor of the cold pool at the optimum.
    pub cold_fill_factor: f64,
}

/// Local fill factor of a pool given its data share and slack share (paper §3.2).
pub fn pool_fill_factor(overall_f: f64, data_fraction: f64, slack_share: f64) -> f64 {
    let data = overall_f * data_fraction;
    let slack = (1.0 - overall_f) * slack_share;
    if data + slack <= 0.0 {
        0.0
    } else {
        data / (data + slack)
    }
}

/// Update-weighted cleaning cost for a given split of the slack space.
pub fn cost_for_split(overall_f: f64, spec: HotColdSpec, hot_slack_share: f64) -> f64 {
    weighted(overall_f, spec, hot_slack_share, |e| 2.0 / e)
}

/// Update-weighted write amplification for a given split of the slack space (the metric
/// plotted in Figure 3).
pub fn write_amplification_for_split(
    overall_f: f64,
    spec: HotColdSpec,
    hot_slack_share: f64,
) -> f64 {
    weighted(overall_f, spec, hot_slack_share, write_amplification)
}

fn weighted(
    overall_f: f64,
    spec: HotColdSpec,
    hot_slack_share: f64,
    per_pool: impl Fn(f64) -> f64,
) -> f64 {
    assert!(
        (0.0..=1.0).contains(&hot_slack_share),
        "slack share must be in [0, 1]"
    );
    let f_hot = pool_fill_factor(overall_f, spec.hot_data_fraction, hot_slack_share);
    let f_cold = pool_fill_factor(overall_f, spec.cold_data_fraction(), 1.0 - hot_slack_share);
    let e_hot = clamped_emptiness(f_hot);
    let e_cold = clamped_emptiness(f_cold);
    spec.hot_update_fraction * per_pool(e_hot) + spec.cold_update_fraction() * per_pool(e_cold)
}

/// Emptiness from the uniform fixpoint, tolerating degenerate pool fill factors.
fn clamped_emptiness(pool_f: f64) -> f64 {
    if pool_f <= 0.0 {
        1.0
    } else if pool_f >= 1.0 {
        1e-9
    } else {
        uniform_emptiness(pool_f)
    }
}

/// The closed-form split of §3.2 for `m:(1−m)` distributions: `g_hot/g_cold = sqrt(R_cold/R_hot)`,
/// evaluated with R taken from the equal-split solution (the paper holds R constant).
pub fn closed_form_hot_slack_share(overall_f: f64, spec: HotColdSpec) -> f64 {
    let f_hot = pool_fill_factor(overall_f, spec.hot_data_fraction, 0.5);
    let f_cold = pool_fill_factor(overall_f, spec.cold_data_fraction(), 0.5);
    let r_hot = clamped_emptiness(f_hot) / (1.0 - f_hot);
    let r_cold = clamped_emptiness(f_cold) / (1.0 - f_cold);
    let ratio = (r_cold / r_hot).sqrt(); // g_hot / g_cold
    ratio / (1.0 + ratio)
}

impl HotColdAnalysis {
    /// Find the slack split that minimises the update-weighted cleaning cost by golden
    /// section search over `g_hot ∈ (0, 1)`.
    pub fn minimum_cost(overall_f: f64, spec: HotColdSpec) -> Self {
        assert!(
            overall_f > 0.0 && overall_f < 1.0,
            "fill factor must be in (0, 1)"
        );
        let cost = |g: f64| cost_for_split(overall_f, spec, g);
        let golden: f64 = (5f64.sqrt() - 1.0) / 2.0;
        let (mut lo, mut hi) = (1e-4, 1.0 - 1e-4);
        let mut c = hi - golden * (hi - lo);
        let mut d = lo + golden * (hi - lo);
        for _ in 0..200 {
            if cost(c) < cost(d) {
                hi = d;
            } else {
                lo = c;
            }
            c = hi - golden * (hi - lo);
            d = lo + golden * (hi - lo);
            if (hi - lo).abs() < 1e-10 {
                break;
            }
        }
        let best = (lo + hi) / 2.0;
        Self {
            fill_factor: overall_f,
            spec,
            best_hot_slack_share: best,
            min_cost: cost(best),
            min_write_amplification: write_amplification_for_split(overall_f, spec, best),
            hot_fill_factor: pool_fill_factor(overall_f, spec.hot_data_fraction, best),
            cold_fill_factor: pool_fill_factor(overall_f, spec.cold_data_fraction(), 1.0 - best),
        }
    }
}

/// One row of the paper's Table 2 (fill factor 0.8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// The `m` of the `m:(1−m)` distribution (e.g. 90 for "90:10").
    pub skew_percent: u32,
    /// Minimum cost over all slack splits.
    pub min_cost: f64,
    /// Cost when the hot pool gets 60% of the slack.
    pub cost_hot_60: f64,
    /// Cost when the hot pool gets 40% of the slack.
    pub cost_hot_40: f64,
    /// Write amplification at the optimal split (the "opt" line of Figure 3).
    pub min_write_amplification: f64,
}

/// The skews listed in the paper's Table 2 (Cold-Hot 90:10 … 50:50).
pub const PAPER_TABLE2_SKEWS: [u32; 5] = [90, 80, 70, 60, 50];

/// Compute the paper's Table 2 at a given fill factor (the paper uses 0.8).
pub fn table2(fill_factor: f64) -> Vec<Table2Row> {
    PAPER_TABLE2_SKEWS
        .iter()
        .map(|&m| {
            let spec = HotColdSpec::from_skew_percent(m);
            let a = HotColdAnalysis::minimum_cost(fill_factor, spec);
            Table2Row {
                skew_percent: m,
                min_cost: a.min_cost,
                cost_hot_60: cost_for_split(fill_factor, spec, 0.6),
                cost_hot_40: cost_for_split(fill_factor, spec, 0.4),
                min_write_amplification: a.min_write_amplification,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper_at_f_08() {
        // Paper Table 2: MinCost, Hot:60%, Hot:40% per skew.
        let expected = [
            (90u32, 2.96, 3.06, 2.99),
            (80, 4.00, 4.12, 4.11),
            (70, 4.80, 4.90, 4.86),
            (60, 5.23, 5.38, 5.38),
            (50, 5.38, 5.46, 5.46),
        ];
        let rows = table2(0.8);
        for ((m, min_c, c60, c40), row) in expected.iter().zip(&rows) {
            assert_eq!(row.skew_percent, *m);
            assert!(
                (row.min_cost - min_c).abs() < 0.08,
                "{m}: min cost {} vs paper {min_c}",
                row.min_cost
            );
            assert!(
                (row.cost_hot_60 - c60).abs() < 0.12,
                "{m}: 60% split {}",
                row.cost_hot_60
            );
            assert!(
                (row.cost_hot_40 - c40).abs() < 0.12,
                "{m}: 40% split {}",
                row.cost_hot_40
            );
        }
    }

    #[test]
    fn optimal_split_is_roughly_equal_for_m_1_minus_m() {
        // Paper §3.2: for these special distributions g1 ≈ g2.
        for m in [90, 80, 70, 60] {
            let a = HotColdAnalysis::minimum_cost(0.8, HotColdSpec::from_skew_percent(m));
            assert!(
                (a.best_hot_slack_share - 0.5).abs() < 0.1,
                "m={m}: best split {}",
                a.best_hot_slack_share
            );
            let closed = closed_form_hot_slack_share(0.8, HotColdSpec::from_skew_percent(m));
            assert!((closed - 0.5).abs() < 0.06, "closed-form split {closed}");
        }
    }

    #[test]
    fn hot_pool_runs_at_lower_fill_factor_than_cold_pool() {
        // Paper §3.3: "the hot data [has] a lower fill factor than the cold data".
        let a = HotColdAnalysis::minimum_cost(0.8, HotColdSpec::from_skew_percent(80));
        assert!(a.hot_fill_factor < a.cold_fill_factor);
        assert!(a.hot_fill_factor < 0.65 && a.cold_fill_factor > 0.8);
    }

    #[test]
    fn more_skew_means_lower_minimum_cost() {
        let mut prev = f64::INFINITY;
        for m in [50, 60, 70, 80, 90] {
            let a = HotColdAnalysis::minimum_cost(0.8, HotColdSpec::from_skew_percent(m));
            assert!(a.min_cost < prev, "cost should fall as skew rises");
            prev = a.min_cost;
        }
    }

    #[test]
    fn fifty_fifty_matches_the_uniform_analysis() {
        // A 50:50 "skew" is just a uniform distribution split in two; its minimum cost
        // must equal the single-pool uniform cost at the same overall fill factor.
        let uniform_cost = 2.0 / uniform_emptiness(0.8);
        let a = HotColdAnalysis::minimum_cost(0.8, HotColdSpec::from_skew_percent(50));
        assert!((a.min_cost - uniform_cost).abs() < 0.02);
    }

    #[test]
    fn cost_is_convex_ish_around_the_optimum() {
        let spec = HotColdSpec::from_skew_percent(80);
        let a = HotColdAnalysis::minimum_cost(0.8, spec);
        for delta in [-0.2, -0.1, 0.1, 0.2] {
            let g = (a.best_hot_slack_share + delta).clamp(0.01, 0.99);
            assert!(cost_for_split(0.8, spec, g) >= a.min_cost - 1e-9);
        }
    }

    #[test]
    fn wamp_relation_to_cost_holds_per_row() {
        // W = U_hot*(1-E_h)/E_h + U_cold*(1-E_c)/E_c = Cost/2 - 1 only when the weights
        // sum to 1, which they do; verify the identity numerically.
        let spec = HotColdSpec::from_skew_percent(80);
        for g in [0.3, 0.5, 0.7] {
            let cost = cost_for_split(0.8, spec, g);
            let wamp = write_amplification_for_split(0.8, spec, g);
            assert!((wamp - (cost / 2.0 - 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn spec_helpers() {
        let s = HotColdSpec::from_skew_percent(80);
        assert!((s.hot_data_fraction - 0.2).abs() < 1e-12);
        assert!((s.hot_update_fraction - 0.8).abs() < 1e-12);
        assert!((s.cold_data_fraction() - 0.8).abs() < 1e-12);
        assert!((s.cold_update_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "skew percent")]
    fn bad_skew_percent_panics() {
        HotColdSpec::from_skew_percent(10);
    }
}
