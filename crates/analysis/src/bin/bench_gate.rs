//! `bench_gate` — the CI bench-regression gate.
//!
//! Compares freshly generated `BENCH_*.json` files against the committed baselines
//! and fails (exit code 1) when a throughput metric regressed or write amplification
//! rose beyond the configured tolerance:
//!
//! * any numeric field whose key ends in `_per_sec` may not drop more than
//!   `--max-throughput-drop` (default 30%, sized for the documented ±15%
//!   run-to-run variance of the quick-scale benches on the CI box);
//! * any numeric field whose key contains `write_amplification` may not rise more
//!   than `--max-wamp-rise` (default 20%) plus a small absolute slack of 0.05 (so
//!   near-zero baselines do not turn noise into failures);
//! * any numeric field whose key ends in `_ms` (latencies: checkpoint recovery,
//!   full-scan recovery) may not rise more than `--max-latency-rise` (default 150%)
//!   plus an absolute slack of 10 ms — quick-scale recovery times are single-digit
//!   milliseconds, so the wide relative band plus the absolute floor gates real
//!   complexity regressions (a bounded replay degrading into a full scan) without
//!   tripping on scheduler noise.
//!
//! The two JSON trees are walked in parallel: identity fields (`threads`,
//! `cleaner_threads`, `format`, `mode`, `phase`, `benchmark`, `policy`) must match so
//! metrics are never compared across misaligned rows, result arrays must keep their
//! length, and a metric present in the baseline may not disappear. Fields *added* by
//! a newer bench schema pass freely — the gate compares against what the baseline
//! knows.
//!
//! ```text
//! bench_gate <baseline_dir> <fresh_dir> <file> [<file>...]
//!     [--max-throughput-drop 0.30] [--max-wamp-rise 0.20] [--max-latency-rise 1.50]
//! ```

use serde::Value;

/// Fields that identify a result row; a mismatch means the comparison is misaligned,
/// which is itself a failure (renamed modes, reordered rows).
const IDENTITY_KEYS: &[&str] = &[
    "benchmark",
    "policy",
    "format",
    "mode",
    "phase",
    "threads",
    "cleaner_threads",
];

/// Gate thresholds.
struct Gate {
    max_throughput_drop: f64,
    max_wamp_rise: f64,
    max_latency_rise: f64,
}

/// Absolute slack for `_ms` latency metrics: below this many milliseconds of rise,
/// noise on the CI box cannot be told apart from a regression.
const LATENCY_ABS_SLACK_MS: f64 = 10.0;

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn is_throughput_key(key: &str) -> bool {
    key.ends_with("_per_sec")
}

fn is_wamp_key(key: &str) -> bool {
    key.contains("write_amplification")
}

fn is_latency_key(key: &str) -> bool {
    key.ends_with("_ms")
}

fn is_gated_key(key: &str) -> bool {
    is_throughput_key(key) || is_wamp_key(key) || is_latency_key(key)
}

/// True if any key anywhere under `v` is a gated metric (used to decide whether a
/// structural mismatch matters).
fn contains_metric(v: &Value) -> bool {
    match v {
        Value::Object(fields) => fields
            .iter()
            .any(|(k, v)| is_gated_key(k) || contains_metric(v)),
        Value::Array(items) => items.iter().any(contains_metric),
        _ => false,
    }
}

/// Walk baseline and fresh values in parallel, appending human-readable violations.
fn compare(path: &str, key: &str, base: &Value, fresh: &Value, gate: &Gate, out: &mut Vec<String>) {
    // A container in the baseline that came back as a different JSON shape (null, a
    // scalar, array-for-object, …) would fall through every structural arm below and
    // silently drop the whole subtree from gating — the exact "metric disappeared"
    // case the gate exists to catch.
    let shape_mismatch = matches!(base, Value::Object(_)) != matches!(fresh, Value::Object(_))
        || matches!(base, Value::Array(_)) != matches!(fresh, Value::Array(_));
    if shape_mismatch {
        if is_gated_key(key) || contains_metric(base) {
            out.push(format!(
                "{path}: JSON shape changed (baseline {base:?} vs fresh {fresh:?}) — \
                 gated metrics under it are no longer comparable"
            ));
        }
        return;
    }
    match (base, fresh) {
        (Value::Object(base_fields), Value::Object(_)) => {
            for (k, bv) in base_fields {
                let child_path = format!("{path}.{k}");
                match fresh.get_field(k) {
                    Some(fv) => compare(&child_path, k, bv, fv, gate, out),
                    None => {
                        if is_gated_key(k) || contains_metric(bv) {
                            out.push(format!("{child_path}: metric missing from fresh run"));
                        }
                    }
                }
            }
        }
        (Value::Array(base_items), Value::Array(fresh_items)) => {
            if base_items.len() != fresh_items.len() {
                if base_items.iter().any(contains_metric) {
                    out.push(format!(
                        "{path}: result count changed ({} baseline vs {} fresh)",
                        base_items.len(),
                        fresh_items.len()
                    ));
                }
                return;
            }
            for (i, (bv, fv)) in base_items.iter().zip(fresh_items).enumerate() {
                compare(&format!("{path}[{i}]"), key, bv, fv, gate, out);
            }
        }
        _ => {
            if IDENTITY_KEYS.contains(&key) {
                if base != fresh {
                    out.push(format!(
                        "{path}: identity field changed ({base:?} baseline vs {fresh:?} fresh) — \
                         rows are misaligned"
                    ));
                }
                return;
            }
            let gated = is_gated_key(key);
            let (Some(b), Some(f)) = (as_f64(base), as_f64(fresh)) else {
                if gated && as_f64(base).is_some() {
                    out.push(format!(
                        "{path}: metric became non-numeric (baseline {base:?}, fresh {fresh:?})"
                    ));
                }
                return; // non-numeric, non-identity: not gated
            };
            if is_throughput_key(key) && b > 0.0 {
                let floor = b * (1.0 - gate.max_throughput_drop);
                if f < floor {
                    out.push(format!(
                        "{path}: throughput regressed {:.1}% (baseline {b:.1}, fresh {f:.1}, \
                         floor {floor:.1})",
                        (1.0 - f / b) * 100.0
                    ));
                }
            } else if is_wamp_key(key) {
                let ceiling = b * (1.0 + gate.max_wamp_rise) + 0.05;
                if f > ceiling {
                    out.push(format!(
                        "{path}: write amplification rose (baseline {b:.3}, fresh {f:.3}, \
                         ceiling {ceiling:.3})"
                    ));
                }
            } else if is_latency_key(key) {
                let ceiling = b * (1.0 + gate.max_latency_rise) + LATENCY_ABS_SLACK_MS;
                if f > ceiling {
                    out.push(format!(
                        "{path}: latency rose (baseline {b:.2} ms, fresh {f:.2} ms, \
                         ceiling {ceiling:.2} ms)"
                    ));
                }
            }
        }
    }
}

fn load(path: &std::path::Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {}: {e}", path.display()));
    serde_json::parse(&text)
        .unwrap_or_else(|e| panic!("bench_gate: cannot parse {}: {e}", path.display()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut gate = Gate {
        max_throughput_drop: 0.30,
        max_wamp_rise: 0.20,
        max_latency_rise: 1.50,
    };
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-throughput-drop" => {
                gate.max_throughput_drop = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-throughput-drop needs a number");
            }
            "--max-wamp-rise" => {
                gate.max_wamp_rise = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-wamp-rise needs a number");
            }
            "--max-latency-rise" => {
                gate.max_latency_rise = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-latency-rise needs a number");
            }
            _ => positional.push(a),
        }
    }
    if positional.len() < 3 {
        eprintln!(
            "usage: bench_gate <baseline_dir> <fresh_dir> <file> [<file>...] \
             [--max-throughput-drop 0.30] [--max-wamp-rise 0.20] [--max-latency-rise 1.50]"
        );
        std::process::exit(2);
    }
    let baseline_dir = std::path::Path::new(&positional[0]);
    let fresh_dir = std::path::Path::new(&positional[1]);

    let mut violations = Vec::new();
    for file in &positional[2..] {
        let base = load(&baseline_dir.join(file));
        let fresh = load(&fresh_dir.join(file));
        let before = violations.len();
        compare(file, "", &base, &fresh, &gate, &mut violations);
        println!(
            "bench_gate: {file}: {}",
            if violations.len() == before {
                "ok".to_string()
            } else {
                format!("{} violation(s)", violations.len() - before)
            }
        );
    }
    if !violations.is_empty() {
        eprintln!("\nbench_gate FAILED ({} violations):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!(
        "bench_gate: all files within tolerance (throughput drop <= {:.0}%, W_amp rise <= {:.0}%, \
         latency rise <= {:.0}%)",
        gate.max_throughput_drop * 100.0,
        gate.max_wamp_rise * 100.0,
        gate.max_latency_rise * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> Gate {
        Gate {
            max_throughput_drop: 0.30,
            max_wamp_rise: 0.20,
            max_latency_rise: 1.50,
        }
    }

    fn check(base: &str, fresh: &str) -> Vec<String> {
        let b = serde_json::parse(base).unwrap();
        let f = serde_json::parse(fresh).unwrap();
        let mut out = Vec::new();
        compare("t", "", &b, &f, &gate(), &mut out);
        out
    }

    #[test]
    fn passes_within_tolerance() {
        let base = r#"{"results":[{"threads":1,"puts_per_sec":1000.0,"write_amplification":1.0}]}"#;
        let ok = r#"{"results":[{"threads":1,"puts_per_sec":800.0,"write_amplification":1.1}]}"#;
        assert!(check(base, ok).is_empty());
        // Improvements always pass.
        let better =
            r#"{"results":[{"threads":1,"puts_per_sec":9000.0,"write_amplification":0.2}]}"#;
        assert!(check(base, better).is_empty());
    }

    #[test]
    fn catches_throughput_regression_and_wamp_rise() {
        let base = r#"{"results":[{"threads":1,"puts_per_sec":1000.0,"write_amplification":1.0}]}"#;
        let slow = r#"{"results":[{"threads":1,"puts_per_sec":699.0,"write_amplification":1.0}]}"#;
        let v = check(base, slow);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("throughput regressed"));

        let churny =
            r#"{"results":[{"threads":1,"puts_per_sec":1000.0,"write_amplification":1.3}]}"#;
        let v = check(base, churny);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("write amplification rose"));
    }

    #[test]
    fn near_zero_wamp_gets_absolute_slack() {
        let base = r#"{"write_amplification":0.01}"#;
        // 0.05 absolute slack: 0.05 over a 0.01 baseline is noise, not a regression.
        assert!(check(base, r#"{"write_amplification":0.055}"#).is_empty());
        assert!(!check(base, r#"{"write_amplification":0.2}"#).is_empty());
    }

    #[test]
    fn catches_latency_regression_with_absolute_slack() {
        // 5 ms -> 12 ms: inside 5 * 2.5 + 10 = 22.5 ms ceiling, passes as noise.
        let base = r#"{"recovery":{"recovery_ms":5.0,"full_scan_ms":40.0}}"#;
        let noisy = r#"{"recovery":{"recovery_ms":12.0,"full_scan_ms":60.0}}"#;
        assert!(check(base, noisy).is_empty());
        // A bounded replay degrading toward a full scan blows through the ceiling.
        let degraded = r#"{"recovery":{"recovery_ms":40.0,"full_scan_ms":40.0}}"#;
        let v = check(base, degraded);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("latency rose"), "{v:?}");
        // A latency metric may not vanish from the fresh schema.
        let missing = r#"{"recovery":{"full_scan_ms":40.0}}"#;
        let v = check(base, missing);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("metric missing"), "{v:?}");
    }

    #[test]
    fn zero_baseline_throughput_is_not_gated() {
        let base = r#"{"idle_puts_per_sec":0.0}"#;
        assert!(check(base, r#"{"idle_puts_per_sec":0.0}"#).is_empty());
    }

    #[test]
    fn structural_and_identity_mismatches_fail() {
        let base =
            r#"{"results":[{"threads":1,"puts_per_sec":10.0},{"threads":2,"puts_per_sec":20.0}]}"#;
        let fewer = r#"{"results":[{"threads":1,"puts_per_sec":10.0}]}"#;
        assert!(check(base, fewer)[0].contains("result count changed"));

        let misaligned =
            r#"{"results":[{"threads":4,"puts_per_sec":10.0},{"threads":2,"puts_per_sec":20.0}]}"#;
        assert!(check(base, misaligned)[0].contains("identity field changed"));

        let missing = r#"{"results":[{"threads":1},{"threads":2,"puts_per_sec":20.0}]}"#;
        assert!(check(base, missing)[0].contains("metric missing"));
    }

    #[test]
    fn shape_changes_over_metrics_fail() {
        // A metric subtree degrading to null / a scalar / the wrong container must be
        // flagged, not silently skipped.
        let base = r#"{"results":[{"threads":1,"puts_per_sec":100.0}]}"#;
        for broken in [
            r#"{"results":null}"#,
            r#"{"results":"oops"}"#,
            r#"{"results":{"threads":1}}"#,
        ] {
            let v = check(base, broken);
            assert_eq!(v.len(), 1, "{broken}: {v:?}");
            assert!(v[0].contains("shape changed"), "{v:?}");
        }
        // Shape changes over metric-free subtrees stay un-gated.
        let no_metrics = r#"{"notes":["a","b"]}"#;
        assert!(check(no_metrics, r#"{"notes":null}"#).is_empty());
    }

    #[test]
    fn new_fields_in_fresh_schema_pass() {
        let base = r#"{"results":[{"threads":1,"puts_per_sec":100.0}]}"#;
        let grown = r#"{"results":[{"threads":1,"puts_per_sec":100.0,"new_gauge":7}]}"#;
        assert!(check(base, grown).is_empty());
    }
}
