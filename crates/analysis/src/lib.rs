//! # lss-analysis — closed-form models of log-structured cleaning cost
//!
//! This crate reproduces the analytical side of *Efficiently Reclaiming Space in a Log
//! Structured Store* (Lomet & Luo):
//!
//! * [`formulas`] — the basic cost identities of §2.1: `Cost_seg = 2/E`,
//!   `W_amp = (1 − E)/E`, and the fill-factor relation `R = E/(1 − F)`.
//! * [`table1`] — §2.2's fixpoint analysis of age-based cleaning under a uniform update
//!   distribution, `E = 1 − e^(−E/F)`, which generates Table 1 of the paper.
//! * [`hotcold`] — §3's "gedanken" analysis of managing hot and cold data separately:
//!   how to split slack space between the pools and the resulting minimum cleaning cost
//!   (Table 2), which also provides the "opt" reference line of Figure 3.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod formulas;
pub mod hotcold;
pub mod table1;

pub use formulas::{cost_per_segment, emptiness_ratio, write_amplification};
pub use hotcold::{HotColdAnalysis, HotColdSpec};
pub use table1::{uniform_emptiness, uniform_emptiness_finite, Table1Row};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: the numbers this crate produces must match the paper's Table 1 and
    /// Table 2 to the precision the paper reports.
    #[test]
    fn paper_tables_reproduce() {
        // Table 1 spot checks: (F, E, Cost, R, Wamp).
        let cases = [
            (0.90, 0.19, 10.5, 1.92, 4.26),
            (0.80, 0.375, 5.33, 1.88, 1.66),
            (0.50, 0.80, 2.50, 1.60, 0.250),
        ];
        // Tolerances account for the paper reporting E to two significant digits and
        // deriving Cost/R/Wamp from the rounded value.
        for (f, e_paper, cost_paper, r_paper, wamp_paper) in cases {
            let e = uniform_emptiness(f);
            assert!(
                (e - e_paper).abs() < 0.012,
                "F={f}: E={e} vs paper {e_paper}"
            );
            assert!((cost_per_segment(e) - cost_paper).abs() < 0.2);
            assert!((emptiness_ratio(e, f) - r_paper).abs() < 0.05);
            assert!((write_amplification(e) - wamp_paper).abs() < 0.12);
        }

        // Table 2 spot checks at F = 0.8.
        let cases = [
            (90u32, 2.96),
            (80, 4.00),
            (70, 4.80),
            (60, 5.23),
            (50, 5.38),
        ];
        for (m, min_cost_paper) in cases {
            let spec = HotColdSpec::from_skew_percent(m);
            let analysis = HotColdAnalysis::minimum_cost(0.8, spec);
            assert!(
                (analysis.min_cost - min_cost_paper).abs() < 0.08,
                "{m}:{} min cost {} vs paper {min_cost_paper}",
                100 - m,
                analysis.min_cost
            );
        }
    }
}
