//! Age-based cleaning under uniform updates: the fixpoint analysis behind Table 1
//! (paper §2.2).
//!
//! With a uniform update distribution and age-based (circular) cleaning, the emptiness a
//! segment has reached by the time it is cleaned satisfies the fixpoint
//!
//! ```text
//! E = 1 − ((P − 1)/P)^(P·E/F)        (Equation 3 with N = P·E/F)
//! E = 1 − e^(−E/F)                   (limit P → ∞, Equation 4)
//! ```
//!
//! because a segment written `N` user updates ago has had each of its pages
//! independently overwritten with probability `1 − ((P−1)/P)^N`, and with age-based
//! cleaning a segment sits for one full pass of the disk, `N = (P/F)/S · E·S = P·E/F`
//! updates, before its turn comes around again.

use crate::formulas::{cost_per_segment, emptiness_ratio, write_amplification};
use serde::{Deserialize, Serialize};

/// Solve the infinite-population fixpoint `E = 1 − e^(−E/F)` for a given fill factor.
///
/// The equation always has the trivial solution `E = 0`; the meaningful solution is the
/// positive fixpoint, found by damped fixed-point iteration started from `E = 1`.
pub fn uniform_emptiness(fill_factor: f64) -> f64 {
    assert!(
        fill_factor > 0.0 && fill_factor < 1.0,
        "fill factor must be in (0, 1), got {fill_factor}"
    );
    let mut e = 1.0f64;
    for _ in 0..10_000 {
        let next = 1.0 - (-e / fill_factor).exp();
        if (next - e).abs() < 1e-14 {
            return next;
        }
        e = next;
    }
    e
}

/// Solve the finite-population fixpoint `E = 1 − ((P−1)/P)^(P·E/F)` (paper Equation 3).
pub fn uniform_emptiness_finite(fill_factor: f64, num_pages: u64) -> f64 {
    assert!(fill_factor > 0.0 && fill_factor < 1.0);
    assert!(num_pages > 1);
    let p = num_pages as f64;
    let base = (p - 1.0) / p;
    let mut e = 1.0f64;
    for _ in 0..10_000 {
        let n = p * e / fill_factor;
        let next = 1.0 - base.powf(n);
        if (next - e).abs() < 1e-14 {
            return next;
        }
        e = next;
    }
    e
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Fill factor `F`.
    pub fill_factor: f64,
    /// Slack fraction `1 − F`.
    pub slack: f64,
    /// Segment emptiness when cleaned, from the fixpoint analysis.
    pub emptiness: f64,
    /// `Cost = 2/E`.
    pub cost: f64,
    /// `R = E/(1 − F)`.
    pub r: f64,
    /// Write amplification `(1 − E)/E`.
    pub write_amplification: f64,
}

/// The fill factors listed in the paper's Table 1.
pub const PAPER_TABLE1_FILL_FACTORS: [f64; 17] = [
    0.975, 0.95, 0.90, 0.85, 0.80, 0.75, 0.70, 0.65, 0.60, 0.55, 0.50, 0.45, 0.40, 0.35, 0.30,
    0.25, 0.20,
];

/// Compute one Table 1 row for a fill factor.
pub fn table1_row(fill_factor: f64) -> Table1Row {
    let e = uniform_emptiness(fill_factor);
    Table1Row {
        fill_factor,
        slack: 1.0 - fill_factor,
        emptiness: e,
        cost: cost_per_segment(e),
        r: emptiness_ratio(e, fill_factor),
        write_amplification: write_amplification(e),
    }
}

/// Compute the full Table 1 (all fill factors the paper lists).
pub fn table1() -> Vec<Table1Row> {
    PAPER_TABLE1_FILL_FACTORS
        .iter()
        .map(|&f| table1_row(f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 1, columns F and E (and derived Cost/R/Wamp spot-checked in the
    /// crate-level test). Values as printed in the paper.
    const PAPER_E: [(f64, f64); 17] = [
        (0.975, 0.048),
        (0.95, 0.094),
        (0.90, 0.19),
        (0.85, 0.29),
        (0.80, 0.375),
        (0.75, 0.45),
        (0.70, 0.53),
        (0.65, 0.60),
        (0.60, 0.67),
        (0.55, 0.74),
        (0.50, 0.80),
        (0.45, 0.85),
        (0.40, 0.89),
        (0.35, 0.93),
        (0.30, 0.96),
        (0.25, 0.98),
        (0.20, 0.993),
    ];

    #[test]
    fn fixpoint_matches_every_row_of_paper_table1() {
        for (f, e_paper) in PAPER_E {
            let e = uniform_emptiness(f);
            // The paper reports two significant digits; our fixpoint is exact, so allow
            // for their rounding (largest observed gap is ~0.007 at F = 0.65).
            assert!(
                (e - e_paper).abs() < 0.012,
                "F={f}: computed E={e:.4}, paper says {e_paper}"
            );
        }
    }

    #[test]
    fn emptiness_decreases_with_fill_factor() {
        let mut prev = 1.1;
        for f in [0.2, 0.4, 0.6, 0.8, 0.95] {
            let e = uniform_emptiness(f);
            assert!(e < prev, "E should fall as F rises");
            assert!(
                e > 1.0 - f - 1e-9,
                "E must be at least the average slack 1-F"
            );
            prev = e;
        }
    }

    #[test]
    fn finite_population_converges_to_the_limit() {
        // The paper notes the result depends almost entirely on F once P > 30.
        let limit = uniform_emptiness(0.8);
        let small = uniform_emptiness_finite(0.8, 30);
        let large = uniform_emptiness_finite(0.8, 1_000_000);
        assert!((large - limit).abs() < 1e-4);
        assert!((small - limit).abs() < 0.03);
        assert!((large - limit).abs() < (small - limit).abs() + 1e-12);
    }

    #[test]
    fn table1_generation_is_complete_and_ordered() {
        let rows = table1();
        assert_eq!(rows.len(), 17);
        assert_eq!(rows[0].fill_factor, 0.975);
        assert_eq!(rows[16].fill_factor, 0.20);
        for r in &rows {
            assert!((r.slack - (1.0 - r.fill_factor)).abs() < 1e-12);
            assert!((r.cost - 2.0 / r.emptiness).abs() < 1e-9);
            assert!(
                r.r >= 1.0,
                "cleaning can never do worse than the average slack"
            );
        }
    }

    #[test]
    #[should_panic(expected = "fill factor")]
    fn invalid_fill_factor_panics() {
        uniform_emptiness(1.0);
    }
}
