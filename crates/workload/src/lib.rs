//! # lss-workload — page-write workload generators
//!
//! The evaluation of *Efficiently Reclaiming Space in a Log Structured Store* drives its
//! simulator with three kinds of workloads (paper §6.1.4):
//!
//! * **synthetic distributions** — uniform, hot-cold (`m : 1−m`), and Zipfian with
//!   configurable skew (θ = 0.99 for "80-20", θ = 1.35 for "90-10");
//! * **I/O traces** collected from a B+-tree storage engine running TPC-C (regenerated in
//!   this workspace by `lss-tpcc` + `lss-btree`);
//! * a configurable number of total page writes (the paper writes 100× the store size so
//!   write amplification stabilises).
//!
//! Every generator implements [`PageWorkload`]: a deterministic (seeded) stream of page
//! ids to overwrite, plus — crucially for the paper's "-opt" oracle policies — the *exact*
//! update frequency of every page via [`PageWorkload::update_frequency`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hotcold;
pub mod trace;
pub mod uniform;
pub mod zipfian;

pub use hotcold::HotColdWorkload;
pub use trace::{TraceWorkload, WriteTrace};
pub use uniform::UniformWorkload;
pub use zipfian::ZipfianWorkload;

/// A logical page identifier (matches `lss_core::PageId`).
pub type PageId = u64;

/// A deterministic stream of page writes over a fixed page population `0..num_pages`.
pub trait PageWorkload: Send {
    /// Short human-readable name (used in experiment reports).
    fn name(&self) -> String;

    /// Number of distinct logical pages the workload addresses. Page ids produced by
    /// [`PageWorkload::next_page`] are always `< num_pages()`.
    fn num_pages(&self) -> u64;

    /// The next page to write.
    fn next_page(&mut self) -> PageId;

    /// Exact update frequency of a page, normalised so the *average* page has frequency
    /// 1.0 (i.e. `probability(page) * num_pages()`). Returns `None` when the distribution
    /// cannot provide it (e.g. an unannotated trace), in which case oracle policies fall
    /// back to estimates.
    fn update_frequency(&self, page: PageId) -> Option<f64>;
}

/// Blanket helper: draw `n` pages into a vector (useful in tests and benches).
pub fn take_pages<W: PageWorkload + ?Sized>(w: &mut W, n: usize) -> Vec<PageId> {
    (0..n).map(|_| w.next_page()).collect()
}

/// Empirical frequency of each page over a sample (tests and diagnostics).
pub fn histogram<W: PageWorkload + ?Sized>(w: &mut W, samples: usize) -> Vec<u64> {
    let mut h = vec![0u64; w.num_pages() as usize];
    for _ in 0..samples {
        let p = w.next_page();
        h[p as usize] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_pages_stays_in_range_for_all_generators() {
        let mut gens: Vec<Box<dyn PageWorkload>> = vec![
            Box::new(UniformWorkload::new(100, 1)),
            Box::new(HotColdWorkload::new(100, 0.2, 0.8, 2)),
            Box::new(ZipfianWorkload::new(100, 0.99, 3)),
        ];
        for g in &mut gens {
            let n = g.num_pages();
            let name = g.name();
            for p in take_pages(g.as_mut(), 1_000) {
                assert!(p < n, "{name} produced out-of-range page {p}");
            }
        }
    }

    #[test]
    fn update_frequencies_average_to_one() {
        let gens: Vec<Box<dyn PageWorkload>> = vec![
            Box::new(UniformWorkload::new(500, 1)),
            Box::new(HotColdWorkload::new(500, 0.2, 0.8, 2)),
            Box::new(ZipfianWorkload::new(500, 0.99, 3)),
        ];
        for g in &gens {
            let n = g.num_pages();
            let sum: f64 = (0..n).map(|p| g.update_frequency(p).unwrap()).sum();
            let mean = sum / n as f64;
            assert!(
                (mean - 1.0).abs() < 1e-6,
                "{}: mean normalised frequency is {mean}, expected 1.0",
                g.name()
            );
        }
    }
}
