//! Uniformly distributed page writes (paper §2.2 and Figure 5a).

use crate::{PageId, PageWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every page is equally likely to be written.
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    num_pages: u64,
    rng: StdRng,
}

impl UniformWorkload {
    /// Create a uniform workload over `num_pages` pages with a deterministic seed.
    pub fn new(num_pages: u64, seed: u64) -> Self {
        assert!(num_pages > 0, "workload needs at least one page");
        Self {
            num_pages,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl PageWorkload for UniformWorkload {
    fn name(&self) -> String {
        "uniform".to_string()
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn next_page(&mut self) -> PageId {
        self.rng.gen_range(0..self.num_pages)
    }

    fn update_frequency(&self, _page: PageId) -> Option<f64> {
        Some(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram;

    #[test]
    fn deterministic_for_a_given_seed() {
        let mut a = UniformWorkload::new(1000, 42);
        let mut b = UniformWorkload::new(1000, 42);
        let xs: Vec<_> = (0..100).map(|_| a.next_page()).collect();
        let ys: Vec<_> = (0..100).map(|_| b.next_page()).collect();
        assert_eq!(xs, ys);
        let mut c = UniformWorkload::new(1000, 43);
        let zs: Vec<_> = (0..100).map(|_| c.next_page()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn roughly_uniform_coverage() {
        let mut w = UniformWorkload::new(100, 7);
        let h = histogram(&mut w, 100_000);
        // Each page expects ~1000 hits; allow generous slack.
        assert!(
            h.iter().all(|&c| c > 700 && c < 1300),
            "histogram too skewed: {h:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_pages_rejected() {
        UniformWorkload::new(0, 1);
    }
}
