//! Hot-cold (`m : 1−m`) page-write distributions (paper §3 and Figure 3).
//!
//! A fraction `hot_data_fraction` of the pages (the *hot set*) receives a fraction
//! `hot_update_fraction` of the writes; both sets are internally uniform. The classic
//! "80:20" workload is `hot_data_fraction = 0.2`, `hot_update_fraction = 0.8`.

use crate::{PageId, PageWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two-pool skewed distribution: hot pages updated much more often than cold pages.
#[derive(Debug, Clone)]
pub struct HotColdWorkload {
    num_pages: u64,
    hot_pages: u64,
    hot_update_fraction: f64,
    rng: StdRng,
}

impl HotColdWorkload {
    /// Create an `m : 1−m` style workload.
    ///
    /// * `hot_data_fraction` — fraction of pages in the hot set (e.g. 0.2),
    /// * `hot_update_fraction` — fraction of writes that go to the hot set (e.g. 0.8).
    pub fn new(
        num_pages: u64,
        hot_data_fraction: f64,
        hot_update_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(num_pages > 0, "workload needs at least one page");
        assert!(
            (0.0..=1.0).contains(&hot_data_fraction) && (0.0..=1.0).contains(&hot_update_fraction),
            "fractions must be within [0, 1]"
        );
        let hot_pages = ((num_pages as f64 * hot_data_fraction).round() as u64).clamp(1, num_pages);
        Self {
            num_pages,
            hot_pages,
            hot_update_fraction,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The paper's shorthand `m:(1−m)` distributions (e.g. `from_skew(80)` = 80% of the
    /// updates to 20% of the data). `m` is in percent and must be in `50..=99`.
    pub fn from_skew_percent(num_pages: u64, m: u32, seed: u64) -> Self {
        assert!(
            (50..=99).contains(&m),
            "skew percent must be in 50..=99, got {m}"
        );
        let m = m as f64 / 100.0;
        Self::new(num_pages, 1.0 - m, m, seed)
    }

    /// Number of pages in the hot set.
    pub fn hot_pages(&self) -> u64 {
        self.hot_pages
    }

    /// True if the page belongs to the hot set.
    pub fn is_hot(&self, page: PageId) -> bool {
        page < self.hot_pages
    }
}

impl PageWorkload for HotColdWorkload {
    fn name(&self) -> String {
        format!(
            "hotcold-{:.0}:{:.0}",
            self.hot_update_fraction * 100.0,
            (1.0 - self.hot_update_fraction) * 100.0
        )
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn next_page(&mut self) -> PageId {
        let cold_pages = self.num_pages - self.hot_pages;
        if cold_pages == 0 || self.rng.gen_bool(self.hot_update_fraction) {
            self.rng.gen_range(0..self.hot_pages)
        } else {
            self.hot_pages + self.rng.gen_range(0..cold_pages)
        }
    }

    fn update_frequency(&self, page: PageId) -> Option<f64> {
        let hot = self.hot_pages as f64;
        let cold = (self.num_pages - self.hot_pages) as f64;
        let freq = if page < self.hot_pages {
            self.hot_update_fraction / hot
        } else if cold > 0.0 {
            (1.0 - self.hot_update_fraction) / cold
        } else {
            0.0
        };
        Some(freq * self.num_pages as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram;

    #[test]
    fn eighty_twenty_sends_most_writes_to_the_hot_set() {
        let mut w = HotColdWorkload::new(1000, 0.2, 0.8, 11);
        assert_eq!(w.hot_pages(), 200);
        let h = histogram(&mut w, 200_000);
        let hot_hits: u64 = h[..200].iter().sum();
        let frac = hot_hits as f64 / 200_000.0;
        assert!((frac - 0.8).abs() < 0.01, "hot fraction was {frac}");
    }

    #[test]
    fn from_skew_percent_matches_explicit_construction() {
        let a = HotColdWorkload::from_skew_percent(1000, 90, 1);
        assert_eq!(a.hot_pages(), 100);
        assert_eq!(a.name(), "hotcold-90:10");
        let b = HotColdWorkload::from_skew_percent(1000, 50, 1);
        assert_eq!(b.hot_pages(), 500);
    }

    #[test]
    fn frequencies_reflect_the_skew() {
        let w = HotColdWorkload::new(1000, 0.2, 0.8, 3);
        let hot = w.update_frequency(0).unwrap();
        let cold = w.update_frequency(999).unwrap();
        // Hot pages: 0.8/200*1000 = 4.0; cold pages: 0.2/800*1000 = 0.25.
        assert!((hot - 4.0).abs() < 1e-9);
        assert!((cold - 0.25).abs() < 1e-9);
        assert!(w.is_hot(10));
        assert!(!w.is_hot(500));
    }

    #[test]
    fn fifty_fifty_is_effectively_uniform() {
        let w = HotColdWorkload::from_skew_percent(1000, 50, 5);
        let hot = w.update_frequency(0).unwrap();
        let cold = w.update_frequency(999).unwrap();
        assert!((hot - 1.0).abs() < 1e-9);
        assert!((cold - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "skew percent")]
    fn out_of_range_skew_rejected() {
        HotColdWorkload::from_skew_percent(10, 20, 0);
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let mut a = HotColdWorkload::new(500, 0.1, 0.9, 77);
        let mut b = HotColdWorkload::new(500, 0.1, 0.9, 77);
        for _ in 0..100 {
            assert_eq!(a.next_page(), b.next_page());
        }
    }
}
