//! Zipfian page-write distributions (paper §6.2, Figures 4 and 5).
//!
//! The paper evaluates two skew levels: the "80-20" Zipfian with factor θ = 0.99 and the
//! "90-10" Zipfian with θ = 1.35. Unlike the two-pool hot-cold distribution, every page
//! has a *unique* update frequency, which makes frequency estimation genuinely hard and
//! is why the paper calls it "more complex and realistic".
//!
//! The sampler is the standard rejection-free inverse-CDF approximation popularised by
//! Gray et al. and used in YCSB. The harmonic normalisation constant `ζ(n, θ)` is
//! computed once at construction (O(n)).

use crate::{PageId, PageWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipfian distribution over `0..num_pages` where rank 0 is the hottest page.
///
/// By default rank equals page id (page 0 is hottest). Use
/// [`ZipfianWorkload::scrambled`] to spread hot pages pseudo-randomly over the id space;
/// placement in segments depends only on write order, so both variants produce the same
/// cleaning behaviour, but the scrambled variant is more realistic when page ids carry
/// meaning (e.g. B+-tree page numbers).
#[derive(Debug, Clone)]
pub struct ZipfianWorkload {
    num_pages: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    /// Multiplier of the rank → page permutation `(rank · mul) mod n` (1 = identity).
    /// Chosen coprime with `num_pages`, so the permutation is a bijection.
    scramble_mul: u64,
    /// Modular inverse of `scramble_mul` modulo `num_pages` (1 for the identity).
    scramble_inv: u64,
    rng: StdRng,
}

impl ZipfianWorkload {
    /// Create a Zipfian workload with skew `theta` (0 < θ, θ ≠ 1; θ = 0.99 and 1.35 are
    /// the paper's settings).
    pub fn new(num_pages: u64, theta: f64, seed: u64) -> Self {
        Self::with_scramble(num_pages, theta, seed, 1)
    }

    /// Like [`ZipfianWorkload::new`] but hot ranks are spread over the page-id space by
    /// the bijection `page = (rank · m) mod num_pages` with `m` coprime to `num_pages`.
    pub fn scrambled(num_pages: u64, theta: f64, seed: u64) -> Self {
        let mut mul = (0x9E37_79B9_7F4A_7C15u64 % num_pages.max(1)).max(1);
        if num_pages > 1 {
            while gcd(mul, num_pages) != 1 {
                mul = (mul + 1) % num_pages;
                if mul == 0 {
                    mul = 1;
                }
            }
        } else {
            mul = 1;
        }
        Self::with_scramble(num_pages, theta, seed, mul)
    }

    fn with_scramble(num_pages: u64, theta: f64, seed: u64, scramble_mul: u64) -> Self {
        assert!(num_pages > 0, "workload needs at least one page");
        assert!(
            theta > 0.0 && (theta - 1.0).abs() > 1e-9,
            "theta must be > 0 and != 1"
        );
        let zetan = Self::zeta(num_pages, theta);
        let zeta2 = Self::zeta(2.min(num_pages), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / num_pages as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        let scramble_inv = if scramble_mul == 1 {
            1
        } else {
            mod_inverse(scramble_mul % num_pages, num_pages)
                .expect("scramble multiplier is constructed coprime with num_pages")
        };
        Self {
            num_pages,
            theta,
            alpha,
            zetan,
            eta,
            scramble_mul,
            scramble_inv,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Harmonic-like normalisation `ζ(n, θ) = Σ_{i=1..n} 1/i^θ`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    fn next_rank(&mut self) -> u64 {
        let n = self.num_pages as f64;
        let u: f64 = self.rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (n * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.num_pages - 1)
    }

    /// Probability mass of a given rank (rank 0 is the hottest).
    pub fn rank_probability(&self, rank: u64) -> f64 {
        1.0 / ((rank + 1) as f64).powf(self.theta) / self.zetan
    }

    #[inline]
    fn page_for_rank(&self, rank: u64) -> PageId {
        if self.scramble_mul == 1 {
            rank
        } else {
            mulmod(rank, self.scramble_mul, self.num_pages)
        }
    }

    #[inline]
    fn page_to_rank(&self, page: PageId) -> u64 {
        if self.scramble_mul == 1 {
            page
        } else {
            mulmod(page, self.scramble_inv, self.num_pages)
        }
    }
}

/// `(a * b) % m` without overflow.
fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Greatest common divisor.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular inverse via the extended Euclidean algorithm, if it exists.
fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    let mut inv = old_s % m as i128;
    if inv < 0 {
        inv += m as i128;
    }
    Some(inv as u64)
}

impl PageWorkload for ZipfianWorkload {
    fn name(&self) -> String {
        format!("zipfian-{:.2}", self.theta)
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn next_page(&mut self) -> PageId {
        let rank = self.next_rank();
        self.page_for_rank(rank)
    }

    fn update_frequency(&self, page: PageId) -> Option<f64> {
        let rank = self.page_to_rank(page);
        Some(self.rank_probability(rank) * self.num_pages as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram;

    #[test]
    fn rank_probabilities_sum_to_one() {
        let w = ZipfianWorkload::new(1000, 0.99, 1);
        let sum: f64 = (0..1000).map(|r| w.rank_probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum of probabilities is {sum}");
    }

    #[test]
    fn empirical_skew_matches_theory_for_theta_099() {
        // With θ = 0.99 over 1000 pages, the hottest 20% of ranks should absorb roughly
        // 70-85% of the writes ("80-20" in the paper's terminology).
        let mut w = ZipfianWorkload::new(1000, 0.99, 7);
        let h = histogram(&mut w, 200_000);
        let hot: u64 = h[..200].iter().sum();
        let frac = hot as f64 / 200_000.0;
        let expected: f64 = (0..200).map(|r| w.rank_probability(r)).sum();
        assert!(
            (frac - expected).abs() < 0.02,
            "empirical {frac} vs theoretical {expected}"
        );
        assert!(
            frac > 0.65 && frac < 0.9,
            "hot fraction {frac} outside 80-20 territory"
        );
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mut a = ZipfianWorkload::new(1000, 0.99, 3);
        let mut b = ZipfianWorkload::new(1000, 1.35, 3);
        let ha = histogram(&mut a, 100_000);
        let hb = histogram(&mut b, 100_000);
        let top_a: u64 = ha[..100].iter().sum();
        let top_b: u64 = hb[..100].iter().sum();
        assert!(
            top_b > top_a,
            "theta=1.35 should concentrate more than theta=0.99"
        );
    }

    #[test]
    fn frequencies_are_monotone_in_rank() {
        let w = ZipfianWorkload::new(100, 0.99, 1);
        let f0 = w.update_frequency(0).unwrap();
        let f50 = w.update_frequency(50).unwrap();
        let f99 = w.update_frequency(99).unwrap();
        assert!(f0 > f50 && f50 > f99);
        assert!(f0 > 1.0 && f99 < 1.0);
    }

    #[test]
    fn scrambled_variant_produces_valid_pages_and_consistent_frequencies() {
        for n in [997u64, 1000, 1024, 6] {
            let mut w = ZipfianWorkload::scrambled(n, 0.99, 5);
            for _ in 0..5_000 {
                let p = w.next_page();
                assert!(p < n);
            }
            // Exact frequencies must still be a permutation of the rank probabilities:
            // the normalised frequencies sum to n.
            let sum: f64 = (0..n).map(|p| w.update_frequency(p).unwrap()).sum();
            assert!(
                (sum / n as f64 - 1.0).abs() < 1e-9,
                "n={n}: sum/n = {}",
                sum / n as f64
            );
        }
    }

    #[test]
    fn scramble_round_trip_rank_page() {
        for n in [1000u64, 997, 4096] {
            let w = ZipfianWorkload::scrambled(n, 0.99, 5);
            for rank in [0u64, 1, 2, 17, n / 2, n - 1] {
                let page = w.page_for_rank(rank);
                assert_eq!(
                    w.page_to_rank(page),
                    rank,
                    "n={n}: rank {rank} did not round-trip"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let mut a = ZipfianWorkload::new(1000, 1.35, 123);
        let mut b = ZipfianWorkload::new(1000, 1.35, 123);
        for _ in 0..200 {
            assert_eq!(a.next_page(), b.next_page());
        }
    }

    #[test]
    fn helper_number_theory_functions() {
        assert_eq!(mod_inverse(3, 10), Some(7));
        assert_eq!(mod_inverse(2, 10), None);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(mulmod(u64::MAX - 1, u64::MAX - 1, 1_000_000_007), {
            (((u64::MAX - 1) as u128 * (u64::MAX - 1) as u128) % 1_000_000_007u128) as u64
        });
    }
}
