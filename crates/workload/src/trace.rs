//! Page-write traces: recording, persistence and replay (paper §6.3 uses I/O traces
//! collected from a B+-tree storage engine running TPC-C).
//!
//! A [`WriteTrace`] is simply the ordered sequence of page ids that were written.
//! Traces can be saved to / loaded from a compact binary file (little-endian `u64`s with
//! a small header) and replayed through the simulator with [`TraceWorkload`].

use crate::{PageId, PageWorkload};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;

const TRACE_MAGIC: &[u8; 8] = b"LSSTRACE";

/// An ordered sequence of page writes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteTrace {
    /// The page ids, in write order.
    pub writes: Vec<PageId>,
}

impl WriteTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one page write.
    #[inline]
    pub fn record(&mut self, page: PageId) {
        self.writes.push(page);
    }

    /// Number of writes recorded.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Number of distinct pages touched.
    pub fn distinct_pages(&self) -> usize {
        let mut seen: Vec<PageId> = self.writes.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Remap arbitrary page ids onto a dense `0..distinct` range (first-seen order).
    /// Returns the remapped trace and the number of distinct pages.
    pub fn densify(&self) -> (WriteTrace, u64) {
        let mut map: HashMap<PageId, PageId> = HashMap::new();
        let mut next = 0u64;
        let writes = self
            .writes
            .iter()
            .map(|&p| {
                *map.entry(p).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect();
        (WriteTrace { writes }, next)
    }

    /// Empirical update frequency per (dense) page, normalised so the average page has
    /// frequency 1.0.
    pub fn empirical_frequencies(&self, num_pages: u64) -> Vec<f64> {
        let mut counts = vec![0u64; num_pages as usize];
        for &p in &self.writes {
            if (p as usize) < counts.len() {
                counts[p as usize] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; num_pages as usize];
        }
        counts
            .into_iter()
            .map(|c| c as f64 / total as f64 * num_pages as f64)
            .collect()
    }

    /// Serialise the trace to a writer (binary, little-endian).
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(TRACE_MAGIC)?;
        w.write_all(&(self.writes.len() as u64).to_le_bytes())?;
        for &p in &self.writes {
            w.write_all(&p.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialise a trace from a reader.
    pub fn read_from<R: Read>(mut r: R) -> std::io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != TRACE_MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not an lss trace file (bad magic)",
            ));
        }
        let mut lenb = [0u8; 8];
        r.read_exact(&mut lenb)?;
        let len = u64::from_le_bytes(lenb) as usize;
        let mut writes = Vec::with_capacity(len.min(1 << 24));
        let mut buf = [0u8; 8];
        for _ in 0..len {
            r.read_exact(&mut buf)?;
            writes.push(u64::from_le_bytes(buf));
        }
        Ok(Self { writes })
    }

    /// Save to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))
    }

    /// Load from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let f = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

/// Replays a [`WriteTrace`] as a [`PageWorkload`], looping when the trace is exhausted.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    trace: WriteTrace,
    num_pages: u64,
    frequencies: Option<Vec<f64>>,
    pos: usize,
    /// How many times the trace has wrapped around.
    loops: u64,
}

impl TraceWorkload {
    /// Build a workload from a trace whose page ids may be sparse. Ids are densified so
    /// the simulator can size its page table to the distinct page count.
    pub fn new(name: impl Into<String>, trace: &WriteTrace) -> Self {
        let (dense, num_pages) = trace.densify();
        Self {
            name: name.into(),
            num_pages: num_pages.max(1),
            frequencies: None,
            trace: dense,
            pos: 0,
            loops: 0,
        }
    }

    /// Build a workload from an already-dense trace and annotate it with its empirical
    /// frequencies so oracle ("-opt") policies can use them, as the paper does when it
    /// pre-analyses page update frequencies for multi-log-opt and MDC-opt (§6.3).
    pub fn with_empirical_frequencies(name: impl Into<String>, trace: &WriteTrace) -> Self {
        let mut w = Self::new(name, trace);
        w.frequencies = Some(w.trace.empirical_frequencies(w.num_pages));
        w
    }

    /// Number of writes in one pass of the trace.
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }

    /// How many times the trace has wrapped around so far.
    pub fn loops(&self) -> u64 {
        self.loops
    }
}

impl PageWorkload for TraceWorkload {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn next_page(&mut self) -> PageId {
        if self.trace.writes.is_empty() {
            return 0;
        }
        let p = self.trace.writes[self.pos];
        self.pos += 1;
        if self.pos == self.trace.writes.len() {
            self.pos = 0;
            self.loops += 1;
        }
        p
    }

    fn update_frequency(&self, page: PageId) -> Option<f64> {
        self.frequencies
            .as_ref()
            .and_then(|f| f.get(page as usize).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_densify_and_count() {
        let mut t = WriteTrace::new();
        for p in [100u64, 5, 100, 7, 5, 100] {
            t.record(p);
        }
        assert_eq!(t.len(), 6);
        assert_eq!(t.distinct_pages(), 3);
        let (dense, n) = t.densify();
        assert_eq!(n, 3);
        assert_eq!(dense.writes, vec![0, 1, 0, 2, 1, 0]);
    }

    #[test]
    fn file_roundtrip() {
        let mut t = WriteTrace::new();
        for i in 0..1000u64 {
            t.record(i * 3 % 97);
        }
        let mut path = std::env::temp_dir();
        path.push(format!("lss-trace-test-{}.bin", std::process::id()));
        t.save(&path).unwrap();
        let back = WriteTrace::load(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = b"NOTATRACExxxxxxx".to_vec();
        assert!(WriteTrace::read_from(&bytes[..]).is_err());
    }

    #[test]
    fn replay_loops_over_the_trace() {
        let mut t = WriteTrace::new();
        for p in [10u64, 20, 30] {
            t.record(p);
        }
        let mut w = TraceWorkload::new("test", &t);
        assert_eq!(w.num_pages(), 3);
        let seq: Vec<u64> = (0..7).map(|_| w.next_page()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(w.loops(), 2);
    }

    #[test]
    fn empirical_frequencies_reflect_the_trace() {
        let mut t = WriteTrace::new();
        // Page 0 written 6 times, page 1 written 2 times => normalised 1.5 and 0.5.
        for p in [0u64, 0, 0, 1, 0, 0, 1, 0] {
            t.record(p);
        }
        let w = TraceWorkload::with_empirical_frequencies("skewed", &t);
        assert!((w.update_frequency(0).unwrap() - 1.5).abs() < 1e-12);
        assert!((w.update_frequency(1).unwrap() - 0.5).abs() < 1e-12);
        // Plain trace workloads expose no frequencies.
        let plain = TraceWorkload::new("plain", &t);
        assert!(plain.update_frequency(0).is_none());
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = WriteTrace::new();
        assert!(t.is_empty());
        let mut w = TraceWorkload::new("empty", &t);
        assert_eq!(w.next_page(), 0);
        assert_eq!(w.num_pages(), 1);
    }
}
