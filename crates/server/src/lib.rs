//! # lss-server — the networked KV front-end
//!
//! Serves an [`lss_btree::kv::KvStore`] over TCP with the length-prefixed binary
//! protocol specified normatively in **docs/PROTOCOL.md**: CRC32C-checked frames,
//! out-of-order-safe correlation ids, pipelined requests executed on a pluggable
//! [`executor::Executor`] (the default is the shared-queue thread pool sized by
//! [`ServerConfig::server_threads`]), and group-batched replies — concurrent durable
//! PUTs share one superblock flip through the store's group-commit window, and
//! replies completing together share one socket flush.
//!
//! Most clients should use the `lss-client` crate rather than this crate's
//! [`protocol`] module directly; operators run the `lss-server` binary (see
//! docs/OPERATIONS.md). Embedding the server in-process — as the tests, benches and
//! the example below do — needs only [`Server::start`] and a shared
//! [`KvStore`](lss_btree::kv::KvStore).
//!
//! ## Example: an in-process server spoken to at the wire level
//!
//! ```
//! use lss_core::{LogStore, StoreConfig};
//! use lss_btree::kv::KvStore;
//! use lss_server::{Server, ServerConfig};
//! use lss_server::protocol::{self, Request, Response};
//! use std::net::TcpStream;
//! use std::sync::Arc;
//!
//! // A store on an in-memory device, served on an ephemeral port.
//! let kv = Arc::new(KvStore::open(
//!     LogStore::open_in_memory(StoreConfig::small_for_tests()).unwrap(),
//! ).unwrap());
//! let server = Server::start(Arc::clone(&kv), "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! // One durable PUT and one GET, framed by hand per docs/PROTOCOL.md §3.
//! let mut sock = TcpStream::connect(server.local_addr()).unwrap();
//! for (corr, req) in [
//!     (1, Request::Put { key: b"k".to_vec(), value: b"v".to_vec(), durable: true }),
//!     (2, Request::Get { key: b"k".to_vec() }),
//! ] {
//!     let mut payload = Vec::new();
//!     req.encode_payload(&mut payload);
//!     protocol::write_frame(&mut sock, req.opcode(), corr, &payload).unwrap();
//! }
//! let put = protocol::read_frame(&mut sock, protocol::MAX_FRAME_BYTES).unwrap().unwrap();
//! let get = protocol::read_frame(&mut sock, protocol::MAX_FRAME_BYTES).unwrap().unwrap();
//! assert_eq!(Response::decode(put.opcode, &put.payload).unwrap(), Response::Put);
//! assert_eq!(
//!     Response::decode(get.opcode, &get.payload).unwrap(),
//!     Response::Get(Some(b"v".to_vec())),
//! );
//! server.shutdown();
//! ```

pub mod executor;
pub mod protocol;
mod server;

pub use server::{Server, ServerConfig};
