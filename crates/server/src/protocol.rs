//! Wire-format encoding and decoding for the LSS network protocol.
//!
//! This module is the *implementation* of **docs/PROTOCOL.md** — the normative
//! specification. Every constant below cites the spec section that defines it, and
//! the [`worked_example_hex`](self) unit test pins the encoding to the spec's §10
//! byte-for-byte example. Where this code and the spec disagree, the spec wins.
//!
//! The module is transport-agnostic: it reads and writes frames over any
//! [`std::io::Read`] / [`std::io::Write`], and is shared by the server's connection
//! loop and by `lss-client` (which depends on this crate for exactly this module).

use lss_core::util::crc32c;
use std::io::{self, Read, Write};

/// Frame magic, `0x534C` — wire bytes `4C 53`, ASCII `"LS"` (PROTOCOL.md §3.2).
pub const MAGIC: u16 = 0x534C;
/// The protocol version this implementation speaks (PROTOCOL.md §3.3, §9).
pub const VERSION: u8 = 1;
/// Body bytes of an empty-payload frame, and the minimum legal `length` field:
/// 12-byte body header + 4-byte CRC (PROTOCOL.md §3.1).
pub const MIN_FRAME_LEN: u32 = 16;
/// Maximum legal `length` field: 16 MiB (PROTOCOL.md §3.1). A length above this is
/// fatal *before* any allocation of the claimed size.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;
/// Fixed body-header bytes preceding the payload: magic + version + opcode +
/// correlation id (PROTOCOL.md §3).
pub const BODY_HEADER_BYTES: usize = 12;
/// Keys above this are rejected with [`ERR_BAD_REQUEST`] (PROTOCOL.md §6).
pub const MAX_KEY_BYTES: usize = 64 << 10;
/// Opcode bit 7: set on responses, clear on requests (PROTOCOL.md §3.4).
pub const RESPONSE_BIT: u8 = 0x80;

/// GET opcode (PROTOCOL.md §5.1).
pub const OP_GET: u8 = 0x01;
/// PUT opcode (PROTOCOL.md §5.2).
pub const OP_PUT: u8 = 0x02;
/// DELETE opcode (PROTOCOL.md §5.3).
pub const OP_DELETE: u8 = 0x03;
/// SCAN opcode (PROTOCOL.md §5.4).
pub const OP_SCAN: u8 = 0x04;
/// FLUSH opcode (PROTOCOL.md §5.5).
pub const OP_FLUSH: u8 = 0x05;
/// STATS opcode (PROTOCOL.md §5.6).
pub const OP_STATS: u8 = 0x06;

/// PUT/DELETE flag bit 0: ack without waiting for a durable commit (PROTOCOL.md §5.2).
pub const FLAG_NO_FLUSH: u8 = 0x01;

/// Response status `OK` (PROTOCOL.md §6).
pub const STATUS_OK: u8 = 0x00;
/// Malformed payload for the opcode (PROTOCOL.md §6).
pub const ERR_BAD_REQUEST: u8 = 0x01;
/// Well-formed frame, opcode unknown to this server (PROTOCOL.md §3.4, §6).
pub const ERR_UNSUPPORTED_OPCODE: u8 = 0x02;
/// Value exceeds the store's single-page capacity (PROTOCOL.md §6).
pub const ERR_VALUE_TOO_LARGE: u8 = 0x03;
/// The store is out of reclaimable space (PROTOCOL.md §6).
pub const ERR_STORE_FULL: u8 = 0x04;
/// Internal server failure; the request must not be assumed applied (PROTOCOL.md §6).
pub const ERR_SERVER: u8 = 0x05;
/// The server is draining and will close the connection (PROTOCOL.md §6).
pub const ERR_SHUTTING_DOWN: u8 = 0x06;

/// Why a frame could not be read. The split mirrors PROTOCOL.md §8: a [`Fatal`]
/// error poisons the byte stream (the connection must close); a clean EOF at a
/// frame boundary is not an error at all (`read_frame` returns `Ok(None)`).
///
/// [`Fatal`]: FrameError::Fatal
#[derive(Debug)]
pub enum FrameError {
    /// The stream's framing is untrusted: bad length bounds, bad magic, unsupported
    /// version, CRC mismatch, or a torn frame (EOF mid-body). PROTOCOL.md §8.
    Fatal(String),
    /// Transport-level I/O failure (also fatal to the connection).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Fatal(why) => write!(f, "fatal framing error: {why}"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// One decoded frame: the body header's variable fields plus the raw payload.
/// CRC and magic/version have already been verified by [`read_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// PROTOCOL.md §3.4.
    pub opcode: u8,
    /// PROTOCOL.md §3.5.
    pub corr_id: u64,
    /// PROTOCOL.md §3.6.
    pub payload: Vec<u8>,
}

/// Append one complete frame (length prefix, body header, payload, CRC) to `buf`.
/// The layout is PROTOCOL.md §3; the CRC covers magic..payload (§4).
pub fn encode_frame(buf: &mut Vec<u8>, opcode: u8, corr_id: u64, payload: &[u8]) {
    let length = (MIN_FRAME_LEN as usize + payload.len()) as u32;
    buf.extend_from_slice(&length.to_le_bytes());
    let body_start = buf.len();
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(VERSION);
    buf.push(opcode);
    buf.extend_from_slice(&corr_id.to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32c(&buf[body_start..]);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Encode and write one frame. The caller owns buffering/flushing policy.
pub fn write_frame(w: &mut impl Write, opcode: u8, corr_id: u64, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(4 + MIN_FRAME_LEN as usize + payload.len());
    encode_frame(&mut buf, opcode, corr_id, payload);
    w.write_all(&buf)
}

/// Read exactly `buf.len()` bytes, mapping EOF to a *torn frame* if any bytes of the
/// frame were already consumed (`mid_frame`), or to a clean end-of-stream otherwise.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], mid_frame: bool) -> Result<bool, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if mid_frame || filled > 0 {
                    // PROTOCOL.md §8: EOF mid-frame is a torn frame, fatal.
                    return Err(FrameError::Fatal(format!(
                        "torn frame: EOF after {filled} of {} bytes",
                        buf.len()
                    )));
                }
                return Ok(false);
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Read and validate one frame: length bounds (§3.1) before any payload-sized
/// allocation, then magic (§3.2), version (§3.3) and CRC (§4). Returns `Ok(None)` on
/// a clean EOF at a frame boundary; every other shortfall is a [`FrameError`].
///
/// `max_frame` is the §3.1 upper bound; pass [`MAX_FRAME_BYTES`] unless a test needs
/// a smaller ceiling.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Option<Frame>, FrameError> {
    let mut len_bytes = [0u8; 4];
    if !read_exact_or(r, &mut len_bytes, false)? {
        return Ok(None);
    }
    let length = u32::from_le_bytes(len_bytes);
    if length < MIN_FRAME_LEN || length > max_frame {
        return Err(FrameError::Fatal(format!(
            "frame length {length} outside [{MIN_FRAME_LEN}, {max_frame}] (PROTOCOL.md \u{a7}3.1)"
        )));
    }
    let mut body = vec![0u8; length as usize];
    read_exact_or(r, &mut body, true)?;

    let crc_at = body.len() - 4;
    let wire_crc = u32::from_le_bytes(body[crc_at..].try_into().unwrap());
    let computed = crc32c(&body[..crc_at]);
    if wire_crc != computed {
        return Err(FrameError::Fatal(format!(
            "crc mismatch: frame {wire_crc:#010x}, computed {computed:#010x} (PROTOCOL.md \u{a7}4)"
        )));
    }
    let magic = u16::from_le_bytes(body[0..2].try_into().unwrap());
    if magic != MAGIC {
        return Err(FrameError::Fatal(format!(
            "bad magic {magic:#06x} (PROTOCOL.md \u{a7}3.2)"
        )));
    }
    let version = body[2];
    if version != VERSION {
        return Err(FrameError::Fatal(format!(
            "unsupported protocol version {version} (PROTOCOL.md \u{a7}3.3)"
        )));
    }
    let opcode = body[3];
    let corr_id = u64::from_le_bytes(body[4..12].try_into().unwrap());
    let payload = body[BODY_HEADER_BYTES..crc_at].to_vec();
    Ok(Some(Frame {
        opcode,
        corr_id,
        payload,
    }))
}

/// A decoded request (PROTOCOL.md §5). Owned buffers: requests are handed across
/// threads to the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// §5.1.
    Get { key: Vec<u8> },
    /// §5.2. `durable` is the *inverse* of the wire's `NO_FLUSH` bit.
    Put {
        key: Vec<u8>,
        value: Vec<u8>,
        durable: bool,
    },
    /// §5.3.
    Delete { key: Vec<u8>, durable: bool },
    /// §5.4. `max_items == 0` means no client-imposed cap.
    Scan {
        start: Vec<u8>,
        end: Vec<u8>,
        max_items: u32,
    },
    /// §5.5.
    Flush,
    /// §5.6.
    Stats,
}

impl Request {
    /// The request's wire opcode (PROTOCOL.md §3.4).
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Get { .. } => OP_GET,
            Request::Put { .. } => OP_PUT,
            Request::Delete { .. } => OP_DELETE,
            Request::Scan { .. } => OP_SCAN,
            Request::Flush => OP_FLUSH,
            Request::Stats => OP_STATS,
        }
    }

    /// Encode the request payload (the §5 table's "request payload" column).
    pub fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Get { key } => put_string(buf, key),
            Request::Put {
                key,
                value,
                durable,
            } => {
                buf.push(if *durable { 0 } else { FLAG_NO_FLUSH });
                put_string(buf, key);
                put_string(buf, value);
            }
            Request::Delete { key, durable } => {
                buf.push(if *durable { 0 } else { FLAG_NO_FLUSH });
                put_string(buf, key);
            }
            Request::Scan {
                start,
                end,
                max_items,
            } => {
                put_string(buf, start);
                put_string(buf, end);
                buf.extend_from_slice(&max_items.to_le_bytes());
            }
            Request::Flush | Request::Stats => {}
        }
    }

    /// Decode a request from a verified frame. Errors map to the two recoverable
    /// per-request statuses of PROTOCOL.md §6/§8: an unknown opcode and a malformed
    /// payload both leave the connection open.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Request, RequestError> {
        let mut c = Cursor::new(payload);
        let req = match opcode {
            OP_GET => Request::Get {
                key: c.string("key")?,
            },
            OP_PUT => {
                let flags = c.u8("flags")?;
                if flags & !FLAG_NO_FLUSH != 0 {
                    // §5.2: unknown flag bits need a version bump.
                    return Err(RequestError::Bad(format!("unknown PUT flags {flags:#04x}")));
                }
                Request::Put {
                    durable: flags & FLAG_NO_FLUSH == 0,
                    key: c.string("key")?,
                    value: c.string("value")?,
                }
            }
            OP_DELETE => {
                let flags = c.u8("flags")?;
                if flags & !FLAG_NO_FLUSH != 0 {
                    return Err(RequestError::Bad(format!(
                        "unknown DELETE flags {flags:#04x}"
                    )));
                }
                Request::Delete {
                    durable: flags & FLAG_NO_FLUSH == 0,
                    key: c.string("key")?,
                }
            }
            OP_SCAN => Request::Scan {
                start: c.string("start")?,
                end: c.string("end")?,
                max_items: c.u32("max_items")?,
            },
            OP_FLUSH => Request::Flush,
            OP_STATS => Request::Stats,
            other => return Err(RequestError::UnsupportedOpcode(other)),
        };
        c.finish()?; // §9: trailing bytes in a known payload are ERR_BAD_REQUEST.
        if let Request::Get { key } | Request::Put { key, .. } | Request::Delete { key, .. } = &req
        {
            if key.len() > MAX_KEY_BYTES {
                return Err(RequestError::Bad(format!(
                    "key of {} bytes exceeds MAX_KEY_BYTES (PROTOCOL.md \u{a7}6)",
                    key.len()
                )));
            }
        }
        Ok(req)
    }
}

/// Why a CRC-verified frame still could not become a [`Request`]. Both variants are
/// recoverable per PROTOCOL.md §8: the server replies with the matching status and
/// keeps the connection.
#[derive(Debug)]
pub enum RequestError {
    /// Maps to [`ERR_UNSUPPORTED_OPCODE`] (PROTOCOL.md §3.4).
    UnsupportedOpcode(u8),
    /// Maps to [`ERR_BAD_REQUEST`] (PROTOCOL.md §6).
    Bad(String),
}

impl RequestError {
    /// The §6 status code this error is reported as.
    pub fn status(&self) -> u8 {
        match self {
            RequestError::UnsupportedOpcode(_) => ERR_UNSUPPORTED_OPCODE,
            RequestError::Bad(_) => ERR_BAD_REQUEST,
        }
    }
}

/// A decoded response (PROTOCOL.md §5's "successful response payload" column, plus
/// the error case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// §5.1. `None` = key absent (a *successful* response).
    Get(Option<Vec<u8>>),
    /// §5.2.
    Put,
    /// §5.3.
    Delete { existed: bool },
    /// §5.4.
    Scan {
        items: Vec<(Vec<u8>, Vec<u8>)>,
        truncated: bool,
    },
    /// §5.5.
    Flush,
    /// §5.6.
    Stats(String),
    /// Any non-OK status (PROTOCOL.md §6).
    Err { status: u8 },
}

impl Response {
    /// Encode the response payload: status byte first (§6), then the §5 columns.
    pub fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Get(value) => {
                buf.push(STATUS_OK);
                match value {
                    Some(v) => {
                        buf.push(1);
                        put_string(buf, v);
                    }
                    None => buf.push(0),
                }
            }
            Response::Put | Response::Flush => buf.push(STATUS_OK),
            Response::Delete { existed } => {
                buf.push(STATUS_OK);
                buf.push(u8::from(*existed));
            }
            Response::Scan { items, truncated } => {
                buf.push(STATUS_OK);
                buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for (k, v) in items {
                    put_string(buf, k);
                    put_string(buf, v);
                }
                buf.push(u8::from(*truncated));
            }
            Response::Stats(json) => {
                buf.push(STATUS_OK);
                put_string(buf, json.as_bytes());
            }
            Response::Err { status } => buf.push(*status),
        }
    }

    /// Decode a response from a verified frame whose opcode has [`RESPONSE_BIT`]
    /// set. The request opcode (`opcode & !RESPONSE_BIT`) selects the §5 layout.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Response, FrameError> {
        let req_op = opcode & !RESPONSE_BIT;
        let mut c = Cursor::new(payload);
        let status = c
            .u8("status")
            .map_err(|e| FrameError::Fatal(e.to_string()))?;
        if status != STATUS_OK {
            // §6: a non-OK response carries only the status byte.
            c.finish().map_err(|e| FrameError::Fatal(e.to_string()))?;
            return Ok(Response::Err { status });
        }
        let fatal = |e: RequestError| FrameError::Fatal(e.to_string());
        let resp = match req_op {
            OP_GET => {
                let found = c.u8("found").map_err(fatal)? != 0;
                Response::Get(if found {
                    Some(c.string("value").map_err(fatal)?)
                } else {
                    None
                })
            }
            OP_PUT => Response::Put,
            OP_DELETE => Response::Delete {
                existed: c.u8("existed").map_err(fatal)? != 0,
            },
            OP_SCAN => {
                let count = c.u32("count").map_err(fatal)?;
                let mut items = Vec::with_capacity(count.min(4096) as usize);
                for _ in 0..count {
                    let k = c.string("key").map_err(fatal)?;
                    let v = c.string("value").map_err(fatal)?;
                    items.push((k, v));
                }
                Response::Scan {
                    items,
                    truncated: c.u8("truncated").map_err(fatal)? != 0,
                }
            }
            OP_FLUSH => Response::Flush,
            OP_STATS => {
                let json = c.string("stats json").map_err(fatal)?;
                Response::Stats(String::from_utf8(json).map_err(|_| {
                    FrameError::Fatal("STATS payload is not UTF-8 (PROTOCOL.md \u{a7}5.6)".into())
                })?)
            }
            other => {
                return Err(FrameError::Fatal(format!(
                    "response to unknown opcode {other:#04x}"
                )))
            }
        };
        c.finish().map_err(|e| FrameError::Fatal(e.to_string()))?;
        Ok(resp)
    }
}

/// Append a §2 *string*: `u32` length + raw bytes.
fn put_string(buf: &mut Vec<u8>, s: &[u8]) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s);
}

/// Bounds-checked payload reader; every shortfall names the field it was reading.
struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], RequestError> {
        if self.data.len() - self.at < n {
            return Err(RequestError::Bad(format!(
                "payload truncated reading {what}: need {n} bytes, have {}",
                self.data.len() - self.at
            )));
        }
        let out = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, RequestError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, RequestError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// A §2 *string*: `u32` length + raw bytes. The length is validated against the
    /// remaining payload, so a lying length cannot over-allocate.
    fn string(&mut self, what: &str) -> Result<Vec<u8>, RequestError> {
        let n = self.u32(what)? as usize;
        Ok(self.take(n, what)?.to_vec())
    }

    /// §9: a known payload with trailing bytes is malformed.
    fn finish(&mut self) -> Result<(), RequestError> {
        if self.at != self.data.len() {
            return Err(RequestError::Bad(format!(
                "{} trailing payload bytes (PROTOCOL.md \u{a7}9)",
                self.data.len() - self.at
            )));
        }
        Ok(())
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::UnsupportedOpcode(op) => write!(f, "unsupported opcode {op:#04x}"),
            RequestError::Bad(why) => write!(f, "bad request: {why}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// PROTOCOL.md §10: the spec's worked PUT/reply exchange, byte for byte.
    #[test]
    fn worked_example_hex() {
        let mut req = Vec::new();
        let mut payload = Vec::new();
        Request::Put {
            key: b"k1".to_vec(),
            value: b"v1".to_vec(),
            durable: true,
        }
        .encode_payload(&mut payload);
        encode_frame(&mut req, OP_PUT, 7, &payload);
        let expect_req: Vec<u8> = vec![
            0x1D, 0x00, 0x00, 0x00, // length = 29
            0x4C, 0x53, // magic "LS"
            0x01, // version 1
            0x02, // opcode PUT
            0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // corr id 7
            0x00, // flags: durable
            0x02, 0x00, 0x00, 0x00, 0x6B, 0x31, // key "k1"
            0x02, 0x00, 0x00, 0x00, 0x76, 0x31, // value "v1"
            0x9C, 0xDA, 0x6C, 0x2A, // crc32c
        ];
        assert_eq!(req, expect_req, "request drifted from PROTOCOL.md \u{a7}10");

        let mut resp = Vec::new();
        let mut payload = Vec::new();
        Response::Put.encode_payload(&mut payload);
        encode_frame(&mut resp, OP_PUT | RESPONSE_BIT, 7, &payload);
        let expect_resp: Vec<u8> = vec![
            0x11, 0x00, 0x00, 0x00, // length = 17
            0x4C, 0x53, 0x01, 0x82, // magic, version, opcode PUT|0x80
            0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // corr id 7
            0x00, // status OK
            0xEE, 0x93, 0x60, 0x67, // crc32c
        ];
        assert_eq!(
            resp, expect_resp,
            "response drifted from PROTOCOL.md \u{a7}10"
        );
    }

    #[test]
    fn request_roundtrip_all_opcodes() {
        let cases = vec![
            Request::Get { key: b"a".to_vec() },
            Request::Put {
                key: b"k".to_vec(),
                value: vec![0u8; 100],
                durable: true,
            },
            Request::Put {
                key: b"k".to_vec(),
                value: vec![],
                durable: false,
            },
            Request::Delete {
                key: b"z".to_vec(),
                durable: true,
            },
            Request::Scan {
                start: b"a".to_vec(),
                end: b"q".to_vec(),
                max_items: 17,
            },
            Request::Flush,
            Request::Stats,
        ];
        for req in cases {
            let mut wire = Vec::new();
            let mut payload = Vec::new();
            req.encode_payload(&mut payload);
            encode_frame(&mut wire, req.opcode(), 99, &payload);
            let frame = read_frame(&mut wire.as_slice(), MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
            assert_eq!(frame.corr_id, 99);
            let decoded = Request::decode(frame.opcode, &frame.payload).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn response_roundtrip_all_opcodes() {
        let cases = vec![
            (OP_GET, Response::Get(Some(b"v".to_vec()))),
            (OP_GET, Response::Get(None)),
            (OP_PUT, Response::Put),
            (OP_DELETE, Response::Delete { existed: true }),
            (
                OP_SCAN,
                Response::Scan {
                    items: vec![(b"k".to_vec(), b"v".to_vec())],
                    truncated: true,
                },
            ),
            (OP_FLUSH, Response::Flush),
            (OP_STATS, Response::Stats("{}".into())),
            (OP_PUT, Response::Err { status: ERR_SERVER }),
        ];
        for (op, resp) in cases {
            let mut wire = Vec::new();
            let mut payload = Vec::new();
            resp.encode_payload(&mut payload);
            encode_frame(&mut wire, op | RESPONSE_BIT, 5, &payload);
            let frame = read_frame(&mut wire.as_slice(), MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
            let decoded = Response::decode(frame.opcode, &frame.payload).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    /// PROTOCOL.md §4: a single flipped payload bit must fail CRC verification.
    #[test]
    fn bit_flip_fails_crc() {
        let mut wire = Vec::new();
        encode_frame(&mut wire, OP_GET, 1, b"\x01\x00\x00\x00x");
        let mut corrupt = wire.clone();
        let mid = 4 + BODY_HEADER_BYTES + 2;
        corrupt[mid] ^= 0x10;
        match read_frame(&mut corrupt.as_slice(), MAX_FRAME_BYTES) {
            Err(FrameError::Fatal(why)) => assert!(why.contains("crc"), "{why}"),
            other => panic!("corrupt frame accepted: {other:?}"),
        }
    }

    /// PROTOCOL.md §3.1: lengths outside the legal band are fatal before allocation.
    #[test]
    fn length_bounds_are_fatal() {
        for bad_len in [0u32, 15, MAX_FRAME_BYTES + 1, u32::MAX] {
            let mut wire = bad_len.to_le_bytes().to_vec();
            wire.extend_from_slice(&[0u8; 32]);
            match read_frame(&mut wire.as_slice(), MAX_FRAME_BYTES) {
                Err(FrameError::Fatal(why)) => assert!(why.contains("length"), "{why}"),
                other => panic!("length {bad_len} accepted: {other:?}"),
            }
        }
    }

    /// PROTOCOL.md §8: EOF mid-body is a torn frame, distinct from clean EOF.
    #[test]
    fn torn_frame_vs_clean_eof() {
        let mut wire = Vec::new();
        encode_frame(&mut wire, OP_FLUSH, 3, &[]);
        // Clean EOF: zero bytes.
        assert!(matches!(
            read_frame(&mut [].as_slice(), MAX_FRAME_BYTES),
            Ok(None)
        ));
        // Torn at every interior boundary.
        for cut in 1..wire.len() {
            match read_frame(&mut &wire[..cut], MAX_FRAME_BYTES) {
                Err(FrameError::Fatal(why)) => {
                    assert!(why.contains("torn") || why.contains("length"), "{why}")
                }
                other => panic!("cut at {cut} accepted: {other:?}"),
            }
        }
    }

    /// PROTOCOL.md §9: trailing bytes in a known request payload are ERR_BAD_REQUEST.
    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Vec::new();
        Request::Flush.encode_payload(&mut payload);
        payload.push(0xAB);
        match Request::decode(OP_FLUSH, &payload) {
            Err(e) => assert_eq!(e.status(), ERR_BAD_REQUEST),
            Ok(r) => panic!("trailing bytes accepted: {r:?}"),
        }
    }
}
