//! The TCP front-end: listener, per-connection reader threads, and the reply path.
//!
//! Data flow (docs/ARCHITECTURE.md, "The network front-end"):
//!
//! ```text
//! accept thread ──► reader thread (one per connection)
//!                     │  read_frame → CRC/magic/version verify → Request::decode
//!                     ▼
//!                 Executor (shared-queue pool, `server_threads` workers)
//!                     │  execute against Arc<KvStore>  (puts ride group commit)
//!                     ▼
//!                 per-connection writer mutex ──► socket (group-flushed replies)
//! ```
//!
//! Two batching effects stack here: concurrent durable PUTs share one superblock
//! flip through the KV layer's `group_commit_window_us` (PROTOCOL.md §5.2), and
//! replies completing while more requests are in flight share one socket flush
//! (PROTOCOL.md §7) — the writer mutex holder only flushes when it is the last
//! reply in flight for that connection.

use crate::executor::{Executor, SharedQueueExecutor};
use crate::protocol::{
    self, read_frame, FrameError, Request, RequestError, Response, ERR_SERVER, ERR_SHUTTING_DOWN,
    ERR_STORE_FULL, ERR_VALUE_TOO_LARGE, RESPONSE_BIT, STATUS_OK,
};
use lss_btree::kv::KvStore;
use lss_core::error::{Error, Result};
use parking_lot::Mutex;
use serde::Serialize;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs. All knobs are also documented in docs/OPERATIONS.md.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the request executor (`0` = auto: the machine's available
    /// parallelism, clamped to `[2, 8]`). Overridable with `LSS_SERVER_THREADS`.
    pub server_threads: usize,
    /// Upper bound accepted for a frame's `length` field (PROTOCOL.md §3.1) and the
    /// budget a SCAN reply is packed against (PROTOCOL.md §5.4).
    pub max_frame_bytes: u32,
    /// Server-side cap on items in one SCAN reply (PROTOCOL.md §5.4 lets the server
    /// cap independently of the client's `max_items`).
    pub max_scan_items: u32,
    /// Socket write timeout; a connection whose peer stops draining replies is
    /// dropped rather than wedging a worker forever.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            server_threads: 0,
            max_frame_bytes: protocol::MAX_FRAME_BYTES,
            max_scan_items: 65_536,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ServerConfig {
    /// Apply environment overrides (`LSS_SERVER_THREADS`), mirroring
    /// [`lss_core::StoreConfig::with_env_overrides`]'s pattern for the store knobs.
    pub fn with_env_overrides(self) -> Self {
        self.with_overrides_from(|name| std::env::var(name).ok())
    }

    /// The injectable core of [`ServerConfig::with_env_overrides`].
    pub fn with_overrides_from(mut self, lookup: impl Fn(&str) -> Option<String>) -> Self {
        if let Some(n) = lookup("LSS_SERVER_THREADS").and_then(|v| v.parse::<usize>().ok()) {
            self.server_threads = n.clamp(1, 64);
        }
        self
    }

    /// The worker count [`Server::start`] actually spawns (resolves `0` = auto).
    pub fn effective_threads(&self) -> usize {
        if self.server_threads > 0 {
            return self.server_threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    }
}

/// Lock-free request/reply counters, reported by the STATS opcode (PROTOCOL.md §5.6;
/// field inventory in docs/OPERATIONS.md).
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_closed: AtomicU64,
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    scans: AtomicU64,
    flushes: AtomicU64,
    stats_calls: AtomicU64,
    /// Fatal framing errors that closed a connection (PROTOCOL.md §8).
    frame_errors: AtomicU64,
    /// Recoverable per-request errors: bad payloads and unknown opcodes.
    protocol_errors: AtomicU64,
    /// Requests that failed in the store (ERR_SERVER / ERR_STORE_FULL / ...).
    store_errors: AtomicU64,
    replies: AtomicU64,
    /// Socket flushes performed — `replies / socket_flushes` is the reply batching
    /// factor (PROTOCOL.md §7).
    socket_flushes: AtomicU64,
    write_errors: AtomicU64,
}

/// One live connection: the reader thread owns decode, workers share the writer.
struct Conn {
    /// Owned handle used by [`Server::shutdown`] to unblock the reader.
    stream: TcpStream,
    writer: Mutex<BufWriter<TcpStream>>,
    /// Requests decoded but not yet replied to. The reply that drops this to zero
    /// flushes the socket; earlier replies just append to the buffered writer —
    /// that is the reply group-flush of PROTOCOL.md §7.
    in_flight: AtomicUsize,
}

impl Conn {
    /// Encode and send one reply, flushing only when this reply is the last in
    /// flight. `req_opcode` is echoed with [`RESPONSE_BIT`] set (PROTOCOL.md §3.4).
    fn send_reply(&self, shared: &Shared, req_opcode: u8, corr_id: u64, payload: &[u8]) {
        let mut frame = Vec::with_capacity(4 + protocol::MIN_FRAME_LEN as usize + payload.len());
        protocol::encode_frame(&mut frame, req_opcode | RESPONSE_BIT, corr_id, payload);
        let mut w = self.writer.lock();
        let mut res = w.write_all(&frame);
        shared.counters.replies.fetch_add(1, Ordering::Relaxed);
        let remaining = self.in_flight.fetch_sub(1, Ordering::AcqRel) - 1;
        if res.is_ok() && remaining == 0 {
            shared
                .counters
                .socket_flushes
                .fetch_add(1, Ordering::Relaxed);
            res = w.flush();
        }
        drop(w);
        if res.is_err() {
            shared.counters.write_errors.fetch_add(1, Ordering::Relaxed);
            // The reader will observe the shutdown and close its half too.
            let _ = self.stream.shutdown(Shutdown::Both);
        }
    }
}

struct Shared {
    kv: Arc<KvStore>,
    config: ServerConfig,
    executor: Box<dyn Executor>,
    shutting_down: AtomicBool,
    counters: Counters,
    conns: Mutex<Vec<(Arc<Conn>, JoinHandle<()>)>>,
}

/// A running KV server. Start with [`Server::start`], stop with
/// [`Server::shutdown`] (also run on drop). The server holds an `Arc<KvStore>`:
/// callers keep their own clone to reopen or inspect the store after shutdown.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port — see [`Server::local_addr`])
    /// and serve `kv` with the default shared-queue executor sized by
    /// [`ServerConfig::effective_threads`].
    pub fn start(kv: Arc<KvStore>, addr: impl ToSocketAddrs, config: ServerConfig) -> Result<Self> {
        let executor: Box<dyn Executor> =
            Box::new(SharedQueueExecutor::new(config.effective_threads()));
        Self::start_with_executor(kv, addr, config, executor)
    }

    /// The pluggable-executor seam: serve with any [`Executor`] implementation.
    pub fn start_with_executor(
        kv: Arc<KvStore>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        executor: Box<dyn Executor>,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(Error::Io)?;
        let local_addr = listener.local_addr().map_err(Error::Io)?;
        let shared = Arc::new(Shared {
            kv,
            config,
            executor,
            shutting_down: AtomicBool::new(false),
            counters: Counters::default(),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("lss-server-accept".into())
            .spawn(move || accept_loop(&accept_shared, &listener))
            .map_err(Error::Io)?;
        Ok(Self {
            shared,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address — with port 0 this is where the ephemeral port lands.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served store (e.g. to flush or inspect out of band in tests).
    pub fn kv(&self) -> &Arc<KvStore> {
        &self.shared.kv
    }

    /// Stop accepting, close every connection, abandon queued requests
    /// (PROTOCOL.md §8: unacked fates are unknown), finish running ones, and join
    /// all threads. Idempotent and callable from any thread.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop, then join it so no new connection can register.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
        // Close every socket: readers unblock with EOF/error, workers' pending
        // writes fail fast instead of wedging on a dead peer.
        let conns = std::mem::take(&mut *self.shared.conns.lock());
        for (conn, _) in &conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.shared.executor.shutdown();
        for (_, reader) in conns {
            let _ = reader.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        if let Err(e) = register_connection(shared, stream) {
            // Socket died between accept and setup — nothing to clean up.
            let _ = e;
        }
    }
}

fn register_connection(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)?; // PROTOCOL.md §1
    stream.set_write_timeout(shared.config.write_timeout)?;
    let writer = BufWriter::new(stream.try_clone()?);
    let conn = Arc::new(Conn {
        stream,
        writer: Mutex::new(writer),
        in_flight: AtomicUsize::new(0),
    });
    shared
        .counters
        .connections_accepted
        .fetch_add(1, Ordering::Relaxed);
    let reader_shared = Arc::clone(shared);
    let reader_conn = Arc::clone(&conn);
    let handle = std::thread::Builder::new()
        .name("lss-server-conn".into())
        .spawn(move || {
            connection_loop(&reader_shared, &reader_conn);
            reader_shared
                .counters
                .connections_closed
                .fetch_add(1, Ordering::Relaxed);
            let _ = reader_conn.stream.shutdown(Shutdown::Both);
        })
        .map_err(std::io::Error::other)?;
    shared.conns.lock().push((conn, handle));
    Ok(())
}

/// Per-connection read loop: frame → decode → dispatch, per PROTOCOL.md §8's two
/// failure classes (fatal framing errors close the connection here; per-request
/// errors are answered inline and the loop continues).
fn connection_loop(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    let Ok(raw) = conn.stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(raw);
    loop {
        let frame = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean EOF at a frame boundary
            Err(FrameError::Fatal(_)) | Err(FrameError::Io(_)) => {
                // PROTOCOL.md §8: the stream is untrusted (or gone) — no reply, close.
                shared.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        conn.in_flight.fetch_add(1, Ordering::AcqRel);
        let request = match Request::decode(frame.opcode, &frame.payload) {
            Ok(request) => request,
            Err(e) => {
                // Recoverable per-request error (PROTOCOL.md §8): reply, keep going.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                conn.send_reply(shared, frame.opcode, frame.corr_id, &[status_of_decode(&e)]);
                continue;
            }
        };
        let job_shared = Arc::clone(shared);
        let job_conn = Arc::clone(conn);
        let opcode = frame.opcode;
        let corr_id = frame.corr_id;
        let accepted = shared.executor.submit(Box::new(move || {
            let mut payload = Vec::new();
            execute_into(&job_shared, request, &mut payload);
            job_conn.send_reply(&job_shared, opcode, corr_id, &payload);
        }));
        if !accepted {
            conn.send_reply(shared, opcode, corr_id, &[ERR_SHUTTING_DOWN]);
            return;
        }
    }
}

fn status_of_decode(e: &RequestError) -> u8 {
    e.status()
}

/// Map a store error to a PROTOCOL.md §6 status code.
fn status_of_store(e: &Error) -> u8 {
    match e {
        Error::PageTooLarge { .. } => ERR_VALUE_TOO_LARGE,
        Error::OutOfSpace { .. } => ERR_STORE_FULL,
        _ => ERR_SERVER,
    }
}

/// Execute a request against the store, encoding the response payload directly into
/// `payload` — GET and SCAN copy value bytes exactly once, store buffer → reply
/// frame, with no intermediate `Vec` per value.
fn execute_into(shared: &Shared, request: Request, payload: &mut Vec<u8>) {
    let kv = &shared.kv;
    let c = &shared.counters;
    match request {
        Request::Get { key } => {
            c.gets.fetch_add(1, Ordering::Relaxed);
            match kv.get(&key) {
                Ok(Some(value)) => {
                    payload.push(STATUS_OK);
                    payload.push(1);
                    payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
                    payload.extend_from_slice(&value);
                }
                Ok(None) => {
                    payload.push(STATUS_OK);
                    payload.push(0);
                }
                Err(e) => {
                    c.store_errors.fetch_add(1, Ordering::Relaxed);
                    payload.push(status_of_store(&e));
                }
            }
        }
        Request::Put {
            key,
            value,
            durable,
        } => {
            c.puts.fetch_add(1, Ordering::Relaxed);
            // PROTOCOL.md §5.2: a durable PUT acks only after the commit covering
            // it; concurrent callers batch into one superblock flip through the KV
            // layer's group-commit window.
            let res = kv
                .put(&key, &value)
                .and_then(|()| if durable { kv.flush() } else { Ok(()) });
            match res {
                Ok(()) => payload.push(STATUS_OK),
                Err(e) => {
                    c.store_errors.fetch_add(1, Ordering::Relaxed);
                    payload.push(status_of_store(&e));
                }
            }
        }
        Request::Delete { key, durable } => {
            c.deletes.fetch_add(1, Ordering::Relaxed);
            let res = kv.delete(&key).and_then(|existed| {
                if durable {
                    kv.flush().map(|()| existed)
                } else {
                    Ok(existed)
                }
            });
            match res {
                Ok(existed) => {
                    payload.push(STATUS_OK);
                    payload.push(u8::from(existed));
                }
                Err(e) => {
                    c.store_errors.fetch_add(1, Ordering::Relaxed);
                    payload.push(status_of_store(&e));
                }
            }
        }
        Request::Scan {
            start,
            end,
            max_items,
        } => {
            c.scans.fetch_add(1, Ordering::Relaxed);
            match kv.range(&start, &end) {
                Ok(items) => {
                    // Cap by the client's max_items, the server's max_scan_items,
                    // and the frame-size budget (PROTOCOL.md §5.4).
                    let cap = if max_items == 0 {
                        shared.config.max_scan_items
                    } else {
                        max_items.min(shared.config.max_scan_items)
                    } as usize;
                    let byte_budget = shared.config.max_frame_bytes as usize
                        - protocol::MIN_FRAME_LEN as usize
                        - 64;
                    payload.push(STATUS_OK);
                    let count_at = payload.len();
                    payload.extend_from_slice(&0u32.to_le_bytes());
                    let mut emitted = 0u32;
                    let mut truncated = false;
                    for (k, v) in &items {
                        if emitted as usize >= cap {
                            truncated = true;
                            break;
                        }
                        if payload.len() + k.len() + v.len() + 8 > byte_budget {
                            truncated = true;
                            break;
                        }
                        payload.extend_from_slice(&(k.len() as u32).to_le_bytes());
                        payload.extend_from_slice(k);
                        payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
                        payload.extend_from_slice(v);
                        emitted += 1;
                    }
                    payload[count_at..count_at + 4].copy_from_slice(&emitted.to_le_bytes());
                    payload.push(u8::from(truncated));
                }
                Err(e) => {
                    c.store_errors.fetch_add(1, Ordering::Relaxed);
                    payload.push(status_of_store(&e));
                }
            }
        }
        Request::Flush => {
            c.flushes.fetch_add(1, Ordering::Relaxed);
            match kv.flush() {
                Ok(()) => payload.push(STATUS_OK),
                Err(e) => {
                    c.store_errors.fetch_add(1, Ordering::Relaxed);
                    payload.push(status_of_store(&e));
                }
            }
        }
        Request::Stats => {
            c.stats_calls.fetch_add(1, Ordering::Relaxed);
            let json = stats_json(shared);
            Response::Stats(json).encode_payload(payload);
        }
    }
}

/// The STATS document (PROTOCOL.md §5.6). Fields documented in docs/OPERATIONS.md;
/// per §5.6 the schema may grow without a protocol version bump.
#[derive(Serialize)]
struct StatsDoc {
    server: ServerSection,
    kv: KvSection,
    store: StoreSection,
}

#[derive(Serialize)]
struct ServerSection {
    threads: usize,
    connections_accepted: u64,
    connections_closed: u64,
    gets: u64,
    puts: u64,
    deletes: u64,
    scans: u64,
    flushes: u64,
    stats_calls: u64,
    frame_errors: u64,
    protocol_errors: u64,
    store_errors: u64,
    write_errors: u64,
    replies: u64,
    socket_flushes: u64,
    reply_batching: f64,
}

#[derive(Serialize)]
struct KvSection {
    keys: u64,
    epoch: u64,
    puts: u64,
    gets: u64,
    deletes: u64,
    range_scans: u64,
    flush_calls: u64,
    superblock_commits: u64,
    group_commit_riders: u64,
    index_write_amplification: f64,
    pool_hit_ratio: f64,
}

#[derive(Serialize)]
struct StoreSection {
    user_pages_written: u64,
    gc_pages_written: u64,
    segments_sealed: u64,
    segments_cleaned: u64,
    cleaning_cycles: u64,
    pages_read: u64,
    device_page_reads: u64,
    sealed_segments: u64,
    writer_stall_events: u64,
}

fn stats_json(shared: &Shared) -> String {
    let c = &shared.counters;
    let kv_stats = shared.kv.stats();
    let store_stats = shared.kv.store().stats();
    let replies = c.replies.load(Ordering::Relaxed);
    let flushes = c.socket_flushes.load(Ordering::Relaxed);
    let doc = StatsDoc {
        server: ServerSection {
            threads: shared.executor.threads(),
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_closed: c.connections_closed.load(Ordering::Relaxed),
            gets: c.gets.load(Ordering::Relaxed),
            puts: c.puts.load(Ordering::Relaxed),
            deletes: c.deletes.load(Ordering::Relaxed),
            scans: c.scans.load(Ordering::Relaxed),
            flushes: c.flushes.load(Ordering::Relaxed),
            stats_calls: c.stats_calls.load(Ordering::Relaxed),
            frame_errors: c.frame_errors.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            store_errors: c.store_errors.load(Ordering::Relaxed),
            write_errors: c.write_errors.load(Ordering::Relaxed),
            replies,
            socket_flushes: flushes,
            reply_batching: if flushes == 0 {
                0.0
            } else {
                replies as f64 / flushes as f64
            },
        },
        kv: KvSection {
            keys: kv_stats.keys,
            epoch: kv_stats.epoch,
            puts: kv_stats.puts,
            gets: kv_stats.gets,
            deletes: kv_stats.deletes,
            range_scans: kv_stats.range_scans,
            flush_calls: kv_stats.flush_calls,
            superblock_commits: kv_stats.superblock_commits,
            group_commit_riders: kv_stats.group_commit_riders,
            index_write_amplification: kv_stats.index_write_amplification(),
            pool_hit_ratio: kv_stats.pool.hit_ratio(),
        },
        store: StoreSection {
            user_pages_written: store_stats.user_pages_written,
            gc_pages_written: store_stats.gc_pages_written,
            segments_sealed: store_stats.segments_sealed,
            segments_cleaned: store_stats.segments_cleaned,
            cleaning_cycles: store_stats.cleaning_cycles,
            pages_read: store_stats.pages_read,
            device_page_reads: store_stats.device_page_reads,
            sealed_segments: store_stats.sealed_segments,
            writer_stall_events: store_stats.writer_stall_events,
        },
    };
    serde_json::to_string(&doc).unwrap_or_else(|_| "{}".into())
}
