//! `lss-server` — the operator binary. Opens (or creates) a store on a file-backed
//! device and serves it over TCP until killed. Full operator guide, knob table and
//! tuning cookbook: **docs/OPERATIONS.md**.
//!
//! ```text
//! lss-server [--addr HOST:PORT] [--device PATH | --mem] [--segments N]
//!            [--segment-bytes N] [--threads N] [--group-commit-us N]
//! ```
//!
//! Durability contract: every write the server has OK-acked as durable is covered
//! by a committed index epoch (PROTOCOL.md §5.2), so killing the process — even
//! with SIGKILL — never loses an acked write; restart with the same `--device`
//! arguments to recover.

use lss_btree::kv::{KvOptions, KvStore};
use lss_core::device::{FileDevice, MemDevice, SegmentDevice};
use lss_core::{LogStore, StoreConfig};
use lss_server::{Server, ServerConfig};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    addr: String,
    device: Option<String>,
    segments: usize,
    segment_bytes: usize,
    threads: usize,
    group_commit_us: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        device: None,
        segments: 1024,
        segment_bytes: 2 << 20,
        threads: 0,
        group_commit_us: 200,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--device" => args.device = Some(value("--device")?),
            "--mem" => args.device = None,
            "--segments" => {
                args.segments = value("--segments")?.parse().map_err(|e| format!("{e}"))?
            }
            "--segment-bytes" => {
                args.segment_bytes = value("--segment-bytes")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?
            }
            "--group-commit-us" => {
                args.group_commit_us = value("--group-commit-us")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: lss-server [--addr HOST:PORT] [--device PATH | --mem] \
                     [--segments N] [--segment-bytes N] [--threads N] [--group-commit-us N]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Store knobs come from the environment (LSS_WRITE_STREAMS & co — the complete
    // inventory is the docs/OPERATIONS.md environment table).
    let mut config = StoreConfig::paper_default()
        .with_num_segments(args.segments)
        .with_env_overrides();
    config.segment_bytes = args.segment_bytes;
    // An existing device file is *recovered* (scan + replay); a fresh file or the
    // in-memory device opens empty.
    let open = |device: Box<dyn SegmentDevice>, fresh: bool| {
        if fresh {
            LogStore::open_with_device(config.clone(), device)
        } else {
            LogStore::recover_with_device(config.clone(), device)
        }
    };
    let store = match &args.device {
        None => open(
            Box::new(MemDevice::new(args.segment_bytes, args.segments)),
            true,
        ),
        Some(path) => {
            let exists = Path::new(path).exists();
            let device = if exists {
                FileDevice::open(path, args.segment_bytes, args.segments)
            } else {
                FileDevice::create(path, args.segment_bytes, args.segments)
            };
            match device {
                Ok(dev) => open(Box::new(dev), !exists),
                Err(e) => {
                    eprintln!("lss-server: cannot open device {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let store = match store {
        Ok(store) => store,
        Err(e) => {
            eprintln!("lss-server: store recovery failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kv_opts = KvOptions {
        group_commit_window_us: args.group_commit_us,
        ..KvOptions::default()
    };
    let kv = match KvStore::open_with(store, kv_opts) {
        Ok(kv) => Arc::new(kv),
        Err(e) => {
            eprintln!("lss-server: KV layer failed to open: {e}");
            return ExitCode::FAILURE;
        }
    };

    let server_config = ServerConfig {
        server_threads: args.threads,
        ..ServerConfig::default()
    }
    .with_env_overrides();
    let threads = server_config.effective_threads();
    let server = match Server::start(kv, args.addr.as_str(), server_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("lss-server: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "lss-server listening on {} ({} worker threads, group-commit window {} us, {})",
        server.local_addr(),
        threads,
        args.group_commit_us,
        match &args.device {
            Some(path) => format!("device {path}"),
            None => "in-memory device (data is lost on exit)".into(),
        },
    );

    // Serve until killed: acked writes are durable at every instant (see above),
    // so there is no shutdown ceremony an operator must wait for.
    loop {
        std::thread::park();
    }
}
