//! The server's pluggable request-execution seam.
//!
//! Decoded requests are handed to an [`Executor`] as opaque jobs; the executor owns
//! *where and when* they run, the connection layer owns the sockets. The first (and
//! default) implementation is [`SharedQueueExecutor`] — one global FIFO drained by a
//! fixed pool of `server_threads` workers, the classic shared-queue thread pool. A
//! sharded event loop is the planned follow-up behind this same trait (see
//! docs/ARCHITECTURE.md, "The network front-end").

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of work: execute one decoded request and write its reply.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Where decoded requests run. Implementations must be safe to call from any
/// connection reader thread concurrently.
pub trait Executor: Send + Sync {
    /// Enqueue a job. Returns `false` (dropping the job) iff the executor is
    /// shutting down — the caller replies `ERR_SHUTTING_DOWN` (PROTOCOL.md §6).
    fn submit(&self, job: Job) -> bool;

    /// Stop accepting work, abandon anything still queued (its connections are
    /// being closed anyway — PROTOCOL.md §8 makes unacked fates unknown), finish
    /// jobs already running, and join the workers. Idempotent.
    fn shutdown(&self);

    /// Pool width, for STATS reporting.
    fn threads(&self) -> usize;
}

struct QueueInner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutting_down: AtomicBool,
}

/// The shared-queue thread pool: N workers blocked on one condvar'd FIFO. Simple,
/// fair under skew (any worker takes the oldest request regardless of connection),
/// and sufficient to saturate the store's write streams from many sockets; its
/// known cost — every dispatch crosses one queue lock — is what the sharded event
/// loop follow-up will remove.
pub struct SharedQueueExecutor {
    inner: Arc<QueueInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl SharedQueueExecutor {
    /// Spawn a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(QueueInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutting_down: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("lss-server-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn server worker")
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(workers),
            threads,
        }
    }
}

fn worker_loop(inner: &QueueInner) {
    loop {
        let job = {
            let mut q = inner.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if inner.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                inner.available.wait(&mut q);
            }
        };
        job();
    }
}

impl Executor for SharedQueueExecutor {
    fn submit(&self, job: Job) -> bool {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return false;
        }
        let mut q = self.inner.queue.lock();
        // Re-check under the lock so a job can never land behind shutdown's sweep.
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return false;
        }
        q.push_back(job);
        drop(q);
        self.inner.available.notify_one();
        true
    }

    fn shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::Release);
        self.inner.queue.lock().clear();
        self.inner.available.notify_all();
        let mut workers = self.workers.lock();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for SharedQueueExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = SharedQueueExecutor::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..256 {
            let done = Arc::clone(&done);
            assert!(pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })));
        }
        pool.shutdown();
        // shutdown may abandon queued jobs, but everything not abandoned ran to
        // completion; submit-after-shutdown must be refused.
        assert!(!pool.submit(Box::new(|| {})));
        assert!(done.load(Ordering::SeqCst) <= 256);
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let pool = SharedQueueExecutor::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        pool.shutdown();
    }
}
