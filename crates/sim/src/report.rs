//! Simulation results: the numbers the paper's tables and figures report, in a form the
//! bench harness can print and serialise.

use crate::simulator::SimConfig;
use lss_core::stats::StoreStats;
use serde::{Deserialize, Serialize};

/// Summary of one simulation run (one point on one of the paper's figures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy name as the paper prints it (e.g. "MDC-opt").
    pub policy: String,
    /// Workload name (e.g. "zipfian-0.99", "hotcold-80:20", "tpcc").
    pub workload: String,
    /// Fill factor `F` of the run.
    pub fill_factor: f64,
    /// Number of user page writes measured (after warm-up).
    pub measured_writes: u64,
    /// Write amplification: GC page writes per user page write.
    pub write_amplification: f64,
    /// Mean segment emptiness `E` observed at cleaning time.
    pub mean_emptiness_at_clean: f64,
    /// Pages per segment used in the run.
    pub pages_per_segment: usize,
    /// Physical segments in the simulated store.
    pub num_segments: usize,
    /// Full counter set, for deeper analysis.
    pub stats: StoreStats,
}

impl SimResult {
    /// Build a result record from a finished run.
    pub fn from_run(
        config: &SimConfig,
        workload: String,
        stats: &StoreStats,
        measured_writes: u64,
    ) -> Self {
        Self {
            policy: config.policy.paper_name().to_string(),
            workload,
            fill_factor: config.fill_factor,
            measured_writes,
            write_amplification: stats.write_amplification(),
            mean_emptiness_at_clean: stats.mean_emptiness_at_clean(),
            pages_per_segment: config.pages_per_segment,
            num_segments: config.num_segments,
            stats: stats.clone(),
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<18} {:<16} F={:.2}  Wamp={:.3}  E_clean={:.3}  (writes={}, cleanings={})",
            self.policy,
            self.workload,
            self.fill_factor,
            self.write_amplification,
            self.mean_emptiness_at_clean,
            self.measured_writes,
            self.stats.cleaning_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::policy::PolicyKind;

    #[test]
    fn from_run_copies_the_relevant_numbers() {
        let config = SimConfig::small_for_tests(PolicyKind::Mdc).with_fill_factor(0.8);
        let stats = StoreStats {
            user_pages_written: 100,
            gc_pages_written: 50,
            segments_cleaned: 4,
            emptiness_sum_at_clean: 2.0,
            ..Default::default()
        };
        let r = SimResult::from_run(&config, "uniform".into(), &stats, 100);
        assert_eq!(r.policy, "MDC");
        assert!((r.write_amplification - 0.5).abs() < 1e-12);
        assert!((r.mean_emptiness_at_clean - 0.5).abs() < 1e-12);
        assert!(r.summary().contains("MDC"));
        assert!(r.summary().contains("F=0.80"));
    }

    #[test]
    fn result_roundtrips_through_serde() {
        let config = SimConfig::small_for_tests(PolicyKind::Greedy);
        let r = SimResult::from_run(&config, "w".into(), &StoreStats::default(), 0);
        let json = serde_json::to_string(&r).unwrap();
        let back: SimResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
