//! The simulator proper: segment bookkeeping, the write path with its sort buffer, and
//! the cleaning loop — identical in structure to `lss_core::store::LogStore` but tracking
//! page identities only, so tens of millions of page writes per second are possible.

use crate::report::SimResult;
use lss_core::config::{CleaningConfig, SeparationConfig, Up2Mode};
use lss_core::freq::{
    carry_forward_gc, carry_forward_rewrite, classify_heat, first_write_up2, PageHeat, Up2Average,
    MAX_TEMPERATURE_CLASSES, TEMPERATURE_UNCLASSIFIED,
};
use lss_core::policy::{
    CleaningPolicy, PolicyContext, PolicyKind, SegmentStats, MULTILOG_MAX_LOGS,
};
use lss_core::segment::SegmentTable;
use lss_core::stats::StoreStats;
use lss_core::types::{PageId, PageWriteInfo, SegmentId, UpdateTick, WriteOrigin};
use lss_core::util::FxHashMap;
use lss_workload::PageWorkload;
use serde::{Deserialize, Serialize};

/// Simulation parameters. Geometry is expressed in pages (the simulator never touches
/// payload bytes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Pages per segment (`S`; the paper uses 512 = 2 MiB / 4 KiB).
    pub pages_per_segment: usize,
    /// Number of physical segments.
    pub num_segments: usize,
    /// Fill factor `F`: fraction of physical page frames occupied by live pages.
    pub fill_factor: f64,
    /// Cleaning policy under test.
    pub policy: PolicyKind,
    /// Which write streams are grouped by update frequency.
    pub separation: SeparationConfig,
    /// User-write sort buffer size in segments (paper Figure 4; 16 by default).
    pub sort_buffer_segments: usize,
    /// Cleaning trigger and batch size (paper: trigger 32 free, clean 64 per cycle).
    pub cleaning: CleaningConfig,
    /// How per-segment `up2` estimates are maintained.
    pub up2_mode: Up2Mode,
    /// Supply exact per-page update frequencies to the policy (required by the `-opt`
    /// oracle variants; harmless otherwise). `None` = derive from the policy.
    pub use_exact_frequencies: Option<bool>,
    /// Temperature classes for GC output (mirrors
    /// [`lss_core::StoreConfig::gc_temperature_classes`]): survivors are routed into
    /// per-class output streams by decayed heat, and segments filled with the coldest
    /// class tolerate a higher dead fraction before becoming policy victims. `1`
    /// reproduces the classic undifferentiated GC output exactly.
    pub gc_temperature_classes: usize,
    /// Seed recorded in results for reproducibility (the workload carries its own RNG).
    pub seed: u64,
}

impl SimConfig {
    /// The paper's simulation parameters with a laptop-friendly store size
    /// (1024 segments ≈ 2 GiB simulated).
    pub fn paper_default(policy: PolicyKind) -> Self {
        Self {
            pages_per_segment: 512,
            num_segments: 1024,
            fill_factor: 0.8,
            policy,
            separation: SeparationConfig::default(),
            sort_buffer_segments: 16,
            cleaning: CleaningConfig::default(),
            up2_mode: Up2Mode::default(),
            use_exact_frequencies: None,
            gc_temperature_classes: 1,
            seed: 42,
        }
    }

    /// A tiny geometry for unit tests (64 segments of 64 pages).
    pub fn small_for_tests(policy: PolicyKind) -> Self {
        Self {
            pages_per_segment: 64,
            num_segments: 64,
            fill_factor: 0.8,
            policy,
            separation: SeparationConfig::default(),
            sort_buffer_segments: 4,
            cleaning: CleaningConfig {
                trigger_free_segments: 4,
                segments_per_cycle: 8,
                reserved_free_segments: 2,
                ..CleaningConfig::default()
            },
            up2_mode: Up2Mode::default(),
            use_exact_frequencies: None,
            gc_temperature_classes: 1,
            seed: 7,
        }
    }

    /// Builder-style: set the fill factor.
    pub fn with_fill_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f < 1.0, "fill factor must be in (0, 1)");
        self.fill_factor = f;
        self
    }

    /// Builder-style: set the policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style: set the separation configuration.
    pub fn with_separation(mut self, sep: SeparationConfig) -> Self {
        self.separation = sep;
        self
    }

    /// Builder-style: set the sort-buffer size in segments.
    pub fn with_sort_buffer_segments(mut self, n: usize) -> Self {
        self.sort_buffer_segments = n;
        self
    }

    /// Builder-style: set the number of physical segments.
    pub fn with_num_segments(mut self, n: usize) -> Self {
        self.num_segments = n;
        self
    }

    /// Builder-style: set the number of GC output temperature classes (clamped to
    /// `1..=MAX_TEMPERATURE_CLASSES`).
    pub fn with_gc_temperature_classes(mut self, n: usize) -> Self {
        self.gc_temperature_classes = n.clamp(1, MAX_TEMPERATURE_CLASSES);
        self
    }

    /// Total physical page frames.
    pub fn physical_pages(&self) -> u64 {
        (self.pages_per_segment * self.num_segments) as u64
    }

    /// Number of distinct logical pages implied by the fill factor.
    pub fn logical_pages(&self) -> u64 {
        (self.physical_pages() as f64 * self.fill_factor).floor() as u64
    }

    fn exact_frequencies(&self) -> bool {
        self.use_exact_frequencies
            .unwrap_or_else(|| self.policy.needs_exact_frequencies())
    }
}

const NO_LOCATION: (u32, u32) = (u32::MAX, u32::MAX);

/// Bump a per-temperature-class counter, widening the vector on demand and clamping
/// out-of-range classes into the last slot (mirrors `AtomicStats::add_class_page`).
fn bump_class(vec: &mut Vec<u64>, class: u16) {
    let slot = (class as usize).min(MAX_TEMPERATURE_CLASSES - 1);
    if vec.len() <= slot {
        vec.resize(slot + 1, 0);
    }
    vec[slot] += 1;
}

/// The simulator state.
pub struct Simulator {
    config: SimConfig,
    policy: Box<dyn CleaningPolicy>,
    /// Current location of each logical page: (segment index, slot index).
    page_loc: Vec<(u32, u32)>,
    /// Pages appended to each segment, in slot order (includes dead copies).
    slots: Vec<Vec<PageId>>,
    /// Shared segment bookkeeping (free list, seal sequences, per-segment A/C/up2).
    table: SegmentTable,
    /// Open output segment per (origin, log) stream.
    open: FxHashMap<(WriteOrigin, u16), OpenStream>,
    /// Pending user writes awaiting the sort buffer to fill.
    buffer: Vec<PageWriteInfo>,
    /// Exact per-page update frequencies, if the policy wants them.
    exact_freq: Option<Vec<f64>>,
    /// Decayed per-page write-heat sketch feeding GC temperature classification.
    heat: PageHeat,
    unow: UpdateTick,
    stats: StoreStats,
    cleaning: bool,
}

struct OpenStream {
    id: SegmentId,
    up2_avg: Up2Average,
}

/// One GC survivor in flight: the rewrite plus the temperature context needed to route
/// it and account promotions/demotions against the victim it came out of.
struct GcMove {
    info: PageWriteInfo,
    victim_temp: u16,
    class: u16,
}

impl Simulator {
    /// Create a simulator and pre-fill it to the configured fill factor by writing every
    /// logical page once (sequentially, as an initial load).
    pub fn new(config: SimConfig, workload: &dyn PageWorkload) -> Self {
        assert!(
            workload.num_pages() <= config.logical_pages().max(1),
            "workload addresses {} pages but the configuration only provides {} logical pages \
             (raise num_segments or fill_factor)",
            workload.num_pages(),
            config.logical_pages()
        );
        let logical = workload.num_pages();
        let exact_freq = if config.exact_frequencies() {
            Some(
                (0..logical)
                    .map(|p| workload.update_frequency(p).unwrap_or(1.0))
                    .collect(),
            )
        } else {
            None
        };
        let mut sim = Self {
            policy: config.policy.build(),
            page_loc: vec![NO_LOCATION; logical as usize],
            slots: vec![Vec::new(); config.num_segments],
            table: SegmentTable::new(config.num_segments),
            open: FxHashMap::default(),
            buffer: Vec::new(),
            exact_freq,
            heat: PageHeat::for_physical_pages(config.physical_pages() as usize),
            unow: 0,
            stats: StoreStats::default(),
            cleaning: false,
            config,
        };
        // Initial load: every page written once. This fills the store to the fill factor
        // before the measured run begins.
        for page in 0..logical {
            sim.user_write(page);
        }
        sim.drain_buffer();
        sim.stats.reset();
        sim
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Reset statistics (e.g. after a warm-up period).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Current update-count clock.
    pub fn unow(&self) -> UpdateTick {
        self.unow
    }

    /// Number of free segments.
    pub fn free_segments(&self) -> usize {
        self.table.free_count()
    }

    /// Number of live pages (equals the workload's page count once loaded).
    pub fn live_pages(&self) -> u64 {
        self.page_loc.iter().filter(|&&l| l != NO_LOCATION).count() as u64
    }

    /// Apply one user page write.
    pub fn user_write(&mut self, page: PageId) {
        debug_assert!(
            (page as usize) < self.page_loc.len(),
            "page {page} out of range"
        );
        self.unow += 1;
        self.stats.user_pages_written += 1;
        self.stats.user_bytes_written += 1;
        self.heat.record(page);
        let info = PageWriteInfo {
            page,
            size: 1,
            up2: 0,
            exact_freq: self.exact_freq.as_ref().map(|f| f[page as usize]),
            origin: WriteOrigin::User,
        };
        self.buffer.push(info);
        let capacity = self.config.sort_buffer_segments * self.config.pages_per_segment;
        if self.config.sort_buffer_segments == 0 || self.buffer.len() >= capacity {
            self.drain_buffer();
        }
    }

    /// Run `n` writes drawn from a workload.
    pub fn run_writes(&mut self, workload: &mut dyn PageWorkload, n: u64) {
        for _ in 0..n {
            let page = workload.next_page();
            self.user_write(page);
        }
    }

    fn drain_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.buffer);

        // Resolve carried up2 values (paper §5.2.2).
        let mut coldest: Option<UpdateTick> = None;
        for info in batch.iter_mut() {
            let loc = self.page_loc[info.page as usize];
            if loc != NO_LOCATION {
                let old_up2 = self
                    .table
                    .meta(SegmentId(loc.0))
                    .map(|m| m.freq.up2())
                    .unwrap_or_default();
                info.up2 = carry_forward_rewrite(old_up2, self.unow);
                coldest = Some(match coldest {
                    Some(c) => c.min(info.up2),
                    None => info.up2,
                });
            } else {
                info.up2 = UpdateTick::MAX; // sentinel: first write, resolved below
            }
        }
        let cold = first_write_up2(coldest);
        for info in batch.iter_mut() {
            if info.up2 == UpdateTick::MAX {
                info.up2 = cold;
            }
        }

        if self.config.separation.separate_user_writes {
            let policy = self.policy.as_ref();
            Self::sort_by_separation(policy, &mut batch, |i| i);
        }
        for info in batch {
            self.append(info, 0);
        }
    }

    fn sort_by_separation<T>(
        policy: &dyn CleaningPolicy,
        batch: &mut [T],
        info: impl Fn(&T) -> &PageWriteInfo,
    ) {
        batch.sort_by(|a, b| {
            let ka = policy.separation_key(info(a));
            let kb = policy.separation_key(info(b));
            match (ka, kb) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            }
        });
    }

    fn append(&mut self, info: PageWriteInfo, class: u16) {
        let log = if self.policy.num_logs() > 1 {
            let ctx = PolicyContext {
                unow: self.unow,
                segments: &[],
            };
            self.policy.log_for_page(&info, &ctx)
        } else {
            0
        };
        // The stream key folds the temperature class in front of the policy log so each
        // class fills its own segments; with one class this is exactly the old (origin,
        // log) keying.
        let key = (info.origin, class * MULTILOG_MAX_LOGS as u16 + log);
        let seg_id = self.ensure_open(key, log, class);

        // Place the page.
        let slot = self.slots[seg_id.index()].len() as u32;
        self.slots[seg_id.index()].push(info.page);
        if let Some(meta) = self.table.meta_mut(seg_id) {
            meta.on_page_added(1, info.exact_freq);
        }
        if let Some(stream) = self.open.get_mut(&key) {
            stream.up2_avg.add(info.up2);
        }

        // Invalidate the previous copy (user overwrites only; GC moves always come out of
        // victims that have already been released).
        let old = std::mem::replace(&mut self.page_loc[info.page as usize], (seg_id.0, slot));
        if info.origin == WriteOrigin::User && old != NO_LOCATION {
            if let Some(meta) = self.table.meta_mut(SegmentId(old.0)) {
                meta.on_page_dead(1, self.unow, info.exact_freq);
            }
        }

        // Seal the segment once it is full.
        if self.slots[seg_id.index()].len() >= self.config.pages_per_segment {
            if let Some(stream) = self.open.remove(&key) {
                self.seal(stream);
            }
        }
    }

    fn ensure_open(&mut self, key: (WriteOrigin, u16), log: u16, class: u16) -> SegmentId {
        if let Some(stream) = self.open.get(&key) {
            return stream.id;
        }
        // Allocate with the pure policy log (multi-log victim selection keys off log_id);
        // the temperature class only tags the segment metadata.
        let id = self.allocate(key.0, log);
        if key.0 == WriteOrigin::Gc && self.config.gc_temperature_classes > 1 {
            if let Some(meta) = self.table.meta_mut(id) {
                meta.temperature = class;
            }
        }
        self.open.insert(
            key,
            OpenStream {
                id,
                up2_avg: Up2Average::new(),
            },
        );
        id
    }

    /// The free-segment level below which cleaning is triggered. The configured value
    /// (32 in the paper) is raised when the policy keeps many open output segments
    /// (multi-log), so that partially-filled open segments never starve allocation.
    fn effective_trigger(&self) -> usize {
        self.config
            .cleaning
            .trigger_free_segments
            .max(self.open.len() + 4)
    }

    fn allocate(&mut self, origin: WriteOrigin, log: u16) -> SegmentId {
        if origin == WriteOrigin::User
            && !self.cleaning
            && self.table.free_count() <= self.effective_trigger()
        {
            self.clean_until_headroom();
        }
        let capacity = self.config.pages_per_segment as u64;
        if let Some(id) = self.table.allocate(capacity, log, self.config.up2_mode) {
            self.slots[id.index()].clear();
            return id;
        }
        // Last resort for user allocations under extreme pressure: clean again and retry
        // once before giving up.
        if origin == WriteOrigin::User && !self.cleaning {
            self.clean_until_headroom();
            if let Some(id) = self.table.allocate(capacity, log, self.config.up2_mode) {
                self.slots[id.index()].clear();
                return id;
            }
        }
        panic!(
            "simulator ran out of free segments (policy {}, fill factor {}); \
             the configuration over-commits the store",
            self.policy.name(),
            self.config.fill_factor
        )
    }

    /// Run cleaning cycles until the free pool is back above the trigger, falling back to
    /// an emergency greedy pass when the configured policy makes no net progress (a
    /// selective policy such as multi-log can pick victims that reclaim less than its own
    /// GC output consumes; real systems escalate to a space-driven GC in that corner).
    fn clean_until_headroom(&mut self) {
        let target = self.effective_trigger();
        for _ in 0..128 {
            if self.table.free_count() > target {
                return;
            }
            let before = self.table.free_count();
            self.clean_cycle();
            if self.table.free_count() <= before {
                self.emergency_greedy_clean();
                if self.table.free_count() <= before {
                    return; // nothing reclaimable at all
                }
            }
        }
    }

    /// One cleaning pass with victims chosen globally by emptiness, regardless of the
    /// configured policy. The cold-victim filter is bypassed too — space pressure must
    /// always be able to reclaim the emptiest segment, cold or not (the store's
    /// `ForceGreedy` mode behaves the same way).
    fn emergency_greedy_clean(&mut self) {
        let mut greedy: Box<dyn CleaningPolicy> = Box::new(lss_core::policy::GreedyPolicy::new());
        std::mem::swap(&mut self.policy, &mut greedy);
        self.clean_cycle_guarded(false);
        std::mem::swap(&mut self.policy, &mut greedy);
    }

    fn seal(&mut self, stream: OpenStream) {
        let carried = stream.up2_avg.mean_or(self.unow);
        self.table
            .seal(stream.id, self.unow, carried, self.config.up2_mode);
        self.stats.segments_sealed += 1;
    }

    /// Run one cleaning cycle (also callable directly by experiments).
    pub fn clean_cycle(&mut self) {
        self.clean_cycle_guarded(true);
    }

    fn clean_cycle_guarded(&mut self, filtered: bool) {
        if self.cleaning {
            return;
        }
        self.cleaning = true;
        self.clean_cycle_inner(filtered);
        self.cleaning = false;
    }

    fn select_victims_filtered(&mut self, batch: usize, filtered: bool) -> Vec<SegmentId> {
        let sealed = self.table.sealed_stats();
        let threshold = self.config.cleaning.cold_victim_min_emptiness;
        let use_filter = filtered && self.config.gc_temperature_classes > 1 && threshold > 0.0;
        // Cold-filled segments tolerate a higher dead fraction before becoming policy
        // victims: their pages barely die, so cleaning them early is almost pure
        // copying. The bar is relative to the emptiest sealed segment (see
        // `CleaningConfig::cold_victim_min_emptiness`) so cold segments ripen at every
        // fill factor instead of being starved out at high fill.
        let kept: Vec<SegmentStats> = if use_filter {
            let max_emptiness = sealed.iter().map(|s| s.emptiness()).fold(0.0f64, f64::max);
            let bar = threshold * max_emptiness;
            sealed
                .iter()
                .filter(|s| s.temperature != 0 || s.emptiness() >= bar)
                .copied()
                .collect()
        } else {
            Vec::new()
        };
        let filtering = use_filter && kept.len() < sealed.len();
        let mut victims = if filtering {
            let ctx = PolicyContext {
                unow: self.unow,
                segments: &kept,
            };
            self.policy.select_victims(&ctx, batch)
        } else {
            let ctx = PolicyContext {
                unow: self.unow,
                segments: &sealed,
            };
            self.policy.select_victims(&ctx, batch)
        };
        if victims.is_empty() && filtering {
            let ctx = PolicyContext {
                unow: self.unow,
                segments: &sealed,
            };
            victims = self.policy.select_victims(&ctx, batch);
        }
        victims
    }

    fn clean_cycle_inner(&mut self, filtered: bool) {
        self.stats.cleaning_cycles += 1;
        let batch = self
            .policy
            .preferred_batch()
            .unwrap_or(self.config.cleaning.segments_per_cycle)
            .max(1);
        let victims = self.select_victims_filtered(batch, filtered);
        if victims.is_empty() {
            return;
        }

        let mut gc_batch: Vec<GcMove> = Vec::new();
        for &victim in &victims {
            let (emptiness, up2, victim_temp) = {
                let meta = self.table.meta(victim).expect("victim must hold data");
                (meta.emptiness(), meta.freq.up2(), meta.temperature)
            };
            self.stats.segments_cleaned += 1;
            self.stats.emptiness_sum_at_clean += emptiness;
            let pages = std::mem::take(&mut self.slots[victim.index()]);
            for (slot, page) in pages.iter().enumerate() {
                if self.page_loc[*page as usize] == (victim.0, slot as u32) {
                    gc_batch.push(GcMove {
                        info: PageWriteInfo {
                            page: *page,
                            size: 1,
                            up2: carry_forward_gc(up2),
                            exact_freq: self.exact_freq.as_ref().map(|f| f[*page as usize]),
                            origin: WriteOrigin::Gc,
                        },
                        victim_temp,
                        class: 0,
                    });
                }
            }
            self.table.release(victim);
        }

        let classes = self.config.gc_temperature_classes as u16;
        if classes > 1 {
            let heats: Vec<u64> = gc_batch
                .iter()
                .map(|m| self.heat.heat(m.info.page))
                .collect();
            for (m, class) in gc_batch.iter_mut().zip(classify_heat(&heats, classes)) {
                m.class = class;
            }
        }
        if self.config.separation.separate_gc_writes {
            let policy = self.policy.as_ref();
            Self::sort_by_separation(policy, &mut gc_batch, |m| &m.info);
        }
        if classes > 1 {
            // Stable, so the separation order is preserved within each class.
            gc_batch.sort_by_key(|m| m.class);
        }
        for m in gc_batch {
            self.stats.gc_pages_written += 1;
            self.stats.gc_bytes_written += 1;
            bump_class(&mut self.stats.gc_class_pages_written, m.class);
            bump_class(&mut self.stats.gc_class_bytes_written, m.class);
            if classes > 1 && m.victim_temp != TEMPERATURE_UNCLASSIFIED {
                if m.class > m.victim_temp {
                    self.stats.gc_class_promotions += 1;
                } else if m.class < m.victim_temp {
                    self.stats.gc_class_demotions += 1;
                }
            }
            self.append(m.info, m.class);
        }
        if classes > 1 {
            self.stats.gc_class_segments = self
                .table
                .sealed_counts_by_temperature(self.config.gc_temperature_classes);
        }
    }

    /// Consistency check used by tests: every live page's recorded location actually
    /// holds it, and per-segment live counters agree with the page table.
    pub fn verify_consistency(&self) -> Result<(), String> {
        let mut live_per_segment = vec![0u64; self.config.num_segments];
        for (page, &(seg, slot)) in self.page_loc.iter().enumerate() {
            if (seg, slot) == NO_LOCATION {
                continue;
            }
            let slots = &self.slots[seg as usize];
            if slot as usize >= slots.len() || slots[slot as usize] != page as u64 {
                return Err(format!(
                    "page {page} location ({seg},{slot}) does not hold it"
                ));
            }
            live_per_segment[seg as usize] += 1;
        }
        for meta in self.table.iter_meta() {
            let expected = live_per_segment[meta.id.index()];
            if meta.live_pages != expected {
                return Err(format!(
                    "{} live counter {} disagrees with page table {expected}",
                    meta.id, meta.live_pages
                ));
            }
        }
        Ok(())
    }
}

/// Run a complete simulation: build the simulator (which performs the initial load),
/// apply `total_writes` user writes from the workload, resetting statistics after
/// `warmup_writes`, and summarise the measured remainder.
pub fn run_simulation(
    config: &SimConfig,
    workload: &mut dyn PageWorkload,
    total_writes: u64,
    warmup_writes: u64,
) -> SimResult {
    assert!(
        warmup_writes < total_writes,
        "warm-up must be shorter than the total run"
    );
    let mut sim = Simulator::new(config.clone(), workload);
    sim.run_writes(workload, warmup_writes);
    sim.reset_stats();
    sim.run_writes(workload, total_writes - warmup_writes);
    SimResult::from_run(
        config,
        workload.name(),
        sim.stats(),
        total_writes - warmup_writes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_analysis::table1::uniform_emptiness;
    use lss_analysis::write_amplification;
    use lss_workload::{
        HotColdWorkload, TraceWorkload, UniformWorkload, WriteTrace, ZipfianWorkload,
    };

    fn measure(policy: PolicyKind, fill: f64, workload: &mut dyn PageWorkload) -> SimResult {
        let config = SimConfig::small_for_tests(policy).with_fill_factor(fill);
        let writes = config.physical_pages() * 20;
        run_simulation(&config, workload, writes, writes / 4)
    }

    #[test]
    fn load_phase_fills_to_the_fill_factor_without_cleaning() {
        let config = SimConfig::small_for_tests(PolicyKind::Greedy).with_fill_factor(0.7);
        let workload = UniformWorkload::new(config.logical_pages(), 1);
        let sim = Simulator::new(config.clone(), &workload);
        assert_eq!(sim.live_pages(), config.logical_pages());
        assert_eq!(
            sim.stats().cleaning_cycles,
            0,
            "sequential load must not need cleaning"
        );
        sim.verify_consistency().unwrap();
    }

    #[test]
    fn uniform_greedy_matches_the_age_based_analysis() {
        // Paper §8.1: under a uniform distribution the simulated emptiness at cleaning
        // matches the Table 1 fixpoint, and greedy == age == optimal. The agreement
        // requires the cleaning batch to be small relative to the store (the paper cleans
        // 64 of 51 200 segments), so this test uses a roomier geometry than the others.
        for fill in [0.5, 0.8] {
            let mut config = SimConfig::small_for_tests(PolicyKind::Greedy)
                .with_num_segments(256)
                .with_fill_factor(fill);
            config.cleaning.trigger_free_segments = 8;
            config.cleaning.segments_per_cycle = 4;
            let mut w = UniformWorkload::new(config.logical_pages(), 11);
            let writes = config.physical_pages() * 12;
            let r = run_simulation(&config, &mut w, writes, writes / 4);
            let expected_e = uniform_emptiness(fill);
            let expected_wamp = write_amplification(expected_e);
            assert!(
                (r.mean_emptiness_at_clean - expected_e).abs() < 0.06,
                "F={fill}: simulated E {} vs analysis {expected_e}",
                r.mean_emptiness_at_clean
            );
            assert!(
                (r.write_amplification - expected_wamp).abs() / expected_wamp < 0.30,
                "F={fill}: simulated Wamp {} vs analysis {expected_wamp}",
                r.write_amplification
            );
        }
    }

    #[test]
    fn mdc_matches_greedy_under_uniform_updates() {
        // Paper §4.5: for a uniform distribution Priority[MDC] orders segments exactly
        // like Priority[greedy], so their write amplification must be very close.
        let fill = 0.8;
        let pages = SimConfig::small_for_tests(PolicyKind::Greedy)
            .with_fill_factor(fill)
            .logical_pages();
        let mut w1 = UniformWorkload::new(pages, 5);
        let greedy = measure(PolicyKind::Greedy, fill, &mut w1);
        let mut w2 = UniformWorkload::new(pages, 5);
        let mdc = measure(PolicyKind::MdcOpt, fill, &mut w2);
        let rel = (mdc.write_amplification - greedy.write_amplification).abs()
            / greedy.write_amplification.max(1e-9);
        assert!(
            rel < 0.25,
            "MDC-opt ({}) should track greedy ({}) under uniform updates",
            mdc.write_amplification,
            greedy.write_amplification
        );
    }

    #[test]
    fn skew_helps_mdc_beat_greedy() {
        // Paper Figure 3: under a skewed hot-cold distribution MDC(-opt) has lower write
        // amplification than greedy.
        let fill = 0.8;
        let pages = SimConfig::small_for_tests(PolicyKind::Greedy)
            .with_fill_factor(fill)
            .logical_pages();
        let mut wg = HotColdWorkload::new(pages, 0.1, 0.9, 3);
        let greedy = measure(PolicyKind::Greedy, fill, &mut wg);
        let mut wm = HotColdWorkload::new(pages, 0.1, 0.9, 3);
        let mdc_opt = measure(PolicyKind::MdcOpt, fill, &mut wm);
        assert!(
            mdc_opt.write_amplification < greedy.write_amplification * 0.9,
            "MDC-opt ({}) should clearly beat greedy ({}) on a 90:10 workload",
            mdc_opt.write_amplification,
            greedy.write_amplification
        );
    }

    #[test]
    fn age_suffers_under_skew() {
        // Paper Figure 5b/c: age-based cleaning ignores update frequency and produces the
        // highest write amplification under skew.
        let fill = 0.8;
        let pages = SimConfig::small_for_tests(PolicyKind::Age)
            .with_fill_factor(fill)
            .logical_pages();
        let mut wa = ZipfianWorkload::new(pages, 0.99, 9);
        let age = measure(PolicyKind::Age, fill, &mut wa);
        let mut wm = ZipfianWorkload::new(pages, 0.99, 9);
        let mdc_opt = measure(PolicyKind::MdcOpt, fill, &mut wm);
        assert!(
            mdc_opt.write_amplification < age.write_amplification,
            "MDC-opt ({}) should beat age ({}) under Zipfian skew",
            mdc_opt.write_amplification,
            age.write_amplification
        );
    }

    #[test]
    fn every_policy_preserves_all_pages_and_stays_consistent() {
        for kind in PolicyKind::ALL {
            if kind == PolicyKind::CostBenefitPaperLiteral {
                // The literal formula printed in the paper prefers full segments, reclaims
                // almost nothing per cycle, and cannot sustain this fill factor — that is
                // exactly why DESIGN.md treats it as a typo. It is exercised separately in
                // the ablation bench at a low fill factor.
                continue;
            }
            // Roomier geometry than the other tests: multi-log keeps one partially-filled
            // open segment per log, which needs slack to park in.
            let config = SimConfig::small_for_tests(kind)
                .with_num_segments(128)
                .with_fill_factor(0.6);
            let mut w = ZipfianWorkload::new(config.logical_pages(), 0.99, 1);
            let mut sim = Simulator::new(config.clone(), &w);
            sim.run_writes(&mut w, config.physical_pages() * 8);
            assert_eq!(
                sim.live_pages(),
                config.logical_pages(),
                "policy {kind} lost pages"
            );
            sim.verify_consistency()
                .unwrap_or_else(|e| panic!("policy {kind}: {e}"));
            assert!(
                sim.stats().cleaning_cycles > 0,
                "policy {kind} never cleaned"
            );
        }
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let config = SimConfig::small_for_tests(PolicyKind::Mdc).with_fill_factor(0.8);
        let run = || {
            let mut w = ZipfianWorkload::new(config.logical_pages(), 0.99, 77);
            run_simulation(&config, &mut w, 50_000, 10_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats.gc_pages_written, b.stats.gc_pages_written);
        assert_eq!(a.stats.user_pages_written, b.stats.user_pages_written);
    }

    #[test]
    fn higher_fill_factor_means_higher_write_amplification() {
        let mut results = Vec::new();
        for fill in [0.5, 0.7, 0.9] {
            let pages = SimConfig::small_for_tests(PolicyKind::Greedy)
                .with_fill_factor(fill)
                .logical_pages();
            let mut w = UniformWorkload::new(pages, 2);
            results.push(measure(PolicyKind::Greedy, fill, &mut w).write_amplification);
        }
        assert!(
            results[0] < results[1] && results[1] < results[2],
            "wamp not monotone: {results:?}"
        );
    }

    #[test]
    fn trace_replay_works_end_to_end() {
        let mut trace = WriteTrace::new();
        // A small synthetic trace with a hot range.
        for i in 0..20_000u64 {
            let page = if i % 10 < 8 { i % 50 } else { 50 + (i % 450) };
            trace.record(page);
        }
        let mut workload = TraceWorkload::with_empirical_frequencies("synthetic-trace", &trace);
        let config = SimConfig::small_for_tests(PolicyKind::Mdc).with_fill_factor(0.55);
        assert!(workload.num_pages() <= config.logical_pages());
        let result = run_simulation(&config, &mut workload, 40_000, 10_000);
        assert!(result.write_amplification.is_finite());
        assert_eq!(result.workload, "synthetic-trace");
    }

    #[test]
    #[should_panic(expected = "workload addresses")]
    fn oversized_workload_is_rejected() {
        let config = SimConfig::small_for_tests(PolicyKind::Greedy).with_fill_factor(0.5);
        let w = UniformWorkload::new(config.physical_pages() * 2, 1);
        let _ = Simulator::new(config, &w);
    }

    #[test]
    fn temperature_classes_preserve_pages_and_account_every_gc_write() {
        let config = SimConfig::small_for_tests(PolicyKind::Greedy)
            .with_num_segments(128)
            .with_fill_factor(0.7)
            .with_gc_temperature_classes(3);
        let mut w = ZipfianWorkload::new(config.logical_pages(), 0.99, 21);
        let mut sim = Simulator::new(config.clone(), &w);
        sim.run_writes(&mut w, config.physical_pages() * 8);
        assert_eq!(sim.live_pages(), config.logical_pages());
        sim.verify_consistency().unwrap();
        let stats = sim.stats();
        assert!(stats.cleaning_cycles > 0);
        let per_class: u64 = stats.gc_class_pages_written.iter().sum();
        assert_eq!(
            per_class, stats.gc_pages_written,
            "per-class GC page counts must partition the total"
        );
        assert!(
            stats.gc_class_pages_written.len() > 1,
            "a skewed workload with 3 classes must route survivors to more than one class"
        );
    }

    #[test]
    fn single_class_run_never_tags_or_reclassifies() {
        let config = SimConfig::small_for_tests(PolicyKind::Mdc).with_fill_factor(0.8);
        assert_eq!(config.gc_temperature_classes, 1);
        let mut w = ZipfianWorkload::new(config.logical_pages(), 0.99, 5);
        let mut sim = Simulator::new(config.clone(), &w);
        sim.run_writes(&mut w, config.physical_pages() * 10);
        let stats = sim.stats();
        assert!(stats.cleaning_cycles > 0);
        assert_eq!(stats.gc_class_promotions, 0);
        assert_eq!(stats.gc_class_demotions, 0);
        assert!(stats.gc_class_segments.is_empty());
        // All survivors fall in class 0.
        assert!(stats.gc_class_pages_written.len() <= 1);
    }

    #[test]
    fn temperature_classes_stay_close_to_baseline_under_skew() {
        // In the simulator the paper's sort-buffer separation already groups GC
        // survivors by frequency, so temperature-classed output streams are largely
        // redundant here: they must segregate survivors without hurting write
        // amplification. (The real win is measured on the concurrent store, where
        // interleaved writers defeat global sorting — see BENCH_cleaner.json's skew
        // rows.)
        let base = SimConfig::small_for_tests(PolicyKind::Greedy)
            .with_num_segments(192)
            .with_fill_factor(0.8);
        let run = |classes: usize| {
            let config = base.clone().with_gc_temperature_classes(classes);
            let mut w = HotColdWorkload::new(config.logical_pages(), 0.1, 0.9, 13);
            let writes = config.physical_pages() * 12;
            run_simulation(&config, &mut w, writes, writes / 4)
        };
        let flat = run(1);
        let classed = run(2);
        assert!(
            classed.write_amplification < flat.write_amplification * 1.15,
            "2 temperature classes ({}) must not regress write amplification \
             materially vs 1 ({})",
            classed.write_amplification,
            flat.write_amplification
        );
        // The classed run actually used its streams: sealed segments carry both
        // cold-class and hot-class tags.
        let seg = &classed.stats.gc_class_segments;
        assert!(
            seg.len() >= 2 && seg.iter().take(2).all(|&n| n > 0),
            "expected tagged segments in both classes, got {seg:?}"
        );
    }

    #[test]
    fn sort_buffer_of_zero_is_supported() {
        let config = SimConfig::small_for_tests(PolicyKind::Mdc)
            .with_fill_factor(0.8)
            .with_sort_buffer_segments(0);
        let mut w = ZipfianWorkload::new(config.logical_pages(), 0.99, 4);
        let result = run_simulation(&config, &mut w, 60_000, 20_000);
        assert!(result.write_amplification.is_finite());
    }
}
