//! # lss-sim — the cleaning-cost simulator of the paper's evaluation
//!
//! Paper §6.1.1: *"we built a simulator to evaluate the various cleaning algorithms. The
//! major difference between the simulator and an actual system is that the former only
//! writes page IDs instead of page contents."*
//!
//! This crate is that simulator. It tracks, for every physical segment, which pages it
//! holds and how many of them are still live, drives the **same policy implementations**
//! as the real store (`lss_core::policy`), and reports the write amplification
//! (`GC page writes / user page writes`) that the paper's figures plot.
//!
//! The defaults mirror the paper: 4 KiB pages, 2 MiB segments (512 pages), cleaning
//! triggered when fewer than 32 segments are free, 64 segments cleaned per cycle
//! (1 for multi-log), and a 16-segment sort buffer. The simulated store size is
//! configurable; the paper notes (and our tests confirm) that it does not affect write
//! amplification, so experiments default to a laptop-friendly size.
//!
//! ```
//! use lss_sim::{SimConfig, run_simulation};
//! use lss_core::policy::PolicyKind;
//! use lss_workload::UniformWorkload;
//!
//! let config = SimConfig::small_for_tests(PolicyKind::Greedy).with_fill_factor(0.5);
//! let mut workload = UniformWorkload::new(config.logical_pages(), 42);
//! let result = run_simulation(&config, &mut workload, 30_000, 10_000);
//! assert!(result.write_amplification < 1.0); // F = 0.5 is an easy regime
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod simulator;

pub use report::SimResult;
pub use simulator::{run_simulation, SimConfig, Simulator};
