//! On-device segment format.
//!
//! A segment image is self-describing so that the page table can be rebuilt by scanning
//! the device (see [`crate::recovery`]). The layout inside one `segment_bytes` block is:
//!
//! ```text
//! +--------------------+  offset 0
//! | SegmentHeader      |  fixed 48 bytes, CRC-protected
//! +--------------------+  offset HEADER_SIZE
//! | entry[0]           |  24 bytes each, CRC-protected as a block
//! | entry[1]           |
//! | ...                |
//! +--------------------+
//! |     (unused)       |
//! +--------------------+
//! | page payloads,     |  payloads grow downward from the end of the segment so their
//! | newest at lowest   |  offsets are final the moment a page is appended, regardless of
//! | offset             |  how many more entries follow
//! +--------------------+  offset segment_bytes
//! ```
//!
//! Entries record `(page_id, offset, len, write_seq)`. A tombstone (deletion record) is an
//! entry with `len == TOMBSTONE_LEN`; it has no payload.

use crate::error::{Error, Result};
use crate::types::{PageId, SealSeq, SegmentId, UpdateTick, WriteSeq};
use crate::util::crc32c;

/// Magic number identifying a sealed segment image ("LSSG").
pub const MAGIC: u32 = 0x4C53_5347;
/// Current on-device format version.
pub const VERSION: u16 = 1;
/// Size of the fixed segment header in bytes.
pub const HEADER_SIZE: usize = 48;
/// Size of one entry in bytes.
pub const ENTRY_SIZE: usize = 24;
/// Sentinel length marking a tombstone entry.
pub const TOMBSTONE_LEN: u32 = u32::MAX;

/// Number of whole `page_bytes`-sized pages a segment can hold once header and one entry
/// per page are accounted for. This is the paper's `S`.
pub fn pages_per_segment(segment_bytes: usize, page_bytes: usize) -> usize {
    segment_bytes.saturating_sub(HEADER_SIZE) / (page_bytes + ENTRY_SIZE)
}

/// Usable payload capacity (bytes) of a segment when storing pages of nominally
/// `page_bytes` each: the per-page entry overhead is charged against capacity.
pub fn payload_capacity(segment_bytes: usize, page_bytes: usize) -> usize {
    pages_per_segment(segment_bytes, page_bytes) * page_bytes
}

/// Largest single page payload a segment can hold.
pub fn max_single_payload(segment_bytes: usize) -> usize {
    segment_bytes.saturating_sub(HEADER_SIZE + ENTRY_SIZE)
}

/// Decoded segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Monotone sequence assigned when the segment was sealed.
    pub seal_seq: SealSeq,
    /// Update tick at which the segment was sealed.
    pub sealed_at: UpdateTick,
    /// Penultimate-update estimate carried by the segment at seal time.
    pub up2: UpdateTick,
    /// Number of entries in the entry table.
    pub entry_count: u32,
    /// Total payload bytes stored (grows downward from the segment end).
    pub data_len: u32,
    /// Output log the segment was written by (multi-log policies).
    pub log_id: u16,
}

/// One entry of the entry table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Logical page recorded by this entry.
    pub page_id: PageId,
    /// Absolute byte offset of the payload within the segment image (0 for tombstones).
    pub offset: u32,
    /// Payload length, or [`TOMBSTONE_LEN`] for a deletion record.
    pub len: u32,
    /// Per-page write sequence used to order duplicate copies during recovery.
    pub write_seq: WriteSeq,
}

impl SegmentEntry {
    /// True if this entry records a deletion.
    #[inline]
    pub fn is_tombstone(&self) -> bool {
        self.len == TOMBSTONE_LEN
    }

    /// Payload length in bytes (0 for tombstones).
    #[inline]
    pub fn payload_len(&self) -> u32 {
        if self.is_tombstone() {
            0
        } else {
            self.len
        }
    }
}

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}
fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}
fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}
fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(buf[off..off + 2].try_into().unwrap())
}
fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

fn encode_header(h: &SegmentHeader, entries_crc: u32) -> [u8; HEADER_SIZE] {
    let mut buf = [0u8; HEADER_SIZE];
    put_u32(&mut buf, 0, MAGIC);
    put_u16(&mut buf, 4, VERSION);
    put_u16(&mut buf, 6, h.log_id);
    put_u64(&mut buf, 8, h.seal_seq);
    put_u64(&mut buf, 16, h.sealed_at);
    put_u64(&mut buf, 24, h.up2);
    put_u32(&mut buf, 32, h.entry_count);
    put_u32(&mut buf, 36, h.data_len);
    put_u32(&mut buf, 40, entries_crc);
    let crc = crc32c(&buf[..44]);
    put_u32(&mut buf, 44, crc);
    buf
}

/// Decode and validate a segment header from the first [`HEADER_SIZE`] bytes of an image.
///
/// Returns `Ok(None)` if the block does not look like a sealed segment at all (e.g. it is
/// blank), and an error if it looks like one but fails validation.
pub fn decode_header(seg: SegmentId, buf: &[u8]) -> Result<Option<(SegmentHeader, u32)>> {
    if buf.len() < HEADER_SIZE {
        return Err(Error::CorruptSegment {
            segment: seg,
            detail: format!("header buffer too small: {} bytes", buf.len()),
        });
    }
    let magic = get_u32(buf, 0);
    if magic != MAGIC {
        // Not a sealed segment (blank or reused space) — not an error.
        return Ok(None);
    }
    let version = get_u16(buf, 4);
    if version != VERSION {
        return Err(Error::CorruptSegment {
            segment: seg,
            detail: format!("unsupported format version {version}"),
        });
    }
    let stored_crc = get_u32(buf, 44);
    let computed = crc32c(&buf[..44]);
    if stored_crc != computed {
        return Err(Error::CorruptSegment {
            segment: seg,
            detail: format!("header CRC mismatch: stored {stored_crc:#x}, computed {computed:#x}"),
        });
    }
    let header = SegmentHeader {
        seal_seq: get_u64(buf, 8),
        sealed_at: get_u64(buf, 16),
        up2: get_u64(buf, 24),
        entry_count: get_u32(buf, 32),
        data_len: get_u32(buf, 36),
        log_id: get_u16(buf, 6),
    };
    Ok(Some((header, get_u32(buf, 40))))
}

/// A fully decoded segment image: header plus entry table.
#[derive(Debug, Clone)]
pub struct ParsedSegment {
    /// The decoded header.
    pub header: SegmentHeader,
    /// The decoded entry table, in append order.
    pub entries: Vec<SegmentEntry>,
}

/// Decode a full segment image (header + entries), validating checksums and bounds.
///
/// Returns `Ok(None)` for blank (never sealed) images.
pub fn decode_segment(seg: SegmentId, image: &[u8]) -> Result<Option<ParsedSegment>> {
    let Some((header, entries_crc)) = decode_header(seg, image)? else {
        return Ok(None);
    };
    let count = header.entry_count as usize;
    let table_end = HEADER_SIZE + count * ENTRY_SIZE;
    if table_end > image.len() {
        return Err(Error::CorruptSegment {
            segment: seg,
            detail: format!("entry table ({count} entries) exceeds segment size"),
        });
    }
    let table = &image[HEADER_SIZE..table_end];
    let computed = crc32c(table);
    if computed != entries_crc {
        return Err(Error::CorruptSegment {
            segment: seg,
            detail: format!(
                "entry table CRC mismatch: stored {entries_crc:#x}, computed {computed:#x}"
            ),
        });
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let off = i * ENTRY_SIZE;
        let e = SegmentEntry {
            page_id: get_u64(table, off),
            offset: get_u32(table, off + 8),
            len: get_u32(table, off + 12),
            write_seq: get_u64(table, off + 16),
        };
        if !e.is_tombstone() {
            let end = e.offset as usize + e.len as usize;
            if (e.offset as usize) < table_end || end > image.len() {
                return Err(Error::CorruptSegment {
                    segment: seg,
                    detail: format!(
                        "entry {i} (page {}) payload [{}, {end}) out of bounds",
                        e.page_id, e.offset
                    ),
                });
            }
        }
        entries.push(e);
    }
    Ok(Some(ParsedSegment { header, entries }))
}

/// Incrementally builds the image of one segment.
///
/// Payloads grow downward from the end of the image; the entry table grows upward after
/// the header. [`SegmentBuilder::finish`] lays the header down and returns the complete
/// image, exactly `segment_bytes` long.
#[derive(Debug)]
pub struct SegmentBuilder {
    segment_bytes: usize,
    entries: Vec<SegmentEntry>,
    /// Payload bytes in *reverse placement order*; `payload_tail` is the offset of the
    /// most recently placed payload.
    image: Vec<u8>,
    payload_tail: usize,
}

impl SegmentBuilder {
    /// Start building a segment image of `segment_bytes` bytes.
    pub fn new(segment_bytes: usize) -> Self {
        assert!(
            segment_bytes > HEADER_SIZE + ENTRY_SIZE,
            "segment too small: {segment_bytes}"
        );
        Self {
            segment_bytes,
            entries: Vec::new(),
            image: vec![0u8; segment_bytes],
            payload_tail: segment_bytes,
        }
    }

    /// Bytes still available for one more entry plus a payload of the given length.
    pub fn fits(&self, payload_len: usize) -> bool {
        let table_end = HEADER_SIZE + (self.entries.len() + 1) * ENTRY_SIZE;
        table_end + payload_len <= self.payload_tail
    }

    /// Remaining payload capacity assuming one more entry is added.
    pub fn remaining_payload(&self) -> usize {
        let table_end = HEADER_SIZE + (self.entries.len() + 1) * ENTRY_SIZE;
        self.payload_tail.saturating_sub(table_end)
    }

    /// Number of entries appended so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes appended so far.
    pub fn payload_bytes(&self) -> usize {
        self.segment_bytes - self.payload_tail
    }

    /// Append a page payload; returns the absolute offset the payload was placed at.
    ///
    /// Panics if the payload does not fit — callers must check [`SegmentBuilder::fits`].
    pub fn push_page(&mut self, page_id: PageId, write_seq: WriteSeq, data: &[u8]) -> u32 {
        assert!(
            self.fits(data.len()),
            "payload of {} bytes does not fit",
            data.len()
        );
        let start = self.payload_tail - data.len();
        self.image[start..self.payload_tail].copy_from_slice(data);
        self.payload_tail = start;
        let entry = SegmentEntry {
            page_id,
            offset: start as u32,
            len: data.len() as u32,
            write_seq,
        };
        self.entries.push(entry);
        start as u32
    }

    /// Append a tombstone (deletion record) for a page.
    pub fn push_tombstone(&mut self, page_id: PageId, write_seq: WriteSeq) {
        assert!(self.fits(0), "no room for a tombstone entry");
        self.entries.push(SegmentEntry {
            page_id,
            offset: 0,
            len: TOMBSTONE_LEN,
            write_seq,
        });
    }

    /// Read back a payload that was appended to this (still in-memory) builder.
    pub fn read_payload(&self, offset: u32, len: u32) -> &[u8] {
        &self.image[offset as usize..(offset + len) as usize]
    }

    /// Finalise the image: writes the entry table and header and returns the full
    /// `segment_bytes`-long image together with the entry list.
    pub fn finish(
        self,
        seal_seq: SealSeq,
        sealed_at: UpdateTick,
        up2: UpdateTick,
    ) -> (Vec<u8>, Vec<SegmentEntry>) {
        self.finish_with_log(seal_seq, sealed_at, up2, 0)
    }

    /// [`SegmentBuilder::finish`] with an explicit log id recorded in the header.
    pub fn finish_with_log(
        mut self,
        seal_seq: SealSeq,
        sealed_at: UpdateTick,
        up2: UpdateTick,
        log_id: u16,
    ) -> (Vec<u8>, Vec<SegmentEntry>) {
        self.write_metadata(seal_seq, sealed_at, up2, log_id);
        (self.image, self.entries)
    }

    /// Finalise the image *without consuming the builder*: writes the entry table and
    /// header into the in-place image and returns a copy of it.
    ///
    /// The payload area is left untouched, so concurrent readers that still hold page
    /// locations into this (shared) builder keep reading correct bytes while the sealed
    /// image is being written to the device.
    pub fn finish_image(
        &mut self,
        seal_seq: SealSeq,
        sealed_at: UpdateTick,
        up2: UpdateTick,
        log_id: u16,
    ) -> Vec<u8> {
        self.write_metadata(seal_seq, sealed_at, up2, log_id);
        self.image.clone()
    }

    fn write_metadata(
        &mut self,
        seal_seq: SealSeq,
        sealed_at: UpdateTick,
        up2: UpdateTick,
        log_id: u16,
    ) {
        let count = self.entries.len();
        for (i, e) in self.entries.iter().enumerate() {
            let off = HEADER_SIZE + i * ENTRY_SIZE;
            put_u64(&mut self.image, off, e.page_id);
            put_u32(&mut self.image, off + 8, e.offset);
            put_u32(&mut self.image, off + 12, e.len);
            put_u64(&mut self.image, off + 16, e.write_seq);
        }
        let table = &self.image[HEADER_SIZE..HEADER_SIZE + count * ENTRY_SIZE];
        let entries_crc = crc32c(table);
        let header = SegmentHeader {
            seal_seq,
            sealed_at,
            up2,
            entry_count: count as u32,
            data_len: (self.segment_bytes - self.payload_tail) as u32,
            log_id,
        };
        let hdr = encode_header(&header, entries_crc);
        self.image[..HEADER_SIZE].copy_from_slice(&hdr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_helpers_match_paper_geometry() {
        // 2 MiB segments, 4 KiB pages: 509 pages per segment after overhead (paper: 512
        // before accounting for metadata).
        let pps = pages_per_segment(2 * 1024 * 1024, 4096);
        assert_eq!(pps, 509);
        assert_eq!(payload_capacity(2 * 1024 * 1024, 4096), 509 * 4096);
        assert!(max_single_payload(4096) < 4096);
    }

    #[test]
    fn build_and_decode_roundtrip() {
        let mut b = SegmentBuilder::new(4096);
        let off1 = b.push_page(10, 1, b"hello");
        let off2 = b.push_page(20, 2, b"world!");
        b.push_tombstone(30, 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.payload_bytes(), 11);
        assert_eq!(b.read_payload(off1, 5), b"hello");
        assert_eq!(b.read_payload(off2, 6), b"world!");

        let (image, entries) = b.finish(7, 1000, 500);
        assert_eq!(image.len(), 4096);
        assert_eq!(entries.len(), 3);

        let parsed = decode_segment(SegmentId(0), &image).unwrap().unwrap();
        assert_eq!(parsed.header.seal_seq, 7);
        assert_eq!(parsed.header.sealed_at, 1000);
        assert_eq!(parsed.header.up2, 500);
        assert_eq!(parsed.header.entry_count, 3);
        assert_eq!(parsed.entries[0].page_id, 10);
        assert_eq!(parsed.entries[1].page_id, 20);
        assert!(parsed.entries[2].is_tombstone());
        assert_eq!(parsed.entries[2].payload_len(), 0);

        let e = parsed.entries[1];
        assert_eq!(
            &image[e.offset as usize..(e.offset + e.len) as usize],
            b"world!"
        );
    }

    #[test]
    fn blank_image_decodes_to_none() {
        let image = vec![0u8; 4096];
        assert!(decode_segment(SegmentId(3), &image).unwrap().is_none());
        assert!(decode_header(SegmentId(3), &image).unwrap().is_none());
    }

    #[test]
    fn corrupt_header_is_detected() {
        let b = SegmentBuilder::new(4096);
        let (mut image, _) = b.finish(1, 1, 1);
        image[9] ^= 0xFF; // flip a bit inside the header
        let err = decode_segment(SegmentId(1), &image).unwrap_err();
        assert!(err.to_string().contains("CRC"), "unexpected error: {err}");
    }

    #[test]
    fn corrupt_entry_table_is_detected() {
        let mut b = SegmentBuilder::new(4096);
        b.push_page(1, 1, b"data");
        let (mut image, _) = b.finish(1, 1, 1);
        image[HEADER_SIZE + 2] ^= 0xFF; // corrupt the entry table
        let err = decode_segment(SegmentId(1), &image).unwrap_err();
        assert!(
            err.to_string().contains("entry table CRC"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn fits_accounts_for_entry_overhead() {
        let mut b = SegmentBuilder::new(HEADER_SIZE + 2 * ENTRY_SIZE + 100);
        assert!(b.fits(100));
        b.push_page(1, 1, &[0u8; 100]);
        // A second 100-byte page cannot fit: no payload room remains.
        assert!(!b.fits(100));
        assert!(b.fits(0)); // but a tombstone still fits
        assert_eq!(b.remaining_payload(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pushing_oversized_payload_panics() {
        let mut b = SegmentBuilder::new(256);
        b.push_page(1, 1, &vec![0u8; 1024]);
    }

    #[test]
    fn truncated_header_buffer_is_an_error() {
        let buf = vec![0u8; 10];
        assert!(decode_header(SegmentId(0), &buf).is_err());
    }

    #[test]
    fn version_mismatch_is_detected() {
        let b = SegmentBuilder::new(1024);
        let (mut image, _) = b.finish(1, 1, 1);
        // Overwrite version with 9 and recompute nothing: CRC check fires first, so patch
        // the CRC too to reach the version check.
        put_u16(&mut image, 4, 9);
        let crc = crc32c(&image[..44]);
        put_u32(&mut image, 44, crc);
        let err = decode_segment(SegmentId(1), &image).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn out_of_bounds_payload_is_detected() {
        let mut b = SegmentBuilder::new(1024);
        b.push_page(1, 1, b"abcd");
        let (mut image, _) = b.finish(1, 1, 1);
        // Corrupt the entry's offset to point past the end, then fix the table CRC so the
        // bounds check (not the CRC check) fires.
        put_u32(&mut image, HEADER_SIZE + 8, 5000);
        let table = &image[HEADER_SIZE..HEADER_SIZE + ENTRY_SIZE];
        let entries_crc = crc32c(table);
        put_u32(&mut image, 40, entries_crc);
        let crc = crc32c(&image[..44]);
        put_u32(&mut image, 44, crc);
        let err = decode_segment(SegmentId(1), &image).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }
}
