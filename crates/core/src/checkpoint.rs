//! Checkpointing: serialize the page table, segment metadata and counters so a cleanly
//! shut down store can reopen without scanning the device.
//!
//! A checkpoint is only trustworthy if it was taken after [`crate::LogStore::flush`] and
//! no writes happened afterwards. After a crash, prefer
//! [`crate::LogStore::recover_with_device`], which rebuilds state from the segment images
//! themselves.

use crate::config::StoreConfig;
use crate::device::SegmentDevice;
use crate::error::{Error, Result};
use crate::mapping::PageTable;
use crate::segment::{SegmentMeta, SegmentTable};
use crate::store::LogStore;
use crate::types::{PageId, PageLocation, SegmentId};
use serde::{Deserialize, Serialize};

/// Checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One live page in the checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageRecord {
    /// Logical page id.
    pub page: PageId,
    /// Segment holding the current version.
    pub segment: u32,
    /// Byte offset within the segment.
    pub offset: u32,
    /// Payload length.
    pub len: u32,
}

/// One sealed segment in the checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentRecord {
    /// Segment id.
    pub id: u32,
    /// Payload capacity in bytes.
    pub capacity_bytes: u64,
    /// Live payload bytes at checkpoint time.
    pub live_bytes: u64,
    /// Live pages at checkpoint time.
    pub live_pages: u64,
    /// Penultimate-update estimate.
    pub up2: u64,
    /// Seal sequence.
    pub seal_seq: u64,
    /// Seal time on the update clock.
    pub sealed_at: u64,
    /// Output log the segment belongs to.
    pub log_id: u16,
}

/// A complete checkpoint of store metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Update-count clock at checkpoint time.
    pub unow: u64,
    /// Next per-page write sequence.
    pub next_write_seq: u64,
    /// Next segment seal sequence.
    pub next_seal_seq: u64,
    /// All live pages.
    pub pages: Vec<PageRecord>,
    /// All sealed segments.
    pub segments: Vec<SegmentRecord>,
}

/// Serialize a store's metadata to a checkpoint JSON string.
pub fn to_json(store: &LogStore) -> Result<String> {
    // One coherent snapshot: mapping, segment records and counters are captured in a
    // single quiesced critical section, so a cleaning cycle can never reap a victim
    // between the page snapshot and the segment records (which would leave pages
    // referencing a segment the checkpoint does not describe), and the recorded
    // `next_write_seq` is >= every write sequence reachable from the snapshot — a
    // restore can never re-issue a sequence number that is already on disk.
    let snapshot = store.checkpoint_snapshot();
    let pages = snapshot
        .pages
        .into_iter()
        .map(|(page, loc)| PageRecord {
            page,
            segment: loc.segment.0,
            offset: loc.offset,
            len: loc.len,
        })
        .collect();
    let segments = snapshot
        .sealed
        .into_iter()
        .map(|s| SegmentRecord {
            id: s.id.0,
            capacity_bytes: s.capacity_bytes,
            live_bytes: s.capacity_bytes - s.free_bytes,
            live_pages: s.live_pages,
            up2: s.up2,
            seal_seq: s.seal_seq,
            sealed_at: s.sealed_at,
            log_id: s.log_id,
        })
        .collect();
    let cp = Checkpoint {
        version: CHECKPOINT_VERSION,
        unow: snapshot.unow,
        next_write_seq: snapshot.next_write_seq,
        next_seal_seq: snapshot.next_seal_seq,
        pages,
        segments,
    };
    serde_json::to_string(&cp).map_err(|e| Error::CorruptCheckpoint(e.to_string()))
}

/// Parse a checkpoint JSON string.
pub fn from_json(json: &str) -> Result<Checkpoint> {
    let cp: Checkpoint =
        serde_json::from_str(json).map_err(|e| Error::CorruptCheckpoint(e.to_string()))?;
    if cp.version != CHECKPOINT_VERSION {
        return Err(Error::CorruptCheckpoint(format!(
            "unsupported checkpoint version {} (expected {CHECKPOINT_VERSION})",
            cp.version
        )));
    }
    Ok(cp)
}

/// Re-open a cleanly shut down store from a checkpoint plus its device.
///
/// The caller is responsible for ensuring the checkpoint matches the device contents
/// (i.e. the previous process called `flush()`, then `checkpoint_to()`, then wrote
/// nothing more). Use [`crate::LogStore::recover_with_device`] otherwise.
pub fn open_from_checkpoint(
    config: StoreConfig,
    device: Box<dyn SegmentDevice>,
    checkpoint: &Checkpoint,
) -> Result<LogStore> {
    let mut store = LogStore::open_with_device(config.clone(), device)?;

    let mut mapping = PageTable::new();
    for p in &checkpoint.pages {
        if p.segment as usize >= config.num_segments {
            return Err(Error::CorruptCheckpoint(format!(
                "page {} references segment {} beyond device size {}",
                p.page, p.segment, config.num_segments
            )));
        }
        mapping.insert(
            p.page,
            PageLocation {
                segment: SegmentId(p.segment),
                offset: p.offset,
                len: p.len,
            },
        );
    }

    let mut table = SegmentTable::new(config.num_segments);
    for s in &checkpoint.segments {
        if s.id as usize >= config.num_segments {
            return Err(Error::CorruptCheckpoint(format!(
                "segment record {} beyond device size {}",
                s.id, config.num_segments
            )));
        }
        let mut meta =
            SegmentMeta::new_open(SegmentId(s.id), s.capacity_bytes, s.log_id, config.up2_mode);
        meta.live_bytes = s.live_bytes;
        meta.live_pages = s.live_pages;
        meta.seal(s.seal_seq, s.sealed_at, s.up2, config.up2_mode);
        table.install_sealed(meta);
    }
    table.set_next_seal_seq(checkpoint.next_seal_seq);

    store.install_recovered_state(mapping, table, checkpoint.unow, checkpoint.next_write_seq);
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::policy::PolicyKind;

    fn config() -> StoreConfig {
        StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc)
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let store = LogStore::open_in_memory(config()).unwrap();
        for i in 0..100u64 {
            store.put(i, format!("value-{i}").as_bytes()).unwrap();
        }
        store.flush().unwrap();
        let json = to_json(&store).unwrap();
        let cp = from_json(&json).unwrap();
        assert_eq!(cp.version, CHECKPOINT_VERSION);
        assert_eq!(cp.pages.len(), 100);
        assert!(!cp.segments.is_empty());
        assert_eq!(cp.unow, 100);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let store = LogStore::open_in_memory(config()).unwrap();
        store.put(1, b"x").unwrap();
        store.flush().unwrap();
        let json = to_json(&store)
            .unwrap()
            .replace("\"version\":1", "\"version\":99");
        assert!(from_json(&json).is_err());
    }

    #[test]
    fn garbage_json_is_rejected() {
        assert!(from_json("not json at all").is_err());
        assert!(from_json("{}").is_err());
    }

    #[test]
    fn checkpoint_with_out_of_range_segment_is_rejected() {
        let cp = Checkpoint {
            version: CHECKPOINT_VERSION,
            unow: 0,
            next_write_seq: 1,
            next_seal_seq: 1,
            pages: vec![PageRecord {
                page: 1,
                segment: 9999,
                offset: 0,
                len: 1,
            }],
            segments: vec![],
        };
        let cfg = config();
        let dev = MemDevice::new(cfg.segment_bytes, cfg.num_segments);
        assert!(open_from_checkpoint(cfg, Box::new(dev), &cp).is_err());
    }

    /// Full cycle: write, flush, checkpoint, "restart" from the same device + checkpoint,
    /// and verify all data plus the ability to keep writing and cleaning.
    #[test]
    fn reopen_from_checkpoint_preserves_data_and_keeps_working() {
        let cfg = config();
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        let pages = cfg.logical_pages_for_fill_factor(0.5) as u64;
        let payload = vec![5u8; cfg.page_bytes];
        for i in 0..(cfg.physical_pages() as u64 * 2) {
            store.put(i % pages, &payload).unwrap();
        }
        store.flush().unwrap();
        let json = store.checkpoint_json().unwrap();
        let live_before = store.live_pages();

        // Simulated restart: keep the device, rebuild the store from the checkpoint.
        let device = store.into_device();
        let cp = from_json(&json).unwrap();
        assert_eq!(cp.pages.len(), live_before);
        let reopened = open_from_checkpoint(cfg.clone(), device, &cp).unwrap();
        assert_eq!(reopened.live_pages(), live_before);
        for i in 0..pages {
            assert!(
                reopened.get(i).unwrap().is_some(),
                "page {i} missing after reopen"
            );
        }
        // The reopened store keeps accepting writes and cleaning.
        for i in 0..(cfg.physical_pages() as u64) {
            reopened.put(i % pages, &payload).unwrap();
        }
        reopened.flush().unwrap();
        assert_eq!(reopened.live_pages() as u64, pages);
    }
}
