//! Checkpointing: persist the page table, segment metadata and counters so recovery
//! never needs a raw full-device scan.
//!
//! Two formats share the same record types:
//!
//! * **Monolithic** ([`to_json`] / [`from_json`] / [`open_from_checkpoint`]) — one JSON
//!   document holding the complete state. Cheap to reason about, O(page table) to
//!   write every time; used for clean shutdown/reopen.
//! * **Journal** (`append_to_journal` / `read_journal`) — an append-only JSON-lines
//!   file. Each checkpoint appends the page-table *shards dirtied since the previous
//!   checkpoint* (piggybacking on the 64-way sharding of
//!   [`crate::mapping::ShardedPageTable`]), the sealed-segment records and a commit
//!   record carrying the seal-sequence *frontier*. The reader applies lines only up to
//!   the last valid commit, so a torn tail (crash mid-checkpoint) falls back to the
//!   previous committed checkpoint. [`crate::recovery::recover_from_checkpoint`] then
//!   replays only the segments sealed after the frontier — a bounded log tail — instead
//!   of decoding the whole device.
//!
//! Checkpoints taken through [`crate::LogStore::checkpoint_log_to`] are self-durable
//! (the capture seals open segments and syncs the device first); the monolithic form
//! keeps its historical contract of being meaningful only after
//! [`crate::LogStore::flush`].

use crate::config::StoreConfig;
use crate::device::SegmentDevice;
use crate::error::{Error, Result};
use crate::mapping::PageTable;
use crate::segment::{SegmentMeta, SegmentTable};
use crate::store::{CheckpointSnapshot, LogStore};
use crate::types::{PageId, PageLocation, SegmentId};
use crate::util::FxHashMap;
use serde::{Deserialize, Serialize};

/// Checkpoint format version (bumped to 2 when page records gained their per-page
/// write sequence and checkpoints their seal-sequence frontier).
pub const CHECKPOINT_VERSION: u32 = 2;

/// One live page in the checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageRecord {
    /// Logical page id.
    pub page: PageId,
    /// Segment holding the current version.
    pub segment: u32,
    /// Byte offset within the segment.
    pub offset: u32,
    /// Payload length.
    pub len: u32,
    /// Per-page write sequence of this version. Recovery ranks a checkpoint entry as
    /// `(write_seq, owning segment's seal_seq)` against log-tail copies, so a
    /// post-checkpoint GC relocation (same sequence, later seal) supersedes it and a
    /// stale older copy never does.
    pub write_seq: u64,
}

/// One sealed segment in the checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentRecord {
    /// Segment id.
    pub id: u32,
    /// Payload capacity in bytes.
    pub capacity_bytes: u64,
    /// Live payload bytes at checkpoint time (includes the tombstone charge below).
    pub live_bytes: u64,
    /// Portion of `live_bytes` charged to tombstone entries still awaiting coverage
    /// by a committed checkpoint (see [`crate::segment::SegmentMeta::tombstone_bytes`]).
    pub tombstone_bytes: u64,
    /// Live pages at checkpoint time.
    pub live_pages: u64,
    /// Penultimate-update estimate.
    pub up2: u64,
    /// Seal sequence.
    pub seal_seq: u64,
    /// Seal time on the update clock.
    pub sealed_at: u64,
    /// Output log the segment belongs to.
    pub log_id: u16,
}

/// A complete checkpoint of store metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Update-count clock at checkpoint time.
    pub unow: u64,
    /// Next per-page write sequence.
    pub next_write_seq: u64,
    /// Next segment seal sequence.
    pub next_seal_seq: u64,
    /// Seal-sequence frontier: every segment this checkpoint describes was sealed at or
    /// before it (`next_seal_seq - 1` at capture time).
    pub frontier: u64,
    /// All live pages.
    pub pages: Vec<PageRecord>,
    /// All sealed segments.
    pub segments: Vec<SegmentRecord>,
}

/// What one `append_to_journal` (or [`crate::LogStore::checkpoint_log_to`]) wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Page-table shards written by this checkpoint.
    pub shards_written: u64,
    /// Shards skipped because they were clean since the previous checkpoint.
    pub shards_skipped: u64,
}

fn page_record(page: PageId, loc: &PageLocation) -> PageRecord {
    PageRecord {
        page,
        segment: loc.segment.0,
        offset: loc.offset,
        len: loc.len,
        write_seq: loc.write_seq,
    }
}

fn segment_records(snapshot: &CheckpointSnapshot) -> Vec<SegmentRecord> {
    let tombstones: FxHashMap<u32, u64> = snapshot
        .tombstone_bytes
        .iter()
        .map(|&(id, bytes)| (id.0, bytes))
        .collect();
    snapshot
        .sealed
        .iter()
        .map(|s| SegmentRecord {
            id: s.id.0,
            capacity_bytes: s.capacity_bytes,
            live_bytes: s.capacity_bytes - s.free_bytes,
            tombstone_bytes: tombstones.get(&s.id.0).copied().unwrap_or(0),
            live_pages: s.live_pages,
            up2: s.up2,
            seal_seq: s.seal_seq,
            sealed_at: s.sealed_at,
            log_id: s.log_id,
        })
        .collect()
}

/// Serialize a store's metadata to a checkpoint JSON string.
pub fn to_json(store: &LogStore) -> Result<String> {
    // One coherent snapshot: mapping, segment records and counters are captured in a
    // single quiesced critical section, so a cleaning cycle can never reap a victim
    // between the page snapshot and the segment records (which would leave pages
    // referencing a segment the checkpoint does not describe), and the recorded
    // `next_write_seq` is >= every write sequence reachable from the snapshot — a
    // restore can never re-issue a sequence number that is already on disk. The
    // page-table dirty bits are left untouched: a monolithic checkpoint must not steal
    // changes out from under a concurrent incremental journal sequence.
    let snapshot = store.checkpoint_snapshot(false, false)?;
    let pages = snapshot
        .shards
        .iter()
        .flatten()
        .flatten()
        .map(|(page, loc)| page_record(*page, loc))
        .collect();
    let segments = segment_records(&snapshot);
    let cp = Checkpoint {
        version: CHECKPOINT_VERSION,
        unow: snapshot.unow,
        next_write_seq: snapshot.next_write_seq,
        next_seal_seq: snapshot.next_seal_seq,
        frontier: snapshot.frontier,
        pages,
        segments,
    };
    serde_json::to_string(&cp).map_err(|e| Error::CorruptCheckpoint(e.to_string()))
}

/// Parse a checkpoint JSON string.
pub fn from_json(json: &str) -> Result<Checkpoint> {
    let cp: Checkpoint =
        serde_json::from_str(json).map_err(|e| Error::CorruptCheckpoint(e.to_string()))?;
    if cp.version != CHECKPOINT_VERSION {
        return Err(Error::CorruptCheckpoint(format!(
            "unsupported checkpoint version {} (expected {CHECKPOINT_VERSION})",
            cp.version
        )));
    }
    Ok(cp)
}

/// Re-open a cleanly shut down store from a checkpoint plus its device.
///
/// The caller is responsible for ensuring the checkpoint matches the device contents
/// (i.e. the previous process called `flush()`, then `checkpoint_to()`, then wrote
/// nothing more). Use [`crate::LogStore::recover_with_device`] — or the journal form,
/// [`crate::LogStore::recover_with_checkpoint`], which tolerates a log tail — otherwise.
pub fn open_from_checkpoint(
    config: StoreConfig,
    device: Box<dyn SegmentDevice>,
    checkpoint: &Checkpoint,
) -> Result<LogStore> {
    let mut store = LogStore::open_with_device(config.clone(), device)?;

    let mut mapping = PageTable::new();
    for p in &checkpoint.pages {
        if p.segment as usize >= config.num_segments {
            return Err(Error::CorruptCheckpoint(format!(
                "page {} references segment {} beyond device size {}",
                p.page, p.segment, config.num_segments
            )));
        }
        mapping.insert(
            p.page,
            PageLocation {
                segment: SegmentId(p.segment),
                offset: p.offset,
                len: p.len,
                write_seq: p.write_seq,
            },
        );
    }

    let mut table = SegmentTable::new(config.num_segments);
    for s in &checkpoint.segments {
        if s.id as usize >= config.num_segments {
            return Err(Error::CorruptCheckpoint(format!(
                "segment record {} beyond device size {}",
                s.id, config.num_segments
            )));
        }
        let mut meta =
            SegmentMeta::new_open(SegmentId(s.id), s.capacity_bytes, s.log_id, config.up2_mode);
        meta.live_bytes = s.live_bytes;
        meta.tombstone_bytes = s.tombstone_bytes;
        meta.live_pages = s.live_pages;
        meta.seal(s.seal_seq, s.sealed_at, s.up2, config.up2_mode);
        table.install_sealed(meta);
    }
    table.set_next_seal_seq(checkpoint.next_seal_seq);

    store.install_recovered_state(mapping, table, checkpoint.unow, checkpoint.next_write_seq);
    Ok(store)
}

// ---------------------------------------------------------------------------
// The incremental checkpoint journal (JSON lines)
// ---------------------------------------------------------------------------
//
// Line kinds, in append order within one checkpoint:
//
//   {"kind":"base", "version":2, "num_segments":N, "shard_count":64}   (file start only)
//   {"kind":"shard", "shard":i, "pages":[PageRecord...]}               (dirty shards)
//   {"kind":"segments", "segments":[SegmentRecord...]}                 (full set)
//   {"kind":"commit", "frontier":F, "unow":U, "next_write_seq":W,
//    "next_seal_seq":S, "shards_written":K}
//
// The vendored serde derive does not support data-carrying enum variants, so each line
// kind is its own struct with a `kind` tag field, dispatched by peeking at the parsed
// value before deserializing.

#[derive(Debug, Serialize, Deserialize)]
struct BaseLine {
    kind: String,
    version: u32,
    num_segments: u64,
    shard_count: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct ShardLine {
    kind: String,
    shard: u64,
    pages: Vec<PageRecord>,
}

#[derive(Debug, Serialize, Deserialize)]
struct SegmentsLine {
    kind: String,
    segments: Vec<SegmentRecord>,
}

#[derive(Debug, Serialize, Deserialize)]
struct CommitLine {
    kind: String,
    frontier: u64,
    unow: u64,
    next_write_seq: u64,
    next_seal_seq: u64,
    shards_written: u64,
}

/// The merged view of a checkpoint journal up to its last valid commit record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalCheckpoint {
    /// Device size recorded by the journal's base record.
    pub num_segments: u64,
    /// Live pages: the newest committed record of every shard, merged.
    pub pages: Vec<PageRecord>,
    /// Sealed segments as of the last committed checkpoint.
    pub segments: Vec<SegmentRecord>,
    /// Seal-sequence frontier of the last committed checkpoint.
    pub frontier: u64,
    /// Update clock at the last committed checkpoint.
    pub unow: u64,
    /// Next per-page write sequence at the last committed checkpoint.
    pub next_write_seq: u64,
    /// Next seal sequence at the last committed checkpoint.
    pub next_seal_seq: u64,
}

fn line_json<T: Serialize>(line: &T) -> Result<String> {
    serde_json::to_string(line).map_err(|e| Error::CorruptCheckpoint(e.to_string()))
}

/// Append one checkpoint (from a [`CheckpointSnapshot`]) to the journal at `path`.
///
/// With `fresh` the file is created (or truncated) and a base record is written first;
/// otherwise the records are appended to the existing journal. The records are rendered
/// completely before any byte reaches the file, and the file is fsynced before
/// returning — the checkpoint is only reported successful once it would survive a crash.
pub(crate) fn append_to_journal(
    path: &std::path::Path,
    config: &StoreConfig,
    snapshot: &CheckpointSnapshot,
    fresh: bool,
) -> Result<CheckpointStats> {
    use std::io::Write as _;

    let mut text = String::new();
    if fresh {
        let base = BaseLine {
            kind: "base".into(),
            version: CHECKPOINT_VERSION,
            num_segments: config.num_segments as u64,
            shard_count: snapshot.shards.len() as u64,
        };
        text.push_str(&line_json(&base)?);
        text.push('\n');
    }
    let mut written = 0u64;
    let mut skipped = 0u64;
    for (i, shard) in snapshot.shards.iter().enumerate() {
        let Some(pages) = shard else {
            skipped += 1;
            continue;
        };
        written += 1;
        let line = ShardLine {
            kind: "shard".into(),
            shard: i as u64,
            pages: pages
                .iter()
                .map(|(page, loc)| page_record(*page, loc))
                .collect(),
        };
        text.push_str(&line_json(&line)?);
        text.push('\n');
    }
    let segments = SegmentsLine {
        kind: "segments".into(),
        segments: segment_records(snapshot),
    };
    text.push_str(&line_json(&segments)?);
    text.push('\n');
    let commit = CommitLine {
        kind: "commit".into(),
        frontier: snapshot.frontier,
        unow: snapshot.unow,
        next_write_seq: snapshot.next_write_seq,
        next_seal_seq: snapshot.next_seal_seq,
        shards_written: written,
    };
    text.push_str(&line_json(&commit)?);
    text.push('\n');

    if fresh {
        // Build the new journal in a sibling temp file and rename it over the old one
        // only once it is durable: truncating in place would destroy the previous
        // (still valid) journal if the process died mid-write.
        let tmp = path.with_extension("journal.tmp");
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
    } else {
        let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    Ok(CheckpointStats {
        shards_written: written,
        shards_skipped: skipped,
    })
}

/// Read a checkpoint journal file and merge it up to its last valid commit.
pub fn read_journal(path: &std::path::Path) -> Result<JournalCheckpoint> {
    let text = std::fs::read_to_string(path)?;
    parse_journal(&text)
}

/// The pure core of [`read_journal`]: merge journal text up to the last valid commit.
///
/// Later committed shard records supersede earlier ones for the same shard; segment
/// records are replaced wholesale by each commit. A torn or otherwise unparsable tail
/// (crash mid-append) discards everything from the first bad line on, landing on the
/// previous committed checkpoint. A journal with no committed checkpoint at all is an
/// error.
pub fn parse_journal(text: &str) -> Result<JournalCheckpoint> {
    let mut base: Option<BaseLine> = None;
    let mut committed_shards: FxHashMap<u64, Vec<PageRecord>> = FxHashMap::default();
    let mut committed_segments: Vec<SegmentRecord> = Vec::new();
    let mut committed: Option<CommitLine> = None;
    let mut pending_shards: FxHashMap<u64, Vec<PageRecord>> = FxHashMap::default();
    let mut pending_segments: Option<Vec<SegmentRecord>> = None;

    'lines: for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = serde_json::parse(line) else {
            break; // torn tail: stop at the first unparsable line
        };
        let Some(kind) = value.get_field("kind").and_then(|v| v.as_str()) else {
            break;
        };
        match kind {
            "base" => {
                let Ok(b) = BaseLine::deserialize(&value) else {
                    break 'lines;
                };
                if b.version != CHECKPOINT_VERSION {
                    return Err(Error::CorruptCheckpoint(format!(
                        "unsupported journal version {} (expected {CHECKPOINT_VERSION})",
                        b.version
                    )));
                }
                base = Some(b);
            }
            "shard" => {
                let Ok(s) = ShardLine::deserialize(&value) else {
                    break 'lines;
                };
                pending_shards.insert(s.shard, s.pages);
            }
            "segments" => {
                let Ok(s) = SegmentsLine::deserialize(&value) else {
                    break 'lines;
                };
                pending_segments = Some(s.segments);
            }
            "commit" => {
                let Ok(c) = CommitLine::deserialize(&value) else {
                    break 'lines;
                };
                for (shard, pages) in pending_shards.drain() {
                    committed_shards.insert(shard, pages);
                }
                if let Some(segments) = pending_segments.take() {
                    committed_segments = segments;
                }
                committed = Some(c);
            }
            // A record kind this build does not know: written by a newer version —
            // nothing after it can be trusted to mean what we'd assume.
            _ => break,
        }
    }

    let base = base
        .ok_or_else(|| Error::CorruptCheckpoint("checkpoint journal has no base record".into()))?;
    let commit = committed.ok_or_else(|| {
        Error::CorruptCheckpoint("checkpoint journal holds no committed checkpoint".into())
    })?;
    let mut pages: Vec<PageRecord> = committed_shards.into_values().flatten().collect();
    pages.sort_unstable_by_key(|p| p.page);
    Ok(JournalCheckpoint {
        num_segments: base.num_segments,
        pages,
        segments: committed_segments,
        frontier: commit.frontier,
        unow: commit.unow,
        next_write_seq: commit.next_write_seq,
        next_seal_seq: commit.next_seal_seq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::policy::PolicyKind;

    fn config() -> StoreConfig {
        StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc)
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let store = LogStore::open_in_memory(config()).unwrap();
        for i in 0..100u64 {
            store.put(i, format!("value-{i}").as_bytes()).unwrap();
        }
        store.flush().unwrap();
        let json = to_json(&store).unwrap();
        let cp = from_json(&json).unwrap();
        assert_eq!(cp.version, CHECKPOINT_VERSION);
        assert_eq!(cp.pages.len(), 100);
        assert!(!cp.segments.is_empty());
        assert_eq!(cp.unow, 100);
        assert_eq!(cp.frontier, cp.next_seal_seq - 1);
        // Every page record carries the write sequence of its current version.
        assert!(cp.pages.iter().all(|p| p.write_seq > 0));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let store = LogStore::open_in_memory(config()).unwrap();
        store.put(1, b"x").unwrap();
        store.flush().unwrap();
        let json = to_json(&store)
            .unwrap()
            .replace("\"version\":2", "\"version\":99");
        assert!(from_json(&json).is_err());
    }

    #[test]
    fn garbage_json_is_rejected() {
        assert!(from_json("not json at all").is_err());
        assert!(from_json("{}").is_err());
    }

    #[test]
    fn checkpoint_with_out_of_range_segment_is_rejected() {
        let cp = Checkpoint {
            version: CHECKPOINT_VERSION,
            unow: 0,
            next_write_seq: 1,
            next_seal_seq: 1,
            frontier: 0,
            pages: vec![PageRecord {
                page: 1,
                segment: 9999,
                offset: 0,
                len: 1,
                write_seq: 1,
            }],
            segments: vec![],
        };
        let cfg = config();
        let dev = MemDevice::new(cfg.segment_bytes, cfg.num_segments);
        assert!(open_from_checkpoint(cfg, Box::new(dev), &cp).is_err());
    }

    /// Full cycle: write, flush, checkpoint, "restart" from the same device + checkpoint,
    /// and verify all data plus the ability to keep writing and cleaning.
    #[test]
    fn reopen_from_checkpoint_preserves_data_and_keeps_working() {
        let cfg = config();
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        let pages = cfg.logical_pages_for_fill_factor(0.5) as u64;
        let payload = vec![5u8; cfg.page_bytes];
        for i in 0..(cfg.physical_pages() as u64 * 2) {
            store.put(i % pages, &payload).unwrap();
        }
        store.flush().unwrap();
        let json = store.checkpoint_json().unwrap();
        let live_before = store.live_pages();

        // Simulated restart: keep the device, rebuild the store from the checkpoint.
        let device = store.into_device();
        let cp = from_json(&json).unwrap();
        assert_eq!(cp.pages.len(), live_before);
        let reopened = open_from_checkpoint(cfg.clone(), device, &cp).unwrap();
        assert_eq!(reopened.live_pages(), live_before);
        for i in 0..pages {
            assert!(
                reopened.get(i).unwrap().is_some(),
                "page {i} missing after reopen"
            );
        }
        // The reopened store keeps accepting writes and cleaning.
        for i in 0..(cfg.physical_pages() as u64) {
            reopened.put(i % pages, &payload).unwrap();
        }
        reopened.flush().unwrap();
        assert_eq!(reopened.live_pages() as u64, pages);
    }

    fn sample_shard_line(shard: u64, page: u64, write_seq: u64) -> String {
        let line = ShardLine {
            kind: "shard".into(),
            shard,
            pages: vec![PageRecord {
                page,
                segment: 1,
                offset: 64,
                len: 32,
                write_seq,
            }],
        };
        line_json(&line).unwrap()
    }

    fn sample_commit(frontier: u64) -> String {
        let line = CommitLine {
            kind: "commit".into(),
            frontier,
            unow: frontier * 10,
            next_write_seq: frontier * 100,
            next_seal_seq: frontier + 1,
            shards_written: 1,
        };
        line_json(&line).unwrap()
    }

    fn sample_base() -> String {
        let line = BaseLine {
            kind: "base".into(),
            version: CHECKPOINT_VERSION,
            num_segments: 64,
            shard_count: 64,
        };
        line_json(&line).unwrap()
    }

    fn sample_segments() -> String {
        line_json(&SegmentsLine {
            kind: "segments".into(),
            segments: vec![],
        })
        .unwrap()
    }

    #[test]
    fn journal_merges_to_last_commit_and_newer_shards_supersede() {
        let text = [
            sample_base(),
            sample_shard_line(3, 7, 1),
            sample_segments(),
            sample_commit(5),
            sample_shard_line(3, 7, 9), // same shard, newer checkpoint
            sample_segments(),
            sample_commit(6),
        ]
        .join("\n");
        let cp = parse_journal(&text).unwrap();
        assert_eq!(cp.frontier, 6);
        assert_eq!(cp.pages.len(), 1);
        assert_eq!(cp.pages[0].write_seq, 9);
        assert_eq!(cp.num_segments, 64);
    }

    #[test]
    fn torn_tail_falls_back_to_previous_commit() {
        let committed = [
            sample_base(),
            sample_shard_line(3, 7, 1),
            sample_segments(),
            sample_commit(5),
        ]
        .join("\n");
        // A later checkpoint whose commit never made it (torn mid-line).
        let torn = format!(
            "{committed}\n{}\n{}\n{{\"kind\":\"com",
            sample_shard_line(3, 7, 9),
            sample_segments()
        );
        let cp = parse_journal(&torn).unwrap();
        assert_eq!(cp.frontier, 5, "must land on the last *committed* frontier");
        assert_eq!(
            cp.pages[0].write_seq, 1,
            "uncommitted shard must be ignored"
        );

        // Same, but the torn line is a shard record: the commit before it still wins.
        let torn_shard = format!("{committed}\n{{\"kind\":\"shard\",\"shard\":3,");
        assert_eq!(parse_journal(&torn_shard).unwrap().frontier, 5);
    }

    #[test]
    fn journal_without_commit_or_base_is_rejected() {
        assert!(parse_journal("").is_err());
        assert!(parse_journal(&sample_base()).is_err());
        let no_base = [sample_shard_line(0, 1, 1), sample_commit(1)].join("\n");
        assert!(parse_journal(&no_base).is_err());
    }

    #[test]
    fn journal_version_mismatch_is_rejected() {
        let bad = sample_base().replace("\"version\":2", "\"version\":99");
        let text = [bad, sample_segments(), sample_commit(1)].join("\n");
        assert!(parse_journal(&text).is_err());
    }

    #[test]
    fn unknown_record_kind_stops_the_merge() {
        let text = [
            sample_base(),
            sample_shard_line(0, 1, 1),
            sample_segments(),
            sample_commit(2),
            "{\"kind\":\"hologram\",\"payload\":1}".to_string(),
            sample_shard_line(0, 1, 50),
            sample_segments(),
            sample_commit(9),
        ]
        .join("\n");
        let cp = parse_journal(&text).unwrap();
        assert_eq!(cp.frontier, 2);
        assert_eq!(cp.pages[0].write_seq, 1);
    }
}
