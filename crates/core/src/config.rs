//! Store configuration: geometry, cleaning parameters, and the frequency-separation
//! options that the paper's breakdown analysis (Figure 3) toggles.

use crate::error::{Error, Result};
use crate::freq::MAX_TEMPERATURE_CLASSES;
use crate::policy::PolicyKind;
use serde::{DeError, Deserialize, Serialize, Value};

/// How the per-segment `up2` (penultimate update time) estimate is maintained.
///
/// The paper describes two readings (see DESIGN.md §4); both are provided so the choice
/// can be ablated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Up2Mode {
    /// The segment's `up2` is fixed when the segment is sealed, to the mean of the `up2`
    /// estimates carried by the pages written into it (literal reading of paper §5.2.2).
    CarryForwardOnly,
    /// In addition to the carry-forward initialisation, the segment tracks its own last
    /// two update times: every overwrite of a live page in the segment advances
    /// `up2 ← up1`, `up1 ← unow` (literal reading of paper §4.3). This is the default.
    #[default]
    OnOverwrite,
}

/// Which write streams are separated (sorted/grouped) by update frequency before being
/// packed into segments. Corresponds to the MDC ablation variants of paper §6.2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeparationConfig {
    /// Sort user writes in the sort buffer by their frequency estimate (`MDC` vs
    /// `MDC-no-sep-user`).
    pub separate_user_writes: bool,
    /// Sort GC relocations by their frequency estimate (`MDC-no-sep-user` vs
    /// `MDC-no-sep-user-GC`).
    pub separate_gc_writes: bool,
}

impl Default for SeparationConfig {
    fn default() -> Self {
        Self {
            separate_user_writes: true,
            separate_gc_writes: true,
        }
    }
}

impl SeparationConfig {
    /// Full separation (the default MDC configuration).
    pub fn full() -> Self {
        Self::default()
    }

    /// `MDC-no-sep-user`: GC writes are still grouped by frequency but user writes are
    /// packed in arrival order.
    pub fn no_user_separation() -> Self {
        Self {
            separate_user_writes: false,
            separate_gc_writes: true,
        }
    }

    /// `MDC-no-sep-user-GC`: neither stream is grouped; only victim selection differs
    /// from greedy.
    pub fn none() -> Self {
        Self {
            separate_user_writes: false,
            separate_gc_writes: false,
        }
    }
}

/// Parameters controlling when cleaning runs and how much it does per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CleaningConfig {
    /// Cleaning is triggered when the number of free segments falls below this value
    /// (paper §6.1.1 uses 32).
    pub trigger_free_segments: usize,
    /// Number of in-use segments cleaned per cleaning cycle (paper §6.1.1 uses 64;
    /// multi-log uses 1). Policies may override via
    /// [`crate::policy::CleaningPolicy::preferred_batch`].
    pub segments_per_cycle: usize,
    /// Number of free segments that must always remain available as the destination of
    /// GC relocations; allocation for user data never dips into this reserve. With
    /// concurrent cleaning ([`StoreConfig::cleaner_threads`] > 1) every in-flight cycle
    /// may hold one reserve segment as its output, so keeping this at least as large as
    /// `cleaner_threads` avoids cycles abandoning victims under distress.
    pub reserved_free_segments: usize,
    /// Fraction of the *current maximum sealed emptiness* a segment tagged with the
    /// coldest temperature class must reach before policy-driven victim selection will
    /// consider it (only in effect when [`StoreConfig::gc_temperature_classes`] > 1).
    /// Cold segments fill with pages that are rarely overwritten, so cleaning them
    /// early just re-copies the same survivors; a higher dead-fraction bar lets them
    /// ripen. The bar is relative — `0.75` means "within 75% of the emptiest sealed
    /// segment" — so cold segments can never be starved out of the victim pool
    /// entirely (the emptiest segment always qualifies, whatever its class). `0.0`
    /// disables the filter; the distress (force-greedy) path always ignores it.
    pub cold_victim_min_emptiness: f64,
}

impl Default for CleaningConfig {
    fn default() -> Self {
        Self {
            trigger_free_segments: 32,
            segments_per_cycle: 64,
            reserved_free_segments: 4,
            cold_victim_min_emptiness: 0.75,
        }
    }
}

/// Thresholds the adaptive GC controller scales against (see
/// [`CleanerMode::Adaptive`]). All of them are read once per controller tick; none are
/// touched on the foreground read/write paths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveTargets {
    /// Fraction of sealed capacity that is dead space below which fragmentation exerts
    /// no widening pressure (extra cycles would mostly shuffle live pages).
    pub dead_space_low: f64,
    /// Fraction of sealed capacity that is dead space at which fragmentation pressure
    /// saturates (cheap, productive victims everywhere — clean as wide as allowed).
    pub dead_space_high: f64,
    /// Consecutive low-pressure controller ticks required before the target shrinks by
    /// one cycle. Scale-*up* is immediate; scale-*down* is damped by this streak so a
    /// bursty (square-wave) load cannot thrash the pool between ticks.
    pub scale_down_ticks: u32,
}

impl Default for AdaptiveTargets {
    fn default() -> Self {
        Self {
            dead_space_low: 0.2,
            dead_space_high: 0.6,
            scale_down_ticks: 3,
        }
    }
}

impl AdaptiveTargets {
    fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.dead_space_low)
            || !(0.0..=1.0).contains(&self.dead_space_high)
            || self.dead_space_low >= self.dead_space_high
        {
            return Err(Error::InvalidConfig(format!(
                "adaptive dead-space thresholds must satisfy 0 <= low < high <= 1, \
                 got low={} high={}",
                self.dead_space_low, self.dead_space_high
            )));
        }
        if self.scale_down_ticks == 0 {
            return Err(Error::InvalidConfig(
                "adaptive scale_down_ticks must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// How the number of concurrent cleaning cycles is chosen.
///
/// * [`CleanerMode::Fixed`] — exactly [`StoreConfig::cleaner_threads`] cycle slots, as
///   in the pre-adaptive design. Bit-for-bit identical behaviour: the controller never
///   runs and the per-cycle victim budget divides by the static pool size.
/// * [`CleanerMode::Adaptive`] — a feedback controller scales the number of *active*
///   cycles (and with it the per-cycle victim budget) between `min_cycles` and
///   `max_cycles` from live pressure signals: free-segment headroom vs the cleaning
///   trigger, the dead fraction of sealed space (the [`crate::StoreStats`] emptiness
///   picture), and writer stall / straggler-reclaim events. The background pool spawns
///   `max_cycles` threads and parks the ones above the current target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CleanerMode {
    /// Static concurrency: always [`StoreConfig::cleaner_threads`] cycle slots.
    Fixed,
    /// Pressure-driven concurrency between the given bounds.
    Adaptive {
        /// Lower bound on the cycle target (the idle-phase pool width). At least 1.
        min_cycles: usize,
        /// Upper bound on the cycle target (and the pool size / hard slot cap). At
        /// most 8, like `cleaner_threads`.
        max_cycles: usize,
        /// Scaling thresholds.
        targets: AdaptiveTargets,
    },
}

impl CleanerMode {
    /// Adaptive mode with the default thresholds.
    pub fn adaptive(min_cycles: usize, max_cycles: usize) -> Self {
        CleanerMode::Adaptive {
            min_cycles,
            max_cycles,
            targets: AdaptiveTargets::default(),
        }
    }

    /// True for [`CleanerMode::Adaptive`].
    pub fn is_adaptive(&self) -> bool {
        matches!(self, CleanerMode::Adaptive { .. })
    }
}

// The vendored serde derive does not support data-carrying enum variants, so the
// (externally-tagged-object) representation is written by hand:
// `{"mode":"fixed"}` / `{"mode":"adaptive","min_cycles":..,"max_cycles":..,"targets":..}`.
impl Serialize for CleanerMode {
    fn serialize(&self) -> Value {
        let mut obj = Value::new_object();
        match self {
            CleanerMode::Fixed => obj.push_field("mode", Value::Str("fixed".into())),
            CleanerMode::Adaptive {
                min_cycles,
                max_cycles,
                targets,
            } => {
                obj.push_field("mode", Value::Str("adaptive".into()));
                obj.push_field("min_cycles", min_cycles.serialize());
                obj.push_field("max_cycles", max_cycles.serialize());
                obj.push_field("targets", targets.serialize());
            }
        }
        obj
    }
}

impl Deserialize for CleanerMode {
    fn deserialize(value: &Value) -> std::result::Result<Self, DeError> {
        let mode: String = serde::field(value, "mode")?;
        match mode.as_str() {
            "fixed" => Ok(CleanerMode::Fixed),
            "adaptive" => Ok(CleanerMode::Adaptive {
                min_cycles: serde::field(value, "min_cycles")?,
                max_cycles: serde::field(value, "max_cycles")?,
                targets: serde::field(value, "targets")?,
            }),
            other => Err(DeError::new(format!("unknown cleaner mode `{other}`"))),
        }
    }
}

/// Checkpoint-journal behaviour (see [`crate::LogStore::checkpoint_log_to`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// If true (the default), repeated checkpoints to the same journal append only the
    /// page-table shards dirtied since the previous checkpoint; clean shards stay
    /// covered by their earlier journal entries. If false, every checkpoint rewrites
    /// all shards (the journal is still append-only; recovery applies the newest
    /// committed entry per shard either way).
    pub incremental: bool,
    /// Update ticks (user writes/deletes) between automatic checkpoints:
    /// [`crate::LogStore::checkpoint_due`] turns true once this many updates have
    /// happened since the last journal checkpoint. `0` (the default) disables the
    /// cadence — checkpoints are taken only when the embedder asks for one.
    pub cadence_updates: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            incremental: true,
            cadence_updates: 0,
        }
    }
}

/// Configuration of a [`crate::LogStore`] (and, with the same meaning, of the simulator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Byte size of a segment, the unit of space reclamation (paper default: 2 MiB).
    pub segment_bytes: usize,
    /// Number of physical segments on the device.
    pub num_segments: usize,
    /// Nominal page size in bytes (paper default: 4 KiB). The store accepts variable-size
    /// payloads up to the segment payload capacity; this value sizes internal buffers and
    /// is the unit used by fill-factor helpers.
    pub page_bytes: usize,
    /// Cleaning policy to use.
    pub policy: PolicyKind,
    /// Cleaning trigger/batch parameters.
    pub cleaning: CleaningConfig,
    /// Which write streams are grouped by update frequency (paper §5.3 / Figure 3).
    pub separation: SeparationConfig,
    /// Size of the user-write sort buffer, in segments (paper Figure 4; 16 is the knee).
    /// A value of 0 disables buffering: each user write goes straight to the open segment.
    ///
    /// This budget is **per write stream**: each of the
    /// [`write_streams`](StoreConfig::write_streams) shards batches this many segments'
    /// worth of writes before draining, because the batch size is what the paper's
    /// `up2` carry-forward estimates and frequency-separated packing depend on.
    /// Aggregate buffered (volatile) memory is therefore `write_streams ×
    /// sort_buffer_segments` segments.
    pub sort_buffer_segments: usize,
    /// How the per-segment `up2` estimate is maintained.
    pub up2_mode: Up2Mode,
    /// Number of independent write streams the store shards its write path into.
    ///
    /// Pages are routed to a stream by page-id hash; each stream owns its own slice of
    /// the sort buffer and its own open output segments, so writers on different streams
    /// append in parallel and only touch the shared coordination layer (segment table,
    /// policy, free-space accounting) for short allocation/seal/accounting operations.
    /// `1` reproduces the single-write-mutex behaviour of earlier versions. Writes to
    /// the *same* page always hit the same stream, preserving per-page ordering.
    pub write_streams: usize,
    /// Maximum number of cleaning cycles that may run concurrently (and the size of the
    /// [`crate::shared::BackgroundCleaner`] thread pool a `SharedLogStore` spawns).
    ///
    /// Cycles run on **disjoint victim sets**: victims are claimed atomically in the
    /// segment table at selection time, so two cycles can never pick the same slot, and
    /// relocations commit by per-page compare-and-swap, so concurrent commits are safe.
    /// `1` reproduces the strictly serialised single-cycle behaviour of earlier
    /// versions. Writers that lend their own thread to a synchronous cycle count
    /// against the same limit.
    ///
    /// With [`CleanerMode::Adaptive`] this knob is superseded: the pool size and slot
    /// cap come from the mode's `max_cycles` (see
    /// [`StoreConfig::max_cleaner_cycles`]).
    pub cleaner_threads: usize,
    /// How cleaning concurrency is chosen: static ([`CleanerMode::Fixed`], the
    /// default — exactly `cleaner_threads` cycles) or pressure-driven
    /// ([`CleanerMode::Adaptive`] — a controller scales the active cycle count between
    /// its bounds from free-segment headroom, sealed-space fragmentation and writer
    /// stall events).
    pub cleaner_mode: CleanerMode,
    /// Number of I/O workers a cleaning cycle pipelines its phase-2 victim-image reads
    /// across. The reads (the dominant cost of cleaning) are prefetched with a bounded
    /// lookahead window while earlier victims are being relocated; `1` reads images one
    /// at a time as earlier versions did.
    pub gc_read_pool: usize,
    /// Number of temperature classes the cleaner splits its relocation output across.
    ///
    /// `1` (the default) reproduces the temperature-unaware cleaner bit-for-bit: one GC
    /// output stream per output log, no survivor classification, no segment temperature
    /// tags, and no cold-victim filtering. With `N > 1`, each cleaning cycle samples
    /// every survivor's decayed write count from the store's [`crate::freq::PageHeat`]
    /// sketch, ranks the batch into `N` classes ([`crate::freq::classify_heat`]) and
    /// relocates each class into its own open output segment — so cold survivors pack
    /// together and stop being dragged along every time a hot neighbour dies. Output
    /// segments inherit their class as a temperature tag, which victim selection uses
    /// to hold coldest-class segments back until they pass
    /// [`CleaningConfig::cold_victim_min_emptiness`].
    pub gc_temperature_classes: usize,
    /// If true, a second write to a page that is still sitting in the (unflushed) sort
    /// buffer overwrites it in place instead of appending a new copy. Real systems do
    /// this; the paper's simulator does not (every user write is a page write), so the
    /// simulator runs with this disabled.
    pub absorb_updates_in_buffer: bool,
    /// Verify segment checksums on every read (cheap for the header/entry table; the
    /// payload itself is not checksummed per-read).
    pub verify_checksums_on_read: bool,
    /// Checkpoint-journal cadence and incrementality (see [`CheckpointConfig`]).
    pub checkpoint: CheckpointConfig,
}

impl StoreConfig {
    /// The paper's simulation geometry: 4 KiB pages, 2 MiB segments (512 pages each).
    /// `num_segments` is left at a laptop-friendly default and should be adjusted with
    /// [`StoreConfig::with_num_segments`] or [`StoreConfig::with_capacity_bytes`].
    pub fn paper_default() -> Self {
        Self {
            segment_bytes: 2 * 1024 * 1024,
            num_segments: 1024,
            page_bytes: 4096,
            policy: PolicyKind::Mdc,
            cleaning: CleaningConfig::default(),
            separation: SeparationConfig::default(),
            sort_buffer_segments: 16,
            up2_mode: Up2Mode::default(),
            write_streams: 4,
            cleaner_threads: 2,
            cleaner_mode: CleanerMode::Fixed,
            gc_read_pool: 4,
            gc_temperature_classes: 1,
            absorb_updates_in_buffer: true,
            verify_checksums_on_read: true,
            checkpoint: CheckpointConfig::default(),
        }
    }

    /// A tiny geometry suitable for unit tests and doc examples: 4 KiB segments holding
    /// 16 × 256-byte pages, 64 segments total.
    pub fn small_for_tests() -> Self {
        Self {
            segment_bytes: 4096,
            num_segments: 64,
            page_bytes: 256,
            policy: PolicyKind::Greedy,
            cleaning: CleaningConfig {
                trigger_free_segments: 4,
                segments_per_cycle: 4,
                reserved_free_segments: 2,
                ..CleaningConfig::default()
            },
            separation: SeparationConfig::default(),
            sort_buffer_segments: 2,
            up2_mode: Up2Mode::default(),
            write_streams: 2,
            // Serialised cycles by default so existing tests stay deterministic; the
            // concurrency suites opt into 2 or 4 explicitly.
            cleaner_threads: 1,
            cleaner_mode: CleanerMode::Fixed,
            gc_read_pool: 2,
            gc_temperature_classes: 1,
            absorb_updates_in_buffer: false,
            verify_checksums_on_read: true,
            checkpoint: CheckpointConfig::default(),
        }
    }

    /// Builder-style: set the cleaning policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style: set the number of physical segments.
    pub fn with_num_segments(mut self, n: usize) -> Self {
        self.num_segments = n;
        self
    }

    /// Builder-style: size the device to hold roughly `bytes` of raw capacity.
    pub fn with_capacity_bytes(mut self, bytes: u64) -> Self {
        self.num_segments = ((bytes as usize) / self.segment_bytes).max(1);
        self
    }

    /// Builder-style: set the sort-buffer size in segments.
    pub fn with_sort_buffer_segments(mut self, n: usize) -> Self {
        self.sort_buffer_segments = n;
        self
    }

    /// Builder-style: set the separation configuration.
    pub fn with_separation(mut self, sep: SeparationConfig) -> Self {
        self.separation = sep;
        self
    }

    /// Builder-style: set the `up2` maintenance mode.
    pub fn with_up2_mode(mut self, mode: Up2Mode) -> Self {
        self.up2_mode = mode;
        self
    }

    /// Builder-style: set the number of independent write streams.
    pub fn with_write_streams(mut self, n: usize) -> Self {
        self.write_streams = n;
        self
    }

    /// Builder-style: set the maximum number of concurrent cleaning cycles (and the
    /// background-cleaner pool size).
    pub fn with_cleaner_threads(mut self, n: usize) -> Self {
        self.cleaner_threads = n;
        self
    }

    /// Builder-style: set the cleaner-concurrency mode (see [`CleanerMode`]).
    pub fn with_cleaner_mode(mut self, mode: CleanerMode) -> Self {
        self.cleaner_mode = mode;
        self
    }

    /// Builder-style: set the per-cycle victim-read I/O pool size.
    pub fn with_gc_read_pool(mut self, n: usize) -> Self {
        self.gc_read_pool = n;
        self
    }

    /// Builder-style: set the number of GC output temperature classes (see
    /// [`StoreConfig::gc_temperature_classes`]; `1` disables classification).
    pub fn with_gc_temperature_classes(mut self, n: usize) -> Self {
        self.gc_temperature_classes = n;
        self
    }

    /// Builder-style: set the checkpoint-journal behaviour (see [`CheckpointConfig`]).
    pub fn with_checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = checkpoint;
        self
    }

    /// Builder-style: set the automatic-checkpoint cadence in update ticks
    /// (`0` disables it; see [`CheckpointConfig::cadence_updates`]).
    pub fn with_checkpoint_cadence(mut self, updates: u64) -> Self {
        self.checkpoint.cadence_updates = updates;
        self
    }

    /// The hard upper bound on concurrent cleaning cycles this configuration allows:
    /// `cleaner_threads` in [`CleanerMode::Fixed`], the mode's `max_cycles` in
    /// [`CleanerMode::Adaptive`]. This is the background-pool size and the cycle-slot
    /// cap.
    pub fn max_cleaner_cycles(&self) -> usize {
        match self.cleaner_mode {
            CleanerMode::Fixed => self.cleaner_threads.max(1),
            CleanerMode::Adaptive { max_cycles, .. } => max_cycles.max(1),
        }
    }

    /// The lower bound on concurrent cleaning cycles: `cleaner_threads` in
    /// [`CleanerMode::Fixed`] (the target never moves), the mode's `min_cycles` in
    /// [`CleanerMode::Adaptive`].
    pub fn min_cleaner_cycles(&self) -> usize {
        match self.cleaner_mode {
            CleanerMode::Fixed => self.cleaner_threads.max(1),
            CleanerMode::Adaptive { min_cycles, .. } => min_cycles.max(1),
        }
    }

    /// Apply the environment overrides honoured across the benches and the CI stress
    /// job, clamped to the ranges validation accepts:
    ///
    /// * `LSS_WRITE_STREAMS` — number of independent write streams (1..=16);
    /// * `LSS_CLEANER_THREADS` — fixed-mode pool size (1..=8);
    /// * `LSS_CLEANER_MODE` — `fixed` or `adaptive` (adaptive defaults to bounds
    ///   `1..=max_cleaner_cycles()` of the base config);
    /// * `LSS_CLEANER_MIN_CYCLES` / `LSS_CLEANER_MAX_CYCLES` — adaptive bounds
    ///   (imply `LSS_CLEANER_MODE=adaptive` when either is set);
    /// * `LSS_GC_TEMPERATURE_CLASSES` — GC output temperature classes (1..=8);
    /// * `LSS_CHECKPOINT_INCREMENTAL` — `1`/`0` to enable/disable incremental
    ///   checkpoint journalling ([`CheckpointConfig::incremental`]);
    /// * `LSS_CHECKPOINT_CADENCE` — automatic-checkpoint cadence in update ticks
    ///   (`0` disables; [`CheckpointConfig::cadence_updates`]).
    pub fn with_env_overrides(self) -> Self {
        self.with_overrides_from(|name| std::env::var(name).ok())
    }

    /// The injectable core of [`StoreConfig::with_env_overrides`]: the same override
    /// logic over an arbitrary variable lookup. Tests use this with a closure instead
    /// of mutating the process environment (`setenv` racing `getenv` on other threads
    /// is undefined behaviour on common libcs).
    pub fn with_overrides_from(mut self, lookup: impl Fn(&str) -> Option<String>) -> Self {
        let get_usize = |name: &str| lookup(name).and_then(|v| v.parse::<usize>().ok());
        if let Some(n) = get_usize("LSS_WRITE_STREAMS") {
            self.write_streams = n.clamp(1, 16);
        }
        if let Some(n) = get_usize("LSS_CLEANER_THREADS") {
            self.cleaner_threads = n.clamp(1, 8);
        }
        if let Some(n) = get_usize("LSS_GC_TEMPERATURE_CLASSES") {
            self.gc_temperature_classes = n.clamp(1, MAX_TEMPERATURE_CLASSES);
        }
        if let Some(n) = get_usize("LSS_CHECKPOINT_INCREMENTAL") {
            self.checkpoint.incremental = n != 0;
        }
        if let Some(n) = lookup("LSS_CHECKPOINT_CADENCE").and_then(|v| v.parse::<u64>().ok()) {
            self.checkpoint.cadence_updates = n;
        }
        let min = get_usize("LSS_CLEANER_MIN_CYCLES");
        let max = get_usize("LSS_CLEANER_MAX_CYCLES");
        let mode = lookup("LSS_CLEANER_MODE");
        let wants_adaptive = min.is_some()
            || max.is_some()
            || mode
                .as_deref()
                .is_some_and(|m| m.eq_ignore_ascii_case("adaptive"));
        if mode
            .as_deref()
            .is_some_and(|m| m.eq_ignore_ascii_case("fixed"))
        {
            self.cleaner_mode = CleanerMode::Fixed;
        } else if wants_adaptive {
            let hi = max.unwrap_or(self.max_cleaner_cycles()).clamp(1, 8);
            let lo = min.unwrap_or(1).clamp(1, hi);
            self.cleaner_mode = CleanerMode::adaptive(lo, hi);
        }
        self
    }

    /// Number of fixed-size pages that fit into one segment payload area.
    ///
    /// This is the `S` of the paper (512 with the default 4 KiB pages / 2 MiB segments).
    /// It accounts for the per-segment header/entry overhead of the on-device layout.
    pub fn pages_per_segment(&self) -> usize {
        let payload = crate::layout::payload_capacity(self.segment_bytes, self.page_bytes);
        payload / self.page_bytes
    }

    /// Total number of fixed-size page frames the device provides.
    pub fn physical_pages(&self) -> usize {
        self.pages_per_segment() * self.num_segments
    }

    /// Number of distinct logical pages that corresponds to a given fill factor `F`
    /// (the fraction of physical space occupied by current page versions).
    pub fn logical_pages_for_fill_factor(&self, fill_factor: f64) -> usize {
        assert!(
            fill_factor > 0.0 && fill_factor < 1.0,
            "fill factor must be in (0, 1), got {fill_factor}"
        );
        ((self.physical_pages() as f64) * fill_factor).floor() as usize
    }

    /// Validate the configuration, returning a descriptive error if it cannot work.
    pub fn validate(&self) -> Result<()> {
        if self.segment_bytes == 0 || self.page_bytes == 0 {
            return Err(Error::InvalidConfig(
                "segment and page sizes must be non-zero".into(),
            ));
        }
        if self.page_bytes > crate::layout::payload_capacity(self.segment_bytes, self.page_bytes) {
            return Err(Error::InvalidConfig(format!(
                "page size {} does not fit in a segment of {} bytes after layout overhead",
                self.page_bytes, self.segment_bytes
            )));
        }
        if self.num_segments < 4 {
            return Err(Error::InvalidConfig(format!(
                "at least 4 segments are required, got {}",
                self.num_segments
            )));
        }
        if self.cleaning.reserved_free_segments + 1 >= self.num_segments {
            return Err(Error::InvalidConfig(
                "reserved_free_segments must be much smaller than num_segments".into(),
            ));
        }
        if self.cleaning.trigger_free_segments <= self.cleaning.reserved_free_segments {
            return Err(Error::InvalidConfig(
                "trigger_free_segments must exceed reserved_free_segments".into(),
            ));
        }
        // The cap keeps the per-stream open-log bound meaningful: at 16 streams each
        // stream still gets 32/16 = 2 open logs, so total user opens never exceed the
        // multi-log policy's 32 regardless of the stream count.
        if self.write_streams == 0 || self.write_streams > 16 {
            return Err(Error::InvalidConfig(format!(
                "write_streams must be in 1..=16, got {}",
                self.write_streams
            )));
        }
        // Bounded so a runaway configuration cannot spawn an unbounded cleaner pool or
        // pin an unbounded number of claimed victims; 8 concurrent cycles saturate any
        // device this store targets.
        if self.cleaner_threads == 0 || self.cleaner_threads > 8 {
            return Err(Error::InvalidConfig(format!(
                "cleaner_threads must be in 1..=8, got {}",
                self.cleaner_threads
            )));
        }
        if let CleanerMode::Adaptive {
            min_cycles,
            max_cycles,
            targets,
        } = self.cleaner_mode
        {
            // Same bound as `cleaner_threads`, for the same reason: the adaptive max is
            // the pool size and the claimed-victim budget.
            if min_cycles == 0 || max_cycles > 8 || min_cycles > max_cycles {
                return Err(Error::InvalidConfig(format!(
                    "adaptive cleaner bounds must satisfy 1 <= min <= max <= 8, \
                     got {min_cycles}..={max_cycles}"
                )));
            }
            targets.validate()?;
        }
        if self.gc_read_pool == 0 || self.gc_read_pool > 16 {
            return Err(Error::InvalidConfig(format!(
                "gc_read_pool must be in 1..=16, got {}",
                self.gc_read_pool
            )));
        }
        // Bounded so the composite (class, log) GC-stream keys stay within u16 and the
        // per-class statistics arrays stay fixed-width.
        if self.gc_temperature_classes == 0 || self.gc_temperature_classes > MAX_TEMPERATURE_CLASSES
        {
            return Err(Error::InvalidConfig(format!(
                "gc_temperature_classes must be in 1..={MAX_TEMPERATURE_CLASSES}, got {}",
                self.gc_temperature_classes
            )));
        }
        if !(0.0..=1.0).contains(&self.cleaning.cold_victim_min_emptiness) {
            return Err(Error::InvalidConfig(format!(
                "cold_victim_min_emptiness must be in [0, 1], got {}",
                self.cleaning.cold_victim_min_emptiness
            )));
        }
        if self.write_streams * 2 >= self.num_segments {
            return Err(Error::InvalidConfig(format!(
                "num_segments ({}) must exceed 2 * write_streams ({}): every stream \
                 needs at least an open segment plus allocation headroom",
                self.num_segments,
                2 * self.write_streams
            )));
        }
        Ok(())
    }
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_512_pages_per_segment_before_overhead() {
        let c = StoreConfig::paper_default();
        // Layout overhead costs a few page slots; the remaining capacity must still be
        // close to the nominal 512 pages of the paper.
        let pps = c.pages_per_segment();
        assert!((500..=512).contains(&pps), "pages per segment = {pps}");
    }

    #[test]
    fn small_config_validates() {
        StoreConfig::small_for_tests().validate().unwrap();
        StoreConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = StoreConfig::small_for_tests();
        c.num_segments = 2;
        assert!(c.validate().is_err());

        let mut c = StoreConfig::small_for_tests();
        c.page_bytes = c.segment_bytes * 2;
        assert!(c.validate().is_err());

        let mut c = StoreConfig::small_for_tests();
        c.cleaning.trigger_free_segments = c.cleaning.reserved_free_segments;
        assert!(c.validate().is_err());

        let mut c = StoreConfig::small_for_tests();
        c.write_streams = 0;
        assert!(c.validate().is_err());
        c.write_streams = 17; // above the cap that keeps total open logs bounded
        assert!(c.validate().is_err());
        c.num_segments = 20;
        c.write_streams = 10; // 2 * 10 >= 20 segments
        assert!(c.validate().is_err());

        let mut c = StoreConfig::small_for_tests();
        c.cleaner_threads = 0;
        assert!(c.validate().is_err());
        c.cleaner_threads = 9; // above the concurrent-cycle cap
        assert!(c.validate().is_err());

        let mut c = StoreConfig::small_for_tests();
        c.gc_read_pool = 0;
        assert!(c.validate().is_err());
        c.gc_read_pool = 17;
        assert!(c.validate().is_err());

        let mut c = StoreConfig::small_for_tests();
        c.gc_temperature_classes = 0;
        assert!(c.validate().is_err());
        c.gc_temperature_classes = MAX_TEMPERATURE_CLASSES + 1;
        assert!(c.validate().is_err());

        let mut c = StoreConfig::small_for_tests();
        c.cleaning.cold_victim_min_emptiness = 1.5;
        assert!(c.validate().is_err());
        c.cleaning.cold_victim_min_emptiness = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn temperature_class_overrides_and_builder() {
        let c = StoreConfig::small_for_tests().with_gc_temperature_classes(4);
        assert_eq!(c.gc_temperature_classes, 4);
        c.validate().unwrap();

        let c = StoreConfig::small_for_tests().with_overrides_from(|name| {
            (name == "LSS_GC_TEMPERATURE_CLASSES").then(|| "3".to_string())
        });
        assert_eq!(c.gc_temperature_classes, 3);
        // Clamped into the validated range rather than rejected.
        let c = StoreConfig::small_for_tests().with_overrides_from(|name| {
            (name == "LSS_GC_TEMPERATURE_CLASSES").then(|| "99".to_string())
        });
        assert_eq!(c.gc_temperature_classes, MAX_TEMPERATURE_CLASSES);
        let c = StoreConfig::small_for_tests().with_overrides_from(|name| {
            (name == "LSS_GC_TEMPERATURE_CLASSES").then(|| "0".to_string())
        });
        assert_eq!(c.gc_temperature_classes, 1);
    }

    #[test]
    fn checkpoint_knobs_default_build_and_override() {
        let c = StoreConfig::small_for_tests();
        assert!(c.checkpoint.incremental);
        assert_eq!(c.checkpoint.cadence_updates, 0);

        let c = c.with_overrides_from(|name| match name {
            "LSS_CHECKPOINT_INCREMENTAL" => Some("0".to_string()),
            "LSS_CHECKPOINT_CADENCE" => Some("5000".to_string()),
            _ => None,
        });
        assert!(!c.checkpoint.incremental);
        assert_eq!(c.checkpoint.cadence_updates, 5000);
        c.validate().unwrap();

        let c = StoreConfig::small_for_tests()
            .with_checkpoint(CheckpointConfig {
                incremental: false,
                cadence_updates: 64,
            })
            .with_checkpoint_cadence(12);
        assert!(!c.checkpoint.incremental);
        assert_eq!(c.checkpoint.cadence_updates, 12);
    }

    #[test]
    fn fill_factor_helper_scales_with_f() {
        let c = StoreConfig::small_for_tests();
        let p50 = c.logical_pages_for_fill_factor(0.5);
        let p80 = c.logical_pages_for_fill_factor(0.8);
        assert!(p80 > p50);
        assert!(p80 <= c.physical_pages());
    }

    #[test]
    #[should_panic(expected = "fill factor")]
    fn fill_factor_of_one_panics() {
        StoreConfig::small_for_tests().logical_pages_for_fill_factor(1.0);
    }

    #[test]
    fn builder_methods_compose() {
        let c = StoreConfig::paper_default()
            .with_policy(PolicyKind::Greedy)
            .with_num_segments(128)
            .with_sort_buffer_segments(4)
            .with_separation(SeparationConfig::none())
            .with_up2_mode(Up2Mode::CarryForwardOnly)
            .with_write_streams(8)
            .with_cleaner_threads(4)
            .with_gc_read_pool(8);
        assert_eq!(c.policy, PolicyKind::Greedy);
        assert_eq!(c.num_segments, 128);
        assert_eq!(c.sort_buffer_segments, 4);
        assert!(!c.separation.separate_user_writes);
        assert_eq!(c.up2_mode, Up2Mode::CarryForwardOnly);
        assert_eq!(c.write_streams, 8);
        assert_eq!(c.cleaner_threads, 4);
        assert_eq!(c.gc_read_pool, 8);
        c.validate().unwrap();
    }

    #[test]
    fn capacity_builder_rounds_down_to_segments() {
        let c = StoreConfig::paper_default().with_capacity_bytes(10 * 1024 * 1024);
        assert_eq!(c.num_segments, 5); // 10 MiB / 2 MiB
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let c = StoreConfig::paper_default();
        let json = serde_json::to_string(&c).unwrap();
        let back: StoreConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);

        // Including the hand-written CleanerMode representation, both variants.
        let c = StoreConfig::paper_default().with_cleaner_mode(CleanerMode::adaptive(1, 4));
        let json = serde_json::to_string(&c).unwrap();
        let back: StoreConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn adaptive_mode_bounds_are_validated() {
        for (min, max) in [(0usize, 4usize), (5, 4), (1, 9)] {
            let c =
                StoreConfig::small_for_tests().with_cleaner_mode(CleanerMode::adaptive(min, max));
            assert!(c.validate().is_err(), "bounds {min}..={max} accepted");
        }
        let c = StoreConfig::small_for_tests().with_cleaner_mode(CleanerMode::adaptive(1, 4));
        c.validate().unwrap();
        assert_eq!(c.max_cleaner_cycles(), 4);
        assert_eq!(c.min_cleaner_cycles(), 1);

        let bad = AdaptiveTargets {
            dead_space_low: 0.8, // >= high
            ..Default::default()
        };
        let c = StoreConfig::small_for_tests().with_cleaner_mode(CleanerMode::Adaptive {
            min_cycles: 1,
            max_cycles: 2,
            targets: bad,
        });
        assert!(c.validate().is_err());

        let bad = AdaptiveTargets {
            scale_down_ticks: 0,
            ..Default::default()
        };
        let c = StoreConfig::small_for_tests().with_cleaner_mode(CleanerMode::Adaptive {
            min_cycles: 1,
            max_cycles: 2,
            targets: bad,
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn fixed_mode_cycle_bounds_follow_cleaner_threads() {
        let c = StoreConfig::small_for_tests().with_cleaner_threads(3);
        assert_eq!(c.max_cleaner_cycles(), 3);
        assert_eq!(c.min_cleaner_cycles(), 3);
        assert!(!c.cleaner_mode.is_adaptive());
    }
}
