//! In-memory bookkeeping for segments: the quantities the cleaning analysis needs
//! (`A`, `C`, `up2`, seal sequence) and the free/open/sealed life-cycle.

use crate::config::Up2Mode;
use crate::freq::{SegmentFreq, TEMPERATURE_UNCLASSIFIED};
use crate::policy::SegmentStats;
use crate::types::{SealSeq, SegmentId, UpdateTick};

/// Metadata for a segment that currently contains data (open or sealed).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    /// Which segment this is.
    pub id: SegmentId,
    /// `B`: payload capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes of live page payloads currently in the segment.
    pub live_bytes: u64,
    /// `C`: number of live pages.
    pub live_pages: u64,
    /// Update-recency tracker providing `up2`.
    pub freq: SegmentFreq,
    /// Seal sequence (0 while still open; assigned at seal time).
    pub seal_seq: SealSeq,
    /// Update tick at which the segment was sealed (0 while open).
    pub sealed_at: UpdateTick,
    /// Output log the segment belongs to.
    pub log_id: u16,
    /// Temperature class of the segment's contents: set when a cleaning cycle fills a
    /// GC output segment with survivors of one class (`0` = coldest), and
    /// [`crate::freq::TEMPERATURE_UNCLASSIFIED`] for user-filled segments. **In-memory
    /// only** — the tag is a routing hint, not data: it is not persisted in the segment
    /// footer or checkpoints, so after recovery every segment restarts unclassified
    /// (treated as hot) and the tags re-form within one cleaning pass.
    pub temperature: u16,
    /// Sum of exact per-page update frequencies of the live pages, when known.
    pub exact_upf_sum: f64,
    /// Whether `exact_upf_sum` is meaningful (any exact frequency was ever supplied).
    pub has_exact_upf: bool,
    /// Bytes of `live_bytes` that are tombstone entries rather than page payloads.
    ///
    /// A tombstone is a delete fact the cleaner must preserve (re-emit) until it is
    /// provably redundant, so its entry-table footprint is charged against the segment
    /// as live space — otherwise a segment full of tombstones ranks as a perfectly
    /// empty victim and cleaning would relocate the same delete records forever at zero
    /// net reclaim. The charge is lifted wholesale once a checkpoint commit covers the
    /// segment's seal sequence (see [`SegmentTable::uncharge_covered_tombstones`]): from
    /// that point the delete facts are durable in the checkpoint journal and the
    /// cleaner is allowed to drop them.
    pub tombstone_bytes: u64,
}

impl SegmentMeta {
    /// Create metadata for a newly opened segment.
    pub fn new_open(id: SegmentId, capacity_bytes: u64, log_id: u16, up2_mode: Up2Mode) -> Self {
        Self {
            id,
            capacity_bytes,
            live_bytes: 0,
            live_pages: 0,
            freq: SegmentFreq::new(up2_mode, 0, 0),
            seal_seq: 0,
            sealed_at: 0,
            log_id,
            temperature: TEMPERATURE_UNCLASSIFIED,
            exact_upf_sum: 0.0,
            has_exact_upf: false,
            tombstone_bytes: 0,
        }
    }

    /// `A`: reclaimable bytes (capacity not occupied by live pages).
    #[inline]
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.live_bytes)
    }

    /// `E = A / B`.
    #[inline]
    pub fn emptiness(&self) -> f64 {
        if self.capacity_bytes == 0 {
            0.0
        } else {
            self.free_bytes() as f64 / self.capacity_bytes as f64
        }
    }

    /// Record that a live page of `size` bytes was added (the segment is being filled).
    pub fn on_page_added(&mut self, size: u32, exact_freq: Option<f64>) {
        self.live_bytes += size as u64;
        self.live_pages += 1;
        if let Some(f) = exact_freq {
            self.exact_upf_sum += f;
            self.has_exact_upf = true;
        }
    }

    /// Record that a tombstone entry was appended to the segment: its entry-table
    /// footprint is charged as live space (but not as a live page — the relocation
    /// cost `C` the policies reason about stays page-based).
    pub fn on_tombstone_added(&mut self) {
        self.live_bytes += crate::layout::ENTRY_SIZE as u64;
        self.tombstone_bytes += crate::layout::ENTRY_SIZE as u64;
    }

    /// Lift the tombstone charge: the delete facts in this segment are durable
    /// elsewhere (checkpointed), so their space is reclaimable again.
    pub fn uncharge_tombstones(&mut self) {
        self.live_bytes = self.live_bytes.saturating_sub(self.tombstone_bytes);
        self.tombstone_bytes = 0;
    }

    /// Record that a live page of `size` bytes was superseded (overwritten elsewhere or
    /// deleted) at update tick `unow`.
    pub fn on_page_dead(&mut self, size: u32, unow: UpdateTick, exact_freq: Option<f64>) {
        debug_assert!(
            self.live_pages > 0,
            "page death on empty segment {}",
            self.id
        );
        self.live_bytes = self.live_bytes.saturating_sub(size as u64);
        self.live_pages = self.live_pages.saturating_sub(1);
        self.freq.on_overwrite(unow);
        if let Some(f) = exact_freq {
            self.exact_upf_sum = (self.exact_upf_sum - f).max(0.0);
        }
    }

    /// Seal the segment: fix its seal sequence, seal time and carried `up2`.
    pub fn seal(
        &mut self,
        seal_seq: SealSeq,
        sealed_at: UpdateTick,
        carried_up2: UpdateTick,
        up2_mode: Up2Mode,
    ) {
        self.seal_seq = seal_seq;
        self.sealed_at = sealed_at;
        self.freq = SegmentFreq::new(up2_mode, carried_up2, sealed_at);
    }

    /// Snapshot for the cleaning policies.
    pub fn stats(&self) -> SegmentStats {
        SegmentStats {
            id: self.id,
            capacity_bytes: self.capacity_bytes,
            free_bytes: self.free_bytes(),
            live_pages: self.live_pages,
            up2: self.freq.up2(),
            sealed_at: self.sealed_at,
            seal_seq: self.seal_seq,
            log_id: self.log_id,
            temperature: self.temperature,
            exact_upf: if self.has_exact_upf {
                Some(self.exact_upf_sum)
            } else {
                None
            },
        }
    }
}

/// Life-cycle state of a physical segment slot.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentState {
    /// No live data; available for allocation.
    Free,
    /// Currently being filled (its image lives in a [`crate::layout::SegmentBuilder`]).
    Open(SegmentMeta),
    /// Written to the device; a candidate for cleaning.
    Sealed(SegmentMeta),
}

impl SegmentState {
    /// The metadata, if the segment currently holds data.
    pub fn meta(&self) -> Option<&SegmentMeta> {
        match self {
            SegmentState::Free => None,
            SegmentState::Open(m) | SegmentState::Sealed(m) => Some(m),
        }
    }

    /// Mutable metadata, if the segment currently holds data.
    pub fn meta_mut(&mut self) -> Option<&mut SegmentMeta> {
        match self {
            SegmentState::Free => None,
            SegmentState::Open(m) | SegmentState::Sealed(m) => Some(m),
        }
    }

    /// True if the segment is free.
    pub fn is_free(&self) -> bool {
        matches!(self, SegmentState::Free)
    }

    /// True if the segment is sealed.
    pub fn is_sealed(&self) -> bool {
        matches!(self, SegmentState::Sealed(_))
    }
}

/// Owner token for quarantine entries whose cleaning cycle aborted: the next
/// sync point that seals the orphaned GC output builders adopts them (see
/// [`SegmentTable::quarantine_orphan`]). Live cycles use tokens starting at 1.
pub const ORPHAN_CYCLE: u64 = 0;

/// One victim parked in the reclamation quarantine, with the state machine that gates
/// its reuse: `parked` (relocations may still sit in the owning cycle's in-memory GC
/// builders) → `sealed` (every relocated copy has been written to the device) →
/// `synced` (a device sync has landed *after* those writes). Only synced entries with
/// no reader pins are reaped back to the free list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QuarantineEntry {
    id: SegmentId,
    /// Token of the cleaning cycle that released this victim ([`ORPHAN_CYCLE`] after
    /// that cycle aborted and handed its output builders to the orphan pool).
    owner: u64,
    /// True once every relocated copy of this victim's live pages has been written to
    /// the device (the owning cycle sealed its GC outputs, or the orphan pool was
    /// sealed on its behalf).
    sealed: bool,
    /// True once a device sync has landed after the entry was sealed.
    synced: bool,
}

/// The signals the adaptive GC controller reads in one segment-table pass (see
/// [`SegmentTable::pressure`]). The *dead fraction* of sealed space —
/// `1 − sealed_live_bytes / sealed_capacity_bytes` — is the store-wide emptiness the
/// controller treats as "how productive would extra cleaning cycles be".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureSnapshot {
    /// Free segments (excluding quarantined victims awaiting reuse).
    pub free: usize,
    /// Sealed segments on the device.
    pub sealed_segments: u64,
    /// Live payload bytes accounted to sealed segments.
    pub sealed_live_bytes: u64,
    /// Payload capacity of the sealed segments.
    pub sealed_capacity_bytes: u64,
    /// Victims parked in the reclamation quarantine.
    pub quarantined: usize,
    /// Victims claimed by in-flight cleaning cycles.
    pub claimed: usize,
}

impl PressureSnapshot {
    /// Fraction of sealed capacity that is dead (reclaimable) space, in `[0, 1]`;
    /// 0 when nothing is sealed.
    pub fn dead_fraction(&self) -> f64 {
        if self.sealed_capacity_bytes == 0 {
            0.0
        } else {
            1.0 - self.sealed_live_bytes as f64 / self.sealed_capacity_bytes as f64
        }
    }
}

/// Table of all physical segments plus the free list, the reclamation quarantine and
/// the seal-sequence counter.
#[derive(Debug)]
pub struct SegmentTable {
    states: Vec<SegmentState>,
    free: Vec<SegmentId>,
    /// Segments released by the cleaner but not yet eligible for reuse: their slots must
    /// stay untouched until (a) the relocated copies of their live pages are durable on
    /// the device (crash safety: the old copies are the only durable ones until then —
    /// tracked by the per-entry `sealed`/`synced` state, see [`QuarantineEntry`]) and
    /// (b) no in-flight reader still holds the slot pinned (read safety: a ranged read
    /// may be in progress against the old image).
    quarantine: Vec<QuarantineEntry>,
    /// Victims claimed by an in-flight cleaning cycle. Claimed segments stay `Sealed`
    /// (their accounting keeps updating) but are hidden from
    /// [`SegmentTable::sealed_stats`], so two concurrent cycles can never select the
    /// same victim: selection and claiming happen in one central-lock critical section.
    cleaning: Vec<SegmentId>,
    /// Segments whose metadata says `Sealed` but whose image is still being written to
    /// the device. In the sharded write path the (large) device write of a seal happens
    /// *outside* the coordination lock, so there is a window in which a segment is
    /// `Sealed` in this table while the device slot is still blank; such segments are
    /// excluded from [`SegmentTable::sealed_stats`] so the cleaner never selects a
    /// victim it cannot read back. Single-threaded embedders (the simulator) never mark
    /// anything pending and are unaffected.
    image_pending: Vec<SegmentId>,
    next_seal_seq: SealSeq,
}

impl SegmentTable {
    /// Create a table with `num_segments` free segments.
    pub fn new(num_segments: usize) -> Self {
        // Keep the free list in descending id order so allocation (pop) hands out
        // ascending ids — purely cosmetic but makes traces easier to read.
        let free = (0..num_segments as u32).rev().map(SegmentId).collect();
        Self {
            states: vec![SegmentState::Free; num_segments],
            free,
            quarantine: Vec::new(),
            cleaning: Vec::new(),
            image_pending: Vec::new(),
            next_seal_seq: 1,
        }
    }

    /// Number of physical segments.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the table has no segments (never the case for a valid store).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Number of free segments.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of sealed segments.
    pub fn sealed_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_sealed()).count()
    }

    /// Allocate a free segment, if any, transitioning it to `Open`.
    pub fn allocate(
        &mut self,
        capacity_bytes: u64,
        log_id: u16,
        up2_mode: Up2Mode,
    ) -> Option<SegmentId> {
        let id = self.free.pop()?;
        self.states[id.index()] =
            SegmentState::Open(SegmentMeta::new_open(id, capacity_bytes, log_id, up2_mode));
        Some(id)
    }

    /// Return a segment to the free list immediately (after an aborted open, or in
    /// single-threaded embedders like the simulator where no reader can be mid-flight).
    pub fn release(&mut self, id: SegmentId) {
        debug_assert!(!self.states[id.index()].is_free(), "double free of {id}");
        self.states[id.index()] = SegmentState::Free;
        self.free.push(id);
    }

    /// Claim a sealed segment as a cleaning victim. Returns false if the segment is not
    /// sealed or is already claimed by another cycle. Call under the same central-lock
    /// critical section as the victim selection, so claims are atomic with the pick.
    pub fn claim_for_cleaning(&mut self, id: SegmentId) -> bool {
        if !self.states[id.index()].is_sealed() || self.cleaning.contains(&id) {
            return false;
        }
        self.cleaning.push(id);
        true
    }

    /// Drop a victim claim without cleaning the segment (the cycle skipped or aborted
    /// it); the segment becomes selectable again. No-op if the claim is already gone.
    pub fn unclaim(&mut self, id: SegmentId) {
        self.cleaning.retain(|&s| s != id);
    }

    /// Number of victims currently claimed by in-flight cleaning cycles.
    pub fn claimed_count(&self) -> usize {
        self.cleaning.len()
    }

    /// Release a cleaned victim into the quarantine instead of the free list, recording
    /// which cycle owns it, and drop its cleaning claim. The slot becomes allocatable
    /// only after the owner seals its GC outputs
    /// ([`SegmentTable::quarantine_mark_sealed`]), a device sync lands
    /// ([`SegmentTable::mark_quarantine_synced`]) and a subsequent
    /// [`SegmentTable::reap_quarantine`] confirms no reader pins remain.
    pub fn release_quarantined(&mut self, id: SegmentId, owner: u64) {
        debug_assert!(!self.states[id.index()].is_free(), "double free of {id}");
        self.states[id.index()] = SegmentState::Free;
        self.cleaning.retain(|&s| s != id);
        self.quarantine.push(QuarantineEntry {
            id,
            owner,
            sealed: false,
            synced: false,
        });
    }

    /// Number of segments parked in the quarantine.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.len()
    }

    /// Record that `owner`'s relocated copies are all on the device (its GC output
    /// streams were sealed): its quarantine entries now only await a sync.
    pub fn quarantine_mark_sealed(&mut self, owner: u64) {
        for e in &mut self.quarantine {
            if e.owner == owner {
                e.sealed = true;
            }
        }
    }

    /// Hand an aborted cycle's quarantine entries to the orphan owner
    /// ([`ORPHAN_CYCLE`]): the next sync point that seals the orphaned GC output
    /// builders marks them sealed on the dead cycle's behalf.
    pub fn quarantine_orphan(&mut self, owner: u64) {
        for e in &mut self.quarantine {
            if e.owner == owner {
                e.owner = ORPHAN_CYCLE;
            }
        }
    }

    /// Number of quarantine entries an orphan-seal + sync + reap pass could make
    /// progress on: entries already sealed (a sync or a pin-free reap can free them)
    /// and orphan-owned entries (the pass seals the orphan builders on their behalf).
    /// Entries still parked under a *live* cycle are excluded — only that cycle's own
    /// phase 4 can move them forward.
    pub fn quarantine_reclaimable(&self) -> usize {
        self.quarantine
            .iter()
            .filter(|e| e.sealed || e.owner == ORPHAN_CYCLE)
            .count()
    }

    /// Sealed-but-unsynced quarantine entries: the candidates a sync point snapshots
    /// *before* issuing the device sync (entries sealed after the snapshot may have
    /// writes the sync does not cover, so they wait for the next one).
    pub fn quarantine_sealed_unsynced(&self) -> Vec<SegmentId> {
        self.quarantine
            .iter()
            .filter(|e| e.sealed && !e.synced)
            .map(|e| e.id)
            .collect()
    }

    /// Record that a device sync has landed for the given previously sealed entries
    /// (the snapshot taken by [`SegmentTable::quarantine_sealed_unsynced`]): their
    /// relocated pages are now durable, so they become candidates for reaping.
    pub fn mark_quarantine_synced(&mut self, ids: &[SegmentId]) {
        for e in &mut self.quarantine {
            if ids.contains(&e.id) {
                e.synced = true;
            }
        }
    }

    /// Move synced quarantined segments whose reader pin count is zero (per the supplied
    /// predicate) to the free list. Returns how many segments were freed.
    pub fn reap_quarantine(&mut self, unpinned: impl Fn(SegmentId) -> bool) -> usize {
        let mut freed = 0;
        let mut i = 0;
        while i < self.quarantine.len() {
            let e = self.quarantine[i];
            if e.synced && unpinned(e.id) {
                self.quarantine.swap_remove(i);
                self.free.push(e.id);
                freed += 1;
            } else {
                i += 1;
            }
        }
        freed
    }

    /// Seal an open segment. Returns the assigned seal sequence.
    pub fn seal(
        &mut self,
        id: SegmentId,
        sealed_at: UpdateTick,
        carried_up2: UpdateTick,
        up2_mode: Up2Mode,
    ) -> SealSeq {
        let seq = self.next_seal_seq;
        self.next_seal_seq += 1;
        let state = &mut self.states[id.index()];
        match state {
            SegmentState::Open(meta) => {
                meta.seal(seq, sealed_at, carried_up2, up2_mode);
                let meta = meta.clone();
                *state = SegmentState::Sealed(meta);
            }
            other => panic!("seal() on segment {id} in state {other:?}"),
        }
        seq
    }

    /// Install a sealed segment directly (used by recovery).
    pub fn install_sealed(&mut self, meta: SegmentMeta) {
        let id = meta.id;
        self.next_seal_seq = self.next_seal_seq.max(meta.seal_seq + 1);
        self.states[id.index()] = SegmentState::Sealed(meta);
        self.free.retain(|&s| s != id);
        self.quarantine.retain(|e| e.id != id);
        self.cleaning.retain(|&s| s != id);
        self.image_pending.retain(|&s| s != id);
    }

    /// The state of a segment.
    pub fn state(&self, id: SegmentId) -> &SegmentState {
        &self.states[id.index()]
    }

    /// Metadata of a segment, if it holds data.
    pub fn meta(&self, id: SegmentId) -> Option<&SegmentMeta> {
        self.states[id.index()].meta()
    }

    /// Mutable metadata of a segment, if it holds data.
    pub fn meta_mut(&mut self, id: SegmentId) -> Option<&mut SegmentMeta> {
        self.states[id.index()].meta_mut()
    }

    /// Mark a sealed segment's device image as still in flight (`pending = true`) or
    /// durable on the device (`pending = false`). Pending segments are hidden from
    /// [`SegmentTable::sealed_stats`].
    pub fn set_image_pending(&mut self, id: SegmentId, pending: bool) {
        if pending {
            if !self.image_pending.contains(&id) {
                self.image_pending.push(id);
            }
        } else {
            self.image_pending.retain(|&s| s != id);
        }
    }

    /// True while a sealed segment's image write has not completed.
    pub fn is_image_pending(&self, id: SegmentId) -> bool {
        self.image_pending.contains(&id)
    }

    /// Snapshots of every sealed segment that is *available as a cleaning victim*:
    /// segments mid-seal (see [`SegmentTable::set_image_pending`]) and victims already
    /// claimed by an in-flight cycle (see [`SegmentTable::claim_for_cleaning`]) are
    /// excluded.
    pub fn sealed_stats(&self) -> Vec<SegmentStats> {
        self.states
            .iter()
            .filter_map(|s| match s {
                SegmentState::Sealed(m)
                    if !self.image_pending.contains(&m.id) && !self.cleaning.contains(&m.id) =>
                {
                    Some(m.stats())
                }
                _ => None,
            })
            .collect()
    }

    /// Snapshots of every sealed segment whose image is on the device, *including*
    /// victims claimed by in-flight cycles (a claimed victim still holds durable data
    /// until it is actually released). Used by checkpointing, which must not drop
    /// segment records just because a cycle happened to be selecting at that moment.
    pub fn sealed_stats_including_claimed(&self) -> Vec<SegmentStats> {
        self.states
            .iter()
            .filter_map(|s| match s {
                SegmentState::Sealed(m) if !self.image_pending.contains(&m.id) => Some(m.stats()),
                _ => None,
            })
            .collect()
    }

    /// Per-segment tombstone footprint for every sealed segment whose image is on the
    /// device (same population as [`SegmentTable::sealed_stats_including_claimed`]).
    /// Only segments with a non-zero charge are reported; the checkpoint records these
    /// so recovery can rebuild the accounting exactly.
    pub fn sealed_tombstone_bytes(&self) -> Vec<(SegmentId, u64)> {
        self.states
            .iter()
            .filter_map(|s| match s {
                SegmentState::Sealed(m)
                    if m.tombstone_bytes > 0 && !self.image_pending.contains(&m.id) =>
                {
                    Some((m.id, m.tombstone_bytes))
                }
                _ => None,
            })
            .collect()
    }

    /// Lift the tombstone charge from every sealed segment whose `seal_seq` is covered
    /// by a committed checkpoint frontier. Once a checkpoint at frontier `F` commits,
    /// the delete facts in segments sealed at or before `F` are durable in the
    /// checkpoint itself (checkpointing seals every open segment before reading the
    /// frontier, so all older copies of a deleted page live at or below `F` too), and
    /// the cleaner is free to drop those tombstones — so their space stops counting as
    /// live.
    pub fn uncharge_covered_tombstones(&mut self, frontier: SealSeq) {
        for s in &mut self.states {
            if let SegmentState::Sealed(m) = s {
                if m.tombstone_bytes > 0 && m.seal_seq <= frontier {
                    m.uncharge_tombstones();
                }
            }
        }
    }

    /// Live fragmentation picture: bucket every sealed segment's emptiness `E` into
    /// `bins` equal-width bins over `[0, 1]` (the last bin is closed at 1.0). Returns
    /// the histogram plus the sealed-segment count and their total live bytes, so
    /// callers can cross-check the histogram against the accounting ledger's totals.
    pub fn emptiness_histogram(&self, bins: usize) -> (Vec<u64>, u64, u64) {
        let bins = bins.max(1);
        let mut hist = vec![0u64; bins];
        let mut sealed = 0u64;
        let mut live_bytes = 0u64;
        for s in &self.states {
            if let SegmentState::Sealed(m) = s {
                let bin = ((m.emptiness() * bins as f64) as usize).min(bins - 1);
                hist[bin] += 1;
                sealed += 1;
                live_bytes += m.live_bytes;
            }
        }
        (hist, sealed, live_bytes)
    }

    /// Sealed-segment count per temperature class (gauge for
    /// [`crate::StoreStats::gc_class_segments`]): index `0..classes` by class, with
    /// unclassified (user-filled) segments counted in the final extra bucket.
    pub fn sealed_counts_by_temperature(&self, classes: usize) -> Vec<u64> {
        let classes = classes.max(1);
        let mut counts = vec![0u64; classes + 1];
        for s in &self.states {
            if let SegmentState::Sealed(m) = s {
                let bucket = if m.temperature == TEMPERATURE_UNCLASSIFIED {
                    classes
                } else {
                    (m.temperature as usize).min(classes - 1)
                };
                counts[bucket] += 1;
            }
        }
        counts
    }

    /// One cheap snapshot of everything the adaptive GC controller scales against
    /// (one pass over the state vector, no allocation). Taken under the central lock
    /// at controller-tick cadence; never on the foreground read/write paths.
    pub fn pressure(&self) -> PressureSnapshot {
        let mut sealed_segments = 0u64;
        let mut sealed_live_bytes = 0u64;
        let mut sealed_capacity_bytes = 0u64;
        for s in &self.states {
            if let SegmentState::Sealed(m) = s {
                sealed_segments += 1;
                sealed_live_bytes += m.live_bytes;
                sealed_capacity_bytes += m.capacity_bytes;
            }
        }
        PressureSnapshot {
            free: self.free.len(),
            sealed_segments,
            sealed_live_bytes,
            sealed_capacity_bytes,
            quarantined: self.quarantine.len(),
            claimed: self.cleaning.len(),
        }
    }

    /// Iterate over metadata of all non-free segments.
    pub fn iter_meta(&self) -> impl Iterator<Item = &SegmentMeta> {
        self.states.iter().filter_map(|s| s.meta())
    }

    /// Next seal sequence that will be assigned (exposed for checkpointing).
    pub fn next_seal_seq(&self) -> SealSeq {
        self.next_seal_seq
    }

    /// Restore the seal-sequence counter (used by recovery/checkpoint load).
    pub fn set_next_seal_seq(&mut self, seq: SealSeq) {
        self.next_seal_seq = self.next_seal_seq.max(seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 1000;

    #[test]
    fn meta_accounting_tracks_live_space() {
        let mut m = SegmentMeta::new_open(SegmentId(0), CAP, 0, Up2Mode::OnOverwrite);
        assert_eq!(m.free_bytes(), CAP);
        m.on_page_added(300, None);
        m.on_page_added(200, None);
        assert_eq!(m.live_pages, 2);
        assert_eq!(m.live_bytes, 500);
        assert_eq!(m.free_bytes(), 500);
        assert!((m.emptiness() - 0.5).abs() < 1e-12);

        m.on_page_dead(300, 10, None);
        assert_eq!(m.live_pages, 1);
        assert_eq!(m.free_bytes(), 800);
    }

    #[test]
    fn meta_tracks_exact_frequencies_when_supplied() {
        let mut m = SegmentMeta::new_open(SegmentId(0), CAP, 0, Up2Mode::OnOverwrite);
        m.on_page_added(100, Some(2.0));
        m.on_page_added(100, Some(3.0));
        let stats = m.stats();
        assert_eq!(stats.exact_upf, Some(5.0));
        m.on_page_dead(100, 5, Some(2.0));
        assert_eq!(m.stats().exact_upf, Some(3.0));
    }

    #[test]
    fn meta_without_exact_frequencies_reports_none() {
        let mut m = SegmentMeta::new_open(SegmentId(0), CAP, 0, Up2Mode::OnOverwrite);
        m.on_page_added(100, None);
        assert_eq!(m.stats().exact_upf, None);
    }

    #[test]
    fn seal_assigns_sequence_and_freq() {
        let mut t = SegmentTable::new(4);
        let id = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        t.meta_mut(id).unwrap().on_page_added(100, None);
        let seq = t.seal(id, 500, 200, Up2Mode::OnOverwrite);
        assert_eq!(seq, 1);
        let stats = t.meta(id).unwrap().stats();
        assert_eq!(stats.seal_seq, 1);
        assert_eq!(stats.sealed_at, 500);
        assert_eq!(stats.up2, 200);
        assert!(t.state(id).is_sealed());
    }

    #[test]
    fn allocate_release_cycle_maintains_free_count() {
        let mut t = SegmentTable::new(3);
        assert_eq!(t.free_count(), 3);
        let a = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        let b = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.free_count(), 1);
        t.release(a);
        assert_eq!(t.free_count(), 2);
        assert!(t.state(a).is_free());
        // Exhaust the free list.
        let _c = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        let _d = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        assert!(t.allocate(CAP, 0, Up2Mode::OnOverwrite).is_none());
    }

    #[test]
    fn sealed_stats_only_covers_sealed_segments() {
        let mut t = SegmentTable::new(4);
        let a = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        let _open = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        t.seal(a, 10, 5, Up2Mode::OnOverwrite);
        let stats = t.sealed_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].id, a);
        assert_eq!(t.sealed_count(), 1);
    }

    #[test]
    fn install_sealed_bumps_seal_seq_and_removes_from_free_list() {
        let mut t = SegmentTable::new(4);
        let mut m = SegmentMeta::new_open(SegmentId(2), CAP, 0, Up2Mode::OnOverwrite);
        m.on_page_added(10, None);
        m.seal(42, 100, 50, Up2Mode::OnOverwrite);
        t.install_sealed(m);
        assert_eq!(t.free_count(), 3);
        assert!(t.state(SegmentId(2)).is_sealed());
        assert_eq!(t.next_seal_seq(), 43);
        // Allocation never hands out the installed segment.
        for _ in 0..3 {
            let id = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
            assert_ne!(id, SegmentId(2));
        }
    }

    #[test]
    fn quarantine_defers_reuse_until_sealed_synced_and_reaped() {
        let mut t = SegmentTable::new(4);
        let a = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        t.seal(a, 10, 5, Up2Mode::OnOverwrite);
        assert_eq!(t.free_count(), 3);
        t.release_quarantined(a, 7);
        // Quarantined: state is free but the slot is not allocatable yet.
        assert!(t.state(a).is_free());
        assert_eq!(t.free_count(), 3);
        assert_eq!(t.quarantine_len(), 1);
        // Not sealed yet: it is not even a sync candidate.
        assert!(t.quarantine_sealed_unsynced().is_empty());
        assert_eq!(t.reap_quarantine(|_| true), 0);
        // Sealing a *different* owner's entries changes nothing.
        t.quarantine_mark_sealed(9);
        assert!(t.quarantine_sealed_unsynced().is_empty());
        // The owner seals its GC outputs: the entry becomes a sync candidate, but is
        // still not reapable before the sync lands.
        t.quarantine_mark_sealed(7);
        let candidates = t.quarantine_sealed_unsynced();
        assert_eq!(candidates, vec![a]);
        assert_eq!(t.reap_quarantine(|_| true), 0);
        t.mark_quarantine_synced(&candidates);
        // A pinned segment survives reaping.
        assert_eq!(t.reap_quarantine(|id| id != a), 0);
        assert_eq!(t.quarantine_len(), 1);
        // Sealed, synced and unpinned: it re-enters the free pool.
        assert_eq!(t.reap_quarantine(|_| true), 1);
        assert_eq!(t.quarantine_len(), 0);
        assert_eq!(t.free_count(), 4);
    }

    #[test]
    fn claims_hide_victims_from_selection_until_unclaimed() {
        let mut t = SegmentTable::new(4);
        let a = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        let b = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        t.seal(a, 10, 5, Up2Mode::OnOverwrite);
        t.seal(b, 11, 6, Up2Mode::OnOverwrite);
        assert!(t.claim_for_cleaning(a));
        // Double claims and claims of non-sealed slots are rejected.
        assert!(!t.claim_for_cleaning(a));
        assert!(!t.claim_for_cleaning(SegmentId(3)));
        assert_eq!(t.claimed_count(), 1);
        // A claimed victim disappears from victim selection, but not from the
        // checkpoint view.
        let stats = t.sealed_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].id, b);
        assert_eq!(t.sealed_stats_including_claimed().len(), 2);
        // Unclaiming makes it selectable again.
        t.unclaim(a);
        assert_eq!(t.claimed_count(), 0);
        assert_eq!(t.sealed_stats().len(), 2);
        // Releasing a claimed victim into the quarantine also drops the claim.
        assert!(t.claim_for_cleaning(b));
        t.release_quarantined(b, 1);
        assert_eq!(t.claimed_count(), 0);
    }

    #[test]
    fn orphaned_quarantine_entries_are_adopted_by_the_orphan_owner() {
        let mut t = SegmentTable::new(4);
        let a = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        t.seal(a, 10, 5, Up2Mode::OnOverwrite);
        t.release_quarantined(a, 3);
        // The owning cycle dies before sealing its outputs; its entries move to the
        // orphan owner and are sealed by the next orphan-seal pass.
        t.quarantine_orphan(3);
        t.quarantine_mark_sealed(3); // the dead token no longer matches anything
        assert!(t.quarantine_sealed_unsynced().is_empty());
        t.quarantine_mark_sealed(ORPHAN_CYCLE);
        let candidates = t.quarantine_sealed_unsynced();
        assert_eq!(candidates, vec![a]);
        t.mark_quarantine_synced(&candidates);
        assert_eq!(t.reap_quarantine(|_| true), 1);
        assert_eq!(t.free_count(), 4);
    }

    #[test]
    fn emptiness_histogram_buckets_sealed_segments_and_sums_live_bytes() {
        let mut t = SegmentTable::new(4);
        let a = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        let b = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        let open = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        t.meta_mut(a).unwrap().on_page_added(900, None); // E = 0.1
        t.meta_mut(b).unwrap().on_page_added(200, None); // E = 0.8
        t.meta_mut(open).unwrap().on_page_added(500, None); // stays open: excluded
        t.seal(a, 10, 5, Up2Mode::OnOverwrite);
        t.seal(b, 11, 6, Up2Mode::OnOverwrite);
        let (hist, sealed, live) = t.emptiness_histogram(10);
        assert_eq!(sealed, 2);
        assert_eq!(live, 1100);
        assert_eq!(hist.iter().sum::<u64>(), sealed);
        assert_eq!(hist[1], 1); // E = 0.1
        assert_eq!(hist[8], 1); // E = 0.8
    }

    #[test]
    fn image_pending_segments_are_hidden_from_sealed_stats() {
        let mut t = SegmentTable::new(4);
        let a = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        let b = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        t.seal(a, 10, 5, Up2Mode::OnOverwrite);
        t.seal(b, 12, 6, Up2Mode::OnOverwrite);
        t.set_image_pending(b, true);
        assert!(t.is_image_pending(b));
        let stats = t.sealed_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].id, a);
        // Once the image lands, the segment becomes a cleaning candidate again.
        t.set_image_pending(b, false);
        assert!(!t.is_image_pending(b));
        assert_eq!(t.sealed_stats().len(), 2);
    }

    #[test]
    fn pressure_snapshot_reflects_sealed_claimed_and_quarantined_state() {
        let mut t = SegmentTable::new(6);
        let a = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        let b = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        let _open = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        t.meta_mut(a).unwrap().on_page_added(250, None); // E = 0.75
        t.meta_mut(b).unwrap().on_page_added(750, None); // E = 0.25
        t.seal(a, 10, 5, Up2Mode::OnOverwrite);
        t.seal(b, 11, 6, Up2Mode::OnOverwrite);
        let p = t.pressure();
        assert_eq!(p.free, 3);
        assert_eq!(p.sealed_segments, 2);
        assert_eq!(p.sealed_live_bytes, 1000);
        assert_eq!(p.sealed_capacity_bytes, 2 * CAP);
        assert!((p.dead_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(p.quarantined, 0);
        assert_eq!(p.claimed, 0);

        // Claims and quarantine entries show up; a quarantined victim is neither free
        // nor sealed.
        assert!(t.claim_for_cleaning(a));
        assert_eq!(t.pressure().claimed, 1);
        t.release_quarantined(a, 1);
        let p = t.pressure();
        assert_eq!(p.claimed, 0);
        assert_eq!(p.quarantined, 1);
        assert_eq!(p.sealed_segments, 1);
        assert_eq!(p.free, 3);

        // An empty table reports zero dead fraction, not NaN.
        assert_eq!(SegmentTable::new(4).pressure().dead_fraction(), 0.0);
    }

    #[test]
    fn allocation_hands_out_ascending_ids() {
        let mut t = SegmentTable::new(3);
        let a = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        let b = t.allocate(CAP, 0, Up2Mode::OnOverwrite).unwrap();
        assert!(a.0 < b.0);
    }
}
