//! A small ordered key-value layer on top of [`crate::LogStore`].
//!
//! This is a convenience facade used by the examples (and a demonstration that the page
//! store's API is sufficient to build higher-level abstractions on): keys are arbitrary
//! byte strings, values are stored one-per-page, and an in-memory ordered index maps keys
//! to page ids. The index itself is persisted into a reserved page-id range on
//! [`KvStore::flush`], so a cleanly flushed store can be reopened.
//!
//! For a full storage-engine substrate (fixed-size pages, buffer pool, B+-tree), see the
//! `lss-btree` crate in this workspace.

use crate::error::{Error, Result};
use crate::store::LogStore;
use crate::types::PageId;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Page ids at and above this value are reserved for the KV layer's own metadata.
const META_BASE: PageId = 1 << 62;
/// Page id of the index root chunk.
const INDEX_ROOT: PageId = META_BASE;

#[derive(Debug, Serialize, Deserialize)]
struct IndexChunk {
    /// Total number of chunks the index was split into.
    chunks: u32,
    /// Key/page-id pairs in this chunk.
    entries: Vec<(Vec<u8>, PageId)>,
    /// Next page id to allocate for user values.
    next_page: PageId,
}

/// An ordered key-value store backed by a [`LogStore`].
#[derive(Debug)]
pub struct KvStore {
    store: LogStore,
    index: BTreeMap<Vec<u8>, PageId>,
    next_page: PageId,
}

impl KvStore {
    /// Wrap a freshly opened [`LogStore`].
    pub fn new(store: LogStore) -> Self {
        Self {
            store,
            index: BTreeMap::new(),
            next_page: 0,
        }
    }

    /// Re-open a key-value store whose index was persisted by [`KvStore::flush`].
    pub fn reopen(store: LogStore) -> Result<Self> {
        let Some(root) = store.get(INDEX_ROOT)? else {
            // No persisted index: treat as empty.
            return Ok(Self::new(store));
        };
        let root: IndexChunk = serde_json::from_slice(&root)
            .map_err(|e| Error::CorruptCheckpoint(format!("kv index root: {e}")))?;
        let mut index = BTreeMap::new();
        let mut next_page = root.next_page;
        let chunks = root.chunks;
        for (k, v) in root.entries {
            index.insert(k, v);
        }
        for c in 1..chunks {
            let Some(bytes) = store.get(INDEX_ROOT + c as u64)? else {
                return Err(Error::CorruptCheckpoint(format!(
                    "kv index chunk {c} missing"
                )));
            };
            let chunk: IndexChunk = serde_json::from_slice(&bytes)
                .map_err(|e| Error::CorruptCheckpoint(format!("kv index chunk {c}: {e}")))?;
            next_page = next_page.max(chunk.next_page);
            for (k, v) in chunk.entries {
                index.insert(k, v);
            }
        }
        Ok(Self {
            store,
            index,
            next_page,
        })
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Insert or overwrite a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let page = match self.index.get(key) {
            Some(&p) => p,
            None => {
                let p = self.next_page;
                self.next_page += 1;
                if p >= META_BASE {
                    return Err(Error::InvalidConfig(
                        "key-value store page ids exhausted".into(),
                    ));
                }
                self.index.insert(key.to_vec(), p);
                p
            }
        };
        self.store.put(page, value)
    }

    /// Read a key. Takes `&self`: reads go through the store's concurrent read path.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        match self.index.get(key) {
            Some(&page) => self.store.get(page),
            None => Ok(None),
        }
    }

    /// Delete a key. Returns true if it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        match self.index.remove(key) {
            Some(page) => {
                self.store.delete(page)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Iterate keys in `[start, end)` in order, reading each value.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let keys: Vec<(Vec<u8>, PageId)> = self
            .index
            .range::<[u8], _>((Bound::Included(start), Bound::Excluded(end)))
            .map(|(k, &p)| (k.clone(), p))
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for (k, p) in keys {
            if let Some(v) = self.store.get(p)? {
                out.push((k, v));
            }
        }
        Ok(out)
    }

    /// Persist the index and flush the underlying store (the durability point).
    pub fn flush(&mut self) -> Result<()> {
        // Split the index into chunks that comfortably fit in a page.
        let max_chunk_bytes = crate::layout::max_single_payload(self.store.config().segment_bytes)
            .min(self.store.config().page_bytes.max(1024))
            / 2;
        let mut chunks: Vec<IndexChunk> = Vec::new();
        let mut current = IndexChunk {
            chunks: 0,
            entries: Vec::new(),
            next_page: self.next_page,
        };
        let mut current_bytes = 0usize;
        for (k, &p) in &self.index {
            let entry_bytes = k.len() + 24;
            if current_bytes + entry_bytes > max_chunk_bytes && !current.entries.is_empty() {
                chunks.push(std::mem::replace(
                    &mut current,
                    IndexChunk {
                        chunks: 0,
                        entries: Vec::new(),
                        next_page: self.next_page,
                    },
                ));
                current_bytes = 0;
            }
            current.entries.push((k.clone(), p));
            current_bytes += entry_bytes;
        }
        chunks.push(current);
        let n = chunks.len() as u32;
        for (i, mut chunk) in chunks.into_iter().enumerate() {
            chunk.chunks = n;
            let bytes = serde_json::to_vec(&chunk)
                .map_err(|e| Error::CorruptCheckpoint(format!("kv index encode: {e}")))?;
            self.store.put(INDEX_ROOT + i as u64, &bytes)?;
        }
        self.store.flush()
    }

    /// Access the underlying page store (e.g. for statistics).
    pub fn store(&self) -> &LogStore {
        &self.store
    }

    /// Consume the wrapper and return the underlying page store.
    pub fn into_inner(self) -> LogStore {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::StoreConfig;

    fn kv() -> KvStore {
        let store =
            LogStore::open_in_memory(StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc))
                .unwrap();
        KvStore::new(store)
    }

    #[test]
    fn put_get_delete() {
        let mut kv = kv();
        assert!(kv.is_empty());
        kv.put(b"alpha", b"1").unwrap();
        kv.put(b"beta", b"2").unwrap();
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.get(b"alpha").unwrap().unwrap().as_ref(), b"1");
        assert!(kv.get(b"gamma").unwrap().is_none());
        assert!(kv.delete(b"alpha").unwrap());
        assert!(!kv.delete(b"alpha").unwrap());
        assert!(kv.get(b"alpha").unwrap().is_none());
    }

    #[test]
    fn overwrite_updates_value_not_key_count() {
        let mut kv = kv();
        kv.put(b"k", b"v1").unwrap();
        kv.put(b"k", b"v2").unwrap();
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.get(b"k").unwrap().unwrap().as_ref(), b"v2");
    }

    #[test]
    fn range_scan_is_ordered_and_half_open() {
        let mut kv = kv();
        for k in ["a", "b", "c", "d", "e"] {
            kv.put(k.as_bytes(), k.to_uppercase().as_bytes()).unwrap();
        }
        let out = kv.range(b"b", b"e").unwrap();
        let keys: Vec<&[u8]> = out.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(
            keys,
            vec![b"b".as_slice(), b"c".as_slice(), b"d".as_slice()]
        );
        assert_eq!(out[0].1.as_ref(), b"B");
    }

    #[test]
    fn flush_and_reopen_preserves_contents() {
        let mut kv = kv();
        for i in 0..300u32 {
            kv.put(
                format!("key-{i:04}").as_bytes(),
                format!("value-{i}").as_bytes(),
            )
            .unwrap();
        }
        kv.delete(b"key-0007").unwrap();
        kv.flush().unwrap();

        let store = kv.into_inner();
        let cfg = store.config().clone();
        let device = store.into_device();
        let recovered = LogStore::recover_with_device(cfg, device).unwrap();
        let mut kv2 = KvStore::reopen(recovered).unwrap();
        assert_eq!(kv2.len(), 299);
        assert!(kv2.get(b"key-0007").unwrap().is_none());
        assert_eq!(
            kv2.get(b"key-0123").unwrap().unwrap().as_ref(),
            b"value-123"
        );
        // New writes keep working after reopen.
        kv2.put(b"key-new", b"fresh").unwrap();
        assert_eq!(kv2.get(b"key-new").unwrap().unwrap().as_ref(), b"fresh");
    }

    #[test]
    fn reopen_of_never_flushed_store_is_empty() {
        let store = LogStore::open_in_memory(StoreConfig::small_for_tests()).unwrap();
        let kv = KvStore::reopen(store).unwrap();
        assert!(kv.is_empty());
    }
}
