//! Crash recovery by scanning segment images.
//!
//! Because every segment is self-describing (header + entry table, see [`crate::layout`]),
//! the page table can always be rebuilt from the device alone: replay segments in seal
//! order, keep the newest version of each page (largest `(write_seq, seal_seq)` pair) and
//! honour tombstones. Segment metadata (`A`, `C`, `up2`) is then derived from the final
//! page table plus the headers.
//!
//! ### Known limitation
//!
//! Tombstones are not relocated by the cleaner, so if the segment holding a page's
//! deletion record is cleaned and later overwritten while an older segment still holds a
//! stale copy of the page, a crash before the next checkpoint can resurrect the deleted
//! page. Taking a checkpoint after deletions (or periodically) removes the window. This
//! trade-off is documented in DESIGN.md.

use crate::config::StoreConfig;
use crate::device::SegmentDevice;
use crate::error::Result;
use crate::layout::{self, decode_segment};
use crate::mapping::PageTable;
use crate::segment::{SegmentMeta, SegmentTable};
use crate::store::LogStore;
use crate::types::{PageId, PageLocation, SealSeq, SegmentId, WriteSeq};
use crate::util::FxHashMap;

/// Outcome of scanning a device.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Segments that decoded as sealed data.
    pub sealed_segments: usize,
    /// Segments that were blank (never written or erased).
    pub blank_segments: usize,
    /// Segments that looked like data but failed validation and were skipped.
    pub corrupt_segments: Vec<SegmentId>,
    /// Live pages reconstructed.
    pub live_pages: usize,
}

struct PageVersion {
    write_seq: WriteSeq,
    seal_seq: SealSeq,
    loc: PageLocation,
    tombstone: bool,
}

/// Rebuild a [`LogStore`] from an existing device by scanning all segment images.
pub fn recover(config: StoreConfig, device: Box<dyn SegmentDevice>) -> Result<LogStore> {
    let (store, _report) = recover_with_report(config, device)?;
    Ok(store)
}

/// [`recover`] but also returns a [`ScanReport`] describing what was found.
pub fn recover_with_report(
    config: StoreConfig,
    device: Box<dyn SegmentDevice>,
) -> Result<(LogStore, ScanReport)> {
    config.validate()?;
    let mut report = ScanReport::default();

    // Pass 1: decode every segment image (entry tables only; payloads stay on device).
    struct Parsed {
        id: SegmentId,
        header: layout::SegmentHeader,
        entries: Vec<layout::SegmentEntry>,
    }
    let mut parsed_segments: Vec<Parsed> = Vec::new();
    for i in 0..config.num_segments {
        let id = SegmentId(i as u32);
        let image = device.read_segment(id)?;
        match decode_segment(id, &image) {
            Ok(Some(p)) => {
                report.sealed_segments += 1;
                parsed_segments.push(Parsed {
                    id,
                    header: p.header,
                    entries: p.entries,
                });
            }
            Ok(None) => report.blank_segments += 1,
            Err(_) => report.corrupt_segments.push(id),
        }
    }

    // Pass 2: replay entries in seal order, newest version of each page wins.
    parsed_segments.sort_by_key(|p| p.header.seal_seq);
    let mut best: FxHashMap<PageId, PageVersion> = FxHashMap::default();
    let mut max_write_seq: WriteSeq = 0;
    let mut max_unow = 0;
    for p in &parsed_segments {
        max_unow = max_unow.max(p.header.sealed_at);
        for e in &p.entries {
            max_write_seq = max_write_seq.max(e.write_seq);
            let candidate = PageVersion {
                write_seq: e.write_seq,
                seal_seq: p.header.seal_seq,
                loc: PageLocation {
                    segment: p.id,
                    offset: e.offset,
                    len: e.payload_len(),
                },
                tombstone: e.is_tombstone(),
            };
            match best.get(&e.page_id) {
                Some(cur)
                    if (cur.write_seq, cur.seal_seq)
                        >= (candidate.write_seq, candidate.seal_seq) => {}
                _ => {
                    best.insert(e.page_id, candidate);
                }
            }
        }
    }

    // Pass 3: build the page table and per-segment live statistics.
    let mut mapping = PageTable::new();
    let mut live_per_segment: FxHashMap<SegmentId, (u64, u64)> = FxHashMap::default();
    for (page, v) in &best {
        if v.tombstone {
            continue;
        }
        mapping.insert(*page, v.loc);
        let entry = live_per_segment.entry(v.loc.segment).or_insert((0, 0));
        entry.0 += v.loc.len as u64;
        entry.1 += 1;
    }
    report.live_pages = mapping.len();

    let capacity = layout::payload_capacity(config.segment_bytes, config.page_bytes) as u64;
    let mut table = SegmentTable::new(config.num_segments);
    for p in &parsed_segments {
        let (live_bytes, live_pages) = live_per_segment.get(&p.id).copied().unwrap_or((0, 0));
        let mut meta = SegmentMeta::new_open(p.id, capacity, p.header.log_id, config.up2_mode);
        meta.live_bytes = live_bytes;
        meta.live_pages = live_pages;
        meta.seal(
            p.header.seal_seq,
            p.header.sealed_at,
            p.header.up2,
            config.up2_mode,
        );
        table.install_sealed(meta);
    }

    let mut store = LogStore::open_with_device(config, device)?;
    store.install_recovered_state(mapping, table, max_unow, max_write_seq + 1);
    Ok((store, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::policy::PolicyKind;
    use crate::StoreConfig;

    fn config() -> StoreConfig {
        StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc)
    }

    #[test]
    fn recover_empty_device_yields_empty_store() {
        let cfg = config();
        let dev = MemDevice::new(cfg.segment_bytes, cfg.num_segments);
        let (store, report) = recover_with_report(cfg, Box::new(dev)).unwrap();
        assert_eq!(store.live_pages(), 0);
        assert_eq!(report.sealed_segments, 0);
        assert_eq!(report.blank_segments, store.config().num_segments);
    }

    #[test]
    fn recover_after_flush_restores_all_pages() {
        let cfg = config();
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        for i in 0..200u64 {
            store.put(i, format!("page-{i}").as_bytes()).unwrap();
        }
        // Overwrite some so stale copies exist on the device.
        for i in 0..50u64 {
            store.put(i, format!("new-{i}").as_bytes()).unwrap();
        }
        store.delete(7).unwrap();
        store.flush().unwrap();

        let device = store.into_device();
        let (recovered, report) = recover_with_report(cfg, device).unwrap();
        assert!(report.sealed_segments > 0);
        assert_eq!(recovered.live_pages(), 199);
        assert!(
            recovered.get(7).unwrap().is_none(),
            "deleted page resurrected"
        );
        for i in 0..50u64 {
            if i == 7 {
                continue; // deleted above
            }
            assert_eq!(
                recovered.get(i).unwrap().unwrap().as_ref(),
                format!("new-{i}").as_bytes(),
                "page {i} did not recover its newest version"
            );
        }
        for i in 50..200u64 {
            if i == 7 {
                continue;
            }
            assert_eq!(
                recovered.get(i).unwrap().unwrap().as_ref(),
                format!("page-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn recovery_survives_cleaning_having_run() {
        let cfg = config();
        let pages = cfg.logical_pages_for_fill_factor(0.5) as u64;
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        // Full-size payloads so segments actually fill and cleaning is forced; the first
        // bytes identify the version so recovery correctness can be checked.
        let page_bytes = cfg.page_bytes;
        let payload = move |i: u64, version: u64| {
            let mut v = vec![0u8; page_bytes];
            v[..8].copy_from_slice(&i.to_le_bytes());
            v[8..16].copy_from_slice(&version.to_le_bytes());
            v
        };
        // Pre-fill every page, then overwrite in a scrambled order so victim segments end
        // up with a checkerboard of live and dead pages.
        let mut expected = vec![0u64; pages as usize];
        for i in 0..pages {
            store.put(i, &payload(i, 0)).unwrap();
        }
        let overwrites = cfg.physical_pages() as u64 * 3;
        for n in 0..overwrites {
            let page = crate::util::mix64(n) % pages;
            let version = n + 1;
            store.put(page, &payload(page, version)).unwrap();
            expected[page as usize] = version;
        }
        store.flush().unwrap();
        assert!(
            store.stats().cleaning_cycles > 0,
            "test needs cleaning to have happened"
        );
        assert!(
            store.stats().gc_pages_written > 0,
            "test needs live pages to have moved"
        );

        let device = store.into_device();
        let (recovered, _) = recover_with_report(cfg, device).unwrap();
        assert_eq!(recovered.live_pages() as u64, pages);
        for i in 0..pages {
            assert_eq!(
                recovered.get(i).unwrap().unwrap().as_ref(),
                payload(i, expected[i as usize]).as_slice(),
                "page {i} lost its newest version across cleaning + recovery"
            );
        }
        // The recovered store keeps working (writes, cleaning, reads).
        for i in 0..pages {
            recovered.put(i, &payload(i, u64::MAX)).unwrap();
        }
        recovered.flush().unwrap();
        assert_eq!(
            recovered.get(0).unwrap().unwrap().as_ref(),
            payload(0, u64::MAX).as_slice()
        );
    }

    #[test]
    fn unflushed_writes_are_lost_as_documented() {
        let cfg = config();
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        store.put(1, b"durable").unwrap();
        store.flush().unwrap();
        store.put(2, b"volatile").unwrap(); // never flushed
        let device = store.into_device();
        let (recovered, _) = recover_with_report(cfg, device).unwrap();
        assert!(recovered.get(1).unwrap().is_some());
        assert!(recovered.get(2).unwrap().is_none());
    }

    #[test]
    fn corrupt_segments_are_skipped_not_fatal() {
        let cfg = config();
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        for i in 0..40u64 {
            store.put(i, b"some data here").unwrap();
        }
        store.flush().unwrap();
        let device = store.into_device();

        // Corrupt one sealed segment's header byte.
        let victim = SegmentId(0);
        let mut image = device.read_segment(victim).unwrap();
        if image[0] != 0 {
            image[10] ^= 0xFF;
            device.write_segment(victim, &image).unwrap();
        }
        let (store2, report) = recover_with_report(cfg, device).unwrap();
        // Recovery completed; the corrupt segment (if it held data) is reported.
        assert!(report.corrupt_segments.len() <= 1);
        let _ = store2;
    }
}
