//! Crash recovery: full-device scan, or checkpoint-anchored bounded log-tail replay.
//!
//! Because every segment is self-describing (header + entry table, see [`crate::layout`]),
//! the page table can always be rebuilt from the device alone: replay segments in seal
//! order, keep the newest version of each page (largest `(write_seq, seal_seq)` pair) and
//! honour tombstones. Segment metadata (`A`, `C`, `up2`) is then derived from the final
//! page table plus the headers.
//!
//! Deletions are durable under this rule because the cleaner never drops a delete fact
//! without proof of redundancy: when a victim holding a tombstone is cleaned, the
//! tombstone is re-emitted into a GC output stream (keeping its write sequence) unless
//! the page has been recreated or a committed checkpoint's frontier covers the victim —
//! see `store::gc_driver` — so no segment-slot reuse can leave an older copy of an
//! ever-deleted page as the newest surviving record. Note the checkpoint-covered drop
//! is only sound for *checkpoint-anchored* recovery: once such tombstones have been
//! dropped, a raw full scan of the device may resurrect their pages from older copies,
//! which is why a store that checkpoints must be reopened through its journal.
//!
//! [`recover_from_checkpoint`] avoids the full scan: a checkpoint journal (see
//! [`crate::checkpoint`]) carries the page table and the sealed-segment metadata up to a
//! *seal-sequence frontier*; recovery reads only the fixed-size header of every slot and
//! fully decodes just the segments sealed *after* the frontier, replaying them on top of
//! the checkpoint state with the same `(write_seq, seal_seq)` rule. Checkpoint entries
//! are ranked with their owning segment's seal sequence, so a post-frontier GC copy of a
//! checkpointed page (same write seq, later seal) correctly supersedes the checkpoint
//! entry, while a stale post-frontier copy (lower write seq) never does.

use crate::checkpoint::{read_journal, JournalCheckpoint};
use crate::config::StoreConfig;
use crate::device::SegmentDevice;
use crate::error::{Error, Result};
use crate::layout::{self, decode_segment};
use crate::mapping::PageTable;
use crate::segment::{SegmentMeta, SegmentTable};
use crate::stats::AtomicStats;
use crate::store::LogStore;
use crate::types::{PageId, PageLocation, SealSeq, SegmentId, WriteSeq};
use crate::util::FxHashMap;

/// Outcome of scanning a device.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Segments that decoded as sealed data.
    pub sealed_segments: usize,
    /// Segments that were blank (never written or erased).
    pub blank_segments: usize,
    /// Segments that looked like data but failed validation and were skipped.
    pub corrupt_segments: Vec<SegmentId>,
    /// Live pages reconstructed.
    pub live_pages: usize,
    /// Segments whose entry tables were fully decoded and replayed. A full scan replays
    /// every sealed segment; checkpoint-anchored recovery only the post-frontier tail.
    pub replayed_segments: usize,
}

struct PageVersion {
    write_seq: WriteSeq,
    seal_seq: SealSeq,
    loc: PageLocation,
    tombstone: bool,
}

/// Rebuild a [`LogStore`] from an existing device by scanning all segment images.
pub fn recover(config: StoreConfig, device: Box<dyn SegmentDevice>) -> Result<LogStore> {
    let (store, _report) = recover_with_report(config, device)?;
    Ok(store)
}

/// [`recover`] but also returns a [`ScanReport`] describing what was found.
pub fn recover_with_report(
    config: StoreConfig,
    device: Box<dyn SegmentDevice>,
) -> Result<(LogStore, ScanReport)> {
    config.validate()?;
    let mut report = ScanReport::default();

    // Pass 1: decode every segment image (entry tables only; payloads stay on device).
    struct Parsed {
        id: SegmentId,
        header: layout::SegmentHeader,
        entries: Vec<layout::SegmentEntry>,
    }
    let mut parsed_segments: Vec<Parsed> = Vec::new();
    for i in 0..config.num_segments {
        let id = SegmentId(i as u32);
        let image = device.read_segment(id)?;
        match decode_segment(id, &image) {
            Ok(Some(p)) => {
                report.sealed_segments += 1;
                parsed_segments.push(Parsed {
                    id,
                    header: p.header,
                    entries: p.entries,
                });
            }
            Ok(None) => report.blank_segments += 1,
            Err(_) => report.corrupt_segments.push(id),
        }
    }

    // Pass 2: replay entries in seal order, newest version of each page wins.
    parsed_segments.sort_by_key(|p| p.header.seal_seq);
    let mut best: FxHashMap<PageId, PageVersion> = FxHashMap::default();
    let mut max_write_seq: WriteSeq = 0;
    let mut max_unow = 0;
    for p in &parsed_segments {
        max_unow = max_unow.max(p.header.sealed_at);
        for e in &p.entries {
            max_write_seq = max_write_seq.max(e.write_seq);
            let candidate = PageVersion {
                write_seq: e.write_seq,
                seal_seq: p.header.seal_seq,
                loc: PageLocation {
                    segment: p.id,
                    offset: e.offset,
                    len: e.payload_len(),
                    write_seq: e.write_seq,
                },
                tombstone: e.is_tombstone(),
            };
            match best.get(&e.page_id) {
                Some(cur)
                    if (cur.write_seq, cur.seal_seq)
                        >= (candidate.write_seq, candidate.seal_seq) => {}
                _ => {
                    best.insert(e.page_id, candidate);
                }
            }
        }
    }

    // Pass 3: build the page table and per-segment live statistics.
    let mut mapping = PageTable::new();
    let mut live_per_segment: FxHashMap<SegmentId, (u64, u64)> = FxHashMap::default();
    for (page, v) in &best {
        if v.tombstone {
            continue;
        }
        mapping.insert(*page, v.loc);
        let entry = live_per_segment.entry(v.loc.segment).or_insert((0, 0));
        entry.0 += v.loc.len as u64;
        entry.1 += 1;
    }
    report.live_pages = mapping.len();
    report.replayed_segments = report.sealed_segments;

    let capacity = layout::payload_capacity(config.segment_bytes, config.page_bytes) as u64;
    let mut table = SegmentTable::new(config.num_segments);
    for p in &parsed_segments {
        let (live_bytes, live_pages) = live_per_segment.get(&p.id).copied().unwrap_or((0, 0));
        // Every tombstone entry (winner or not) re-acquires its space charge, matching
        // the write path's accounting: until a checkpoint covers it, the delete fact
        // pins its entry slot and the segment must not look emptier than it is.
        let tombstone_bytes = p.entries.iter().filter(|e| e.is_tombstone()).count() as u64
            * layout::ENTRY_SIZE as u64;
        let mut meta = SegmentMeta::new_open(p.id, capacity, p.header.log_id, config.up2_mode);
        meta.live_bytes = live_bytes + tombstone_bytes;
        meta.tombstone_bytes = tombstone_bytes;
        meta.live_pages = live_pages;
        meta.seal(
            p.header.seal_seq,
            p.header.sealed_at,
            p.header.up2,
            config.up2_mode,
        );
        table.install_sealed(meta);
    }

    let mut store = LogStore::open_with_device(config, device)?;
    store.install_recovered_state(mapping, table, max_unow, max_write_seq + 1);
    Ok((store, report))
}

/// Rebuild a [`LogStore`] from a checkpoint journal plus the device, replaying only the
/// bounded log tail sealed after the checkpoint's frontier.
pub fn recover_from_checkpoint(
    config: StoreConfig,
    device: Box<dyn SegmentDevice>,
    path: &std::path::Path,
) -> Result<LogStore> {
    let (store, _report) = recover_from_checkpoint_with_report(config, device, path)?;
    Ok(store)
}

/// [`recover_from_checkpoint`] but also returns a [`ScanReport`] describing what was
/// read: `replayed_segments` counts only the post-frontier tail, while
/// `sealed_segments` counts everything installed (checkpoint records plus tail).
pub fn recover_from_checkpoint_with_report(
    config: StoreConfig,
    device: Box<dyn SegmentDevice>,
    path: &std::path::Path,
) -> Result<(LogStore, ScanReport)> {
    config.validate()?;
    let cp: JournalCheckpoint = read_journal(path)?;
    if cp.num_segments != config.num_segments as u64 {
        return Err(Error::CorruptCheckpoint(format!(
            "journal describes a device of {} segments, config says {}",
            cp.num_segments, config.num_segments
        )));
    }
    let mut records: FxHashMap<SegmentId, crate::checkpoint::SegmentRecord> = FxHashMap::default();
    for s in &cp.segments {
        if s.id as usize >= config.num_segments {
            return Err(Error::CorruptCheckpoint(format!(
                "segment record {} beyond device size {}",
                s.id, config.num_segments
            )));
        }
        records.insert(SegmentId(s.id), *s);
    }

    let mut report = ScanReport::default();

    // Pass 1: sweep only the fixed-size header of every slot; fully decode just the
    // segments sealed after the checkpoint frontier. A recorded slot whose on-device
    // header still predates the frontier keeps its checkpoint metadata without any
    // further I/O; a post-frontier header means the slot was sealed (or reused and
    // resealed) after the checkpoint and its entries must be replayed.
    struct Parsed {
        id: SegmentId,
        header: layout::SegmentHeader,
        entries: Vec<layout::SegmentEntry>,
    }
    let mut tail: Vec<Parsed> = Vec::new();
    for i in 0..config.num_segments {
        let id = SegmentId(i as u32);
        let head = device.read_range(id, 0, layout::HEADER_SIZE as u32)?;
        match layout::decode_header(id, &head) {
            Ok(None) => report.blank_segments += 1,
            Err(_) => report.corrupt_segments.push(id),
            Ok(Some((header, _))) => {
                if header.seal_seq > cp.frontier {
                    let image = device.read_segment(id)?;
                    match decode_segment(id, &image) {
                        Ok(Some(p)) => tail.push(Parsed {
                            id,
                            header: p.header,
                            entries: p.entries,
                        }),
                        // The header round-tripped but the full image does not decode:
                        // torn write of a post-checkpoint segment. Its contents were
                        // never acknowledged durable, so skipping it is correct.
                        Ok(None) | Err(_) => report.corrupt_segments.push(id),
                    }
                }
            }
        }
    }
    report.replayed_segments = tail.len();

    // Pass 2: seed the newest-version map from the checkpoint, ranking each entry with
    // its owning segment's seal sequence, then replay the tail in seal order on top.
    let mut best: FxHashMap<PageId, PageVersion> = FxHashMap::default();
    for p in &cp.pages {
        let seg = SegmentId(p.segment);
        let Some(owner) = records.get(&seg) else {
            return Err(Error::CorruptCheckpoint(format!(
                "page {} references segment {} absent from the checkpoint",
                p.page, p.segment
            )));
        };
        best.insert(
            p.page,
            PageVersion {
                write_seq: p.write_seq,
                seal_seq: owner.seal_seq,
                loc: PageLocation {
                    segment: seg,
                    offset: p.offset,
                    len: p.len,
                    write_seq: p.write_seq,
                },
                tombstone: false,
            },
        );
    }
    tail.sort_by_key(|p| p.header.seal_seq);
    let mut max_write_seq: WriteSeq = 0;
    let mut max_replayed_seal: SealSeq = 0;
    let mut max_unow = 0;
    for p in &tail {
        max_unow = max_unow.max(p.header.sealed_at);
        max_replayed_seal = max_replayed_seal.max(p.header.seal_seq);
        for e in &p.entries {
            max_write_seq = max_write_seq.max(e.write_seq);
            let candidate = PageVersion {
                write_seq: e.write_seq,
                seal_seq: p.header.seal_seq,
                loc: PageLocation {
                    segment: p.id,
                    offset: e.offset,
                    len: e.payload_len(),
                    write_seq: e.write_seq,
                },
                tombstone: e.is_tombstone(),
            };
            match best.get(&e.page_id) {
                Some(cur)
                    if (cur.write_seq, cur.seal_seq)
                        >= (candidate.write_seq, candidate.seal_seq) => {}
                _ => {
                    best.insert(e.page_id, candidate);
                }
            }
        }
    }

    // Pass 3: final page table, and per-segment live stats from the *final* mapping
    // (a tail segment may have relocated pages away from recorded segments).
    let mut mapping = PageTable::new();
    let mut live_per_segment: FxHashMap<SegmentId, (u64, u64)> = FxHashMap::default();
    for (page, v) in &best {
        if v.tombstone {
            continue;
        }
        mapping.insert(*page, v.loc);
        let entry = live_per_segment.entry(v.loc.segment).or_insert((0, 0));
        entry.0 += v.loc.len as u64;
        entry.1 += 1;
    }
    report.live_pages = mapping.len();

    let capacity = layout::payload_capacity(config.segment_bytes, config.page_bytes) as u64;
    let mut table = SegmentTable::new(config.num_segments);
    let mut install = |id: SegmentId,
                       cap: u64,
                       log_id: u16,
                       seal_seq: u64,
                       sealed_at: u64,
                       up2: u64,
                       tombstone_bytes: u64| {
        let (live_bytes, live_pages) = live_per_segment.get(&id).copied().unwrap_or((0, 0));
        let mut meta = SegmentMeta::new_open(id, cap, log_id, config.up2_mode);
        meta.live_bytes = live_bytes + tombstone_bytes;
        meta.tombstone_bytes = tombstone_bytes;
        meta.live_pages = live_pages;
        meta.seal(seal_seq, sealed_at, up2, config.up2_mode);
        table.install_sealed(meta);
    };
    let replayed_ids: std::collections::HashSet<SegmentId> = tail.iter().map(|p| p.id).collect();
    for p in &tail {
        // Tail segments recompute their tombstone charge from their entry tables.
        let tombstone_bytes = p.entries.iter().filter(|e| e.is_tombstone()).count() as u64
            * layout::ENTRY_SIZE as u64;
        install(
            p.id,
            capacity,
            p.header.log_id,
            p.header.seal_seq,
            p.header.sealed_at,
            p.header.up2,
            tombstone_bytes,
        );
    }
    for (id, r) in &records {
        if replayed_ids.contains(id) {
            continue; // the slot was resealed after the checkpoint; the header wins
        }
        // Every recorded segment was sealed at or before the journal's frontier, so
        // its tombstones are covered by the very checkpoint we are recovering from
        // (committing a checkpoint uncharges everything it captured): install it
        // uncharged, mirroring the in-memory state right after that commit.
        install(
            *id,
            r.capacity_bytes,
            r.log_id,
            r.seal_seq,
            r.sealed_at,
            r.up2,
            0,
        );
    }
    report.sealed_segments = report.replayed_segments + records.len()
        - records
            .keys()
            .filter(|id| replayed_ids.contains(id))
            .count();

    table.set_next_seal_seq(cp.next_seal_seq.max(max_replayed_seal + 1));
    let next_write_seq = cp.next_write_seq.max(max_write_seq + 1);
    let unow = cp.unow.max(max_unow);

    let replayed = report.replayed_segments as u64;
    let mut store = LogStore::open_with_device(config, device)?;
    store.install_recovered_state(mapping, table, unow, next_write_seq);
    // The journal we just recovered from is itself a committed checkpoint: seed the
    // frontier so the cleaner may keep dropping covered tombstones immediately.
    store.set_checkpoint_frontier(cp.frontier);
    AtomicStats::add(&store.atomic_stats().recovery_segments_replayed, replayed);
    Ok((store, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::policy::PolicyKind;
    use crate::StoreConfig;

    fn config() -> StoreConfig {
        StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc)
    }

    #[test]
    fn recover_empty_device_yields_empty_store() {
        let cfg = config();
        let dev = MemDevice::new(cfg.segment_bytes, cfg.num_segments);
        let (store, report) = recover_with_report(cfg, Box::new(dev)).unwrap();
        assert_eq!(store.live_pages(), 0);
        assert_eq!(report.sealed_segments, 0);
        assert_eq!(report.blank_segments, store.config().num_segments);
    }

    #[test]
    fn recover_after_flush_restores_all_pages() {
        let cfg = config();
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        for i in 0..200u64 {
            store.put(i, format!("page-{i}").as_bytes()).unwrap();
        }
        // Overwrite some so stale copies exist on the device.
        for i in 0..50u64 {
            store.put(i, format!("new-{i}").as_bytes()).unwrap();
        }
        store.delete(7).unwrap();
        store.flush().unwrap();

        let device = store.into_device();
        let (recovered, report) = recover_with_report(cfg, device).unwrap();
        assert!(report.sealed_segments > 0);
        assert_eq!(recovered.live_pages(), 199);
        assert!(
            recovered.get(7).unwrap().is_none(),
            "deleted page resurrected"
        );
        for i in 0..50u64 {
            if i == 7 {
                continue; // deleted above
            }
            assert_eq!(
                recovered.get(i).unwrap().unwrap().as_ref(),
                format!("new-{i}").as_bytes(),
                "page {i} did not recover its newest version"
            );
        }
        for i in 50..200u64 {
            if i == 7 {
                continue;
            }
            assert_eq!(
                recovered.get(i).unwrap().unwrap().as_ref(),
                format!("page-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn recovery_survives_cleaning_having_run() {
        let cfg = config();
        let pages = cfg.logical_pages_for_fill_factor(0.5) as u64;
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        // Full-size payloads so segments actually fill and cleaning is forced; the first
        // bytes identify the version so recovery correctness can be checked.
        let page_bytes = cfg.page_bytes;
        let payload = move |i: u64, version: u64| {
            let mut v = vec![0u8; page_bytes];
            v[..8].copy_from_slice(&i.to_le_bytes());
            v[8..16].copy_from_slice(&version.to_le_bytes());
            v
        };
        // Pre-fill every page, then overwrite in a scrambled order so victim segments end
        // up with a checkerboard of live and dead pages.
        let mut expected = vec![0u64; pages as usize];
        for i in 0..pages {
            store.put(i, &payload(i, 0)).unwrap();
        }
        let overwrites = cfg.physical_pages() as u64 * 3;
        for n in 0..overwrites {
            let page = crate::util::mix64(n) % pages;
            let version = n + 1;
            store.put(page, &payload(page, version)).unwrap();
            expected[page as usize] = version;
        }
        store.flush().unwrap();
        assert!(
            store.stats().cleaning_cycles > 0,
            "test needs cleaning to have happened"
        );
        assert!(
            store.stats().gc_pages_written > 0,
            "test needs live pages to have moved"
        );

        let device = store.into_device();
        let (recovered, _) = recover_with_report(cfg, device).unwrap();
        assert_eq!(recovered.live_pages() as u64, pages);
        for i in 0..pages {
            assert_eq!(
                recovered.get(i).unwrap().unwrap().as_ref(),
                payload(i, expected[i as usize]).as_slice(),
                "page {i} lost its newest version across cleaning + recovery"
            );
        }
        // The recovered store keeps working (writes, cleaning, reads).
        for i in 0..pages {
            recovered.put(i, &payload(i, u64::MAX)).unwrap();
        }
        recovered.flush().unwrap();
        assert_eq!(
            recovered.get(0).unwrap().unwrap().as_ref(),
            payload(0, u64::MAX).as_slice()
        );
    }

    #[test]
    fn unflushed_writes_are_lost_as_documented() {
        let cfg = config();
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        store.put(1, b"durable").unwrap();
        store.flush().unwrap();
        store.put(2, b"volatile").unwrap(); // never flushed
        let device = store.into_device();
        let (recovered, _) = recover_with_report(cfg, device).unwrap();
        assert!(recovered.get(1).unwrap().is_some());
        assert!(recovered.get(2).unwrap().is_none());
    }

    fn temp_journal_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lss-recovery-{tag}-{}-{n}.ckpt",
            std::process::id()
        ))
    }

    /// Checkpoint, churn, crash-recover from the journal: only the post-frontier tail is
    /// replayed, and the result is byte-exact — including deletes on both sides of the
    /// checkpoint staying dead.
    #[test]
    fn checkpoint_recovery_replays_bounded_tail_and_is_exact() {
        let cfg = config();
        let path = temp_journal_path("tail");
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        let pages = cfg.logical_pages_for_fill_factor(0.4) as u64;
        let page_bytes = cfg.page_bytes;
        let payload = move |i: u64, version: u64| {
            let mut v = vec![0u8; page_bytes];
            v[..8].copy_from_slice(&i.to_le_bytes());
            v[8..16].copy_from_slice(&version.to_le_bytes());
            v
        };
        for i in 0..pages {
            store.put(i, &payload(i, 0)).unwrap();
        }
        for i in (0..pages).step_by(17) {
            store.delete(i).unwrap();
        }
        store.flush().unwrap();
        let stats = store.checkpoint_log_to(&path).unwrap();
        assert!(stats.shards_written > 0);

        // Post-checkpoint tail: overwrite a slice of pages, delete another stripe.
        for i in 0..pages / 10 {
            if i % 17 != 0 {
                store.put(i, &payload(i, 1)).unwrap();
            }
        }
        for i in (0..pages).step_by(13) {
            store.delete(i).unwrap();
        }
        store.flush().unwrap();

        let device = store.into_device();
        let (recovered, report) =
            recover_from_checkpoint_with_report(cfg.clone(), device, &path).unwrap();
        assert!(
            report.replayed_segments > 0,
            "churn must have sealed a tail"
        );
        assert!(
            report.replayed_segments < report.sealed_segments,
            "replay must be bounded: {} replayed of {} sealed",
            report.replayed_segments,
            report.sealed_segments
        );
        assert_eq!(
            recovered.stats().recovery_segments_replayed,
            report.replayed_segments as u64
        );
        for i in 0..pages {
            let got = recovered.get(i).unwrap();
            if i % 17 == 0 || i % 13 == 0 {
                assert!(got.is_none(), "deleted page {i} resurrected after recovery");
            } else if i < pages / 10 {
                assert_eq!(got.unwrap().as_ref(), payload(i, 1).as_slice(), "page {i}");
            } else {
                assert_eq!(got.unwrap().as_ref(), payload(i, 0).as_slice(), "page {i}");
            }
        }
        // The recovered store keeps working.
        recovered.put(0, &payload(0, 7)).unwrap();
        recovered.flush().unwrap();
        assert_eq!(
            recovered.get(0).unwrap().unwrap().as_ref(),
            payload(0, 7).as_slice()
        );
        std::fs::remove_file(&path).ok();
    }

    /// Back-to-back checkpoints into the same journal write only dirtied shards, and the
    /// merged journal still recovers correctly.
    #[test]
    fn incremental_checkpoints_skip_clean_shards() {
        let cfg = config();
        assert!(cfg.checkpoint.incremental, "incremental is the default");
        let path = temp_journal_path("incr");
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        for i in 0..300u64 {
            store.put(i, format!("v-{i}").as_bytes()).unwrap();
        }
        store.flush().unwrap();
        let first = store.checkpoint_log_to(&path).unwrap();
        assert!(first.shards_written > 0);

        // Nothing changed: the next checkpoint writes no shards at all.
        let idle = store.checkpoint_log_to(&path).unwrap();
        assert_eq!(idle.shards_written, 0);
        assert_eq!(
            idle.shards_skipped,
            crate::mapping::PAGE_TABLE_SHARDS as u64
        );

        // A single page dirties exactly its shard.
        store.put(3, b"rewritten").unwrap();
        store.flush().unwrap();
        let third = store.checkpoint_log_to(&path).unwrap();
        assert!(third.shards_written >= 1);
        assert!(third.shards_written < crate::mapping::PAGE_TABLE_SHARDS as u64);

        let device = store.into_device();
        let recovered = recover_from_checkpoint(cfg, device, &path).unwrap();
        assert_eq!(recovered.get(3).unwrap().unwrap().as_ref(), b"rewritten");
        assert_eq!(recovered.get(7).unwrap().unwrap().as_ref(), b"v-7");
        assert_eq!(recovered.live_pages(), 300);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_recovery_rejects_wrong_device_size() {
        let cfg = config();
        let path = temp_journal_path("size");
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        store.put(1, b"x").unwrap();
        store.flush().unwrap();
        store.checkpoint_log_to(&path).unwrap();
        let device = store.into_device();
        let mut wrong = cfg.clone();
        wrong.num_segments += 1;
        assert!(recover_from_checkpoint(wrong, device, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_segments_are_skipped_not_fatal() {
        let cfg = config();
        let store = LogStore::open_in_memory(cfg.clone()).unwrap();
        for i in 0..40u64 {
            store.put(i, b"some data here").unwrap();
        }
        store.flush().unwrap();
        let device = store.into_device();

        // Corrupt one sealed segment's header byte.
        let victim = SegmentId(0);
        let mut image = device.read_segment(victim).unwrap();
        if image[0] != 0 {
            image[10] ^= 0xFF;
            device.write_segment(victim, &image).unwrap();
        }
        let (store2, report) = recover_with_report(cfg, device).unwrap();
        // Recovery completed; the corrupt segment (if it held data) is reported.
        assert!(report.corrupt_segments.len() <= 1);
        let _ = store2;
    }
}
