//! Segment devices: where segment images physically live.
//!
//! The store talks to storage exclusively in whole segments (one large write per sealed
//! segment — the defining property of a log-structured store) plus small ranged reads for
//! serving individual pages. All methods take `&self`: devices are internally
//! synchronised so the concurrent store can serve page reads without funnelling them
//! through the write path's lock. Two implementations are provided:
//!
//! * [`MemDevice`] — segments held in memory (one `RwLock` per slot); used by tests, the
//!   examples, and anywhere a volatile store is acceptable.
//! * [`FileDevice`] — a single preallocated file, one segment per slot; positional I/O
//!   (`pread`/`pwrite` on Unix, which needs no locking at all).
//!
//! Implement [`SegmentDevice`] to plug in anything else (an SSD partition, an object
//! store, a simulated flash device with erase counters, ...).

use crate::error::{Error, Result};
use crate::types::SegmentId;
use parking_lot::{Mutex, RwLock};
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Physical geometry of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceGeometry {
    /// Size of each segment slot in bytes.
    pub segment_bytes: usize,
    /// Number of segment slots.
    pub num_segments: usize,
}

impl DeviceGeometry {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.segment_bytes as u64 * self.num_segments as u64
    }
}

/// Abstraction over the storage medium holding segment images.
///
/// Implementations must be internally synchronised (`&self` methods, `Send + Sync`):
/// the store issues concurrent ranged reads from many threads while one thread writes
/// sealed segments. Concurrent operations on *different* segment slots must not block
/// each other more than necessary; the store guarantees it never reads a slot that is
/// concurrently being written (its segment-pinning protocol, see `store::read_path`).
pub trait SegmentDevice: Send + Sync {
    /// The device geometry.
    fn geometry(&self) -> DeviceGeometry;

    /// Read one whole segment image.
    fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>>;

    /// Read `len` bytes starting at `offset` within a segment.
    fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>>;

    /// Write one whole segment image (must be exactly `segment_bytes` long).
    fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()>;

    /// Erase a segment (mark its slot blank). Optional: the default clears nothing, since
    /// a later `write_segment` will overwrite the slot anyway; `MemDevice` drops the
    /// allocation to return memory.
    fn erase_segment(&self, _seg: SegmentId) -> Result<()> {
        Ok(())
    }

    /// Flush any buffered writes to stable storage.
    fn sync(&self) -> Result<()>;

    /// Number of segment writes performed (used by tests and the stats report).
    fn segment_writes(&self) -> u64;
}

fn check_bounds(geom: DeviceGeometry, seg: SegmentId, offset: u32, len: u32) -> Result<()> {
    if seg.index() >= geom.num_segments {
        return Err(Error::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "segment {seg} out of range (device has {})",
                geom.num_segments
            ),
        )));
    }
    if offset as usize + len as usize > geom.segment_bytes {
        return Err(Error::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "range [{offset}, +{len}) exceeds segment size {}",
                geom.segment_bytes
            ),
        )));
    }
    Ok(())
}

/// One lazily allocated in-memory segment slot.
type MemSlot = RwLock<Option<Box<[u8]>>>;

/// In-memory device: each segment slot is lazily allocated on first write and guarded by
/// its own `RwLock`, so reads of different slots (and concurrent reads of the same slot)
/// proceed in parallel.
#[derive(Debug)]
pub struct MemDevice {
    geometry: DeviceGeometry,
    slots: Box<[MemSlot]>,
    writes: AtomicU64,
}

impl MemDevice {
    /// Create a blank in-memory device.
    pub fn new(segment_bytes: usize, num_segments: usize) -> Self {
        Self {
            geometry: DeviceGeometry {
                segment_bytes,
                num_segments,
            },
            slots: (0..num_segments).map(|_| RwLock::new(None)).collect(),
            writes: AtomicU64::new(0),
        }
    }

    /// Bytes currently allocated (for tests asserting erase releases memory).
    pub fn allocated_bytes(&self) -> usize {
        self.slots.iter().filter(|s| s.read().is_some()).count() * self.geometry.segment_bytes
    }
}

impl SegmentDevice for MemDevice {
    fn geometry(&self) -> DeviceGeometry {
        self.geometry
    }

    fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>> {
        check_bounds(self.geometry, seg, 0, 0)?;
        Ok(match &*self.slots[seg.index()].read() {
            Some(data) => data.to_vec(),
            None => vec![0u8; self.geometry.segment_bytes],
        })
    }

    fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>> {
        check_bounds(self.geometry, seg, offset, len)?;
        Ok(match &*self.slots[seg.index()].read() {
            Some(data) => data[offset as usize..(offset + len) as usize].to_vec(),
            None => vec![0u8; len as usize],
        })
    }

    fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()> {
        check_bounds(self.geometry, seg, 0, 0)?;
        if image.len() != self.geometry.segment_bytes {
            return Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "segment image is {} bytes, expected {}",
                    image.len(),
                    self.geometry.segment_bytes
                ),
            )));
        }
        *self.slots[seg.index()].write() = Some(image.to_vec().into_boxed_slice());
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn erase_segment(&self, seg: SegmentId) -> Result<()> {
        check_bounds(self.geometry, seg, 0, 0)?;
        *self.slots[seg.index()].write() = None;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn segment_writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

/// File-backed device: one preallocated file, segment `i` at byte offset
/// `i * segment_bytes`. On Unix, reads and writes use positional I/O and need no lock;
/// elsewhere a mutex serialises the seek+access pairs.
#[derive(Debug)]
pub struct FileDevice {
    geometry: DeviceGeometry,
    file: File,
    writes: AtomicU64,
    /// Serialises seek+read/write on platforms without positional file I/O.
    #[cfg_attr(unix, allow(dead_code))]
    seek_lock: Mutex<()>,
}

impl FileDevice {
    /// Create (or truncate) a device file of the given geometry.
    pub fn create<P: AsRef<Path>>(
        path: P,
        segment_bytes: usize,
        num_segments: usize,
    ) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let geometry = DeviceGeometry {
            segment_bytes,
            num_segments,
        };
        file.set_len(geometry.capacity_bytes())?;
        Ok(Self {
            geometry,
            file,
            writes: AtomicU64::new(0),
            seek_lock: Mutex::new(()),
        })
    }

    /// Open an existing device file, validating that its size matches the geometry.
    pub fn open<P: AsRef<Path>>(
        path: P,
        segment_bytes: usize,
        num_segments: usize,
    ) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let geometry = DeviceGeometry {
            segment_bytes,
            num_segments,
        };
        let len = file.metadata()?.len();
        if len != geometry.capacity_bytes() {
            return Err(Error::GeometryMismatch {
                expected: format!("{} bytes", geometry.capacity_bytes()),
                actual: format!("{len} bytes"),
            });
        }
        Ok(Self {
            geometry,
            file,
            writes: AtomicU64::new(0),
            seek_lock: Mutex::new(()),
        })
    }

    fn offset_of(&self, seg: SegmentId, offset: u32) -> u64 {
        seg.index() as u64 * self.geometry.segment_bytes as u64 + offset as u64
    }

    #[cfg(unix)]
    fn read_at(&self, pos: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, pos)?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_at(&self, pos: u64, buf: &mut [u8]) -> Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let _guard = self.seek_lock.lock();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(pos))?;
        f.read_exact(buf)?;
        Ok(())
    }

    #[cfg(unix)]
    fn write_at(&self, pos: u64, buf: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(buf, pos)?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn write_at(&self, pos: u64, buf: &[u8]) -> Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let _guard = self.seek_lock.lock();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(pos))?;
        f.write_all(buf)?;
        Ok(())
    }
}

impl SegmentDevice for FileDevice {
    fn geometry(&self) -> DeviceGeometry {
        self.geometry
    }

    fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>> {
        check_bounds(self.geometry, seg, 0, 0)?;
        let mut buf = vec![0u8; self.geometry.segment_bytes];
        let pos = self.offset_of(seg, 0);
        self.read_at(pos, &mut buf)?;
        Ok(buf)
    }

    fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>> {
        check_bounds(self.geometry, seg, offset, len)?;
        let mut buf = vec![0u8; len as usize];
        let pos = self.offset_of(seg, offset);
        self.read_at(pos, &mut buf)?;
        Ok(buf)
    }

    fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()> {
        check_bounds(self.geometry, seg, 0, 0)?;
        if image.len() != self.geometry.segment_bytes {
            return Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "segment image is {} bytes, expected {}",
                    image.len(),
                    self.geometry.segment_bytes
                ),
            )));
        }
        let pos = self.offset_of(seg, 0);
        self.write_at(pos, image)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn segment_writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

/// A fault-injecting wrapper around any device, used to test that I/O failures surface
/// as errors instead of corrupting state (failure-injection tests live in the store and
/// in `tests/` at the workspace root).
#[derive(Debug)]
pub struct FlakyDevice<D: SegmentDevice> {
    inner: D,
    /// Segment writes remaining before the next injected failure (`None` = never fail).
    fail_after_writes: Mutex<Option<u64>>,
}

impl<D: SegmentDevice> FlakyDevice<D> {
    /// Wrap a device; the `fail_after_writes`-th subsequent segment write (0-based) and
    /// every write after it will fail with an I/O error until the budget is reset.
    pub fn new(inner: D, fail_after_writes: Option<u64>) -> Self {
        Self {
            inner,
            fail_after_writes: Mutex::new(fail_after_writes),
        }
    }

    /// Change the failure budget (e.g. heal the device mid-test).
    pub fn set_fail_after_writes(&self, budget: Option<u64>) {
        *self.fail_after_writes.lock() = budget;
    }

    /// Access the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: SegmentDevice> SegmentDevice for FlakyDevice<D> {
    fn geometry(&self) -> DeviceGeometry {
        self.inner.geometry()
    }

    fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>> {
        self.inner.read_segment(seg)
    }

    fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>> {
        self.inner.read_range(seg, offset, len)
    }

    fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()> {
        if let Some(budget) = self.fail_after_writes.lock().as_mut() {
            if *budget == 0 {
                return Err(Error::Io(std::io::Error::other(format!(
                    "injected write failure on segment {seg}"
                ))));
            }
            *budget -= 1;
        }
        self.inner.write_segment(seg, image)
    }

    fn erase_segment(&self, seg: SegmentId) -> Result<()> {
        self.inner.erase_segment(seg)
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }

    fn segment_writes(&self) -> u64 {
        self.inner.segment_writes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lss-device-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn mem_device_roundtrip() {
        let dev = MemDevice::new(1024, 4);
        assert_eq!(dev.geometry().capacity_bytes(), 4096);
        let image = vec![7u8; 1024];
        dev.write_segment(SegmentId(2), &image).unwrap();
        assert_eq!(dev.read_segment(SegmentId(2)).unwrap(), image);
        assert_eq!(dev.read_range(SegmentId(2), 10, 4).unwrap(), vec![7u8; 4]);
        assert_eq!(dev.segment_writes(), 1);
    }

    #[test]
    fn mem_device_unwritten_segments_read_as_zero() {
        let dev = MemDevice::new(512, 2);
        assert_eq!(dev.read_segment(SegmentId(0)).unwrap(), vec![0u8; 512]);
        assert_eq!(dev.read_range(SegmentId(1), 100, 8).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn mem_device_bounds_checks() {
        let dev = MemDevice::new(512, 2);
        assert!(dev.read_segment(SegmentId(5)).is_err());
        assert!(dev.read_range(SegmentId(0), 500, 100).is_err());
        assert!(dev.write_segment(SegmentId(0), &[0u8; 100]).is_err());
    }

    #[test]
    fn mem_device_erase_releases_memory() {
        let dev = MemDevice::new(1024, 4);
        dev.write_segment(SegmentId(0), &vec![1u8; 1024]).unwrap();
        assert_eq!(dev.allocated_bytes(), 1024);
        dev.erase_segment(SegmentId(0)).unwrap();
        assert_eq!(dev.allocated_bytes(), 0);
        assert_eq!(dev.read_segment(SegmentId(0)).unwrap(), vec![0u8; 1024]);
    }

    #[test]
    fn mem_device_supports_concurrent_readers() {
        let dev = std::sync::Arc::new(MemDevice::new(4096, 8));
        for i in 0..8u32 {
            dev.write_segment(SegmentId(i), &vec![i as u8; 4096])
                .unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let dev = dev.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..200u32 {
                    let seg = SegmentId((t + round) % 8);
                    let got = dev.read_range(seg, 16, 64).unwrap();
                    assert!(got.iter().all(|&b| b == seg.0 as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn file_device_roundtrip_and_reopen() {
        let path = temp_path("roundtrip");
        {
            let dev = FileDevice::create(&path, 1024, 8).unwrap();
            let image: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
            dev.write_segment(SegmentId(3), &image).unwrap();
            dev.sync().unwrap();
            assert_eq!(dev.read_segment(SegmentId(3)).unwrap(), image);
            assert_eq!(
                dev.read_range(SegmentId(3), 5, 3).unwrap(),
                image[5..8].to_vec()
            );
        }
        {
            let dev = FileDevice::open(&path, 1024, 8).unwrap();
            let seg = dev.read_segment(SegmentId(3)).unwrap();
            assert_eq!(seg[5..8], [5, 6, 7]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_device_geometry_mismatch_detected() {
        let path = temp_path("geom");
        {
            FileDevice::create(&path, 1024, 8).unwrap();
        }
        let err = FileDevice::open(&path, 2048, 8).unwrap_err();
        assert!(matches!(err, Error::GeometryMismatch { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_device_bounds_checks() {
        let path = temp_path("bounds");
        let dev = FileDevice::create(&path, 512, 2).unwrap();
        assert!(dev.read_segment(SegmentId(9)).is_err());
        assert!(dev.write_segment(SegmentId(0), &[1u8; 13]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flaky_device_injects_failures_after_budget() {
        let dev = FlakyDevice::new(MemDevice::new(256, 4), Some(2));
        let image = vec![1u8; 256];
        dev.write_segment(SegmentId(0), &image).unwrap();
        dev.write_segment(SegmentId(1), &image).unwrap();
        let err = dev.write_segment(SegmentId(2), &image).unwrap_err();
        assert!(err.to_string().contains("injected write failure"));
        // Reads keep working, and healing the device restores writes.
        assert_eq!(dev.read_segment(SegmentId(0)).unwrap(), image);
        dev.set_fail_after_writes(None);
        dev.write_segment(SegmentId(2), &image).unwrap();
        assert_eq!(dev.inner().segment_writes(), 3);
    }

    #[test]
    fn store_surfaces_injected_write_failures_without_losing_durable_data() {
        use crate::policy::PolicyKind;
        use crate::store::LogStore;
        use crate::StoreConfig;
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
        // Allow a handful of successful segment writes, then fail everything.
        let device = FlakyDevice::new(
            MemDevice::new(config.segment_bytes, config.num_segments),
            Some(4),
        );
        let store = LogStore::open_with_device(config.clone(), Box::new(device)).unwrap();
        let payload = vec![7u8; config.page_bytes];
        let mut first_error = None;
        for i in 0..(config.physical_pages() as u64) {
            if let Err(e) =
                store.put(i, &payload).and_then(
                    |()| {
                        if i % 64 == 63 {
                            store.flush()
                        } else {
                            Ok(())
                        }
                    },
                )
            {
                first_error = Some((i, e));
                break;
            }
        }
        let (failed_at, err) = first_error.expect("the injected fault must eventually surface");
        assert!(matches!(err, Error::Io(_)), "unexpected error kind: {err}");
        // Pages flushed before the fault are still readable.
        let durable = failed_at.saturating_sub(failed_at % 64);
        for i in (0..durable).step_by(17) {
            assert!(
                store.get(i).unwrap().is_some(),
                "durable page {i} lost after I/O fault"
            );
        }
    }
}
