//! The sort buffer for user writes (paper §5.3 and Figure 4).
//!
//! Incoming user writes accumulate in the buffer; when it reaches the configured size
//! (measured in segments' worth of payload) the batch is sorted by the cleaning policy's
//! separation key — so pages with similar update frequency are packed into the same
//! output segments — and drained to open segments. A buffer of 0 segments disables
//! batching entirely; the paper finds 16 segments to be the knee of the curve (Figure 4).

use crate::types::{PageId, PageWriteInfo};
use crate::util::FxHashMap;
use bytes::Bytes;

/// A page write waiting in a buffer: its metadata plus (for the real store) its payload.
/// The simulator passes `data = None` since it only tracks page identities.
#[derive(Debug, Clone)]
pub struct PendingPage {
    /// Metadata describing the write.
    pub info: PageWriteInfo,
    /// Payload. `None` marks a tombstone (deletion) or a simulator-only write.
    pub data: Option<Bytes>,
}

impl PendingPage {
    /// True if this pending entry is a deletion.
    pub fn is_tombstone(&self) -> bool {
        self.data.is_none() && self.info.size == 0
    }
}

/// FIFO buffer of pending page writes with optional in-place absorption of re-writes.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    pending: Vec<Option<PendingPage>>,
    index: FxHashMap<PageId, usize>,
    payload_bytes: usize,
    live_entries: usize,
    absorb: bool,
}

impl WriteBuffer {
    /// Create a buffer. If `absorb` is true, a second write to a page already in the
    /// buffer replaces the buffered copy instead of adding another entry.
    pub fn new(absorb: bool) -> Self {
        Self {
            absorb,
            ..Default::default()
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.live_entries
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.live_entries == 0
    }

    /// Total payload bytes buffered.
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Add a pending write. Returns `true` if the write was absorbed into an existing
    /// buffered entry for the same page (only possible when absorption is enabled).
    pub fn push(&mut self, page: PendingPage) -> bool {
        if self.absorb {
            if let Some(&idx) = self.index.get(&page.info.page) {
                if let Some(existing) = self.pending[idx].as_mut() {
                    self.payload_bytes -= existing.info.size as usize;
                    self.payload_bytes += page.info.size as usize;
                    *existing = page;
                    return true;
                }
            }
        }
        let idx = self.pending.len();
        self.payload_bytes += page.info.size as usize;
        self.index.insert(page.info.page, idx);
        self.pending.push(Some(page));
        self.live_entries += 1;
        false
    }

    /// Most recent buffered state of a page, if any.
    pub fn get(&self, page: PageId) -> Option<&PendingPage> {
        // The index tracks the most recent entry for each page even without absorption,
        // because later pushes overwrite the index slot.
        self.index
            .get(&page)
            .and_then(|&idx| self.pending[idx].as_ref())
    }

    /// Drain all pending writes in arrival order, clearing the buffer.
    pub fn drain(&mut self) -> Vec<PendingPage> {
        self.index.clear();
        self.payload_bytes = 0;
        self.live_entries = 0;
        self.pending.drain(..).flatten().collect()
    }

    /// Clone every pending write in arrival order *without* clearing the buffer.
    ///
    /// The write path drains in two phases: it appends a snapshot of the batch to open
    /// segments first and clears the buffer only afterwards, so a reader always finds a
    /// page either in the buffer or in the page table — never in neither. Payloads are
    /// `Bytes`, so the clones are reference-count bumps.
    pub fn snapshot(&self) -> Vec<PendingPage> {
        self.pending.iter().flatten().cloned().collect()
    }

    /// Like [`WriteBuffer::snapshot`], but each clone carries its stable slot index so
    /// the drain can remove entries one by one (via [`WriteBuffer::remove_slot`]) as
    /// soon as their page-table entries exist.
    pub fn snapshot_indexed(&self) -> Vec<(usize, PendingPage)> {
        self.pending
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i, p.clone())))
            .collect()
    }

    /// Remove the entry at a snapshot slot (called right after the entry's page has
    /// been appended to a segment and remapped, so reads switch from the buffer copy to
    /// the mapped copy without a gap).
    pub fn remove_slot(&mut self, slot: usize) {
        if let Some(p) = self.pending[slot].take() {
            self.payload_bytes -= p.info.size as usize;
            self.live_entries -= 1;
            if self.index.get(&p.info.page) == Some(&slot) {
                self.index.remove(&p.info.page);
            }
        }
        if self.live_entries == 0 {
            self.pending.clear();
            self.index.clear();
            self.payload_bytes = 0;
        }
    }
}

/// Sort a batch by the given separation key, smallest key first.
///
/// Generic over the batch item (the user write path sorts `PendingPage`s, the cleaner
/// sorts its relocation candidates) via a key-projection closure. The sort is stable so
/// items with equal keys keep their arrival order, which keeps the result deterministic.
/// Items for which the policy returns `None` (no separation) are left in place relative
/// to each other at the end of the batch.
pub fn sort_by_separation_key<T, F>(batch: &mut [T], mut key: F)
where
    F: FnMut(&T) -> Option<f64>,
{
    batch.sort_by(|a, b| {
        let ka = key(a);
        let kb = key(b);
        match (ka, kb) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::WriteOrigin;

    fn pending(page: PageId, size: u32, up2: u64) -> PendingPage {
        PendingPage {
            info: PageWriteInfo {
                page,
                size,
                up2,
                exact_freq: None,
                origin: WriteOrigin::User,
            },
            data: Some(Bytes::from(vec![0u8; size as usize])),
        }
    }

    #[test]
    fn push_and_drain_preserve_arrival_order() {
        let mut buf = WriteBuffer::new(false);
        buf.push(pending(3, 10, 0));
        buf.push(pending(1, 20, 0));
        buf.push(pending(2, 30, 0));
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.payload_bytes(), 60);
        let batch = buf.drain();
        assert_eq!(
            batch.iter().map(|p| p.info.page).collect::<Vec<_>>(),
            vec![3, 1, 2]
        );
        assert!(buf.is_empty());
        assert_eq!(buf.payload_bytes(), 0);
    }

    #[test]
    fn without_absorption_rewrites_append() {
        let mut buf = WriteBuffer::new(false);
        assert!(!buf.push(pending(1, 10, 0)));
        assert!(!buf.push(pending(1, 12, 5)));
        assert_eq!(buf.len(), 2);
        // get() returns the most recent version.
        assert_eq!(buf.get(1).unwrap().info.size, 12);
    }

    #[test]
    fn with_absorption_rewrites_replace() {
        let mut buf = WriteBuffer::new(true);
        assert!(!buf.push(pending(1, 10, 0)));
        assert!(buf.push(pending(1, 25, 5)));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.payload_bytes(), 25);
        let batch = buf.drain();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].info.size, 25);
    }

    #[test]
    fn snapshot_clones_without_clearing() {
        let mut buf = WriteBuffer::new(false);
        buf.push(pending(1, 10, 0));
        buf.push(pending(2, 20, 0));
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap.iter().map(|p| p.info.page).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // The buffer is untouched: reads keep hitting it until the batch is committed.
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.payload_bytes(), 30);
        let order: Vec<PageId> = buf.drain().iter().map(|p| p.info.page).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn get_misses_for_unknown_pages() {
        let buf = WriteBuffer::new(true);
        assert!(buf.get(99).is_none());
    }

    #[test]
    fn tombstones_are_recognised() {
        let t = PendingPage {
            info: PageWriteInfo {
                page: 5,
                size: 0,
                up2: 0,
                exact_freq: None,
                origin: WriteOrigin::User,
            },
            data: None,
        };
        assert!(t.is_tombstone());
        assert!(!pending(5, 4, 0).is_tombstone());
    }

    #[test]
    fn separation_sort_orders_by_key_and_is_stable() {
        let mut batch = vec![
            pending(1, 1, 50),
            pending(2, 1, 10),
            pending(3, 1, 50),
            pending(4, 1, 30),
        ];
        sort_by_separation_key(&mut batch, |p| Some(p.info.up2 as f64));
        let order: Vec<PageId> = batch.iter().map(|p| p.info.page).collect();
        assert_eq!(order, vec![2, 4, 1, 3]); // 10, 30, 50, 50 (stable between pages 1 and 3)
    }

    #[test]
    fn separation_sort_with_no_key_keeps_order() {
        let mut batch = vec![pending(9, 1, 50), pending(8, 1, 10)];
        sort_by_separation_key(&mut batch, |_: &PendingPage| None);
        let order: Vec<PageId> = batch.iter().map(|p| p.info.page).collect();
        assert_eq!(order, vec![9, 8]);
    }

    #[test]
    fn mixed_keys_put_unkeyed_pages_last() {
        let mut batch = vec![pending(1, 1, 5), pending(2, 1, 1), pending(3, 1, 3)];
        sort_by_separation_key(&mut batch, |p| {
            if p.info.page == 1 {
                None
            } else {
                Some(p.info.up2 as f64)
            }
        });
        let order: Vec<PageId> = batch.iter().map(|p| p.info.page).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }
}
