//! Cleaning support: extracting the still-live pages of a victim segment and reporting
//! what a cleaning cycle accomplished.
//!
//! The actual cleaning *driver* lives in `store::gc_driver` (it needs the device, the
//! sharded page table, the open segments and the quarantine, and runs concurrently with
//! foreground traffic); the pure parts — deciding which of a victim's entries are still
//! current and building a GC write batch — live here so they can be tested in isolation.

use crate::freq::carry_forward_gc;
use crate::layout::ParsedSegment;
use crate::types::{
    PageId, PageLocation, PageWriteInfo, SegmentId, UpdateTick, WriteOrigin, WriteSeq,
};
use crate::write_buffer::PendingPage;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Summary of one cleaning cycle.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CleaningReport {
    /// Victim segments that were cleaned and freed.
    pub victims: Vec<SegmentId>,
    /// Live pages relocated.
    pub pages_moved: u64,
    /// Bytes of live payload relocated.
    pub bytes_moved: u64,
    /// Mean emptiness `E` of the victims at cleaning time.
    pub mean_emptiness: f64,
}

impl CleaningReport {
    /// Number of segments freed by the cycle.
    pub fn segments_freed(&self) -> usize {
        self.victims.len()
    }
}

/// One still-live page of a victim: the pending GC write plus the victim location the
/// page must still occupy when the relocation is committed (the cleaner's conflict
/// check re-tests `is_current` against this location under the write lock).
///
/// `loc.write_seq` is the per-page write sequence of the copy being relocated. A GC
/// relocation *keeps* this sequence (it moves an existing version, it does not create a
/// new one), so that after a crash, recovery — which keeps the copy with the largest
/// `(write_seq, seal_seq)` — can never prefer a relocated stale copy over a user write
/// that raced the relocation.
#[derive(Debug, Clone)]
pub struct LivePage {
    /// The relocation write, carrying the victim's `up2` and the payload copy.
    pub pending: PendingPage,
    /// Where the page lived in the victim when it was collected.
    pub loc: PageLocation,
}

/// The live pages of one victim segment, ready to be relocated.
#[derive(Debug)]
pub struct VictimLivePages {
    /// The victim segment.
    pub victim: SegmentId,
    /// GC write batch entries, with their conflict-check locations.
    pub pages: Vec<LivePage>,
    /// Bytes of live payload found.
    pub live_bytes: u64,
    /// Tombstones recorded in the victim, deduplicated per page (largest write seq
    /// kept), in ascending page order. The driver must re-emit each one into a GC output
    /// stream unless the page has since been recreated: dropping a tombstone while an
    /// older copy of the page survives in a lower-seal-seq segment would let scan
    /// recovery resurrect the deleted page once this victim's slot is reused.
    pub tombstones: Vec<(PageId, WriteSeq)>,
}

/// Walk a victim segment's entry table and copy out every page that is *still current*
/// according to the supplied page-table check (a [`crate::mapping::PageTable`], the
/// store's sharded table, or anything else answering "is this page still at this
/// location?").
///
/// An entry is stale (skipped) if the page has since been overwritten, deleted, or the
/// entry is a tombstone. The `victim_up2` estimate is carried forward onto every
/// relocated page (paper §5.2.2, "Garbage Collection Writes").
pub fn collect_live_pages<F>(
    victim: SegmentId,
    image: &[u8],
    parsed: &ParsedSegment,
    is_current: F,
    victim_up2: UpdateTick,
) -> VictimLivePages
where
    F: Fn(PageId, &PageLocation) -> bool,
{
    let mut pages = Vec::new();
    let mut live_bytes = 0u64;
    let mut tombstones: crate::util::FxHashMap<PageId, WriteSeq> = Default::default();
    for e in &parsed.entries {
        if e.is_tombstone() {
            // Keep only the newest delete record per page: an older tombstone is
            // superseded by the newer one within the same segment.
            let ws = tombstones.entry(e.page_id).or_insert(e.write_seq);
            *ws = (*ws).max(e.write_seq);
            continue;
        }
        let loc = PageLocation {
            segment: victim,
            offset: e.offset,
            len: e.len,
            write_seq: e.write_seq,
        };
        if !is_current(e.page_id, &loc) {
            continue;
        }
        let payload = &image[e.offset as usize..(e.offset + e.len) as usize];
        live_bytes += e.len as u64;
        pages.push(LivePage {
            pending: PendingPage {
                info: PageWriteInfo {
                    page: e.page_id,
                    size: e.len,
                    up2: carry_forward_gc(victim_up2),
                    exact_freq: None,
                    origin: WriteOrigin::Gc,
                },
                data: Some(Bytes::copy_from_slice(payload)),
            },
            loc,
        });
    }
    let mut tombstones: Vec<(PageId, WriteSeq)> = tombstones.into_iter().collect();
    tombstones.sort_unstable_by_key(|&(p, _)| p);
    VictimLivePages {
        victim,
        pages,
        live_bytes,
        tombstones,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{decode_segment, SegmentBuilder};
    use crate::mapping::PageTable;
    use crate::types::PageLocation;

    /// Build a small segment image holding three pages and a tombstone, then check that
    /// only the pages the mapping still points at are collected.
    #[test]
    fn collects_only_current_pages() {
        let mut b = SegmentBuilder::new(4096);
        let off_a = b.push_page(1, 10, b"aaaa");
        let _off_b = b.push_page(2, 11, b"bbbb");
        let off_c = b.push_page(3, 12, b"cccccc");
        b.push_tombstone(4, 13);
        let (image, _) = b.finish(5, 100, 40);
        let parsed = decode_segment(SegmentId(7), &image).unwrap().unwrap();

        let mut mapping = PageTable::new();
        // Page 1 still lives here; page 2 was overwritten elsewhere; page 3 lives here.
        mapping.insert(
            1,
            PageLocation {
                segment: SegmentId(7),
                offset: off_a,
                len: 4,
                write_seq: 10,
            },
        );
        mapping.insert(
            2,
            PageLocation {
                segment: SegmentId(9),
                offset: 0,
                len: 4,
                write_seq: 20,
            },
        );
        mapping.insert(
            3,
            PageLocation {
                segment: SegmentId(7),
                offset: off_c,
                len: 6,
                write_seq: 12,
            },
        );

        let live = collect_live_pages(
            SegmentId(7),
            &image,
            &parsed,
            |p, l| mapping.is_current(p, l),
            40,
        );
        assert_eq!(live.victim, SegmentId(7));
        assert_eq!(live.pages.len(), 2);
        assert_eq!(live.live_bytes, 10);
        let ids: Vec<u64> = live.pages.iter().map(|p| p.pending.info.page).collect();
        assert_eq!(ids, vec![1, 3]);
        // Payloads were copied out correctly, conflict-check locations point into the
        // victim, and the victim's up2 was carried forward.
        assert_eq!(
            live.pages[0].pending.data.as_ref().unwrap().as_ref(),
            b"aaaa"
        );
        assert_eq!(
            live.pages[1].pending.data.as_ref().unwrap().as_ref(),
            b"cccccc"
        );
        assert!(live.pages.iter().all(|p| p.loc.segment == SegmentId(7)));
        // Relocations carry the original write sequences, not fresh ones.
        assert_eq!(
            live.pages
                .iter()
                .map(|p| p.loc.write_seq)
                .collect::<Vec<_>>(),
            vec![10, 12]
        );
        // The victim's tombstone surfaces so the driver can preserve the delete fact.
        assert_eq!(live.tombstones, vec![(4, 13)]);
        assert!(live.pages.iter().all(|p| p.pending.info.up2 == 40));
        assert!(live
            .pages
            .iter()
            .all(|p| p.pending.info.origin == WriteOrigin::Gc));
    }

    #[test]
    fn fully_stale_victim_yields_nothing() {
        let mut b = SegmentBuilder::new(2048);
        b.push_page(1, 1, b"x");
        b.push_page(2, 2, b"y");
        let (image, _) = b.finish(1, 10, 5);
        let parsed = decode_segment(SegmentId(0), &image).unwrap().unwrap();
        let mapping = PageTable::new(); // nothing is live
        let live = collect_live_pages(
            SegmentId(0),
            &image,
            &parsed,
            |p, l| mapping.is_current(p, l),
            5,
        );
        assert!(live.pages.is_empty());
        assert_eq!(live.live_bytes, 0);
        assert!(live.tombstones.is_empty());
    }

    /// Delete, recreate, delete again: only the newest tombstone per page survives
    /// collection, and pages with both a live copy and an older tombstone in the same
    /// segment report both facts (the driver resolves which one wins at commit time).
    #[test]
    fn tombstones_dedupe_to_newest_write_seq() {
        let mut b = SegmentBuilder::new(4096);
        b.push_tombstone(5, 2);
        b.push_page(5, 4, b"back");
        b.push_tombstone(5, 6);
        b.push_tombstone(9, 3);
        let (image, _) = b.finish(2, 50, 10);
        let parsed = decode_segment(SegmentId(1), &image).unwrap().unwrap();
        let mapping = PageTable::new();
        let live = collect_live_pages(
            SegmentId(1),
            &image,
            &parsed,
            |p, l| mapping.is_current(p, l),
            10,
        );
        assert!(live.pages.is_empty());
        assert_eq!(live.tombstones, vec![(5, 6), (9, 3)]);
    }

    #[test]
    fn same_page_written_twice_in_one_segment_only_newest_copy_is_live() {
        let mut b = SegmentBuilder::new(2048);
        let _old = b.push_page(8, 1, b"old!");
        let new = b.push_page(8, 2, b"new!");
        let (image, _) = b.finish(1, 10, 5);
        let parsed = decode_segment(SegmentId(3), &image).unwrap().unwrap();
        let mut mapping = PageTable::new();
        mapping.insert(
            8,
            PageLocation {
                segment: SegmentId(3),
                offset: new,
                len: 4,
                write_seq: 2,
            },
        );
        let live = collect_live_pages(
            SegmentId(3),
            &image,
            &parsed,
            |p, l| mapping.is_current(p, l),
            5,
        );
        assert_eq!(live.pages.len(), 1);
        assert_eq!(
            live.pages[0].pending.data.as_ref().unwrap().as_ref(),
            b"new!"
        );
    }

    #[test]
    fn cleaning_report_counts_freed_segments() {
        let r = CleaningReport {
            victims: vec![SegmentId(1), SegmentId(2)],
            pages_moved: 10,
            bytes_moved: 100,
            mean_emptiness: 0.5,
        };
        assert_eq!(r.segments_freed(), 2);
    }
}
