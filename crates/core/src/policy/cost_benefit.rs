//! The LFS cost-benefit heuristic (Rosenblum & Ousterhout \[23\]; paper §6.1.3, §7.2).
//!
//! Cost-benefit cleans the segment with the largest *benefit-to-cost* ratio, which lets
//! cold segments be cleaned at lower emptiness than hot segments. The classic formulation
//! from the LFS paper is
//!
//! ```text
//! benefit / cost = (E · age) / (2 − E) = (free-space fraction · age) / (1 + utilisation)
//! ```
//!
//! where cleaning a segment costs reading it (1) plus writing back its live data (1 − E),
//! and the benefit is the space freed (E) weighted by how long it is likely to stay free
//! (the segment's age as a stability proxy).
//!
//! The paper's text prints the formula as `(1 − E) × age / E`, which prefers *full*
//! segments and contradicts the behaviour it then describes (cost-benefit beating age and
//! greedy on skewed workloads). We treat that as a typo, implement the classic formula by
//! default, and keep the literal variant available for the ablation bench
//! ([`CostBenefitFormula::PaperLiteral`]).

use super::{select_k_smallest_by, CleaningPolicy, PolicyContext, SegmentId};

/// Which cost-benefit formula to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostBenefitFormula {
    /// `(E · age) / (2 − E)`, the original LFS formulation (default).
    ClassicLfs,
    /// `((1 − E) · age) / E`, the formula as literally printed in the paper.
    PaperLiteral,
}

/// The `cost-benefit` policy of the paper's evaluation.
#[derive(Debug, Clone, Copy)]
pub struct CostBenefitPolicy {
    formula: CostBenefitFormula,
}

impl CostBenefitPolicy {
    /// Create the policy with the requested formula.
    pub fn new(formula: CostBenefitFormula) -> Self {
        Self { formula }
    }

    /// Benefit-to-cost score of a segment; higher means "clean sooner".
    fn score(&self, e: f64, age: f64) -> f64 {
        match self.formula {
            CostBenefitFormula::ClassicLfs => {
                if e <= 0.0 {
                    0.0
                } else {
                    e * age / (2.0 - e)
                }
            }
            CostBenefitFormula::PaperLiteral => {
                if e <= 0.0 {
                    0.0
                } else {
                    (1.0 - e) * age / e
                }
            }
        }
    }
}

impl Default for CostBenefitPolicy {
    fn default() -> Self {
        Self::new(CostBenefitFormula::ClassicLfs)
    }
}

impl CleaningPolicy for CostBenefitPolicy {
    fn name(&self) -> &'static str {
        match self.formula {
            CostBenefitFormula::ClassicLfs => "cost-benefit",
            CostBenefitFormula::PaperLiteral => "cost-benefit-literal",
        }
    }

    fn select_victims(&mut self, ctx: &PolicyContext<'_>, want: usize) -> Vec<SegmentId> {
        let candidates: Vec<_> = ctx
            .segments
            .iter()
            .filter(|s| s.free_bytes > 0)
            .copied()
            .collect();
        // Highest benefit first == smallest negative score first.
        select_k_smallest_by(&candidates, want, |s| {
            -self.score(s.emptiness(), s.age(ctx.unow) as f64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_segment;

    #[test]
    fn classic_prefers_old_cold_segments_over_young_hot_ones() {
        // Segment 0: young and fairly empty (hot data drains quickly).
        // Segment 1: old and moderately empty (cold data).
        // Classic cost-benefit should pick the old one even though it is less empty,
        // because its age term dominates.
        let segs = vec![
            test_segment(0, 100, 60, 4, 0, 990), // E=0.6, age=10
            test_segment(1, 100, 30, 7, 0, 100), // E=0.3, age=900
        ];
        let mut p = CostBenefitPolicy::default();
        let ctx = PolicyContext {
            unow: 1000,
            segments: &segs,
        };
        assert_eq!(p.select_victims(&ctx, 1), vec![SegmentId(1)]);
    }

    #[test]
    fn greedy_tie_when_ages_equal() {
        let segs = vec![
            test_segment(0, 100, 60, 4, 0, 0), // E = 0.6
            test_segment(1, 100, 30, 7, 0, 0), // E = 0.3
        ];
        let mut p = CostBenefitPolicy::default();
        let ctx = PolicyContext {
            unow: 1000,
            segments: &segs,
        };
        // With equal ages the emptier segment has the larger benefit/cost.
        assert_eq!(p.select_victims(&ctx, 1), vec![SegmentId(0)]);
    }

    #[test]
    fn skips_segments_with_no_reclaimable_space() {
        let segs = vec![test_segment(0, 100, 0, 10, 0, 0)];
        let mut p = CostBenefitPolicy::default();
        let ctx = PolicyContext {
            unow: 1000,
            segments: &segs,
        };
        assert!(p.select_victims(&ctx, 1).is_empty());
    }

    #[test]
    fn literal_variant_prefers_fuller_segments() {
        let segs = vec![
            test_segment(0, 100, 80, 2, 0, 0), // E = 0.8
            test_segment(1, 100, 20, 8, 0, 0), // E = 0.2
        ];
        let mut p = CostBenefitPolicy::new(CostBenefitFormula::PaperLiteral);
        let ctx = PolicyContext {
            unow: 1000,
            segments: &segs,
        };
        assert_eq!(p.select_victims(&ctx, 1), vec![SegmentId(1)]);
        assert_eq!(p.name(), "cost-benefit-literal");
    }

    #[test]
    fn score_monotone_in_age_for_classic() {
        let p = CostBenefitPolicy::default();
        assert!(p.score(0.5, 200.0) > p.score(0.5, 100.0));
        assert!(p.score(0.5, 100.0) > p.score(0.2, 100.0));
        assert_eq!(p.score(0.0, 100.0), 0.0);
    }
}
