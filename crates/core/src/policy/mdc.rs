//! Minimum Declining Cost (MDC) cleaning — the paper's contribution (§4 and §5).
//!
//! ## Victim selection
//!
//! From the Maximality Lemma (paper appendix), the total cost of cleaning a set of
//! segments whose per-page cleaning cost declines over time is minimised by cleaning
//! *first* the segments whose cost will decline the *least* if we wait — waiting pays off
//! only where the decline is large. The estimated decline rate of a segment is
//! (paper §5.1.3):
//!
//! ```text
//! −d(Cost)/du ∝ (1 − E)/E² · Upf · ΔE
//!             = ((B − A)/A)² · 1 / (C · (unow − up2))        (fixed-size simplification)
//! ```
//!
//! where `B` is the segment byte size, `A` its free bytes (`E = A/B`), `C` its live page
//! count, `Upf ≈ 2/(unow − up2)` its estimated update frequency and
//! `ΔE = ((B − A)/C)/B` the emptiness gained by one more update (average live page size
//! over segment size). MDC cleans the segments with the **smallest** decline value.
//!
//! The oracle variant (`MDC-opt`) replaces the estimated `Upf` with the exact sum of the
//! live pages' update probabilities when the embedding system knows it (the simulator).
//!
//! ## Page separation
//!
//! When a batch of pages (user or GC stream) is written out, MDC sorts it by the pages'
//! carried `up2` estimates so pages with similar update frequency share segments
//! (paper §5.3). `MDC-opt` sorts by the exact update frequency instead. Which streams are
//! sorted is controlled by [`crate::config::SeparationConfig`], giving the
//! `MDC-no-sep-user` / `MDC-no-sep-user-GC` ablation variants of Figure 3.

use super::{select_k_smallest_by, CleaningPolicy, PolicyContext, SegmentId, SegmentStats};
use crate::freq::estimated_upf;
use crate::types::{PageWriteInfo, UpdateTick};

/// The MDC policy (and its `-opt` oracle variant).
#[derive(Debug, Clone, Copy)]
pub struct MdcPolicy {
    /// Use exact per-page/per-segment update frequencies where available.
    oracle: bool,
}

impl MdcPolicy {
    /// MDC with update frequencies estimated from `up2` carry-forward (the deployable
    /// configuration).
    pub fn estimated() -> Self {
        Self { oracle: false }
    }

    /// `MDC-opt`: uses exact update frequencies supplied by the embedding system.
    pub fn oracle() -> Self {
        Self { oracle: true }
    }

    /// Whether this instance is the oracle variant.
    pub fn is_oracle(&self) -> bool {
        self.oracle
    }

    /// The estimated cost-decline rate of a segment at time `unow`; MDC cleans the
    /// segments with the smallest values first.
    ///
    /// Special cases:
    /// * a segment with **no live pages** has decline 0 (cleaning it is free space with no
    ///   page moves — always do that first);
    /// * a segment with **no free space** returns `+∞` (cleaning it reclaims nothing, so
    ///   it is never selected while anything else is available).
    pub fn decline(&self, seg: &SegmentStats, unow: UpdateTick) -> f64 {
        if seg.live_pages == 0 || seg.free_bytes >= seg.capacity_bytes {
            return 0.0;
        }
        if seg.free_bytes == 0 {
            return f64::INFINITY;
        }
        let b = seg.capacity_bytes as f64;
        let a = seg.free_bytes as f64;
        let c = seg.live_pages as f64;
        let e = a / b;
        let delta_e = ((b - a) / c) / b;
        let upf = if self.oracle {
            // Exact segment update frequency: sum of the live pages' probabilities,
            // normalised so the average page has frequency 1. Falls back to the estimate
            // if the embedding system did not supply it.
            seg.exact_upf
                .unwrap_or_else(|| estimated_upf(seg.up2, unow) * c)
        } else {
            estimated_upf(seg.up2, unow)
        };
        (1.0 - e) / (e * e) * upf * delta_e
    }
}

impl CleaningPolicy for MdcPolicy {
    fn name(&self) -> &'static str {
        if self.oracle {
            "MDC-opt"
        } else {
            "MDC"
        }
    }

    fn select_victims(&mut self, ctx: &PolicyContext<'_>, want: usize) -> Vec<SegmentId> {
        let candidates: Vec<_> = ctx
            .segments
            .iter()
            .filter(|s| s.free_bytes > 0)
            .copied()
            .collect();
        let this = *self;
        select_k_smallest_by(&candidates, want, |s| this.decline(s, ctx.unow))
    }

    fn separation_key(&self, page: &PageWriteInfo) -> Option<f64> {
        if self.oracle {
            // Sort coldest-first by exact frequency, matching the up2 case (smaller up2
            // == colder), so both variants group pages cold → hot. Pages without a known
            // frequency are treated as never-updated, i.e. coldest.
            Some(page.exact_freq.unwrap_or(0.0))
        } else {
            Some(page.up2 as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_segment;
    use crate::types::WriteOrigin;

    fn ctx(segments: &[SegmentStats], unow: UpdateTick) -> PolicyContext<'_> {
        PolicyContext { unow, segments }
    }

    #[test]
    fn empty_segments_are_cleaned_first() {
        let segs = vec![
            test_segment(0, 100, 100, 0, 0, 0), // fully empty
            test_segment(1, 100, 90, 1, 500, 0),
        ];
        let mut p = MdcPolicy::estimated();
        assert_eq!(p.select_victims(&ctx(&segs, 1000), 1), vec![SegmentId(0)]);
    }

    #[test]
    fn full_segments_are_never_preferred() {
        let segs = vec![
            test_segment(0, 100, 0, 10, 0, 0), // nothing reclaimable
            test_segment(1, 100, 10, 9, 500, 0),
        ];
        let mut p = MdcPolicy::estimated();
        assert_eq!(p.select_victims(&ctx(&segs, 1000), 2), vec![SegmentId(1)]);
    }

    #[test]
    fn cold_segments_clean_before_equally_empty_hot_segments() {
        // Two segments with identical emptiness; the hot one (recent up2, so large Upf)
        // has a larger expected decline and should therefore wait.
        let cold = test_segment(0, 100, 40, 6, 100, 0);
        let hot = test_segment(1, 100, 40, 6, 990, 0);
        let mut p = MdcPolicy::estimated();
        assert_eq!(
            p.select_victims(&ctx(&[cold, hot], 1000), 1),
            vec![SegmentId(0)]
        );
    }

    #[test]
    fn emptier_segments_clean_before_fuller_ones_at_equal_frequency() {
        let emptier = test_segment(0, 100, 70, 3, 500, 0);
        let fuller = test_segment(1, 100, 20, 8, 500, 0);
        let mut p = MdcPolicy::estimated();
        assert_eq!(
            p.select_victims(&ctx(&[emptier, fuller], 1000), 1),
            vec![SegmentId(0)]
        );
    }

    #[test]
    fn decline_matches_transformed_formula() {
        // Check the implemented (1-E)/E² · Upf · ΔE form equals the transformed
        // ((B−A)/A)² / (C·(unow−up2)) form up to the constant factor 2 the paper drops
        // (the segment size B cancels out, as §5.1.3 notes when dropping constants).
        let seg = test_segment(0, 2_000_000, 500_000, 366, 1_000, 0);
        let unow = 51_000;
        let p = MdcPolicy::estimated();
        let got = p.decline(&seg, unow);
        let b = 2_000_000f64;
        let a = 500_000f64;
        let c = 366f64;
        let transformed = ((b - a) / a).powi(2) / (c * (unow as f64 - 1_000.0));
        assert!((got - transformed * 2.0).abs() / got < 1e-9);
    }

    #[test]
    fn oracle_uses_exact_upf_when_available() {
        let mut hot = test_segment(0, 100, 40, 6, 0, 0);
        hot.exact_upf = Some(60.0); // very hot
        let mut cold = test_segment(1, 100, 40, 6, 0, 0);
        cold.exact_upf = Some(0.1);
        let mut p = MdcPolicy::oracle();
        // Cold has the smaller decline, so it is cleaned first even though the estimated
        // up2 values are identical.
        assert_eq!(
            p.select_victims(&ctx(&[hot, cold], 1000), 1),
            vec![SegmentId(1)]
        );
        assert!(p.is_oracle());
    }

    #[test]
    fn separation_key_orders_cold_to_hot_consistently() {
        let mk = |up2, freq| PageWriteInfo {
            page: 0,
            size: 10,
            up2,
            exact_freq: freq,
            origin: WriteOrigin::User,
        };
        let est = MdcPolicy::estimated();
        assert!(
            est.separation_key(&mk(10, None)).unwrap()
                < est.separation_key(&mk(900, None)).unwrap()
        );

        let orc = MdcPolicy::oracle();
        // Lower exact frequency => smaller key => sorts first (cold end).
        assert!(
            orc.separation_key(&mk(0, Some(0.5))).unwrap()
                < orc.separation_key(&mk(0, Some(5.0))).unwrap()
        );
        // Unknown frequency sorts as coldest.
        assert_eq!(orc.separation_key(&mk(0, None)).unwrap(), 0.0);
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(MdcPolicy::estimated().name(), "MDC");
        assert_eq!(MdcPolicy::oracle().name(), "MDC-opt");
    }
}
