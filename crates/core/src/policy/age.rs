//! Age-based cleaning: always clean the oldest segment (paper §2.2).
//!
//! This models the classic circular-log behaviour: the segment written longest ago is
//! cleaned next, regardless of how much reclaimable space it actually has. Under a
//! uniform update distribution this is near-optimal (Table 1), but under skew it performs
//! poorly because hot and cold segments are treated identically (Figure 5b/5c).

use super::{select_k_smallest_by, CleaningPolicy, PolicyContext, SegmentId};

/// The `age` policy of the paper's evaluation.
#[derive(Debug, Default, Clone, Copy)]
pub struct AgePolicy;

impl AgePolicy {
    /// Create the policy.
    pub fn new() -> Self {
        Self
    }
}

impl CleaningPolicy for AgePolicy {
    fn name(&self) -> &'static str {
        "age"
    }

    fn select_victims(&mut self, ctx: &PolicyContext<'_>, want: usize) -> Vec<SegmentId> {
        // Oldest first == smallest seal sequence first. The seal sequence is used rather
        // than `sealed_at` because several segments can seal on the same update tick
        // (e.g. when a large sort buffer drains); the sequence is strictly monotone.
        select_k_smallest_by(ctx.segments, want, |s| s.seal_seq as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_segment;

    #[test]
    fn selects_oldest_segments_first() {
        let mut segs = vec![
            test_segment(3, 100, 0, 10, 0, 30),
            test_segment(1, 100, 90, 1, 0, 10),
            test_segment(2, 100, 50, 5, 0, 20),
        ];
        // Make seal_seq match the id ordering used above (test_segment sets seal_seq=id).
        segs.rotate_left(1);
        let mut p = AgePolicy::new();
        let ctx = PolicyContext {
            unow: 100,
            segments: &segs,
        };
        let picked = p.select_victims(&ctx, 2);
        assert_eq!(picked, vec![SegmentId(1), SegmentId(2)]);
    }

    #[test]
    fn ignores_emptiness_entirely() {
        // The oldest segment is completely full (free == 0); age still cleans it first,
        // exactly like a circular log would.
        let segs = vec![
            test_segment(0, 100, 0, 10, 0, 0),
            test_segment(1, 100, 100, 0, 0, 1),
        ];
        let mut p = AgePolicy::new();
        let ctx = PolicyContext {
            unow: 100,
            segments: &segs,
        };
        assert_eq!(p.select_victims(&ctx, 1), vec![SegmentId(0)]);
    }

    #[test]
    fn empty_candidate_list_returns_nothing() {
        let mut p = AgePolicy::new();
        let ctx = PolicyContext {
            unow: 0,
            segments: &[],
        };
        assert!(p.select_victims(&ctx, 4).is_empty());
    }
}
