//! Greedy cleaning: always clean the segment with the most reclaimable space
//! (paper §4.5 / §6.1.3).
//!
//! Greedy maximises the space reclaimed *right now*, which is optimal under a uniform
//! update distribution (where the emptiest segment is also, with high probability, the
//! oldest). Under skewed updates it is far from optimal: cold segments hover just below
//! the hottest segments' emptiness and are never cleaned, so they pin space that the hot
//! data could have used as slack (paper §6.2.1).

use super::{select_k_smallest_by, CleaningPolicy, PolicyContext, SegmentId};

/// The `greedy` policy of the paper's evaluation.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyPolicy;

impl GreedyPolicy {
    /// Create the policy.
    pub fn new() -> Self {
        Self
    }
}

impl CleaningPolicy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn select_victims(&mut self, ctx: &PolicyContext<'_>, want: usize) -> Vec<SegmentId> {
        // Most free space first == smallest (1 - E) first; skip segments with nothing to
        // reclaim (they would cost a full segment copy and gain zero space).
        let candidates: Vec<_> = ctx
            .segments
            .iter()
            .filter(|s| s.free_bytes > 0)
            .copied()
            .collect();
        select_k_smallest_by(&candidates, want, |s| -(s.free_bytes as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_segment;

    #[test]
    fn selects_emptiest_segments_first() {
        let segs = vec![
            test_segment(0, 100, 10, 9, 0, 0),
            test_segment(1, 100, 90, 1, 0, 0),
            test_segment(2, 100, 50, 5, 0, 0),
        ];
        let mut p = GreedyPolicy::new();
        let ctx = PolicyContext {
            unow: 100,
            segments: &segs,
        };
        assert_eq!(p.select_victims(&ctx, 2), vec![SegmentId(1), SegmentId(2)]);
    }

    #[test]
    fn skips_full_segments() {
        let segs = vec![
            test_segment(0, 100, 0, 10, 0, 0),
            test_segment(1, 100, 5, 9, 0, 0),
        ];
        let mut p = GreedyPolicy::new();
        let ctx = PolicyContext {
            unow: 100,
            segments: &segs,
        };
        let picked = p.select_victims(&ctx, 5);
        assert_eq!(picked, vec![SegmentId(1)]);
    }

    #[test]
    fn no_separation_key_or_extra_logs() {
        let p = GreedyPolicy::new();
        assert_eq!(p.num_logs(), 1);
        let info = crate::types::PageWriteInfo {
            page: 1,
            size: 10,
            up2: 5,
            exact_freq: None,
            origin: crate::types::WriteOrigin::User,
        };
        assert!(p.separation_key(&info).is_none());
    }
}
