//! Multi-log cleaning (Stoica & Ailamaki \[26\]) — the prior state of the art the paper
//! compares against (§6.1.3, §7.2).
//!
//! The idea: maintain several append logs, each holding pages with similar update
//! frequency, so that each log individually behaves like a uniformly-updated circular
//! buffer (for which simple FIFO/age cleaning is optimal). Pages are routed to a log by
//! their estimated update *period*; when space runs low, a victim is chosen **locally**
//! from the log that triggered the shortage and its two neighbouring logs.
//!
//! This re-implementation follows the description in the paper under reproduction:
//!
//! * pages are bucketed into logs by `log₂(estimated update period)`;
//! * pages with no usable history (first writes, or before their second update) land in
//!   the coldest bucket, so the algorithm starts out as a single log and only spreads as
//!   estimates accumulate — reproducing the slow convergence the paper observes;
//! * the `multi-log-opt` oracle variant buckets by the exact per-page update frequency,
//!   so it converges immediately;
//! * cleaning selects, among the last-written log and its two neighbours, the oldest
//!   segment with the most reclaimable space (local-greedy over FIFO logs);
//! * one segment is cleaned per cycle, matching the evaluation setup of \[26\] that the
//!   paper preserves.

use super::{select_k_smallest_by, CleaningPolicy, PolicyContext, SegmentId, SegmentStats};
use crate::types::PageWriteInfo;

/// Maximum number of distinct logs maintained. 32 buckets of doubling update periods
/// cover any realistic spread of update frequencies.
pub const MAX_LOGS: usize = 32;

/// The `multi-log` policy of the paper's evaluation (and its `-opt` oracle variant).
#[derive(Debug, Clone)]
pub struct MultiLogPolicy {
    oracle: bool,
    /// Log that most recently received a page (victims are selected near it).
    last_written_log: u16,
    /// How many pages have been routed to each log (diagnostic; also used to pick a
    /// sensible fallback when the local neighbourhood has no candidates).
    routed: [u64; MAX_LOGS],
}

impl MultiLogPolicy {
    /// Multi-log with update periods estimated from `up2` carry-forward.
    pub fn estimated() -> Self {
        Self {
            oracle: false,
            last_written_log: 0,
            routed: [0; MAX_LOGS],
        }
    }

    /// `multi-log-opt`: uses the exact page update frequency for log placement.
    pub fn oracle() -> Self {
        Self {
            oracle: true,
            last_written_log: 0,
            routed: [0; MAX_LOGS],
        }
    }

    /// Whether this instance is the oracle variant.
    pub fn is_oracle(&self) -> bool {
        self.oracle
    }

    /// Number of logs that have received at least one page.
    pub fn active_logs(&self) -> usize {
        self.routed.iter().filter(|&&c| c > 0).count()
    }

    /// Bucket an estimated update period (in ticks) into a log id. Shorter periods
    /// (hotter pages) map to lower log ids.
    fn bucket_for_period(period: f64) -> u16 {
        if !period.is_finite() || period < 1.0 {
            return 0;
        }
        let b = period.log2().floor();
        (b.max(0.0) as usize).min(MAX_LOGS - 1) as u16
    }

    fn log_for(&self, page: &PageWriteInfo, unow: u64) -> u16 {
        if self.oracle {
            match page.exact_freq {
                // The exact frequency is normalised so the average page has frequency 1;
                // its reciprocal is the update period in units of "mean periods". Scale
                // into ticks using a nominal mean period of 1024 ticks purely to spread
                // the buckets; only the relative ordering matters.
                Some(f) if f > 0.0 => Self::bucket_for_period(1024.0 / f),
                _ => (MAX_LOGS - 1) as u16,
            }
        } else {
            // Estimated period from the carried up2 (two updates over unow - up2).
            let period = (unow.saturating_sub(page.up2)).max(1) as f64 / 2.0;
            if page.up2 == 0 {
                // No usable history yet: treat as coldest. This is what makes the
                // non-oracle variant converge slowly, as observed in the paper.
                (MAX_LOGS - 1) as u16
            } else {
                Self::bucket_for_period(period)
            }
        }
    }
}

impl CleaningPolicy for MultiLogPolicy {
    fn name(&self) -> &'static str {
        if self.oracle {
            "multi-log-opt"
        } else {
            "multi-log"
        }
    }

    fn select_victims(&mut self, ctx: &PolicyContext<'_>, want: usize) -> Vec<SegmentId> {
        if ctx.segments.is_empty() {
            return Vec::new();
        }
        // Candidate neighbourhood: the last-written log and its two neighbours.
        let l = self.last_written_log as i32;
        let neighbourhood = [l - 1, l, l + 1];
        let local: Vec<SegmentStats> = ctx
            .segments
            .iter()
            .filter(|s| s.free_bytes > 0 && neighbourhood.contains(&(s.log_id as i32)))
            .copied()
            .collect();

        // Within each log segments age like a FIFO; the best local choice is the segment
        // that reclaims the most space per unit of copy work. Score = -E (most empty
        // first), restricted to the oldest few segments of each candidate log so a young,
        // accidentally-empty segment does not jump the queue.
        let pick_from = if local.is_empty() {
            // Fall back to a global choice when the neighbourhood has nothing to offer
            // (e.g. right after start-up when only one log exists but it is full).
            ctx.segments
                .iter()
                .filter(|s| s.free_bytes > 0)
                .copied()
                .collect::<Vec<_>>()
        } else {
            let mut per_log: Vec<SegmentStats> = Vec::new();
            for log in neighbourhood {
                if log < 0 {
                    continue;
                }
                // Oldest (smallest seal_seq) segment of this log with reclaimable space.
                if let Some(oldest) = local
                    .iter()
                    .filter(|s| s.log_id as i32 == log)
                    .min_by_key(|s| s.seal_seq)
                {
                    per_log.push(*oldest);
                }
            }
            per_log
        };

        select_k_smallest_by(&pick_from, want, |s| -s.emptiness())
    }

    fn num_logs(&self) -> usize {
        MAX_LOGS
    }

    fn log_for_page(&mut self, page: &PageWriteInfo, ctx: &PolicyContext<'_>) -> u16 {
        let log = self.log_for(page, ctx.unow);
        self.last_written_log = log;
        self.routed[log as usize] += 1;
        log
    }

    fn preferred_batch(&self) -> Option<usize> {
        // The paper cleans one segment at a time for both multi-log variants, to match
        // the evaluation in [26].
        Some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_segment;
    use crate::types::{PageWriteInfo, WriteOrigin};

    fn page(up2: u64, freq: Option<f64>) -> PageWriteInfo {
        PageWriteInfo {
            page: 1,
            size: 10,
            up2,
            exact_freq: freq,
            origin: WriteOrigin::User,
        }
    }

    #[test]
    fn bucketing_orders_hot_before_cold() {
        let hot = MultiLogPolicy::bucket_for_period(2.0);
        let warm = MultiLogPolicy::bucket_for_period(100.0);
        let cold = MultiLogPolicy::bucket_for_period(1_000_000.0);
        assert!(hot < warm && warm < cold);
        assert_eq!(MultiLogPolicy::bucket_for_period(0.5), 0);
        assert_eq!(MultiLogPolicy::bucket_for_period(f64::INFINITY), 0);
    }

    #[test]
    fn pages_without_history_go_to_the_coldest_log() {
        let mut p = MultiLogPolicy::estimated();
        let ctx = PolicyContext {
            unow: 10_000,
            segments: &[],
        };
        let log = p.log_for_page(&page(0, None), &ctx);
        assert_eq!(log as usize, MAX_LOGS - 1);
        assert_eq!(p.active_logs(), 1);
    }

    #[test]
    fn pages_with_history_spread_across_logs() {
        let mut p = MultiLogPolicy::estimated();
        let ctx = PolicyContext {
            unow: 10_000,
            segments: &[],
        };
        let hot = p.log_for_page(&page(9_990, None), &ctx);
        let cold = p.log_for_page(&page(100, None), &ctx);
        assert!(
            hot < cold,
            "hot page log {hot} should be below cold page log {cold}"
        );
        assert!(p.active_logs() >= 2);
    }

    #[test]
    fn oracle_spreads_immediately_from_exact_frequencies() {
        let mut p = MultiLogPolicy::oracle();
        let ctx = PolicyContext {
            unow: 0,
            segments: &[],
        };
        let hot = p.log_for_page(&page(0, Some(50.0)), &ctx);
        let cold = p.log_for_page(&page(0, Some(0.01)), &ctx);
        assert!(hot < cold);
        assert!(p.is_oracle());
    }

    #[test]
    fn victim_selection_prefers_local_neighbourhood() {
        let mut p = MultiLogPolicy::estimated();
        // Route a hot page so last_written_log becomes a low bucket.
        let ctx_empty = PolicyContext {
            unow: 10_000,
            segments: &[],
        };
        let hot_log = p.log_for_page(&page(9_990, None), &ctx_empty);

        // One segment in the hot log's neighbourhood (moderately empty) and one far away
        // (much emptier). The local one must win despite being less empty.
        let mut near = test_segment(0, 100, 40, 6, 0, 0);
        near.log_id = hot_log;
        let mut far = test_segment(1, 100, 90, 1, 0, 0);
        far.log_id = (MAX_LOGS - 1) as u16;
        let segs = [near, far];
        let ctx = PolicyContext {
            unow: 10_000,
            segments: &segs,
        };
        assert_eq!(p.select_victims(&ctx, 1), vec![SegmentId(0)]);
    }

    #[test]
    fn falls_back_to_global_choice_when_neighbourhood_is_empty() {
        let mut p = MultiLogPolicy::estimated();
        let ctx_empty = PolicyContext {
            unow: 10_000,
            segments: &[],
        };
        let hot_log = p.log_for_page(&page(9_990, None), &ctx_empty);
        assert!(hot_log < 5);

        let mut far = test_segment(1, 100, 90, 1, 0, 0);
        far.log_id = (MAX_LOGS - 1) as u16;
        let segs = [far];
        let ctx = PolicyContext {
            unow: 10_000,
            segments: &segs,
        };
        assert_eq!(p.select_victims(&ctx, 1), vec![SegmentId(1)]);
    }

    #[test]
    fn cleans_one_segment_at_a_time() {
        assert_eq!(MultiLogPolicy::estimated().preferred_batch(), Some(1));
        assert_eq!(MultiLogPolicy::oracle().preferred_batch(), Some(1));
    }

    #[test]
    fn within_a_log_the_oldest_segment_is_the_candidate() {
        let mut p = MultiLogPolicy::estimated();
        let ctx_empty = PolicyContext {
            unow: 10_000,
            segments: &[],
        };
        let log = p.log_for_page(&page(9_990, None), &ctx_empty);

        let mut old = test_segment(0, 100, 30, 7, 0, 0);
        old.log_id = log;
        old.seal_seq = 1;
        let mut young = test_segment(1, 100, 80, 2, 0, 0);
        young.log_id = log;
        young.seal_seq = 99;
        let segs = [young, old];
        let ctx = PolicyContext {
            unow: 10_000,
            segments: &segs,
        };
        // Only the oldest segment per log is considered, even though the young one is
        // emptier — the log is treated as a FIFO.
        assert_eq!(p.select_victims(&ctx, 1), vec![SegmentId(0)]);
    }
}
