//! Cleaning policies: how the store decides *which* segments to clean and *how* outgoing
//! pages are grouped into new segments.
//!
//! The paper evaluates seven algorithms (§6.1.3), all implemented here behind the common
//! [`CleaningPolicy`] trait so that the real store ([`crate::LogStore`]) and the
//! evaluation simulator (`lss-sim`) exercise exactly the same code:
//!
//! | Name in paper | Type | Victim selection | Page grouping |
//! |---|---|---|---|
//! | `age` | [`AgePolicy`] | oldest sealed segment first | none |
//! | `greedy` | [`GreedyPolicy`] | most free space first | none |
//! | `cost-benefit` | [`CostBenefitPolicy`] | max benefit/cost (LFS \[23\]) | none |
//! | `multi-log` | [`MultiLogPolicy`] | local-optimal among the written log and its two neighbours | pages bucketed into logs by estimated update period |
//! | `multi-log-opt` | [`MultiLogPolicy::oracle`] | same | buckets use the exact page update frequency |
//! | `MDC` | [`MdcPolicy`] | minimum declining cost (paper §4/§5) | sort batch by carried `up2` |
//! | `MDC-opt` | [`MdcPolicy::oracle`] | same, with exact frequencies | sort batch by exact frequency |

mod age;
mod cost_benefit;
mod greedy;
mod mdc;
mod multilog;

pub use age::AgePolicy;
pub use cost_benefit::{CostBenefitFormula, CostBenefitPolicy};
pub use greedy::GreedyPolicy;
pub use mdc::MdcPolicy;
pub use multilog::MultiLogPolicy;
pub use multilog::MAX_LOGS as MULTILOG_MAX_LOGS;

use crate::types::{PageWriteInfo, SealSeq, SegmentId, UpdateTick};
use serde::{Deserialize, Serialize};

/// Snapshot of one sealed, in-use segment as seen by a cleaning policy.
///
/// These are the quantities the paper identifies in §5.1: the segment byte size `B`
/// ([`capacity_bytes`](SegmentStats::capacity_bytes)), available (dead) space `A`
/// ([`free_bytes`](SegmentStats::free_bytes)), live page count `C`
/// ([`live_pages`](SegmentStats::live_pages)) and the penultimate-update estimate `up2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentStats {
    /// Which segment this is.
    pub id: SegmentId,
    /// `B`: total payload capacity of the segment in bytes.
    pub capacity_bytes: u64,
    /// `A`: bytes no longer occupied by live pages (reclaimable space).
    pub free_bytes: u64,
    /// `C`: number of live pages still in the segment.
    pub live_pages: u64,
    /// `up2`: penultimate-update estimate on the update-count clock.
    pub up2: UpdateTick,
    /// Update tick at which the segment was sealed (used by age/cost-benefit).
    pub sealed_at: UpdateTick,
    /// Monotone seal sequence (strictly increasing with time; used for FIFO orders and
    /// deterministic tie-breaking).
    pub seal_seq: SealSeq,
    /// The output log/stream the segment was written by (0 unless the policy maintains
    /// multiple logs).
    pub log_id: u16,
    /// Temperature class the segment was filled with (0 = coldest), or
    /// [`crate::freq::TEMPERATURE_UNCLASSIFIED`] for user-filled / recovered segments.
    /// Only meaningful when `gc_temperature_classes > 1`; the store uses it to let cold
    /// segments accumulate more dead space before becoming policy victims.
    pub temperature: u16,
    /// Exact segment update frequency — the sum of the exact per-page update frequencies
    /// of the live pages — when the embedding system knows it (the simulator's "-opt"
    /// oracle variants). `None` in the real store.
    pub exact_upf: Option<f64>,
}

impl SegmentStats {
    /// Fraction of the segment that is empty (the paper's `E = A / B`).
    #[inline]
    pub fn emptiness(&self) -> f64 {
        if self.capacity_bytes == 0 {
            0.0
        } else {
            self.free_bytes as f64 / self.capacity_bytes as f64
        }
    }

    /// Utilisation `1 − E`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        1.0 - self.emptiness()
    }

    /// Age of the segment in update ticks.
    #[inline]
    pub fn age(&self, unow: UpdateTick) -> u64 {
        unow.saturating_sub(self.sealed_at)
    }
}

/// Everything a policy may look at when selecting victims or placing pages.
#[derive(Debug)]
pub struct PolicyContext<'a> {
    /// Current value of the update-count clock.
    pub unow: UpdateTick,
    /// All sealed, in-use segments that are candidates for cleaning.
    pub segments: &'a [SegmentStats],
}

/// A cleaning policy: selects victim segments and (optionally) controls how outgoing
/// pages are grouped into new segments.
///
/// Implementations must be deterministic given the same inputs so simulation results are
/// reproducible.
pub trait CleaningPolicy: Send {
    /// Short, stable policy name (used in reports and experiment output).
    fn name(&self) -> &'static str;

    /// Select up to `want` victim segments to clean, best victims first.
    ///
    /// Implementations should skip segments from which nothing can be reclaimed
    /// (`free_bytes == 0`) unless the policy's definition requires strict ordering
    /// regardless (the age policy does, mirroring a circular log).
    fn select_victims(&mut self, ctx: &PolicyContext<'_>, want: usize) -> Vec<SegmentId>;

    /// Number of output logs (write streams) the policy wants the writer to maintain.
    /// Each log has its own open segment; pages are routed with [`Self::log_for_page`].
    fn num_logs(&self) -> usize {
        1
    }

    /// Route a page about to be written to one of the `num_logs()` output logs.
    fn log_for_page(&mut self, _page: &PageWriteInfo, _ctx: &PolicyContext<'_>) -> u16 {
        0
    }

    /// Key by which a write batch should be sorted so that pages with similar update
    /// frequency end up in the same segment (paper §5.3). `None` disables sorting for
    /// this policy (age, greedy, cost-benefit do not separate).
    fn separation_key(&self, _page: &PageWriteInfo) -> Option<f64> {
        None
    }

    /// Preferred number of segments to clean per cleaning cycle, if the policy wants to
    /// override the store configuration (multi-log cleans one at a time, per §6.1.3).
    fn preferred_batch(&self) -> Option<usize> {
        None
    }
}

/// The set of built-in policies, as named in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Always clean the oldest segment (circular log).
    Age,
    /// Always clean the segment with the most free space.
    Greedy,
    /// The LFS cost-benefit heuristic \[23\].
    CostBenefit,
    /// Cost-benefit using the literal formula printed in the paper (see DESIGN.md §2).
    CostBenefitPaperLiteral,
    /// Multi-log cleaning \[26\] with estimated update frequencies.
    MultiLog,
    /// Multi-log cleaning with exact (oracle) update frequencies.
    MultiLogOpt,
    /// Minimum Declining Cost (the paper's contribution) with estimated frequencies.
    Mdc,
    /// MDC with exact (oracle) update frequencies.
    MdcOpt,
}

impl PolicyKind {
    /// All kinds, in the order the paper's figures list them.
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Age,
        PolicyKind::Greedy,
        PolicyKind::CostBenefit,
        PolicyKind::CostBenefitPaperLiteral,
        PolicyKind::MultiLog,
        PolicyKind::MultiLogOpt,
        PolicyKind::Mdc,
        PolicyKind::MdcOpt,
    ];

    /// The seven algorithms compared in Figures 5 and 6 of the paper.
    pub const PAPER_FIGURE5: [PolicyKind; 7] = [
        PolicyKind::Age,
        PolicyKind::Greedy,
        PolicyKind::CostBenefit,
        PolicyKind::MultiLog,
        PolicyKind::MultiLogOpt,
        PolicyKind::Mdc,
        PolicyKind::MdcOpt,
    ];

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn CleaningPolicy> {
        match self {
            PolicyKind::Age => Box::new(AgePolicy::new()),
            PolicyKind::Greedy => Box::new(GreedyPolicy::new()),
            PolicyKind::CostBenefit => {
                Box::new(CostBenefitPolicy::new(CostBenefitFormula::ClassicLfs))
            }
            PolicyKind::CostBenefitPaperLiteral => {
                Box::new(CostBenefitPolicy::new(CostBenefitFormula::PaperLiteral))
            }
            PolicyKind::MultiLog => Box::new(MultiLogPolicy::estimated()),
            PolicyKind::MultiLogOpt => Box::new(MultiLogPolicy::oracle()),
            PolicyKind::Mdc => Box::new(MdcPolicy::estimated()),
            PolicyKind::MdcOpt => Box::new(MdcPolicy::oracle()),
        }
    }

    /// The display name used in the paper's figures.
    pub fn paper_name(self) -> &'static str {
        match self {
            PolicyKind::Age => "age",
            PolicyKind::Greedy => "greedy",
            PolicyKind::CostBenefit => "cost-benefit",
            PolicyKind::CostBenefitPaperLiteral => "cost-benefit-literal",
            PolicyKind::MultiLog => "multi-log",
            PolicyKind::MultiLogOpt => "multi-log-opt",
            PolicyKind::Mdc => "MDC",
            PolicyKind::MdcOpt => "MDC-opt",
        }
    }

    /// True for the oracle ("-opt") variants that require the embedding system to supply
    /// exact page update frequencies.
    pub fn needs_exact_frequencies(self) -> bool {
        matches!(self, PolicyKind::MultiLogOpt | PolicyKind::MdcOpt)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "age" => Ok(PolicyKind::Age),
            "greedy" => Ok(PolicyKind::Greedy),
            "cost-benefit" | "costbenefit" | "cb" => Ok(PolicyKind::CostBenefit),
            "cost-benefit-literal" => Ok(PolicyKind::CostBenefitPaperLiteral),
            "multi-log" | "multilog" => Ok(PolicyKind::MultiLog),
            "multi-log-opt" | "multilogopt" => Ok(PolicyKind::MultiLogOpt),
            "mdc" => Ok(PolicyKind::Mdc),
            "mdc-opt" | "mdcopt" => Ok(PolicyKind::MdcOpt),
            other => Err(format!("unknown policy '{other}'")),
        }
    }
}

/// Select the ids of up to `want` segments with the smallest `key`, ascending, with
/// deterministic tie-breaking on the segment's seal sequence.
///
/// Shared helper used by several policies. Runs in O(n log n) on the candidate list,
/// which is negligible next to the cost of actually cleaning 64 segments.
pub(crate) fn select_k_smallest_by<F>(
    segments: &[SegmentStats],
    want: usize,
    mut key: F,
) -> Vec<SegmentId>
where
    F: FnMut(&SegmentStats) -> f64,
{
    let mut scored: Vec<(f64, SealSeq, SegmentId)> = segments
        .iter()
        .map(|s| (key(s), s.seal_seq, s.id))
        .collect();
    scored.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    scored.into_iter().take(want).map(|(_, _, id)| id).collect()
}

#[cfg(test)]
pub(crate) fn test_segment(
    id: u32,
    capacity: u64,
    free: u64,
    live: u64,
    up2: UpdateTick,
    sealed_at: UpdateTick,
) -> SegmentStats {
    SegmentStats {
        id: SegmentId(id),
        capacity_bytes: capacity,
        free_bytes: free,
        live_pages: live,
        up2,
        sealed_at,
        seal_seq: id as u64,
        log_id: 0,
        temperature: crate::freq::TEMPERATURE_UNCLASSIFIED,
        exact_upf: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emptiness_and_utilization() {
        let s = test_segment(1, 1000, 250, 75, 0, 0);
        assert!((s.emptiness() - 0.25).abs() < 1e-12);
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(s.age(100), 100);
    }

    #[test]
    fn zero_capacity_segment_has_zero_emptiness() {
        let s = test_segment(1, 0, 0, 0, 0, 0);
        assert_eq!(s.emptiness(), 0.0);
    }

    #[test]
    fn policy_kind_roundtrip_names() {
        for kind in PolicyKind::ALL {
            let p = kind.build();
            assert!(!p.name().is_empty());
            // paper_name parses back to the same kind (the literal variant maps to itself).
            let parsed: PolicyKind = kind.paper_name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("nonsense".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn oracle_variants_are_flagged() {
        assert!(PolicyKind::MdcOpt.needs_exact_frequencies());
        assert!(PolicyKind::MultiLogOpt.needs_exact_frequencies());
        assert!(!PolicyKind::Mdc.needs_exact_frequencies());
        assert!(!PolicyKind::Greedy.needs_exact_frequencies());
    }

    #[test]
    fn select_k_smallest_orders_and_truncates() {
        let segs = vec![
            test_segment(0, 100, 10, 9, 0, 0),
            test_segment(1, 100, 90, 1, 0, 0),
            test_segment(2, 100, 50, 5, 0, 0),
        ];
        let picked = select_k_smallest_by(&segs, 2, |s| s.free_bytes as f64);
        assert_eq!(picked, vec![SegmentId(0), SegmentId(2)]);
        let all = select_k_smallest_by(&segs, 10, |s| s.free_bytes as f64);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn select_k_breaks_ties_by_seal_seq() {
        let segs = vec![
            test_segment(5, 100, 50, 5, 0, 0),
            test_segment(2, 100, 50, 5, 0, 0),
            test_segment(9, 100, 50, 5, 0, 0),
        ];
        // seal_seq == id in the test helper, so ties resolve to ascending id.
        let picked = select_k_smallest_by(&segs, 3, |s| s.free_bytes as f64);
        assert_eq!(picked, vec![SegmentId(2), SegmentId(5), SegmentId(9)]);
    }

    #[test]
    fn figure5_list_excludes_ablation_variants() {
        assert_eq!(PolicyKind::PAPER_FIGURE5.len(), 7);
        assert!(!PolicyKind::PAPER_FIGURE5.contains(&PolicyKind::CostBenefitPaperLiteral));
    }
}
