//! The page table: the dynamic remapping from logical page id to current physical
//! location that log structuring requires (every write relocates the page).
//!
//! Two forms are provided:
//!
//! * [`PageTable`] — a plain single-owner map, used by recovery/checkpoint loading to
//!   assemble state and by unit tests of the cleaner's pure helpers.
//! * [`ShardedPageTable`] — the concurrent table the live store uses: page ids are
//!   hashed across N shards, each behind its own `parking_lot::RwLock`, so `get` takes
//!   `&self` and readers on different shards (and concurrent readers of the same shard)
//!   never contend. Aggregate counters (`len`, `live_bytes`) are kept in atomics so the
//!   hot read path never sums across shards.

use crate::types::{PageId, PageLocation};
use crate::util::{mix64, FxHashMap};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// Page table mapping live pages to their current location (single-owner form).
///
/// This is the in-memory analogue of an SSD FTL's logical-to-physical map or an LFS's
/// inode map. It is rebuilt on restart from a checkpoint plus a device scan
/// ([`crate::recovery`]).
#[derive(Debug, Default, Clone)]
pub struct PageTable {
    map: FxHashMap<PageId, PageLocation>,
    live_bytes: u64,
}

impl PageTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no pages are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes of live page payloads.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Current location of a page.
    pub fn get(&self, page: PageId) -> Option<PageLocation> {
        self.map.get(&page).copied()
    }

    /// Install a new location for a page, returning the previous location if the page
    /// was already live.
    pub fn insert(&mut self, page: PageId, loc: PageLocation) -> Option<PageLocation> {
        self.live_bytes += loc.len as u64;
        let old = self.map.insert(page, loc);
        if let Some(o) = old {
            self.live_bytes -= o.len as u64;
        }
        old
    }

    /// Remove a page (deletion), returning its last location.
    pub fn remove(&mut self, page: PageId) -> Option<PageLocation> {
        let old = self.map.remove(&page);
        if let Some(o) = old {
            self.live_bytes -= o.len as u64;
        }
        old
    }

    /// True if the page is currently live at exactly this location.
    ///
    /// The cleaner uses this to decide whether an entry found in a victim segment is the
    /// page's current version (it may have been superseded since the segment was sealed).
    pub fn is_current(&self, page: PageId, loc: &PageLocation) -> bool {
        self.get(page).is_some_and(|cur| cur == *loc)
    }

    /// Iterate over all live pages.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, PageLocation)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

/// Number of shards in a [`ShardedPageTable`]. A fixed power of two keeps the shard
/// selection branch-free; 64 shards is comfortably above the core counts this store
/// targets, so shard collisions between concurrent readers are rare.
pub const PAGE_TABLE_SHARDS: usize = 64;

/// The concurrent page table: N independently locked shards plus atomic aggregates.
///
/// All methods take `&self`. Point lookups and updates lock exactly one shard; only
/// [`ShardedPageTable::snapshot`] (checkpointing) walks every shard.
#[derive(Debug)]
pub struct ShardedPageTable {
    shards: Box<[RwLock<FxHashMap<PageId, PageLocation>>]>,
    live_pages: AtomicU64,
    live_bytes: AtomicU64,
    /// Bitmask of shards mutated since the last [`ShardedPageTable::take_dirty`] — one
    /// bit per shard (`PAGE_TABLE_SHARDS` must stay ≤ 64). Incremental checkpoints
    /// re-snapshot only the dirty shards.
    dirty: AtomicU64,
}

impl Default for ShardedPageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedPageTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self {
            shards: (0..PAGE_TABLE_SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            live_pages: AtomicU64::new(0),
            live_bytes: AtomicU64::new(0),
            // A fresh table has never been checkpointed, so every shard starts dirty.
            dirty: AtomicU64::new(Self::all_dirty_mask()),
        }
    }

    /// Bitmask with one set bit per shard (the "everything is dirty" mask).
    #[inline]
    pub const fn all_dirty_mask() -> u64 {
        u64::MAX >> (64 - PAGE_TABLE_SHARDS)
    }

    #[inline]
    fn shard_index(page: PageId) -> usize {
        // Mix before masking: page ids are often dense small integers, and the low bits
        // alone would put striding workloads on a handful of shards.
        (mix64(page) as usize) & (PAGE_TABLE_SHARDS - 1)
    }

    #[inline]
    fn shard(&self, page: PageId) -> &RwLock<FxHashMap<PageId, PageLocation>> {
        &self.shards[Self::shard_index(page)]
    }

    #[inline]
    fn mark_dirty(&self, page: PageId) {
        self.dirty
            .fetch_or(1u64 << Self::shard_index(page), Ordering::Relaxed);
    }

    /// Atomically fetch-and-clear the dirty-shard mask (bit `i` set = shard `i` mutated
    /// since the previous call). The caller must snapshot the flagged shards before any
    /// further mutations can occur, or OR the mask back with
    /// [`ShardedPageTable::mark_dirty_mask`] if the checkpoint attempt fails.
    pub fn take_dirty(&self) -> u64 {
        self.dirty.swap(0, Ordering::Relaxed)
    }

    /// OR bits back into the dirty mask (undo of [`ShardedPageTable::take_dirty`] when a
    /// checkpoint write fails after the mask was consumed).
    pub fn mark_dirty_mask(&self, mask: u64) {
        self.dirty.fetch_or(mask, Ordering::Relaxed);
    }

    /// Collect the live pages of one shard (incremental checkpointing).
    pub fn shard_snapshot(&self, shard: usize) -> Vec<(PageId, PageLocation)> {
        let shard = self.shards[shard].read();
        shard.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Number of live pages.
    pub fn len(&self) -> usize {
        self.live_pages.load(Ordering::Relaxed) as usize
    }

    /// True if no pages are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of live page payloads.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Current location of a page.
    pub fn get(&self, page: PageId) -> Option<PageLocation> {
        self.shard(page).read().get(&page).copied()
    }

    /// Install a new location for a page, returning the previous location if the page
    /// was already live.
    pub fn insert(&self, page: PageId, loc: PageLocation) -> Option<PageLocation> {
        let old = self.shard(page).write().insert(page, loc);
        self.mark_dirty(page);
        self.live_bytes.fetch_add(loc.len as u64, Ordering::Relaxed);
        match old {
            Some(o) => {
                self.live_bytes.fetch_sub(o.len as u64, Ordering::Relaxed);
            }
            None => {
                self.live_pages.fetch_add(1, Ordering::Relaxed);
            }
        }
        old
    }

    /// Remove a page (deletion), returning its last location.
    pub fn remove(&self, page: PageId) -> Option<PageLocation> {
        let old = self.shard(page).write().remove(&page);
        if let Some(o) = old {
            self.mark_dirty(page);
            self.live_bytes.fetch_sub(o.len as u64, Ordering::Relaxed);
            self.live_pages.fetch_sub(1, Ordering::Relaxed);
        }
        old
    }

    /// True if the page is currently live at exactly this location (the cleaner's
    /// conflict check: a page rewritten since victim selection fails this test and its
    /// stale copy is skipped).
    pub fn is_current(&self, page: PageId, loc: &PageLocation) -> bool {
        self.get(page).is_some_and(|cur| cur == *loc)
    }

    /// Atomically move a page from `expected` to `new`, failing if the page is no longer
    /// live at exactly `expected`.
    ///
    /// This is the cleaner's *commit* operation in the sharded-write-path design: the
    /// check and the update happen under one shard write lock, so a concurrent user
    /// rewrite (which unconditionally [`ShardedPageTable::insert`]s) either lands before
    /// the swap — the swap fails and the stale GC copy is abandoned — or after it, in
    /// which case the user's newer location simply overwrites the relocated one. Both
    /// orders leave the newest data current.
    pub fn replace_if_current(
        &self,
        page: PageId,
        expected: &PageLocation,
        new: PageLocation,
    ) -> bool {
        let mut shard = self.shard(page).write();
        match shard.get_mut(&page) {
            Some(cur) if *cur == *expected => {
                *cur = new;
                drop(shard);
                self.mark_dirty(page);
                self.live_bytes.fetch_add(new.len as u64, Ordering::Relaxed);
                self.live_bytes
                    .fetch_sub(expected.len as u64, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Atomically remove a page, failing if it is no longer live at exactly `expected`.
    ///
    /// Counterpart of [`ShardedPageTable::replace_if_current`] for deletions: the write
    /// path uses it so the death of the removed copy can be attributed to the segment
    /// incarnation that was observed *while the location was still current*.
    pub fn remove_if_current(&self, page: PageId, expected: &PageLocation) -> bool {
        let mut shard = self.shard(page).write();
        match shard.get(&page) {
            Some(cur) if *cur == *expected => {
                shard.remove(&page);
                drop(shard);
                self.mark_dirty(page);
                self.live_bytes
                    .fetch_sub(expected.len as u64, Ordering::Relaxed);
                self.live_pages.fetch_sub(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Collect every live page into a plain vector (checkpointing; O(n)).
    pub fn snapshot(&self) -> Vec<(PageId, PageLocation)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let shard = shard.read();
            out.extend(shard.iter().map(|(&k, &v)| (k, v)));
        }
        out
    }

    /// Replace the entire contents with a recovered [`PageTable`] (restart path).
    pub fn install(&self, table: PageTable) {
        for shard in self.shards.iter() {
            shard.write().clear();
        }
        let mut pages = 0u64;
        let mut bytes = 0u64;
        for (page, loc) in table.iter() {
            self.shard(page).write().insert(page, loc);
            pages += 1;
            bytes += loc.len as u64;
        }
        self.live_pages.store(pages, Ordering::Relaxed);
        self.live_bytes.store(bytes, Ordering::Relaxed);
        // Wholesale replacement invalidates any previous checkpoint's notion of "clean".
        self.dirty.store(Self::all_dirty_mask(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SegmentId;

    fn loc(seg: u32, offset: u32, len: u32) -> PageLocation {
        PageLocation {
            segment: SegmentId(seg),
            offset,
            len,
            write_seq: 0,
        }
    }

    #[test]
    fn dirty_mask_tracks_mutated_shards() {
        let t = ShardedPageTable::new();
        // A fresh table starts fully dirty; draining the mask resets it.
        assert_eq!(t.take_dirty(), ShardedPageTable::all_dirty_mask());
        assert_eq!(t.take_dirty(), 0);

        t.insert(1, loc(0, 0, 8));
        let mask = t.take_dirty();
        assert_eq!(mask.count_ones(), 1, "one insert dirties exactly one shard");
        assert_eq!(t.take_dirty(), 0);

        // Failed CAS operations leave the mask clean; successful ones dirty it.
        assert!(!t.replace_if_current(1, &loc(9, 9, 8), loc(2, 0, 8)));
        assert_eq!(t.take_dirty(), 0);
        assert!(t.replace_if_current(1, &loc(0, 0, 8), loc(2, 0, 8)));
        assert_eq!(t.take_dirty(), mask);
        assert!(t.remove_if_current(1, &loc(2, 0, 8)));
        assert_eq!(t.take_dirty(), mask);

        // mark_dirty_mask restores bits after a failed checkpoint write.
        t.mark_dirty_mask(mask);
        assert_eq!(t.take_dirty(), mask);

        // install() re-dirties everything.
        t.install(PageTable::new());
        assert_eq!(t.take_dirty(), ShardedPageTable::all_dirty_mask());
    }

    #[test]
    fn shard_snapshots_cover_exactly_the_table() {
        let t = ShardedPageTable::new();
        for i in 0..300u64 {
            t.insert(i, loc((i % 5) as u32, i as u32, 16));
        }
        let mut via_shards: Vec<(PageId, PageLocation)> = (0..PAGE_TABLE_SHARDS)
            .flat_map(|s| t.shard_snapshot(s))
            .collect();
        via_shards.sort_unstable_by_key(|(p, _)| *p);
        let mut full = t.snapshot();
        full.sort_unstable_by_key(|(p, _)| *p);
        assert_eq!(via_shards, full);
        assert_eq!(via_shards.len(), 300);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = PageTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(1, loc(0, 100, 50)), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.live_bytes(), 50);
        assert_eq!(t.get(1), Some(loc(0, 100, 50)));
        assert_eq!(t.remove(1), Some(loc(0, 100, 50)));
        assert_eq!(t.live_bytes(), 0);
        assert!(t.get(1).is_none());
        assert!(t.remove(1).is_none());
    }

    #[test]
    fn insert_returns_previous_location_and_adjusts_bytes() {
        let mut t = PageTable::new();
        t.insert(7, loc(0, 0, 100));
        let old = t.insert(7, loc(1, 0, 40));
        assert_eq!(old, Some(loc(0, 0, 100)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.live_bytes(), 40);
    }

    #[test]
    fn is_current_distinguishes_stale_copies() {
        let mut t = PageTable::new();
        t.insert(9, loc(2, 64, 16));
        assert!(t.is_current(9, &loc(2, 64, 16)));
        assert!(!t.is_current(9, &loc(2, 0, 16)));
        assert!(!t.is_current(9, &loc(3, 64, 16)));
        assert!(!t.is_current(10, &loc(2, 64, 16)));
    }

    #[test]
    fn iter_visits_all_live_pages() {
        let mut t = PageTable::new();
        for i in 0..100u64 {
            t.insert(i, loc(0, i as u32, 8));
        }
        let mut pages: Vec<PageId> = t.iter().map(|(p, _)| p).collect();
        pages.sort_unstable();
        assert_eq!(pages, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_basic_roundtrip_and_counters() {
        let t = ShardedPageTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(1, loc(0, 100, 50)), None);
        assert_eq!(t.insert(2, loc(0, 150, 30)), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.live_bytes(), 80);
        assert_eq!(t.insert(1, loc(1, 0, 10)), Some(loc(0, 100, 50)));
        assert_eq!(t.live_bytes(), 40);
        assert_eq!(t.remove(2), Some(loc(0, 150, 30)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.live_bytes(), 10);
    }

    #[test]
    fn sharded_snapshot_and_install_roundtrip() {
        let t = ShardedPageTable::new();
        for i in 0..500u64 {
            t.insert(i, loc((i % 7) as u32, i as u32, 16));
        }
        let mut snap = t.snapshot();
        snap.sort_unstable_by_key(|(p, _)| *p);
        assert_eq!(snap.len(), 500);
        assert_eq!(snap[42], (42, loc(0, 42, 16)));

        let mut plain = PageTable::new();
        for (p, l) in snap {
            plain.insert(p, l);
        }
        let t2 = ShardedPageTable::new();
        t2.install(plain);
        assert_eq!(t2.len(), 500);
        assert_eq!(t2.live_bytes(), 500 * 16);
        for i in 0..500u64 {
            assert_eq!(t2.get(i), Some(loc((i % 7) as u32, i as u32, 16)));
        }
    }

    #[test]
    fn replace_if_current_commits_only_against_the_expected_location() {
        let t = ShardedPageTable::new();
        t.insert(5, loc(1, 0, 32));
        // Wrong expected location: no change.
        assert!(!t.replace_if_current(5, &loc(1, 64, 32), loc(2, 0, 32)));
        assert_eq!(t.get(5), Some(loc(1, 0, 32)));
        // Matching expected location: swapped.
        assert!(t.replace_if_current(5, &loc(1, 0, 32), loc(2, 0, 32)));
        assert_eq!(t.get(5), Some(loc(2, 0, 32)));
        assert_eq!(t.live_bytes(), 32);
        // Unknown page: no change, no phantom insert.
        assert!(!t.replace_if_current(6, &loc(1, 0, 32), loc(2, 0, 32)));
        assert!(t.get(6).is_none());
    }

    #[test]
    fn sharded_concurrent_inserts_and_reads_are_coherent() {
        let t = std::sync::Arc::new(ShardedPageTable::new());
        let threads = 8u64;
        let per_thread = 2_000u64;
        let mut handles = Vec::new();
        for tid in 0..threads {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let page = tid * per_thread + i;
                    t.insert(page, loc(tid as u32, i as u32, 8));
                    assert_eq!(t.get(page), Some(loc(tid as u32, i as u32, 8)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len() as u64, threads * per_thread);
        assert_eq!(t.live_bytes(), threads * per_thread * 8);
    }
}
