//! The page table: the dynamic remapping from logical page id to current physical
//! location that log structuring requires (every write relocates the page).

use crate::types::{PageId, PageLocation};
use crate::util::FxHashMap;

/// Page table mapping live pages to their current location.
///
/// This is the in-memory analogue of an SSD FTL's logical-to-physical map or an LFS's
/// inode map. It is rebuilt on restart from a checkpoint plus a device scan
/// ([`crate::recovery`]).
#[derive(Debug, Default, Clone)]
pub struct PageTable {
    map: FxHashMap<PageId, PageLocation>,
    live_bytes: u64,
}

impl PageTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no pages are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes of live page payloads.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Current location of a page.
    pub fn get(&self, page: PageId) -> Option<PageLocation> {
        self.map.get(&page).copied()
    }

    /// Install a new location for a page, returning the previous location if the page
    /// was already live.
    pub fn insert(&mut self, page: PageId, loc: PageLocation) -> Option<PageLocation> {
        self.live_bytes += loc.len as u64;
        let old = self.map.insert(page, loc);
        if let Some(o) = old {
            self.live_bytes -= o.len as u64;
        }
        old
    }

    /// Remove a page (deletion), returning its last location.
    pub fn remove(&mut self, page: PageId) -> Option<PageLocation> {
        let old = self.map.remove(&page);
        if let Some(o) = old {
            self.live_bytes -= o.len as u64;
        }
        old
    }

    /// True if the page is currently live at exactly this location.
    ///
    /// The cleaner uses this to decide whether an entry found in a victim segment is the
    /// page's current version (it may have been superseded since the segment was sealed).
    pub fn is_current(&self, page: PageId, loc: &PageLocation) -> bool {
        self.get(page).is_some_and(|cur| cur == *loc)
    }

    /// Iterate over all live pages.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, PageLocation)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SegmentId;

    fn loc(seg: u32, offset: u32, len: u32) -> PageLocation {
        PageLocation { segment: SegmentId(seg), offset, len }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = PageTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(1, loc(0, 100, 50)), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.live_bytes(), 50);
        assert_eq!(t.get(1), Some(loc(0, 100, 50)));
        assert_eq!(t.remove(1), Some(loc(0, 100, 50)));
        assert_eq!(t.live_bytes(), 0);
        assert!(t.get(1).is_none());
        assert!(t.remove(1).is_none());
    }

    #[test]
    fn insert_returns_previous_location_and_adjusts_bytes() {
        let mut t = PageTable::new();
        t.insert(7, loc(0, 0, 100));
        let old = t.insert(7, loc(1, 0, 40));
        assert_eq!(old, Some(loc(0, 0, 100)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.live_bytes(), 40);
    }

    #[test]
    fn is_current_distinguishes_stale_copies() {
        let mut t = PageTable::new();
        t.insert(9, loc(2, 64, 16));
        assert!(t.is_current(9, &loc(2, 64, 16)));
        assert!(!t.is_current(9, &loc(2, 0, 16)));
        assert!(!t.is_current(9, &loc(3, 64, 16)));
        assert!(!t.is_current(10, &loc(2, 64, 16)));
    }

    #[test]
    fn iter_visits_all_live_pages() {
        let mut t = PageTable::new();
        for i in 0..100u64 {
            t.insert(i, loc(0, i as u32, 8));
        }
        let mut pages: Vec<PageId> = t.iter().map(|(p, _)| p).collect();
        pages.sort_unstable();
        assert_eq!(pages, (0..100u64).collect::<Vec<_>>());
    }
}
