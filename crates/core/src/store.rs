//! [`LogStore`]: the public facade of the log-structured page store.
//!
//! A `LogStore` accepts variable-size page writes, batches them into segments through the
//! sort buffer, remaps pages on every write, and reclaims space with the configured
//! cleaning policy. It is single-writer by design (wrap it in a mutex for sharing); all
//! methods take `&mut self`.
//!
//! ### Durability model
//!
//! Pages buffered in the sort buffer or in a still-open segment are volatile; they become
//! durable when their segment is sealed (written to the device) and the device is synced.
//! [`LogStore::flush`] drains and seals everything and syncs the device, so it is the
//! durability point. After a crash, [`LogStore::recover_with_device`] rebuilds the page
//! table by scanning segment images; anything not flushed is lost (standard LFS
//! semantics).

use crate::cleaner::{collect_live_pages, CleaningReport};
use crate::config::StoreConfig;
use crate::device::{MemDevice, SegmentDevice};
use crate::error::{Error, Result};
use crate::freq::{carry_forward_rewrite, first_write_up2, Up2Average};
use crate::layout::{self, SegmentBuilder};
use crate::mapping::PageTable;
use crate::policy::{CleaningPolicy, PolicyContext};
use crate::segment::SegmentTable;
use crate::stats::StoreStats;
use crate::types::{
    PageId, PageLocation, PageWriteInfo, SegmentId, UpdateTick, WriteOrigin, WriteSeq,
};
use crate::util::FxHashMap;
use crate::write_buffer::{sort_by_separation_key, PendingPage, WriteBuffer};
use bytes::Bytes;

/// Key identifying an open output segment: the write stream (user vs GC) and the output
/// log the policy routed the page to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OpenKey {
    origin: WriteOrigin,
    log: u16,
}

/// A segment currently being filled in memory.
struct OpenSegment {
    id: SegmentId,
    builder: SegmentBuilder,
    up2_avg: Up2Average,
    log: u16,
}

impl std::fmt::Debug for OpenSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenSegment")
            .field("id", &self.id)
            .field("entries", &self.builder.len())
            .field("log", &self.log)
            .finish()
    }
}

/// The log-structured page store.
pub struct LogStore {
    config: StoreConfig,
    device: Box<dyn SegmentDevice>,
    mapping: PageTable,
    segments: SegmentTable,
    policy: Box<dyn CleaningPolicy>,
    user_buffer: WriteBuffer,
    open: FxHashMap<OpenKey, OpenSegment>,
    unow: UpdateTick,
    next_write_seq: WriteSeq,
    stats: StoreStats,
    cleaning_in_progress: bool,
}

impl std::fmt::Debug for LogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogStore")
            .field("policy", &self.policy.name())
            .field("live_pages", &self.mapping.len())
            .field("free_segments", &self.segments.free_count())
            .field("unow", &self.unow)
            .finish()
    }
}

impl LogStore {
    /// Open a fresh store backed by an in-memory device.
    pub fn open_in_memory(config: StoreConfig) -> Result<Self> {
        let device = MemDevice::new(config.segment_bytes, config.num_segments);
        Self::open_with_device(config, Box::new(device))
    }

    /// Open a fresh store on the given device. Existing data on the device is ignored
    /// (use [`LogStore::recover_with_device`] to rebuild state from a previous run).
    pub fn open_with_device(config: StoreConfig, device: Box<dyn SegmentDevice>) -> Result<Self> {
        config.validate()?;
        let geom = device.geometry();
        if geom.segment_bytes != config.segment_bytes || geom.num_segments != config.num_segments {
            return Err(Error::GeometryMismatch {
                expected: format!("{} segments x {} bytes", config.num_segments, config.segment_bytes),
                actual: format!("{} segments x {} bytes", geom.num_segments, geom.segment_bytes),
            });
        }
        let policy = config.policy.build();
        Ok(Self {
            segments: SegmentTable::new(config.num_segments),
            user_buffer: WriteBuffer::new(config.absorb_updates_in_buffer),
            mapping: PageTable::new(),
            open: FxHashMap::default(),
            unow: 0,
            next_write_seq: 1,
            stats: StoreStats::default(),
            cleaning_in_progress: false,
            policy,
            device,
            config,
        })
    }

    /// Rebuild a store from an existing device by scanning every segment image
    /// (see [`crate::recovery`]). Pages that were never flushed before the previous
    /// process exited are not recovered.
    pub fn recover_with_device(
        config: StoreConfig,
        device: Box<dyn SegmentDevice>,
    ) -> Result<Self> {
        crate::recovery::recover(config, device)
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Write (or overwrite) a page.
    pub fn put(&mut self, page: PageId, data: &[u8]) -> Result<()> {
        let max = layout::max_single_payload(self.config.segment_bytes);
        if data.len() > max {
            return Err(Error::PageTooLarge { page, size: data.len(), max });
        }
        self.unow += 1;
        self.stats.user_pages_written += 1;
        self.stats.user_bytes_written += data.len() as u64;
        let pending = PendingPage {
            info: PageWriteInfo {
                page,
                size: data.len() as u32,
                up2: 0,
                exact_freq: None,
                origin: WriteOrigin::User,
            },
            data: Some(Bytes::copy_from_slice(data)),
        };
        if self.user_buffer.push(pending) {
            self.stats.absorbed_in_buffer += 1;
        }
        self.maybe_drain_user_buffer()
    }

    /// Delete a page. Subsequent reads return `None`; the space its last version occupied
    /// becomes reclaimable.
    pub fn delete(&mut self, page: PageId) -> Result<()> {
        self.unow += 1;
        self.stats.user_pages_written += 1;
        let pending = PendingPage {
            info: PageWriteInfo {
                page,
                size: 0,
                up2: 0,
                exact_freq: None,
                origin: WriteOrigin::User,
            },
            data: None,
        };
        if self.user_buffer.push(pending) {
            self.stats.absorbed_in_buffer += 1;
        }
        self.maybe_drain_user_buffer()
    }

    /// Read the current version of a page. Returns `None` if the page does not exist or
    /// has been deleted.
    pub fn get(&mut self, page: PageId) -> Result<Option<Bytes>> {
        self.stats.pages_read += 1;
        // 1. Still in the sort buffer?
        if let Some(pending) = self.user_buffer.get(page) {
            return Ok(if pending.is_tombstone() { None } else { pending.data.clone() });
        }
        // 2. Mapped to an open or sealed segment?
        let Some(loc) = self.mapping.get(page) else { return Ok(None) };
        if let Some(open) = self.open.values().find(|o| o.id == loc.segment) {
            let payload = open.builder.read_payload(loc.offset, loc.len);
            return Ok(Some(Bytes::copy_from_slice(payload)));
        }
        self.stats.device_page_reads += 1;
        let bytes = self.device.read_range(loc.segment, loc.offset, loc.len)?;
        Ok(Some(Bytes::from(bytes)))
    }

    /// True if the page currently exists (buffered or stored).
    pub fn contains(&self, page: PageId) -> bool {
        if let Some(p) = self.user_buffer.get(page) {
            return !p.is_tombstone();
        }
        self.mapping.get(page).is_some()
    }

    /// Drain the sort buffer, seal every open segment and sync the device. This is the
    /// durability point.
    pub fn flush(&mut self) -> Result<()> {
        self.drain_user_buffer()?;
        let keys: Vec<OpenKey> = self.open.keys().copied().collect();
        for key in keys {
            if let Some(open) = self.open.remove(&key) {
                self.seal_open(open)?;
            }
        }
        self.device.sync()?;
        Ok(())
    }

    /// Run one cleaning cycle right now, regardless of the free-segment trigger.
    /// Returns what was accomplished.
    pub fn clean_now(&mut self) -> Result<CleaningReport> {
        self.run_cleaning_cycle()
    }

    /// Operational statistics accumulated so far.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Reset statistics (e.g. after a load phase, so that a measurement phase starts
    /// from zero as the paper's evaluation does).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Name of the active cleaning policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The update-count clock (one tick per user write or delete).
    pub fn unow(&self) -> UpdateTick {
        self.unow
    }

    /// Number of live pages.
    pub fn live_pages(&self) -> usize {
        self.mapping.len()
    }

    /// Bytes of live page payloads.
    pub fn live_bytes(&self) -> u64 {
        self.mapping.live_bytes()
    }

    /// Number of free segments.
    pub fn free_segments(&self) -> usize {
        self.segments.free_count()
    }

    /// Current fill factor: live payload bytes over total device payload capacity.
    pub fn fill_factor(&self) -> f64 {
        let capacity = self.config.num_segments as f64
            * layout::payload_capacity(self.config.segment_bytes, self.config.page_bytes) as f64;
        if capacity == 0.0 { 0.0 } else { self.mapping.live_bytes() as f64 / capacity }
    }

    /// Serialize a checkpoint of the current state (page table, segment metadata and
    /// counters). Only meaningful after [`LogStore::flush`]; see [`crate::checkpoint`].
    pub fn checkpoint_json(&self) -> Result<String> {
        crate::checkpoint::to_json(self)
    }

    /// Write a checkpoint to a file. Call [`LogStore::flush`] first.
    pub fn checkpoint_to<P: AsRef<std::path::Path>>(&self, path: P) -> Result<()> {
        let json = self.checkpoint_json()?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Consume the store and hand back its device (e.g. to reopen it with
    /// [`LogStore::recover_with_device`] in tests that simulate a restart).
    ///
    /// Unsealed data is discarded exactly as a crash would discard it; call
    /// [`LogStore::flush`] first if that matters.
    pub fn into_device(self) -> Box<dyn SegmentDevice> {
        self.device
    }

    // ------------------------------------------------------------------
    // Crate-internal accessors used by checkpoint/recovery
    // ------------------------------------------------------------------

    pub(crate) fn mapping(&self) -> &PageTable {
        &self.mapping
    }

    pub(crate) fn segment_table(&self) -> &SegmentTable {
        &self.segments
    }

    pub(crate) fn counters(&self) -> (UpdateTick, WriteSeq) {
        (self.unow, self.next_write_seq)
    }

    pub(crate) fn install_recovered_state(
        &mut self,
        mapping: PageTable,
        segments: SegmentTable,
        unow: UpdateTick,
        next_write_seq: WriteSeq,
    ) {
        self.mapping = mapping;
        self.segments = segments;
        self.unow = unow;
        self.next_write_seq = next_write_seq;
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    fn sort_buffer_capacity_bytes(&self) -> usize {
        self.config.sort_buffer_segments
            * layout::payload_capacity(self.config.segment_bytes, self.config.page_bytes)
    }

    fn maybe_drain_user_buffer(&mut self) -> Result<()> {
        if self.config.sort_buffer_segments == 0
            || self.user_buffer.payload_bytes() >= self.sort_buffer_capacity_bytes()
            || self.user_buffer.len() >= self.config.sort_buffer_segments.max(1) * 4096
        {
            self.drain_user_buffer()?;
        }
        Ok(())
    }

    /// Assign carried `up2` values to a drained batch (paper §5.2.2) and hand every page
    /// to an open segment, sorted by the policy's separation key if configured.
    fn drain_user_buffer(&mut self) -> Result<()> {
        if self.user_buffer.is_empty() {
            return Ok(());
        }
        let mut batch = self.user_buffer.drain();

        // First pass: pages with history inherit from their previous segment.
        let mut coldest: Option<UpdateTick> = None;
        let mut has_history = vec![false; batch.len()];
        for (i, p) in batch.iter_mut().enumerate() {
            if let Some(loc) = self.mapping.get(p.info.page) {
                let old_up2 =
                    self.segments.meta(loc.segment).map(|m| m.freq.up2()).unwrap_or_default();
                p.info.up2 = carry_forward_rewrite(old_up2, self.unow);
                has_history[i] = true;
                coldest = Some(match coldest {
                    Some(c) => c.min(p.info.up2),
                    None => p.info.up2,
                });
            }
        }
        // Second pass: first writes get the coldest estimate seen in the batch.
        let cold = first_write_up2(coldest);
        for (i, p) in batch.iter_mut().enumerate() {
            if !has_history[i] {
                p.info.up2 = cold;
            }
        }

        if self.config.separation.separate_user_writes {
            let policy = &self.policy;
            sort_by_separation_key(&mut batch, |info| policy.separation_key(info));
        }
        for p in batch {
            self.append_page(p)?;
        }
        Ok(())
    }

    /// Append one pending page (user or GC) to the appropriate open segment, updating the
    /// page table and invalidating the previous version.
    fn append_page(&mut self, p: PendingPage) -> Result<()> {
        let origin = p.info.origin;
        let log = if self.policy.num_logs() > 1 {
            let ctx = PolicyContext { unow: self.unow, segments: &[] };
            self.policy.log_for_page(&p.info, &ctx)
        } else {
            0
        };
        let key = OpenKey { origin, log };

        if p.is_tombstone() {
            return self.append_tombstone(key, p.info.page);
        }

        let data = p
            .data
            .expect("non-tombstone pending page must carry a payload in the real store");
        self.ensure_open(key, data.len())?;
        let seq = self.next_write_seq;
        self.next_write_seq += 1;

        let open = self.open.get_mut(&key).expect("ensure_open just installed this key");
        let offset = open.builder.push_page(p.info.page, seq, &data);
        open.up2_avg.add(p.info.up2);
        let seg_id = open.id;
        let loc = PageLocation { segment: seg_id, offset, len: data.len() as u32 };

        if let Some(meta) = self.segments.meta_mut(seg_id) {
            meta.on_page_added(data.len() as u32, p.info.exact_freq);
        }
        let old = self.mapping.insert(p.info.page, loc);
        // GC relocations always move a page out of a victim segment that has already been
        // released, so only user overwrites need to mark the previous copy dead (doing it
        // for GC moves could hit a re-allocated slot and corrupt its accounting).
        if origin == WriteOrigin::User {
            if let Some(old) = old {
                self.invalidate(old, p.info.exact_freq);
            }
        }
        Ok(())
    }

    fn append_tombstone(&mut self, key: OpenKey, page: PageId) -> Result<()> {
        let Some(old) = self.mapping.remove(page) else {
            // The page does not exist on the device; nothing to delete or record.
            return Ok(());
        };
        self.invalidate(old, None);
        self.ensure_open(key, 0)?;
        let seq = self.next_write_seq;
        self.next_write_seq += 1;
        let open = self.open.get_mut(&key).expect("ensure_open just installed this key");
        open.builder.push_tombstone(page, seq);
        Ok(())
    }

    /// Make sure an open segment with room for a payload of `len` bytes exists for the
    /// given (origin, log) stream, sealing the current one and allocating a fresh segment
    /// if necessary.
    fn ensure_open(&mut self, key: OpenKey, len: usize) -> Result<()> {
        if let Some(open) = self.open.get(&key) {
            if open.builder.fits(len) {
                return Ok(());
            }
        }
        if let Some(full) = self.open.remove(&key) {
            self.seal_open(full)?;
        }
        let id = self.allocate_segment(key.origin, key.log)?;
        self.open.insert(
            key,
            OpenSegment {
                id,
                builder: SegmentBuilder::new(self.config.segment_bytes),
                up2_avg: Up2Average::new(),
                log: key.log,
            },
        );
        Ok(())
    }

    /// Seal an open segment: finalise its image, write it to the device and transition
    /// its metadata to `Sealed`. Empty builders just release the segment.
    fn seal_open(&mut self, open: OpenSegment) -> Result<()> {
        if open.builder.is_empty() {
            self.segments.release(open.id);
            return Ok(());
        }
        let carried_up2 = open.up2_avg.mean_or(self.unow);
        let seal_seq =
            self.segments.seal(open.id, self.unow, carried_up2, self.config.up2_mode);
        let (image, _entries) =
            open.builder.finish_with_log(seal_seq, self.unow, carried_up2, open.log);
        self.device.write_segment(open.id, &image)?;
        self.stats.segments_sealed += 1;
        Ok(())
    }

    /// Account for the death of a page's previous version.
    fn invalidate(&mut self, old: PageLocation, exact_freq: Option<f64>) {
        if let Some(meta) = self.segments.meta_mut(old.segment) {
            meta.on_page_dead(old.len, self.unow, exact_freq);
        }
    }

    /// Allocate a free segment for the given write stream, triggering cleaning when the
    /// free pool runs low.
    fn allocate_segment(&mut self, origin: WriteOrigin, log: u16) -> Result<SegmentId> {
        if origin == WriteOrigin::User && !self.cleaning_in_progress {
            if self.segments.free_count() <= self.config.cleaning.trigger_free_segments {
                self.run_cleaning_cycle()?;
            }
            if self.segments.free_count() <= self.config.cleaning.reserved_free_segments {
                return Err(Error::OutOfSpace {
                    free_segments: self.segments.free_count(),
                    needed: self.config.cleaning.reserved_free_segments + 1,
                });
            }
        }
        let capacity =
            layout::payload_capacity(self.config.segment_bytes, self.config.page_bytes) as u64;
        self.segments.allocate(capacity, log, self.config.up2_mode).ok_or(Error::OutOfSpace {
            free_segments: 0,
            needed: 1,
        })
    }

    // ------------------------------------------------------------------
    // Cleaning
    // ------------------------------------------------------------------

    fn run_cleaning_cycle(&mut self) -> Result<CleaningReport> {
        // Guard against re-entrant cleaning: GC relocations allocate segments themselves.
        if self.cleaning_in_progress {
            return Ok(CleaningReport::default());
        }
        self.cleaning_in_progress = true;
        let result = self.run_cleaning_cycle_inner();
        self.cleaning_in_progress = false;
        result
    }

    fn run_cleaning_cycle_inner(&mut self) -> Result<CleaningReport> {
        self.stats.cleaning_cycles += 1;
        let batch = self
            .policy
            .preferred_batch()
            .unwrap_or(self.config.cleaning.segments_per_cycle)
            .max(1);
        let sealed = self.segments.sealed_stats();
        let ctx = PolicyContext { unow: self.unow, segments: &sealed };
        let victims = self.policy.select_victims(&ctx, batch);
        if victims.is_empty() {
            return Ok(CleaningReport::default());
        }

        let mut report = CleaningReport::default();
        let mut gc_batch: Vec<PendingPage> = Vec::new();
        let mut emptiness_sum = 0.0;
        for &victim in &victims {
            let (emptiness, up2) = {
                let meta = self.segments.meta(victim).expect("victim must hold data");
                (meta.emptiness(), meta.freq.up2())
            };
            let image = self.device.read_segment(victim)?;
            let parsed = layout::decode_segment(victim, &image)?.ok_or_else(|| {
                Error::CorruptSegment {
                    segment: victim,
                    detail: "sealed segment has a blank image".into(),
                }
            })?;
            let live = collect_live_pages(victim, &image, &parsed, &self.mapping, up2);
            report.pages_moved += live.pages.len() as u64;
            report.bytes_moved += live.live_bytes;
            gc_batch.extend(live.pages);
            emptiness_sum += emptiness;
            self.stats.segments_cleaned += 1;
            self.stats.emptiness_sum_at_clean += emptiness;
        }
        report.mean_emptiness = emptiness_sum / victims.len() as f64;

        // Release the victims before relocating: the live payloads are held in memory in
        // `gc_batch`, and the relocation itself needs free segments to write into (a
        // cleaning batch of 64 can produce more GC output segments than the free-segment
        // trigger guarantees). The victims' device images are left untouched until their
        // slots are re-used, so scan recovery can still find the old copies if the
        // process dies before the GC output segments are written.
        for &victim in &victims {
            self.segments.release(victim);
        }

        if self.config.separation.separate_gc_writes {
            let policy = &self.policy;
            sort_by_separation_key(&mut gc_batch, |info| policy.separation_key(info));
        }
        for p in gc_batch {
            self.stats.gc_pages_written += 1;
            self.stats.gc_bytes_written += p.info.size as u64;
            self.append_page(p)?;
        }

        // Make the relocated pages durable: seal the GC output segments and sync.
        let gc_keys: Vec<OpenKey> =
            self.open.keys().copied().filter(|k| k.origin == WriteOrigin::Gc).collect();
        for key in gc_keys {
            if let Some(open) = self.open.remove(&key) {
                self.seal_open(open)?;
            }
        }
        self.device.sync()?;
        report.victims = victims;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeparationConfig;
    use crate::policy::PolicyKind;

    fn small_store(policy: PolicyKind) -> LogStore {
        LogStore::open_in_memory(StoreConfig::small_for_tests().with_policy(policy)).unwrap()
    }

    #[test]
    fn put_get_roundtrip_through_buffer_and_device() {
        let mut store = small_store(PolicyKind::Greedy);
        store.put(1, b"one").unwrap();
        store.put(2, b"two").unwrap();
        // Served from the sort buffer before any flush.
        assert_eq!(store.get(1).unwrap().unwrap().as_ref(), b"one");
        store.flush().unwrap();
        // Served from the device after the flush.
        assert_eq!(store.get(1).unwrap().unwrap().as_ref(), b"one");
        assert_eq!(store.get(2).unwrap().unwrap().as_ref(), b"two");
        assert!(store.get(3).unwrap().is_none());
    }

    #[test]
    fn overwrite_returns_latest_version() {
        let mut store = small_store(PolicyKind::Greedy);
        store.put(7, b"v1").unwrap();
        store.flush().unwrap();
        store.put(7, b"v2-longer").unwrap();
        assert_eq!(store.get(7).unwrap().unwrap().as_ref(), b"v2-longer");
        store.flush().unwrap();
        assert_eq!(store.get(7).unwrap().unwrap().as_ref(), b"v2-longer");
        assert_eq!(store.live_pages(), 1);
    }

    #[test]
    fn delete_removes_page() {
        let mut store = small_store(PolicyKind::Greedy);
        store.put(5, b"hello").unwrap();
        store.flush().unwrap();
        assert!(store.contains(5));
        store.delete(5).unwrap();
        assert!(!store.contains(5));
        assert!(store.get(5).unwrap().is_none());
        store.flush().unwrap();
        assert!(store.get(5).unwrap().is_none());
        assert_eq!(store.live_pages(), 0);
    }

    #[test]
    fn delete_of_missing_page_is_a_noop() {
        let mut store = small_store(PolicyKind::Greedy);
        store.delete(99).unwrap();
        store.flush().unwrap();
        assert!(store.get(99).unwrap().is_none());
    }

    #[test]
    fn oversized_page_is_rejected() {
        let mut store = small_store(PolicyKind::Greedy);
        let huge = vec![1u8; store.config().segment_bytes];
        let err = store.put(1, &huge).unwrap_err();
        assert!(matches!(err, Error::PageTooLarge { .. }));
    }

    #[test]
    fn stats_count_user_writes_and_reads() {
        let mut store = small_store(PolicyKind::Greedy);
        for i in 0..10u64 {
            store.put(i, b"abcdefgh").unwrap();
        }
        store.flush().unwrap();
        for i in 0..10u64 {
            assert!(store.get(i).unwrap().is_some());
        }
        let s = store.stats();
        assert_eq!(s.user_pages_written, 10);
        assert_eq!(s.user_bytes_written, 80);
        assert_eq!(s.pages_read, 10);
        assert!(s.segments_sealed >= 1);
    }

    #[test]
    fn cleaning_reclaims_space_under_overwrites() {
        // Overwrite a small working set far more than the device could hold without
        // cleaning; the store must keep functioning and its write amplification must stay
        // sane.
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
        let pages = config.logical_pages_for_fill_factor(0.6) as u64;
        let mut store = LogStore::open_with_device(
            config.clone(),
            Box::new(MemDevice::new(config.segment_bytes, config.num_segments)),
        )
        .unwrap();
        let payload = vec![7u8; config.page_bytes];
        // Pre-fill, then overwrite in a scrambled order so victims are checkerboards
        // (sequential overwrites would let greedy find fully-empty segments and never
        // move a page).
        for i in 0..pages {
            store.put(i, &payload).unwrap();
        }
        let total_writes = (config.physical_pages() * 5) as u64;
        for i in 0..total_writes {
            store.put(crate::util::mix64(i) % pages, &payload).unwrap();
        }
        store.flush().unwrap();
        let s = store.stats().clone();
        assert!(s.cleaning_cycles > 0, "cleaning never ran");
        assert!(s.gc_pages_written > 0);
        assert_eq!(store.live_pages() as u64, pages);
        // Every page must still be readable and current.
        for i in 0..pages {
            assert!(store.get(i).unwrap().is_some(), "page {i} lost after cleaning");
        }
        // With F=0.6 the analysis bounds W_amp well below 2 for greedy under uniform.
        assert!(
            s.write_amplification() < 3.0,
            "write amplification {} unexpectedly high",
            s.write_amplification()
        );
    }

    #[test]
    fn cleaning_works_with_every_policy() {
        for kind in PolicyKind::ALL {
            let config = StoreConfig::small_for_tests().with_policy(kind);
            let pages = config.logical_pages_for_fill_factor(0.5) as u64;
            let mut store = LogStore::open_in_memory(config.clone()).unwrap();
            let payload = vec![1u8; config.page_bytes];
            for i in 0..(config.physical_pages() as u64 * 4) {
                store.put(i % pages, &payload).unwrap();
            }
            store.flush().unwrap();
            assert_eq!(store.live_pages() as u64, pages, "policy {kind} lost pages");
            for i in 0..pages {
                assert!(store.get(i).unwrap().is_some(), "policy {kind} lost page {i}");
            }
        }
    }

    #[test]
    fn out_of_space_is_reported_not_hung() {
        // Fill factor ~1.0: more logical data than the device can hold with slack.
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
        let mut store = LogStore::open_in_memory(config.clone()).unwrap();
        let payload = vec![0u8; config.page_bytes];
        let mut result = Ok(());
        for i in 0..(config.physical_pages() as u64 * 2) {
            result = store.put(i, &payload); // never overwrites: pure growth
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(Error::OutOfSpace { .. })));
    }

    #[test]
    fn manual_clean_now_runs_a_cycle() {
        let mut store = small_store(PolicyKind::Greedy);
        let payload = vec![3u8; store.config().page_bytes];
        for i in 0..64u64 {
            store.put(i % 16, &payload).unwrap();
        }
        store.flush().unwrap();
        let report = store.clean_now().unwrap();
        // Overwrites above guarantee some segments have reclaimable space.
        assert!(!report.victims.is_empty());
        for i in 0..16u64 {
            assert!(store.get(i).unwrap().is_some());
        }
    }

    #[test]
    fn absorption_in_buffer_reduces_segment_writes() {
        let mut config = StoreConfig::small_for_tests();
        config.absorb_updates_in_buffer = true;
        config.sort_buffer_segments = 4;
        let mut absorbing = LogStore::open_in_memory(config.clone()).unwrap();
        for _ in 0..100 {
            absorbing.put(1, b"same-page").unwrap();
        }
        absorbing.flush().unwrap();
        assert!(absorbing.stats().absorbed_in_buffer > 0);
        assert_eq!(absorbing.live_pages(), 1);
    }

    #[test]
    fn separation_config_none_still_preserves_data() {
        let config = StoreConfig::small_for_tests()
            .with_policy(PolicyKind::Mdc)
            .with_separation(SeparationConfig::none());
        let pages = config.logical_pages_for_fill_factor(0.5) as u64;
        let mut store = LogStore::open_in_memory(config.clone()).unwrap();
        let payload = vec![9u8; config.page_bytes];
        for i in 0..(config.physical_pages() as u64 * 3) {
            store.put(i % pages, &payload).unwrap();
        }
        store.flush().unwrap();
        for i in 0..pages {
            assert!(store.get(i).unwrap().is_some());
        }
    }

    #[test]
    fn fill_factor_reflects_live_data() {
        let mut store = small_store(PolicyKind::Greedy);
        assert_eq!(store.fill_factor(), 0.0);
        let payload = vec![1u8; store.config().page_bytes];
        let quarter = store.config().logical_pages_for_fill_factor(0.25) as u64;
        for i in 0..quarter {
            store.put(i, &payload).unwrap();
        }
        store.flush().unwrap();
        let f = store.fill_factor();
        assert!((f - 0.25).abs() < 0.05, "fill factor {f} not near 0.25");
    }

    #[test]
    fn variable_size_payloads_are_supported() {
        let mut store = small_store(PolicyKind::Mdc);
        for i in 0..200u64 {
            let size = 1 + (i as usize * 7) % 200;
            store.put(i, &vec![i as u8; size]).unwrap();
        }
        store.flush().unwrap();
        for i in 0..200u64 {
            let size = 1 + (i as usize * 7) % 200;
            let v = store.get(i).unwrap().unwrap();
            assert_eq!(v.len(), size);
            assert!(v.iter().all(|&b| b == i as u8));
        }
    }
}
