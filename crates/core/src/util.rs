//! Small utilities: a fast integer hasher for page-id maps and a CRC-32 implementation
//! used to checksum on-device segment images.
//!
//! Both are implemented locally rather than pulled in as dependencies: the hasher is a
//! dozen lines (the FxHash mixing function used by rustc), and CRC-32C keeps the on-device
//! format free of external-crate version coupling.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-cryptographic hasher suitable for integer keys (page ids, segment ids).
///
/// HashDoS resistance is irrelevant here — keys are internal identifiers, not attacker
/// controlled strings — so the default SipHash would only cost throughput on the hottest
/// map in the store (the page table).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// CRC-32C (Castagnoli) over a byte slice, used to checksum segment headers and entry
/// tables on the device.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(!0u32, data) ^ !0u32
}

fn crc32c_append(mut crc: u32, data: &[u8]) -> u32 {
    // Table-driven byte-at-a-time CRC-32C. The table is built once lazily.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let poly: u32 = 0x82F6_3B78; // reflected CRC-32C polynomial
        for (i, entry) in t.iter_mut().enumerate() {
            let mut v = i as u32;
            for _ in 0..8 {
                v = if v & 1 != 0 { (v >> 1) ^ poly } else { v >> 1 };
            }
            *entry = v;
        }
        t
    });
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Deterministic 64-bit mix, used where a cheap pseudo-random permutation of an id is
/// needed (e.g. scrambling hash-partitioned identifiers in tests).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        let bh = BuildHasherDefault::<FxHasher>::default();
        let h1 = bh.hash_one(42u64);
        let h2 = bh.hash_one(42u64);
        let h3 = bh.hash_one(43u64);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn fx_hash_map_basic_usage() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn crc32c_known_vector() {
        // RFC 3720 test vector: CRC-32C of "123456789" is 0xE3069283.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        // Empty input.
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc32c_detects_corruption() {
        let a = crc32c(b"hello world");
        let b = crc32c(b"hello worle");
        assert_ne!(a, b);
    }

    #[test]
    fn mix64_is_a_bijection_on_samples() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn fx_hasher_handles_unaligned_writes() {
        let mut h = FxHasher::default();
        h.write(b"abcdefghijk"); // 11 bytes: one full chunk + remainder
        let v1 = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefghijl");
        assert_ne!(v1, h2.finish());
    }
}
