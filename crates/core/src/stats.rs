//! Write-amplification and cleaning statistics.
//!
//! Write amplification is the paper's evaluation metric (§6.1.2): the number of cleaning
//! (GC) page writes per user page write, `W_amp = (1 − E)/E` in the steady-state analysis
//! of §2.1. A `W_amp` of 0 means all I/O bandwidth serves user writes; a `W_amp` of 1
//! means half of it is spent on cleaning.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::LogStore`] (or the simulator) during operation.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Pages written by the user (`put` and `delete` operations).
    pub user_pages_written: u64,
    /// Bytes of user payload written.
    pub user_bytes_written: u64,
    /// Pages relocated by the cleaner.
    pub gc_pages_written: u64,
    /// Bytes relocated by the cleaner.
    pub gc_bytes_written: u64,
    /// Segments sealed and written to the device.
    pub segments_sealed: u64,
    /// Segments read back by the cleaner.
    pub segments_cleaned: u64,
    /// Cleaning cycles executed.
    pub cleaning_cycles: u64,
    /// Sum of the emptiness `E` of victims at the moment they were cleaned; divide by
    /// [`segments_cleaned`](StoreStats::segments_cleaned) for the mean the paper's
    /// Table 1 reports.
    pub emptiness_sum_at_clean: f64,
    /// Page reads served (from buffers, open segments or the device).
    pub pages_read: u64,
    /// Page reads that had to touch the device.
    pub device_page_reads: u64,
    /// User writes absorbed while still sitting in the sort buffer (never reached a
    /// segment). Zero when buffer absorption is disabled.
    pub absorbed_in_buffer: u64,
}

impl StoreStats {
    /// Write amplification in pages: GC page writes per user page write.
    pub fn write_amplification(&self) -> f64 {
        if self.user_pages_written == 0 {
            0.0
        } else {
            self.gc_pages_written as f64 / self.user_pages_written as f64
        }
    }

    /// Write amplification in bytes (differs from the page-based value when payload
    /// sizes vary).
    pub fn byte_write_amplification(&self) -> f64 {
        if self.user_bytes_written == 0 {
            0.0
        } else {
            self.gc_bytes_written as f64 / self.user_bytes_written as f64
        }
    }

    /// Mean segment emptiness observed at cleaning time (the paper's `E`).
    pub fn mean_emptiness_at_clean(&self) -> f64 {
        if self.segments_cleaned == 0 {
            0.0
        } else {
            self.emptiness_sum_at_clean / self.segments_cleaned as f64
        }
    }

    /// The cost-per-segment figure of paper Equation 1, `2 / E`, computed from the
    /// observed mean emptiness. Returns infinity if nothing has been cleaned.
    pub fn observed_cost_per_segment(&self) -> f64 {
        let e = self.mean_emptiness_at_clean();
        if e <= 0.0 { f64::INFINITY } else { 2.0 / e }
    }

    /// Merge another set of counters into this one (used when aggregating shards or
    /// repeated runs).
    pub fn merge(&mut self, other: &StoreStats) {
        self.user_pages_written += other.user_pages_written;
        self.user_bytes_written += other.user_bytes_written;
        self.gc_pages_written += other.gc_pages_written;
        self.gc_bytes_written += other.gc_bytes_written;
        self.segments_sealed += other.segments_sealed;
        self.segments_cleaned += other.segments_cleaned;
        self.cleaning_cycles += other.cleaning_cycles;
        self.emptiness_sum_at_clean += other.emptiness_sum_at_clean;
        self.pages_read += other.pages_read;
        self.device_page_reads += other.device_page_reads;
        self.absorbed_in_buffer += other.absorbed_in_buffer;
    }

    /// Reset all counters to zero (used after a load phase so the measurement phase
    /// starts clean, as the paper does by writing 100× the store size).
    pub fn reset(&mut self) {
        *self = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_basic() {
        let mut s = StoreStats::default();
        assert_eq!(s.write_amplification(), 0.0);
        s.user_pages_written = 100;
        s.gc_pages_written = 50;
        assert!((s.write_amplification() - 0.5).abs() < 1e-12);

        s.user_bytes_written = 1000;
        s.gc_bytes_written = 250;
        assert!((s.byte_write_amplification() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn emptiness_and_cost() {
        let mut s = StoreStats::default();
        assert_eq!(s.mean_emptiness_at_clean(), 0.0);
        assert!(s.observed_cost_per_segment().is_infinite());
        s.segments_cleaned = 4;
        s.emptiness_sum_at_clean = 2.0; // mean 0.5
        assert!((s.mean_emptiness_at_clean() - 0.5).abs() < 1e-12);
        assert!((s.observed_cost_per_segment() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = StoreStats { user_pages_written: 1, gc_pages_written: 2, ..Default::default() };
        let b = StoreStats {
            user_pages_written: 10,
            gc_pages_written: 20,
            cleaning_cycles: 3,
            emptiness_sum_at_clean: 1.5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.user_pages_written, 11);
        assert_eq!(a.gc_pages_written, 22);
        assert_eq!(a.cleaning_cycles, 3);
        assert!((a.emptiness_sum_at_clean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = StoreStats { user_pages_written: 5, ..Default::default() };
        s.reset();
        assert_eq!(s, StoreStats::default());
    }

    #[test]
    fn stats_serialize_roundtrip() {
        let s = StoreStats { user_pages_written: 7, emptiness_sum_at_clean: 0.25, ..Default::default() };
        let json = serde_json::to_string(&s).unwrap();
        let back: StoreStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
