//! Write-amplification and cleaning statistics.
//!
//! Write amplification is the paper's evaluation metric (§6.1.2): the number of cleaning
//! (GC) page writes per user page write, `W_amp = (1 − E)/E` in the steady-state analysis
//! of §2.1. A `W_amp` of 0 means all I/O bandwidth serves user writes; a `W_amp` of 1
//! means half of it is spent on cleaning.

use crate::freq::MAX_TEMPERATURE_CLASSES;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of equal-width bins in [`StoreStats::emptiness_histogram`] (bin `i` covers
/// emptiness `[i/10, (i+1)/10)`, with the last bin closed at 1.0).
pub const EMPTINESS_HISTOGRAM_BINS: usize = 10;

/// Counters accumulated by a [`crate::LogStore`] (or the simulator) during operation.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Pages written by the user (`put` and `delete` operations).
    pub user_pages_written: u64,
    /// Bytes of user payload written.
    pub user_bytes_written: u64,
    /// Pages relocated by the cleaner.
    pub gc_pages_written: u64,
    /// Bytes relocated by the cleaner.
    pub gc_bytes_written: u64,
    /// Segments sealed and written to the device.
    pub segments_sealed: u64,
    /// Segments read back by the cleaner.
    pub segments_cleaned: u64,
    /// Cleaning cycles executed.
    pub cleaning_cycles: u64,
    /// Sum of the emptiness `E` of victims at the moment they were cleaned; divide by
    /// [`segments_cleaned`](StoreStats::segments_cleaned) for the mean the paper's
    /// Table 1 reports.
    pub emptiness_sum_at_clean: f64,
    /// Page reads served (from buffers, open segments or the device).
    pub pages_read: u64,
    /// Page reads that had to touch the device.
    pub device_page_reads: u64,
    /// User writes absorbed while still sitting in the sort buffer (never reached a
    /// segment). Zero when buffer absorption is disabled.
    pub absorbed_in_buffer: u64,
    /// Live fragmentation picture at snapshot time: sealed segments bucketed by their
    /// emptiness `E` into [`EMPTINESS_HISTOGRAM_BINS`] equal-width bins over `[0, 1]`.
    /// Unlike the counters above this is a *gauge*, sampled from the segment table by
    /// [`crate::LogStore::stats`] (the simulator and plain [`Default`] leave it empty).
    /// The bins sum to [`StoreStats::sealed_segments`].
    pub emptiness_histogram: Vec<u64>,
    /// Sealed segments on the device at snapshot time (gauge; see
    /// [`StoreStats::emptiness_histogram`]).
    pub sealed_segments: u64,
    /// Total live payload bytes accounted to sealed segments at snapshot time (gauge).
    /// After a `flush` — when no data sits in buffers or open segments — this equals
    /// the page table's total live bytes, which tests use as a ledger cross-check.
    pub sealed_live_bytes: u64,
    /// Times a writer hit the hard reserve floor and lent its own thread to a
    /// synchronous cleaning cycle (the strongest allocation-pressure signal the
    /// adaptive controller consumes).
    pub writer_stall_events: u64,
    /// Times the last-resort straggler reclaim ran (a writer quiesced the cycle gate
    /// and forced a quarantine sweep before it would declare out-of-space).
    pub straggler_reclaims: u64,
    /// Adaptive-controller ticks evaluated (0 in [`crate::config::CleanerMode::Fixed`]).
    pub gc_controller_decisions: u64,
    /// Controller decisions that raised the concurrent-cycle target.
    pub gc_scale_ups: u64,
    /// Controller decisions that lowered the concurrent-cycle target.
    pub gc_scale_downs: u64,
    /// Current concurrent-cycle target (gauge): the number of cleaning cycles the store
    /// will run at once right now. Constant `cleaner_threads` in fixed mode; moves
    /// between the adaptive bounds otherwise.
    pub gc_target_cycles: u64,
    /// Victims currently claimed by in-flight cleaning cycles (gauge).
    pub claimed_victims: u64,
    /// Victims currently parked in the reclamation quarantine (gauge).
    pub quarantined_segments: u64,
    /// Pages relocated by the cleaner into each temperature-classed GC output stream
    /// (index = class, 0 = coldest). Trailing all-zero classes are trimmed, so a store
    /// running with `gc_temperature_classes = 1` reports at most one entry. The entries
    /// sum to [`StoreStats::gc_pages_written`].
    pub gc_class_pages_written: Vec<u64>,
    /// Bytes relocated per temperature class (same indexing as
    /// [`StoreStats::gc_class_pages_written`]; sums to
    /// [`StoreStats::gc_bytes_written`]).
    pub gc_class_bytes_written: Vec<u64>,
    /// Survivors routed to a *hotter* class than the victim segment's temperature tag —
    /// each one is a misprediction by the earlier classification (the page turned out
    /// hotter than the segment it was parked in). Only counted for victims that carried
    /// a classified temperature.
    pub gc_class_promotions: u64,
    /// Survivors routed to a *colder* class than the victim segment's tag (the page
    /// cooled down since it was last classified).
    pub gc_class_demotions: u64,
    /// Sealed segments per temperature tag at snapshot time (gauge, like
    /// [`StoreStats::emptiness_histogram`]): index = class for classified segments, plus
    /// one final bucket for unclassified (user-filled / recovered) segments.
    pub gc_class_segments: Vec<u64>,
    /// Victim tombstones re-emitted into a GC output stream during cleaning, keeping the
    /// delete fact durable across segment-slot reuse (see `store::gc_driver`).
    pub tombstones_retained: u64,
    /// Victim tombstones dropped during cleaning because the page had been recreated
    /// (a newer live copy supersedes the delete).
    pub tombstones_dropped: u64,
    /// Page-table shards written out by incremental checkpoints (dirty since the
    /// previous checkpoint).
    pub checkpoint_shards_written: u64,
    /// Page-table shards skipped by incremental checkpoints (clean since the previous
    /// checkpoint, so the prior journal entry still describes them).
    pub checkpoint_shards_skipped: u64,
    /// Segments fully decoded and replayed by the last checkpoint-anchored recovery
    /// (those sealed after the checkpoint frontier). Zero for full-scan recovery and
    /// for stores that never recovered.
    pub recovery_segments_replayed: u64,
}

impl StoreStats {
    /// Write amplification in pages: GC page writes per user page write.
    pub fn write_amplification(&self) -> f64 {
        if self.user_pages_written == 0 {
            0.0
        } else {
            self.gc_pages_written as f64 / self.user_pages_written as f64
        }
    }

    /// Write amplification in bytes (differs from the page-based value when payload
    /// sizes vary).
    pub fn byte_write_amplification(&self) -> f64 {
        if self.user_bytes_written == 0 {
            0.0
        } else {
            self.gc_bytes_written as f64 / self.user_bytes_written as f64
        }
    }

    /// Mean segment emptiness observed at cleaning time (the paper's `E`).
    pub fn mean_emptiness_at_clean(&self) -> f64 {
        if self.segments_cleaned == 0 {
            0.0
        } else {
            self.emptiness_sum_at_clean / self.segments_cleaned as f64
        }
    }

    /// The cost-per-segment figure of paper Equation 1, `2 / E`, computed from the
    /// observed mean emptiness. Returns infinity if nothing has been cleaned.
    pub fn observed_cost_per_segment(&self) -> f64 {
        let e = self.mean_emptiness_at_clean();
        if e <= 0.0 {
            f64::INFINITY
        } else {
            2.0 / e
        }
    }

    /// Merge another set of counters into this one (used when aggregating shards or
    /// repeated runs).
    pub fn merge(&mut self, other: &StoreStats) {
        self.user_pages_written += other.user_pages_written;
        self.user_bytes_written += other.user_bytes_written;
        self.gc_pages_written += other.gc_pages_written;
        self.gc_bytes_written += other.gc_bytes_written;
        self.segments_sealed += other.segments_sealed;
        self.segments_cleaned += other.segments_cleaned;
        self.cleaning_cycles += other.cleaning_cycles;
        self.emptiness_sum_at_clean += other.emptiness_sum_at_clean;
        self.pages_read += other.pages_read;
        self.device_page_reads += other.device_page_reads;
        self.absorbed_in_buffer += other.absorbed_in_buffer;
        if self.emptiness_histogram.len() < other.emptiness_histogram.len() {
            self.emptiness_histogram
                .resize(other.emptiness_histogram.len(), 0);
        }
        for (bin, n) in other.emptiness_histogram.iter().enumerate() {
            self.emptiness_histogram[bin] += n;
        }
        self.sealed_segments += other.sealed_segments;
        self.sealed_live_bytes += other.sealed_live_bytes;
        self.writer_stall_events += other.writer_stall_events;
        self.straggler_reclaims += other.straggler_reclaims;
        self.gc_controller_decisions += other.gc_controller_decisions;
        self.gc_scale_ups += other.gc_scale_ups;
        self.gc_scale_downs += other.gc_scale_downs;
        // Gauges describe one store at one instant; when aggregating, keep the widest
        // target and sum the in-flight victim counts like the other gauges above.
        self.gc_target_cycles = self.gc_target_cycles.max(other.gc_target_cycles);
        self.claimed_victims += other.claimed_victims;
        self.quarantined_segments += other.quarantined_segments;
        merge_class_vec(
            &mut self.gc_class_pages_written,
            &other.gc_class_pages_written,
        );
        merge_class_vec(
            &mut self.gc_class_bytes_written,
            &other.gc_class_bytes_written,
        );
        self.gc_class_promotions += other.gc_class_promotions;
        self.gc_class_demotions += other.gc_class_demotions;
        merge_class_vec(&mut self.gc_class_segments, &other.gc_class_segments);
        self.tombstones_retained += other.tombstones_retained;
        self.tombstones_dropped += other.tombstones_dropped;
        self.checkpoint_shards_written += other.checkpoint_shards_written;
        self.checkpoint_shards_skipped += other.checkpoint_shards_skipped;
        self.recovery_segments_replayed += other.recovery_segments_replayed;
    }

    /// Reset all counters to zero (used after a load phase so the measurement phase
    /// starts clean, as the paper does by writing 100× the store size).
    pub fn reset(&mut self) {
        *self = StoreStats::default();
    }
}

/// Element-wise add of two per-class vectors of possibly different lengths.
fn merge_class_vec(into: &mut Vec<u64>, other: &[u64]) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (bin, n) in other.iter().enumerate() {
        into[bin] += n;
    }
}

/// Drop trailing all-zero entries so untouched classes don't widen reports (and a
/// freshly reset snapshot compares equal to [`StoreStats::default`]).
fn trim_trailing_zeros(mut v: Vec<u64>) -> Vec<u64> {
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

/// Lock-free counter set used internally by the concurrent store.
///
/// Every counter of [`StoreStats`] as a relaxed atomic, so the read path can bump
/// `pages_read` without touching any lock and writers/cleaner can account concurrently.
/// [`AtomicStats::snapshot`] materialises a plain [`StoreStats`] for reporting. The one
/// non-integer counter (`emptiness_sum_at_clean`) is stored as `f64` bits and updated
/// with a CAS loop — it is only touched once per cleaned victim, so contention is nil.
#[derive(Debug, Default)]
pub struct AtomicStats {
    /// See [`StoreStats::user_pages_written`].
    pub user_pages_written: AtomicU64,
    /// See [`StoreStats::user_bytes_written`].
    pub user_bytes_written: AtomicU64,
    /// See [`StoreStats::gc_pages_written`].
    pub gc_pages_written: AtomicU64,
    /// See [`StoreStats::gc_bytes_written`].
    pub gc_bytes_written: AtomicU64,
    /// See [`StoreStats::segments_sealed`].
    pub segments_sealed: AtomicU64,
    /// See [`StoreStats::segments_cleaned`].
    pub segments_cleaned: AtomicU64,
    /// See [`StoreStats::cleaning_cycles`].
    pub cleaning_cycles: AtomicU64,
    /// See [`StoreStats::emptiness_sum_at_clean`] (stored as `f64::to_bits`).
    emptiness_sum_bits: AtomicU64,
    /// See [`StoreStats::pages_read`].
    pub pages_read: AtomicU64,
    /// See [`StoreStats::device_page_reads`].
    pub device_page_reads: AtomicU64,
    /// See [`StoreStats::absorbed_in_buffer`].
    pub absorbed_in_buffer: AtomicU64,
    /// See [`StoreStats::writer_stall_events`].
    pub writer_stall_events: AtomicU64,
    /// See [`StoreStats::straggler_reclaims`].
    pub straggler_reclaims: AtomicU64,
    /// See [`StoreStats::gc_controller_decisions`].
    pub gc_controller_decisions: AtomicU64,
    /// See [`StoreStats::gc_scale_ups`].
    pub gc_scale_ups: AtomicU64,
    /// See [`StoreStats::gc_scale_downs`].
    pub gc_scale_downs: AtomicU64,
    /// See [`StoreStats::gc_class_pages_written`] (fixed-width; classes beyond the
    /// configured count simply stay zero and are trimmed at snapshot time).
    pub gc_class_pages_written: [AtomicU64; MAX_TEMPERATURE_CLASSES],
    /// See [`StoreStats::gc_class_bytes_written`].
    pub gc_class_bytes_written: [AtomicU64; MAX_TEMPERATURE_CLASSES],
    /// See [`StoreStats::gc_class_promotions`].
    pub gc_class_promotions: AtomicU64,
    /// See [`StoreStats::gc_class_demotions`].
    pub gc_class_demotions: AtomicU64,
    /// See [`StoreStats::tombstones_retained`].
    pub tombstones_retained: AtomicU64,
    /// See [`StoreStats::tombstones_dropped`].
    pub tombstones_dropped: AtomicU64,
    /// See [`StoreStats::checkpoint_shards_written`].
    pub checkpoint_shards_written: AtomicU64,
    /// See [`StoreStats::checkpoint_shards_skipped`].
    pub checkpoint_shards_skipped: AtomicU64,
    /// See [`StoreStats::recovery_segments_replayed`].
    pub recovery_segments_replayed: AtomicU64,
}

impl AtomicStats {
    /// Increment a counter by one (convenience for the common case).
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Account one relocated page to its temperature class (out-of-range classes clamp
    /// into the last slot rather than being dropped, so totals always reconcile).
    #[inline]
    pub fn add_class_page(&self, class: u16, bytes: u64) {
        let slot = (class as usize).min(MAX_TEMPERATURE_CLASSES - 1);
        self.gc_class_pages_written[slot].fetch_add(1, Ordering::Relaxed);
        self.gc_class_bytes_written[slot].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Accumulate a victim's emptiness `E` at cleaning time.
    pub fn add_emptiness(&self, e: f64) {
        let mut cur = self.emptiness_sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + e).to_bits();
            match self.emptiness_sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Materialise a coherent-enough snapshot of the counters.
    ///
    /// Individual loads are relaxed; counters incremented by in-flight operations may or
    /// may not be included, exactly like sampling any monitoring counter.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            user_pages_written: self.user_pages_written.load(Ordering::Relaxed),
            user_bytes_written: self.user_bytes_written.load(Ordering::Relaxed),
            gc_pages_written: self.gc_pages_written.load(Ordering::Relaxed),
            gc_bytes_written: self.gc_bytes_written.load(Ordering::Relaxed),
            segments_sealed: self.segments_sealed.load(Ordering::Relaxed),
            segments_cleaned: self.segments_cleaned.load(Ordering::Relaxed),
            cleaning_cycles: self.cleaning_cycles.load(Ordering::Relaxed),
            emptiness_sum_at_clean: f64::from_bits(self.emptiness_sum_bits.load(Ordering::Relaxed)),
            pages_read: self.pages_read.load(Ordering::Relaxed),
            device_page_reads: self.device_page_reads.load(Ordering::Relaxed),
            absorbed_in_buffer: self.absorbed_in_buffer.load(Ordering::Relaxed),
            writer_stall_events: self.writer_stall_events.load(Ordering::Relaxed),
            straggler_reclaims: self.straggler_reclaims.load(Ordering::Relaxed),
            gc_controller_decisions: self.gc_controller_decisions.load(Ordering::Relaxed),
            gc_scale_ups: self.gc_scale_ups.load(Ordering::Relaxed),
            gc_scale_downs: self.gc_scale_downs.load(Ordering::Relaxed),
            gc_class_pages_written: trim_trailing_zeros(
                self.gc_class_pages_written
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
            ),
            gc_class_bytes_written: trim_trailing_zeros(
                self.gc_class_bytes_written
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
            ),
            gc_class_promotions: self.gc_class_promotions.load(Ordering::Relaxed),
            gc_class_demotions: self.gc_class_demotions.load(Ordering::Relaxed),
            tombstones_retained: self.tombstones_retained.load(Ordering::Relaxed),
            tombstones_dropped: self.tombstones_dropped.load(Ordering::Relaxed),
            checkpoint_shards_written: self.checkpoint_shards_written.load(Ordering::Relaxed),
            checkpoint_shards_skipped: self.checkpoint_shards_skipped.load(Ordering::Relaxed),
            recovery_segments_replayed: self.recovery_segments_replayed.load(Ordering::Relaxed),
            // Gauges sampled from the segment table / GC control, not counters: the
            // store facade fills them in (`LogStore::stats`); a bare snapshot leaves
            // them empty.
            emptiness_histogram: Vec::new(),
            sealed_segments: 0,
            sealed_live_bytes: 0,
            gc_target_cycles: 0,
            claimed_victims: 0,
            quarantined_segments: 0,
            gc_class_segments: Vec::new(),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.user_pages_written.store(0, Ordering::Relaxed);
        self.user_bytes_written.store(0, Ordering::Relaxed);
        self.gc_pages_written.store(0, Ordering::Relaxed);
        self.gc_bytes_written.store(0, Ordering::Relaxed);
        self.segments_sealed.store(0, Ordering::Relaxed);
        self.segments_cleaned.store(0, Ordering::Relaxed);
        self.cleaning_cycles.store(0, Ordering::Relaxed);
        self.emptiness_sum_bits.store(0, Ordering::Relaxed);
        self.pages_read.store(0, Ordering::Relaxed);
        self.device_page_reads.store(0, Ordering::Relaxed);
        self.absorbed_in_buffer.store(0, Ordering::Relaxed);
        self.writer_stall_events.store(0, Ordering::Relaxed);
        self.straggler_reclaims.store(0, Ordering::Relaxed);
        self.gc_controller_decisions.store(0, Ordering::Relaxed);
        self.gc_scale_ups.store(0, Ordering::Relaxed);
        self.gc_scale_downs.store(0, Ordering::Relaxed);
        for c in &self.gc_class_pages_written {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.gc_class_bytes_written {
            c.store(0, Ordering::Relaxed);
        }
        self.gc_class_promotions.store(0, Ordering::Relaxed);
        self.gc_class_demotions.store(0, Ordering::Relaxed);
        self.tombstones_retained.store(0, Ordering::Relaxed);
        self.tombstones_dropped.store(0, Ordering::Relaxed);
        self.checkpoint_shards_written.store(0, Ordering::Relaxed);
        self.checkpoint_shards_skipped.store(0, Ordering::Relaxed);
        self.recovery_segments_replayed.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_basic() {
        let mut s = StoreStats::default();
        assert_eq!(s.write_amplification(), 0.0);
        s.user_pages_written = 100;
        s.gc_pages_written = 50;
        assert!((s.write_amplification() - 0.5).abs() < 1e-12);

        s.user_bytes_written = 1000;
        s.gc_bytes_written = 250;
        assert!((s.byte_write_amplification() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn emptiness_and_cost() {
        let mut s = StoreStats::default();
        assert_eq!(s.mean_emptiness_at_clean(), 0.0);
        assert!(s.observed_cost_per_segment().is_infinite());
        s.segments_cleaned = 4;
        s.emptiness_sum_at_clean = 2.0; // mean 0.5
        assert!((s.mean_emptiness_at_clean() - 0.5).abs() < 1e-12);
        assert!((s.observed_cost_per_segment() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = StoreStats {
            user_pages_written: 1,
            gc_pages_written: 2,
            ..Default::default()
        };
        let b = StoreStats {
            user_pages_written: 10,
            gc_pages_written: 20,
            cleaning_cycles: 3,
            emptiness_sum_at_clean: 1.5,
            tombstones_retained: 4,
            tombstones_dropped: 2,
            checkpoint_shards_written: 7,
            checkpoint_shards_skipped: 57,
            recovery_segments_replayed: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.user_pages_written, 11);
        assert_eq!(a.gc_pages_written, 22);
        assert_eq!(a.cleaning_cycles, 3);
        assert!((a.emptiness_sum_at_clean - 1.5).abs() < 1e-12);
        assert_eq!(a.tombstones_retained, 4);
        assert_eq!(a.tombstones_dropped, 2);
        assert_eq!(a.checkpoint_shards_written, 7);
        assert_eq!(a.checkpoint_shards_skipped, 57);
        assert_eq!(a.recovery_segments_replayed, 9);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = StoreStats {
            user_pages_written: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, StoreStats::default());
    }

    #[test]
    fn atomic_stats_snapshot_and_reset() {
        let a = AtomicStats::default();
        AtomicStats::bump(&a.user_pages_written);
        AtomicStats::add(&a.user_bytes_written, 100);
        AtomicStats::bump(&a.segments_cleaned);
        a.add_emptiness(0.5);
        a.add_emptiness(0.25);
        let s = a.snapshot();
        assert_eq!(s.user_pages_written, 1);
        assert_eq!(s.user_bytes_written, 100);
        assert!((s.emptiness_sum_at_clean - 0.75).abs() < 1e-12);
        a.reset();
        assert_eq!(a.snapshot(), StoreStats::default());
    }

    #[test]
    fn atomic_stats_concurrent_updates_do_not_lose_counts() {
        let a = std::sync::Arc::new(AtomicStats::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    AtomicStats::bump(&a.pages_read);
                }
                for _ in 0..100 {
                    a.add_emptiness(0.125);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = a.snapshot();
        assert_eq!(s.pages_read, 80_000);
        assert!((s.emptiness_sum_at_clean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn per_class_counters_trim_and_merge() {
        let a = AtomicStats::default();
        a.add_class_page(0, 100);
        a.add_class_page(2, 300);
        a.add_class_page(99, 1); // clamps into the last slot
        AtomicStats::bump(&a.gc_class_promotions);
        let s = a.snapshot();
        assert_eq!(s.gc_class_pages_written, vec![1, 0, 1, 0, 0, 0, 0, 1]);
        assert_eq!(s.gc_class_bytes_written, vec![100, 0, 300, 0, 0, 0, 0, 1]);
        assert_eq!(s.gc_class_promotions, 1);

        // Trailing zeros are trimmed, so a cold-only run stays compact...
        let b = AtomicStats::default();
        b.add_class_page(0, 7);
        assert_eq!(b.snapshot().gc_class_pages_written, vec![1]);
        // ...and merge widens as needed.
        let mut merged = b.snapshot();
        merged.merge(&s);
        assert_eq!(merged.gc_class_pages_written, vec![2, 0, 1, 0, 0, 0, 0, 1]);

        a.reset();
        assert_eq!(a.snapshot(), StoreStats::default());
    }

    #[test]
    fn stats_serialize_roundtrip() {
        let s = StoreStats {
            user_pages_written: 7,
            emptiness_sum_at_clean: 0.25,
            ..Default::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: StoreStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
