//! # lss-core — a log-structured page store with pluggable cleaning policies
//!
//! This crate implements the system studied in *Efficiently Reclaiming Space in a Log
//! Structured Store* (Lomet & Luo, ICDE 2021): a store in which pages are never updated
//! in place but are instead batched into large **segments** that are written with a single
//! I/O. Because old page versions are left behind, segments develop a "checkerboard" of
//! live and dead pages and must be **cleaned** (garbage collected): the still-live pages of
//! a victim segment are re-written elsewhere so that the whole segment can be reused.
//!
//! The paper's contribution — and the heart of this crate — is the **MDC (Minimum
//! Declining Cost)** cleaning policy ([`policy::MdcPolicy`]), which orders segments for
//! cleaning by the expected *decline* of their per-page cleaning cost and separates pages
//! into segments by estimated update frequency.
//!
//! ## Layered design
//!
//! * [`device`] — where segments physically live ([`device::MemDevice`],
//!   [`device::FileDevice`], or your own [`device::SegmentDevice`]); internally
//!   synchronised (`&self`) so page reads bypass every store lock.
//! * [`layout`] — the self-describing on-device segment format (header, entry table,
//!   checksums) that makes full-scan crash recovery possible.
//! * [`segment`] — in-memory bookkeeping for every segment: free bytes `A`, live pages
//!   `C`, the update-recency estimate `up2` used by the MDC formula, and the quarantine
//!   that delays victim-slot reuse until relocated pages are durable and unpinned.
//! * [`mapping`] — the page table mapping a [`types::PageId`] to its current location;
//!   [`mapping::ShardedPageTable`] is the concurrent form the live store uses.
//! * [`write_buffer`] — the sort buffer that groups pages with similar update frequency
//!   into the same output segment (paper §5.3).
//! * [`policy`] — the cleaning policies evaluated in the paper: age, greedy,
//!   cost-benefit, multi-log, MDC and their "-opt" oracle variants.
//! * [`cleaner`] — pure helpers for victim-page collection plus the
//!   [`cleaner::CleaningReport`] type; the concurrent driver lives in `store::gc_driver`.
//! * [`store`] — [`LogStore`], the public facade: `put` / `get` / `delete` / `flush` /
//!   `checkpoint`, all `&self`, split into a lock-free-ish read path, a mutex-guarded
//!   write pipeline, and a cleaning driver that relocates pages concurrently with
//!   foreground traffic; crash recovery in [`recovery`].
//! * [`shared`] — [`SharedLogStore`]: cheap cloneable `Arc` handles plus the
//!   [`shared::BackgroundCleaner`] thread that takes cleaning off the write path.
//!
//! The ordered key-value layer (paged B+-tree index living in the same store) moved to
//! the `lss-btree` crate (`lss_btree::kv::KvStore`), where it can build on the tree.
//!
//! ## Quick example
//!
//! ```
//! use lss_core::{LogStore, StoreConfig};
//! use lss_core::policy::PolicyKind;
//!
//! let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
//! let store = LogStore::open_in_memory(config).unwrap();
//! for i in 0..1_000u64 {
//!     store.put(i, format!("value-{i}").as_bytes()).unwrap();
//! }
//! store.flush().unwrap();
//! assert_eq!(store.get(17).unwrap().unwrap().as_ref(), b"value-17");
//! let stats = store.stats();
//! assert_eq!(stats.user_pages_written, 1_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod cleaner;
pub mod config;
pub mod device;
pub mod error;
pub mod freq;
pub mod layout;
pub mod mapping;
pub mod policy;
pub mod recovery;
pub mod segment;
pub mod shared;
pub mod stats;
pub mod store;
pub mod types;
pub mod util;
pub mod write_buffer;

pub use config::{
    AdaptiveTargets, CheckpointConfig, CleanerMode, CleaningConfig, SeparationConfig, StoreConfig,
    Up2Mode,
};
pub use error::{Error, Result};
pub use policy::{CleaningPolicy, PolicyKind};
pub use shared::SharedLogStore;
pub use stats::StoreStats;
pub use store::{GcPhase, GcPhaseHook, LogStore};
pub use types::{PageId, SegmentId};
