//! Error type shared by every fallible operation of the crate.

use crate::types::{PageId, SegmentId};
use std::fmt;
use std::io;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the log-structured store.
#[derive(Debug)]
pub enum Error {
    /// Underlying device or file I/O failure.
    Io(io::Error),
    /// A page payload exceeds the usable capacity of a single segment.
    PageTooLarge {
        /// The offending page.
        page: PageId,
        /// Payload size in bytes.
        size: usize,
        /// Maximum payload the configuration allows.
        max: usize,
    },
    /// The store ran out of free segments and cleaning could not reclaim enough space.
    ///
    /// This happens when the logical data written exceeds what the configured
    /// over-provisioning can absorb (fill factor too close to 1.0).
    OutOfSpace {
        /// Number of free segments remaining.
        free_segments: usize,
        /// Number the operation needed.
        needed: usize,
    },
    /// A segment image on the device failed validation (bad magic, checksum, or bounds).
    CorruptSegment {
        /// The segment that failed validation.
        segment: SegmentId,
        /// Human-readable description of what went wrong.
        detail: String,
    },
    /// The checkpoint file could not be parsed.
    CorruptCheckpoint(String),
    /// A page-id partition ran out of ids: an allocator's next id reached the end of
    /// its range (e.g. the KV layer's user-value allocator hitting the reserved
    /// metadata base — allocating past it would overwrite index metadata).
    PageRangeExhausted {
        /// The id the allocator would have handed out.
        next: PageId,
        /// Exclusive upper bound of the partition.
        limit: PageId,
    },
    /// Configuration rejected at store-open time.
    InvalidConfig(String),
    /// The store was opened against a device whose geometry does not match the config.
    GeometryMismatch {
        /// What the configuration expects.
        expected: String,
        /// What the device reports.
        actual: String,
    },
    /// A batched group-commit flip failed. Every caller of the generation — the
    /// leader and all its riders — observes the *same* shared source error, so
    /// matching on the underlying variant behaves identically regardless of which
    /// role a caller happened to play.
    GroupCommitFailed(std::sync::Arc<Error>),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::PageTooLarge { page, size, max } => {
                write!(f, "page {page} is {size} bytes which exceeds the segment payload capacity of {max} bytes")
            }
            Error::OutOfSpace {
                free_segments,
                needed,
            } => write!(
                f,
                "out of space: {free_segments} free segments remain but {needed} are needed; \
                 reduce the logical data size or increase over-provisioning"
            ),
            Error::CorruptSegment { segment, detail } => {
                write!(f, "corrupt segment {segment}: {detail}")
            }
            Error::CorruptCheckpoint(detail) => write!(f, "corrupt checkpoint: {detail}"),
            Error::PageRangeExhausted { next, limit } => write!(
                f,
                "page-id partition exhausted: next id {next} has reached the partition \
                 limit {limit}; the store cannot allocate into a reserved range"
            ),
            Error::InvalidConfig(detail) => write!(f, "invalid configuration: {detail}"),
            Error::GeometryMismatch { expected, actual } => {
                write!(
                    f,
                    "device geometry mismatch: expected {expected}, found {actual}"
                )
            }
            Error::GroupCommitFailed(e) => write!(f, "group commit failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::GroupCommitFailed(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::PageTooLarge {
            page: 3,
            size: 10_000,
            max: 4096,
        };
        let msg = e.to_string();
        assert!(msg.contains("page 3"));
        assert!(msg.contains("10000"));

        let e = Error::OutOfSpace {
            free_segments: 1,
            needed: 4,
        };
        assert!(e.to_string().contains("out of space"));

        let e = Error::CorruptSegment {
            segment: SegmentId(5),
            detail: "bad magic".into(),
        };
        assert!(e.to_string().contains("seg#5"));
        assert!(e.to_string().contains("bad magic"));

        let e = Error::PageRangeExhausted {
            next: 1 << 62,
            limit: 1 << 62,
        };
        assert!(e.to_string().contains("partition exhausted"));
        assert!(e.to_string().contains("reserved range"));
    }

    #[test]
    fn io_error_converts_and_exposes_source() {
        let io = io::Error::new(io::ErrorKind::NotFound, "nope");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
