//! The lock-free-ish read path: `get`/`contains` without any write-side lock.
//!
//! A read resolves a page in three steps, touching only concurrently readable state:
//!
//! 1. **Sort buffer** — the most recent unflushed user write wins. Only the page's own
//!    stream shard is consulted (writes to a page always route to the same stream), via
//!    a shared read lock held for microseconds.
//! 2. **Open segment** — if the mapped location belongs to a segment that is still being
//!    filled, the payload is served from the shared [`SegmentBuilder`] image.
//! 3. **Device** — otherwise the payload is read from the sealed image on the device.
//!
//! [`SegmentBuilder`]: crate::layout::SegmentBuilder
//!
//! ### Why device reads are safe without a write lock
//!
//! The hazard: between looking up a page's location and reading the device, the cleaner
//! could relocate the page, release its victim segment, and the slot could be reused and
//! rewritten — the read would return bytes of an unrelated new segment. The store closes
//! this hazard with a *pin-and-revalidate* protocol backed by two write-side invariants:
//!
//! * **Remap-before-release** — the cleaner remaps every live page *before* its victim
//!   segment is released. Hence, if the mapping still points a page into segment `S`,
//!   `S` has not been released.
//! * **Quarantine respects pins** — released victims enter a quarantine and only return
//!   to the free list when their reader pin count is zero (and the cycle's device sync
//!   has landed).
//!
//! The reader pins the segment **first**, then revalidates the mapping. If the mapping
//! still points at the same location, the segment was not yet released at that moment —
//! and since the pin is already visible, it cannot be reaped (hence not reused) until
//! the reader unpins. If the mapping moved on, the reader simply retries with the page's
//! new location. A bounded number of retries falls back to locking the page's write
//! stream, which freezes user rewrites of the page and leaves only GC relocations — each
//! of which moves the page *toward* a readable location — so the loop terminates.

use super::LogStore;
use crate::error::Result;
use crate::stats::AtomicStats;
use crate::types::{PageId, PageLocation};
use bytes::Bytes;

/// How many optimistic retries before a read serialises against the page's write
/// stream. Each retry means the page was concurrently rewritten or relocated between
/// lookup and read — vanishingly rare, so the fallback is effectively never taken under
/// real workloads.
const MAX_OPTIMISTIC_RETRIES: usize = 16;

/// One attempt to serve a page from its mapped location.
enum Attempt {
    /// The payload was read (or the page does not exist).
    Done(Option<Bytes>),
    /// The page moved between lookup and read; look its location up again.
    Retry,
}

/// Resolve a page once: open-segment builder first, then pinned device read.
fn try_read_mapped(store: &LogStore, page: PageId, loc: PageLocation) -> Result<Attempt> {
    // Open segment: serve from the shared builder image, validated under the
    // open-segment index lock. Holding the index read lock freezes seal (removal)
    // and slot-reuse (insertion) transitions, so the entry seen here is the
    // *newest* incarnation of this segment id and stays that way for the duration.
    // The mapping re-check then proves the copied bytes are the page's current
    // payload: a mapping entry equal to `loc` means the page's latest append went
    // into exactly this builder at this offset (appends register their builder in
    // the index before updating the mapping). If the re-check fails the page moved
    // between our two mapping reads — retry with its new location.
    {
        let open_index = store.open_reads().read();
        if let Some(builder) = open_index.get(&loc.segment) {
            let payload = {
                let b = builder.read();
                Bytes::copy_from_slice(b.read_payload(loc.offset, loc.len))
            };
            if store.mapping().is_current(page, &loc) {
                return Ok(Attempt::Done(Some(payload)));
            }
            return Ok(Attempt::Retry);
        }
    }

    // Sealed segment: pin, revalidate, read, unpin.
    store.pin(loc.segment);
    if !store.mapping().is_current(page, &loc) {
        // Lost a race with an overwrite or a GC relocation; retry with the new
        // location.
        store.unpin(loc.segment);
        return Ok(Attempt::Retry);
    }
    if store.open_reads().read().contains_key(&loc.segment) {
        // The slot was recycled and reopened before we pinned (its on-device image
        // is stale); the retry will serve the page from the open builder instead.
        // Once pinned, no further recycle can happen, so this check is conclusive.
        store.unpin(loc.segment);
        return Ok(Attempt::Retry);
    }
    AtomicStats::bump(&store.atomic_stats().device_page_reads);
    let result = store.device().read_range(loc.segment, loc.offset, loc.len);
    store.unpin(loc.segment);
    result.map(|bytes| Attempt::Done(Some(Bytes::from(bytes))))
}

/// Read the current version of a page (see module docs for the protocol).
pub(crate) fn get(store: &LogStore, page: PageId) -> Result<Option<Bytes>> {
    AtomicStats::bump(&store.atomic_stats().pages_read);

    // 1. Still in the owning stream's sort buffer?
    {
        let buffer = store.stream(page).buffer.read();
        if let Some(pending) = buffer.get(page) {
            return Ok(if pending.is_tombstone() {
                None
            } else {
                pending.data.clone()
            });
        }
    }

    // 2./3. Mapped to an open or sealed segment.
    for _ in 0..MAX_OPTIMISTIC_RETRIES {
        let Some(loc) = store.mapping().get(page) else {
            return Ok(None);
        };
        match try_read_mapped(store, page, loc)? {
            Attempt::Done(result) => return Ok(result),
            Attempt::Retry => continue,
        }
    }

    // Pathological contention: hold the page's stream lock, which freezes user
    // rewrites of this page (they all route here). The page can then move at most
    // once more per cleaning cycle, and a GC relocation always lands the page either
    // in a registered open builder or in a sealed segment whose image precedes its
    // removal from the index — so each iteration either succeeds or observes one of
    // these strictly rarer moves, and the loop terminates.
    let _stream = store.stream(page).state.lock();
    loop {
        let Some(loc) = store.mapping().get(page) else {
            return Ok(None);
        };
        match try_read_mapped(store, page, loc)? {
            Attempt::Done(result) => return Ok(result),
            Attempt::Retry => std::hint::spin_loop(),
        }
    }
}

/// True if the page currently exists (buffered or stored). Same concurrency contract as
/// [`get`], without materialising the payload.
pub(crate) fn contains(store: &LogStore, page: PageId) -> bool {
    {
        let buffer = store.stream(page).buffer.read();
        if let Some(p) = buffer.get(page) {
            return !p.is_tombstone();
        }
    }
    store.mapping().get(page).is_some()
}
