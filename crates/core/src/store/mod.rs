//! [`LogStore`]: the public facade of the log-structured page store.
//!
//! Since the concurrent-pipeline refactor the store is **internally synchronised** and
//! every operation takes `&self`: reads, writes and cleaning proceed on separate layers
//! with their own locks instead of serialising behind one `&mut self` facade. Wrap the
//! store in an `Arc` (or use [`crate::SharedLogStore`], which also runs the background
//! cleaner) to share it across threads.
//!
//! ### The three layers
//!
//! * **Read path** (`read_path`) — `get`/`contains` touch only concurrently readable
//!   state: the sharded page table, the sort buffer behind an `RwLock`, the open-segment
//!   builders, and the device (whose trait is `&self`). A per-segment *pin* protocol
//!   makes device reads safe against concurrent segment reuse; see the `read_path` docs.
//!   Reads never acquire the write lock and never wait for cleaning.
//! * **Write path** (`write_path`) — one mutex guards the mutable write-side state
//!   ([`WriteState`]: open segments, segment table, policy, write-sequence counter).
//!   `put`/`delete` buffer under that lock and drain batches into open segments.
//! * **Cleaning** (`gc_driver`) — cycles are serialised by their own lock and run
//!   either synchronously (allocation pressure, [`LogStore::clean_now`]) or on the
//!   [`crate::shared::BackgroundCleaner`] thread. Victim images are read and parsed
//!   *outside* the write lock; relocations are committed under it with a conflict check
//!   (pages the user rewrote since victim selection are skipped), and victims are
//!   quarantined until the cycle's device sync lands and no reader pins remain.
//!
//! ### Durability model
//!
//! Pages buffered in the sort buffer or in a still-open segment are volatile; they become
//! durable when their segment is sealed (written to the device) and the device is synced.
//! [`LogStore::flush`] drains and seals everything and syncs the device, so it is the
//! durability point. After a crash, [`LogStore::recover_with_device`] rebuilds the page
//! table by scanning segment images; anything not flushed is lost (standard LFS
//! semantics). Cleaning never shrinks the durable window: a victim's slot is not reused
//! until the relocated copies of its live pages have been synced.

mod gc_driver;
mod read_path;
mod write_path;

pub(crate) use gc_driver::GcControl;

use crate::cleaner::CleaningReport;
use crate::config::StoreConfig;
use crate::device::{MemDevice, SegmentDevice};
use crate::error::{Error, Result};
use crate::freq::Up2Average;
use crate::layout::{self, SegmentBuilder};
use crate::mapping::{PageTable, ShardedPageTable};
use crate::policy::{CleaningPolicy, SegmentStats};
use crate::segment::SegmentTable;
use crate::stats::{AtomicStats, StoreStats};
use crate::types::{
    PageId, PageLocation, PageWriteInfo, SealSeq, SegmentId, UpdateTick, WriteOrigin, WriteSeq,
};
use crate::util::FxHashMap;
use crate::write_buffer::{PendingPage, WriteBuffer};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Key identifying an open output segment: the write stream (user vs GC) and the output
/// log the policy routed the page to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct OpenKey {
    pub(crate) origin: WriteOrigin,
    pub(crate) log: u16,
}

/// A segment currently being filled in memory.
///
/// The builder is shared with the read path through the store's `open_reads` index so
/// `get` can serve pages that live in a not-yet-sealed segment without taking the write
/// lock.
pub(crate) struct OpenSegment {
    pub(crate) id: SegmentId,
    pub(crate) builder: Arc<RwLock<SegmentBuilder>>,
    pub(crate) up2_avg: Up2Average,
    pub(crate) log: u16,
}

impl std::fmt::Debug for OpenSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenSegment")
            .field("id", &self.id)
            .field("entries", &self.builder.read().len())
            .field("log", &self.log)
            .finish()
    }
}

/// The write-side state guarded by the store's write mutex.
pub(crate) struct WriteState {
    /// Per-segment bookkeeping: free list, quarantine, seal sequences, `A`/`C`/`up2`.
    pub(crate) segments: SegmentTable,
    /// Open output segment per (origin, log) stream.
    pub(crate) open: FxHashMap<OpenKey, OpenSegment>,
    /// The cleaning policy (victim selection, log routing, separation keys).
    pub(crate) policy: Box<dyn CleaningPolicy>,
    /// Next per-page write sequence number.
    pub(crate) next_write_seq: WriteSeq,
}

/// The log-structured page store.
pub struct LogStore {
    config: StoreConfig,
    policy_name: &'static str,
    device: Box<dyn SegmentDevice>,
    /// Sharded concurrent page table: `get` takes `&self` and locks one shard.
    mapping: ShardedPageTable,
    /// User sort buffer. Behind its own `RwLock` so the read path can consult it without
    /// the write mutex; writers mutate it while holding the write mutex.
    buffer: RwLock<WriteBuffer>,
    /// The write-side state (see [`WriteState`]); the "write lock" of the store.
    write: Mutex<WriteState>,
    /// Builders of currently open segments, readable without the write lock.
    open_reads: RwLock<FxHashMap<SegmentId, Arc<RwLock<SegmentBuilder>>>>,
    /// Per-segment reader pin counts (see `read_path`); quarantined victims are only
    /// reused once their pin count is zero.
    pins: Box<[AtomicU32]>,
    /// Lock-free operation counters.
    stats: AtomicStats,
    /// The update-count clock (one tick per user write or delete).
    unow: AtomicU64,
    /// Mirror of the segment table's free count, readable without the write lock (used
    /// by the cleaning trigger check on the hot write path).
    approx_free: AtomicUsize,
    /// Mirror of the open-segment count, readable without the write lock: the cleaning
    /// trigger is raised when many output streams are open (multi-log keeps up to 32)
    /// so partially filled open segments never starve allocation.
    approx_open: AtomicUsize,
    /// Cleaning coordination: cycle serialisation, background-cleaner wakeup.
    pub(crate) gc: GcControl,
}

impl std::fmt::Debug for LogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogStore")
            .field("policy", &self.policy_name)
            .field("live_pages", &self.mapping.len())
            .field("free_segments", &self.approx_free.load(Ordering::Relaxed))
            .field("unow", &self.unow.load(Ordering::Relaxed))
            .finish()
    }
}

impl LogStore {
    /// Open a fresh store backed by an in-memory device.
    pub fn open_in_memory(config: StoreConfig) -> Result<Self> {
        let device = MemDevice::new(config.segment_bytes, config.num_segments);
        Self::open_with_device(config, Box::new(device))
    }

    /// Open a fresh store on the given device. Existing data on the device is ignored
    /// (use [`LogStore::recover_with_device`] to rebuild state from a previous run).
    pub fn open_with_device(config: StoreConfig, device: Box<dyn SegmentDevice>) -> Result<Self> {
        config.validate()?;
        let geom = device.geometry();
        if geom.segment_bytes != config.segment_bytes || geom.num_segments != config.num_segments {
            return Err(Error::GeometryMismatch {
                expected: format!(
                    "{} segments x {} bytes",
                    config.num_segments, config.segment_bytes
                ),
                actual: format!(
                    "{} segments x {} bytes",
                    geom.num_segments, geom.segment_bytes
                ),
            });
        }
        let policy = config.policy.build();
        let policy_name = policy.name();
        let num_segments = config.num_segments;
        Ok(Self {
            policy_name,
            mapping: ShardedPageTable::new(),
            buffer: RwLock::new(WriteBuffer::new(config.absorb_updates_in_buffer)),
            write: Mutex::new(WriteState {
                segments: SegmentTable::new(num_segments),
                open: FxHashMap::default(),
                policy,
                next_write_seq: 1,
            }),
            open_reads: RwLock::new(FxHashMap::default()),
            pins: (0..num_segments).map(|_| AtomicU32::new(0)).collect(),
            stats: AtomicStats::default(),
            unow: AtomicU64::new(0),
            approx_free: AtomicUsize::new(num_segments),
            approx_open: AtomicUsize::new(0),
            gc: GcControl::new(),
            device,
            config,
        })
    }

    /// Rebuild a store from an existing device by scanning every segment image
    /// (see [`crate::recovery`]). Pages that were never flushed before the previous
    /// process exited are not recovered.
    pub fn recover_with_device(
        config: StoreConfig,
        device: Box<dyn SegmentDevice>,
    ) -> Result<Self> {
        crate::recovery::recover(config, device)
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Write (or overwrite) a page.
    pub fn put(&self, page: PageId, data: &[u8]) -> Result<()> {
        let max = layout::max_single_payload(self.config.segment_bytes);
        if data.len() > max {
            return Err(Error::PageTooLarge {
                page,
                size: data.len(),
                max,
            });
        }
        self.unow.fetch_add(1, Ordering::Relaxed);
        AtomicStats::bump(&self.stats.user_pages_written);
        AtomicStats::add(&self.stats.user_bytes_written, data.len() as u64);
        let pending = PendingPage {
            info: PageWriteInfo {
                page,
                size: data.len() as u32,
                up2: 0,
                exact_freq: None,
                origin: WriteOrigin::User,
            },
            data: Some(Bytes::copy_from_slice(data)),
        };
        write_path::submit(self, pending)
    }

    /// Delete a page. Subsequent reads return `None`; the space its last version occupied
    /// becomes reclaimable.
    pub fn delete(&self, page: PageId) -> Result<()> {
        self.unow.fetch_add(1, Ordering::Relaxed);
        AtomicStats::bump(&self.stats.user_pages_written);
        let pending = PendingPage {
            info: PageWriteInfo {
                page,
                size: 0,
                up2: 0,
                exact_freq: None,
                origin: WriteOrigin::User,
            },
            data: None,
        };
        write_path::submit(self, pending)
    }

    /// Read the current version of a page. Returns `None` if the page does not exist or
    /// has been deleted.
    ///
    /// Takes `&self` and never acquires the write lock: reads proceed concurrently with
    /// writes and with an in-flight cleaning cycle.
    pub fn get(&self, page: PageId) -> Result<Option<Bytes>> {
        read_path::get(self, page)
    }

    /// True if the page currently exists (buffered or stored).
    pub fn contains(&self, page: PageId) -> bool {
        read_path::contains(self, page)
    }

    /// Drain the sort buffer, seal every open segment and sync the device. This is the
    /// durability point.
    pub fn flush(&self) -> Result<()> {
        write_path::flush(self)
    }

    /// Run one cleaning cycle right now, regardless of the free-segment trigger.
    /// Returns what was accomplished.
    pub fn clean_now(&self) -> Result<CleaningReport> {
        gc_driver::run_cleaning_cycle(self)
    }

    /// Snapshot of the operational statistics accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Reset statistics (e.g. after a load phase, so that a measurement phase starts
    /// from zero as the paper's evaluation does).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Name of the active cleaning policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// The update-count clock (one tick per user write or delete).
    pub fn unow(&self) -> UpdateTick {
        self.unow.load(Ordering::Relaxed)
    }

    /// Number of live pages.
    pub fn live_pages(&self) -> usize {
        self.mapping.len()
    }

    /// Bytes of live page payloads.
    pub fn live_bytes(&self) -> u64 {
        self.mapping.live_bytes()
    }

    /// Number of free segments (excluding quarantined victims awaiting reuse).
    pub fn free_segments(&self) -> usize {
        self.write.lock().segments.free_count()
    }

    /// Current fill factor: live payload bytes over total device payload capacity.
    pub fn fill_factor(&self) -> f64 {
        let capacity = self.config.num_segments as f64
            * layout::payload_capacity(self.config.segment_bytes, self.config.page_bytes) as f64;
        if capacity == 0.0 {
            0.0
        } else {
            self.mapping.live_bytes() as f64 / capacity
        }
    }

    /// Serialize a checkpoint of the current state (page table, segment metadata and
    /// counters). Only meaningful after [`LogStore::flush`]; see [`crate::checkpoint`].
    pub fn checkpoint_json(&self) -> Result<String> {
        crate::checkpoint::to_json(self)
    }

    /// Write a checkpoint to a file. Call [`LogStore::flush`] first.
    pub fn checkpoint_to<P: AsRef<std::path::Path>>(&self, path: P) -> Result<()> {
        let json = self.checkpoint_json()?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Consume the store and hand back its device (e.g. to reopen it with
    /// [`LogStore::recover_with_device`] in tests that simulate a restart).
    ///
    /// Unsealed data is discarded exactly as a crash would discard it; call
    /// [`LogStore::flush`] first if that matters.
    pub fn into_device(self) -> Box<dyn SegmentDevice> {
        self.device
    }

    // ------------------------------------------------------------------
    // Crate-internal accessors used by checkpoint/recovery and the layers
    // ------------------------------------------------------------------

    pub(crate) fn device(&self) -> &dyn SegmentDevice {
        self.device.as_ref()
    }

    pub(crate) fn mapping(&self) -> &ShardedPageTable {
        &self.mapping
    }

    pub(crate) fn buffer(&self) -> &RwLock<WriteBuffer> {
        &self.buffer
    }

    pub(crate) fn write_state(&self) -> &Mutex<WriteState> {
        &self.write
    }

    pub(crate) fn open_reads(&self) -> &RwLock<FxHashMap<SegmentId, Arc<RwLock<SegmentBuilder>>>> {
        &self.open_reads
    }

    pub(crate) fn atomic_stats(&self) -> &AtomicStats {
        &self.stats
    }

    /// Reader pin count of a segment slot.
    pub(crate) fn pin_count(&self, id: SegmentId) -> u32 {
        self.pins[id.index()].load(Ordering::Acquire)
    }

    pub(crate) fn pin(&self, id: SegmentId) {
        self.pins[id.index()].fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn unpin(&self, id: SegmentId) {
        self.pins[id.index()].fetch_sub(1, Ordering::AcqRel);
    }

    /// Free-segment count readable without the write lock (updated after every segment
    /// table mutation; may lag a concurrent mutation by a moment).
    pub(crate) fn approx_free_segments(&self) -> usize {
        self.approx_free.load(Ordering::Relaxed)
    }

    /// Refresh [`LogStore::approx_free_segments`] from the authoritative table.
    pub(crate) fn publish_free(&self, ws: &WriteState) {
        self.approx_free
            .store(ws.segments.free_count(), Ordering::Relaxed);
        self.approx_open.store(ws.open.len(), Ordering::Relaxed);
    }

    /// The free-segment level below which cleaning should run: the configured trigger,
    /// raised when the policy keeps many open output segments (multi-log keeps up to 32)
    /// so partially filled open segments never starve allocation — mirroring the
    /// simulator's `effective_trigger`.
    pub(crate) fn effective_clean_trigger(&self) -> usize {
        self.config
            .cleaning
            .trigger_free_segments
            .max(self.approx_open.load(Ordering::Relaxed) + 2)
    }

    pub(crate) fn counters(&self) -> (UpdateTick, WriteSeq) {
        (
            self.unow.load(Ordering::Relaxed),
            self.write.lock().next_write_seq,
        )
    }

    /// Coherent snapshot of the page table for checkpointing.
    pub(crate) fn mapping_snapshot(&self) -> Vec<(PageId, PageLocation)> {
        // Hold the write lock so no drain/clean commits mid-walk; shard reads are then
        // stable (the read path never mutates the mapping).
        let _ws = self.write.lock();
        self.mapping.snapshot()
    }

    /// Sealed-segment snapshots plus the next seal sequence, for checkpointing.
    pub(crate) fn sealed_segment_records(&self) -> (Vec<SegmentStats>, SealSeq) {
        let ws = self.write.lock();
        (ws.segments.sealed_stats(), ws.segments.next_seal_seq())
    }

    pub(crate) fn install_recovered_state(
        &mut self,
        mapping: PageTable,
        segments: SegmentTable,
        unow: UpdateTick,
        next_write_seq: WriteSeq,
    ) {
        self.mapping.install(mapping);
        let free = segments.free_count();
        let ws = self.write.get_mut();
        ws.segments = segments;
        ws.next_write_seq = next_write_seq;
        self.unow.store(unow, Ordering::Relaxed);
        self.approx_free.store(free, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeparationConfig;
    use crate::policy::PolicyKind;

    fn small_store(policy: PolicyKind) -> LogStore {
        LogStore::open_in_memory(StoreConfig::small_for_tests().with_policy(policy)).unwrap()
    }

    #[test]
    fn put_get_roundtrip_through_buffer_and_device() {
        let store = small_store(PolicyKind::Greedy);
        store.put(1, b"one").unwrap();
        store.put(2, b"two").unwrap();
        // Served from the sort buffer before any flush.
        assert_eq!(store.get(1).unwrap().unwrap().as_ref(), b"one");
        store.flush().unwrap();
        // Served from the device after the flush.
        assert_eq!(store.get(1).unwrap().unwrap().as_ref(), b"one");
        assert_eq!(store.get(2).unwrap().unwrap().as_ref(), b"two");
        assert!(store.get(3).unwrap().is_none());
    }

    #[test]
    fn overwrite_returns_latest_version() {
        let store = small_store(PolicyKind::Greedy);
        store.put(7, b"v1").unwrap();
        store.flush().unwrap();
        store.put(7, b"v2-longer").unwrap();
        assert_eq!(store.get(7).unwrap().unwrap().as_ref(), b"v2-longer");
        store.flush().unwrap();
        assert_eq!(store.get(7).unwrap().unwrap().as_ref(), b"v2-longer");
        assert_eq!(store.live_pages(), 1);
    }

    #[test]
    fn delete_removes_page() {
        let store = small_store(PolicyKind::Greedy);
        store.put(5, b"hello").unwrap();
        store.flush().unwrap();
        assert!(store.contains(5));
        store.delete(5).unwrap();
        assert!(!store.contains(5));
        assert!(store.get(5).unwrap().is_none());
        store.flush().unwrap();
        assert!(store.get(5).unwrap().is_none());
        assert_eq!(store.live_pages(), 0);
    }

    #[test]
    fn delete_of_missing_page_is_a_noop() {
        let store = small_store(PolicyKind::Greedy);
        store.delete(99).unwrap();
        store.flush().unwrap();
        assert!(store.get(99).unwrap().is_none());
    }

    #[test]
    fn oversized_page_is_rejected() {
        let store = small_store(PolicyKind::Greedy);
        let huge = vec![1u8; store.config().segment_bytes];
        let err = store.put(1, &huge).unwrap_err();
        assert!(matches!(err, Error::PageTooLarge { .. }));
    }

    #[test]
    fn stats_count_user_writes_and_reads() {
        let store = small_store(PolicyKind::Greedy);
        for i in 0..10u64 {
            store.put(i, b"abcdefgh").unwrap();
        }
        store.flush().unwrap();
        for i in 0..10u64 {
            assert!(store.get(i).unwrap().is_some());
        }
        let s = store.stats();
        assert_eq!(s.user_pages_written, 10);
        assert_eq!(s.user_bytes_written, 80);
        assert_eq!(s.pages_read, 10);
        assert!(s.segments_sealed >= 1);
    }

    #[test]
    fn cleaning_reclaims_space_under_overwrites() {
        // Overwrite a small working set far more than the device could hold without
        // cleaning; the store must keep functioning and its write amplification must stay
        // sane.
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
        let pages = config.logical_pages_for_fill_factor(0.6) as u64;
        let store = LogStore::open_with_device(
            config.clone(),
            Box::new(MemDevice::new(config.segment_bytes, config.num_segments)),
        )
        .unwrap();
        let payload = vec![7u8; config.page_bytes];
        // Pre-fill, then overwrite in a scrambled order so victims are checkerboards
        // (sequential overwrites would let greedy find fully-empty segments and never
        // move a page).
        for i in 0..pages {
            store.put(i, &payload).unwrap();
        }
        let total_writes = (config.physical_pages() * 5) as u64;
        for i in 0..total_writes {
            store.put(crate::util::mix64(i) % pages, &payload).unwrap();
        }
        store.flush().unwrap();
        let s = store.stats();
        assert!(s.cleaning_cycles > 0, "cleaning never ran");
        assert!(s.gc_pages_written > 0);
        assert_eq!(store.live_pages() as u64, pages);
        // Every page must still be readable and current.
        for i in 0..pages {
            assert!(
                store.get(i).unwrap().is_some(),
                "page {i} lost after cleaning"
            );
        }
        // With F=0.6 the analysis bounds W_amp well below 2 for greedy under uniform.
        assert!(
            s.write_amplification() < 3.0,
            "write amplification {} unexpectedly high",
            s.write_amplification()
        );
    }

    #[test]
    fn cleaning_works_with_every_policy() {
        for kind in PolicyKind::ALL {
            let config = StoreConfig::small_for_tests().with_policy(kind);
            let pages = config.logical_pages_for_fill_factor(0.5) as u64;
            let store = LogStore::open_in_memory(config.clone()).unwrap();
            let payload = vec![1u8; config.page_bytes];
            for i in 0..(config.physical_pages() as u64 * 4) {
                store.put(i % pages, &payload).unwrap();
            }
            store.flush().unwrap();
            assert_eq!(store.live_pages() as u64, pages, "policy {kind} lost pages");
            for i in 0..pages {
                assert!(
                    store.get(i).unwrap().is_some(),
                    "policy {kind} lost page {i}"
                );
            }
        }
    }

    #[test]
    fn out_of_space_is_reported_not_hung() {
        // Fill factor ~1.0: more logical data than the device can hold with slack.
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
        let store = LogStore::open_in_memory(config.clone()).unwrap();
        let payload = vec![0u8; config.page_bytes];
        let mut result = Ok(());
        for i in 0..(config.physical_pages() as u64 * 2) {
            result = store.put(i, &payload); // never overwrites: pure growth
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(Error::OutOfSpace { .. })));
    }

    #[test]
    fn manual_clean_now_runs_a_cycle() {
        let store = small_store(PolicyKind::Greedy);
        let payload = vec![3u8; store.config().page_bytes];
        for i in 0..64u64 {
            store.put(i % 16, &payload).unwrap();
        }
        store.flush().unwrap();
        let report = store.clean_now().unwrap();
        // Overwrites above guarantee some segments have reclaimable space.
        assert!(!report.victims.is_empty());
        for i in 0..16u64 {
            assert!(store.get(i).unwrap().is_some());
        }
    }

    #[test]
    fn absorption_in_buffer_reduces_segment_writes() {
        let mut config = StoreConfig::small_for_tests();
        config.absorb_updates_in_buffer = true;
        config.sort_buffer_segments = 4;
        let absorbing = LogStore::open_in_memory(config.clone()).unwrap();
        for _ in 0..100 {
            absorbing.put(1, b"same-page").unwrap();
        }
        absorbing.flush().unwrap();
        assert!(absorbing.stats().absorbed_in_buffer > 0);
        assert_eq!(absorbing.live_pages(), 1);
    }

    #[test]
    fn separation_config_none_still_preserves_data() {
        let config = StoreConfig::small_for_tests()
            .with_policy(PolicyKind::Mdc)
            .with_separation(SeparationConfig::none());
        let pages = config.logical_pages_for_fill_factor(0.5) as u64;
        let store = LogStore::open_in_memory(config.clone()).unwrap();
        let payload = vec![9u8; config.page_bytes];
        for i in 0..(config.physical_pages() as u64 * 3) {
            store.put(i % pages, &payload).unwrap();
        }
        store.flush().unwrap();
        for i in 0..pages {
            assert!(store.get(i).unwrap().is_some());
        }
    }

    #[test]
    fn fill_factor_reflects_live_data() {
        let store = small_store(PolicyKind::Greedy);
        assert_eq!(store.fill_factor(), 0.0);
        let payload = vec![1u8; store.config().page_bytes];
        let quarter = store.config().logical_pages_for_fill_factor(0.25) as u64;
        for i in 0..quarter {
            store.put(i, &payload).unwrap();
        }
        store.flush().unwrap();
        let f = store.fill_factor();
        assert!((f - 0.25).abs() < 0.05, "fill factor {f} not near 0.25");
    }

    #[test]
    fn variable_size_payloads_are_supported() {
        let store = small_store(PolicyKind::Mdc);
        for i in 0..200u64 {
            let size = 1 + (i as usize * 7) % 200;
            store.put(i, &vec![i as u8; size]).unwrap();
        }
        store.flush().unwrap();
        for i in 0..200u64 {
            let size = 1 + (i as usize * 7) % 200;
            let v = store.get(i).unwrap().unwrap();
            assert_eq!(v.len(), size);
            assert!(v.iter().all(|&b| b == i as u8));
        }
    }

    #[test]
    fn reads_do_not_require_exclusive_access() {
        // `get` on a shared reference from several threads at once — the compile-time
        // core of the concurrent-pipeline refactor, exercised at runtime.
        let store = std::sync::Arc::new(small_store(PolicyKind::Mdc));
        for i in 0..64u64 {
            store.put(i, format!("v-{i}").as_bytes()).unwrap();
        }
        store.flush().unwrap();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..200u64 {
                    let page = (t * 31 + round) % 64;
                    let got = store.get(page).unwrap().unwrap();
                    assert_eq!(got.as_ref(), format!("v-{page}").as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
