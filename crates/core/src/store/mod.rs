//! [`LogStore`]: the public facade of the log-structured page store.
//!
//! Since the concurrent-pipeline refactor the store is **internally synchronised** and
//! every operation takes `&self`; since the sharded-write-path refactor the write side
//! is further split into **independent per-stream append pipelines** so that writers on
//! different streams never serialise behind one mutex. Wrap the store in an `Arc` (or
//! use [`crate::SharedLogStore`], which also runs the background cleaner) to share it
//! across threads.
//!
//! ### The layers
//!
//! * **Read path** (`read_path`) — `get`/`contains` touch only concurrently readable
//!   state: the sharded page table, the owning stream's sort buffer behind an `RwLock`,
//!   the open-segment builders, and the device (whose trait is `&self`). A per-segment
//!   *pin* protocol makes device reads safe against concurrent segment reuse; see the
//!   `read_path` docs. Reads never take a write-side lock and never wait for cleaning.
//! * **Write path** (`write_path`) — `put`/`delete` route by page-id hash to one of
//!   [`StoreConfig::write_streams`](crate::StoreConfig::write_streams) write streams.
//!   Each stream owns its slice of the sort buffer and its open output segments
//!   (one per output log), guarded by the *stream lock*; buffering, `up2` assignment,
//!   separation sorting, payload copies into builders and segment image writes all
//!   happen under the stream lock only. The shared central state (segment table,
//!   policy, free-space accounting) is touched in short, bounded critical sections:
//!   segment allocation, seal bookkeeping, and batched per-page accounting.
//! * **Cleaning** (`gc_driver`) — up to
//!   [`StoreConfig::cleaner_threads`](crate::StoreConfig::cleaner_threads) cycles run
//!   **concurrently on disjoint victim sets** (victims are claimed atomically in the
//!   segment table at selection time), either synchronously (allocation pressure,
//!   [`LogStore::clean_now`]) or on the [`crate::shared::BackgroundCleaner`] pool.
//!   Victim images are read and parsed with no store lock held — pipelined across a
//!   small per-cycle I/O pool — and relocations are committed with a per-page atomic
//!   *compare-and-swap* on the page table ([`crate::mapping::ShardedPageTable::replace_if_current`]),
//!   so cleaning never stalls the write streams. Victims are quarantined with a
//!   per-entry `parked → sealed → synced` state machine, so one cycle's device sync can
//!   never free another cycle's victims early; a victim returns to the free list only
//!   after its own relocations are synced and no reader pins remain.
//!
//! ### Lock ordering
//!
//! To stay deadlock-free, locks nest in this order (any prefix may be skipped, never
//! reordered): `cycle gate (shared by cycles / exclusive by checkpoint & straggler
//! reclaim) → cycle slot → stream lock → GC-stream lock (a cycle's own outputs or the
//! orphan pool) → wounded-seal lock → central lock`. The open-segment read index and
//! page-table shards are leaves: no other lock is acquired while holding them. The
//! cycle gate is **never** acquired while holding a stream lock (a quiescing checkpoint
//! holds it exclusive and then takes the stream locks); the emergency quarantine
//! reclaim on the allocation path therefore skips the gate entirely — the quarantine's
//! per-entry state machine, not the gate, is what makes its sync safe against in-flight
//! cycles.
//!
//! ### Durability model
//!
//! Pages buffered in a sort-buffer shard or in a still-open segment are volatile; they
//! become durable when their segment is sealed (written to the device) and the device is
//! synced. [`LogStore::flush`] drains and seals every stream and syncs the device, so it
//! is the durability point. After a crash, [`LogStore::recover_with_device`] rebuilds
//! the page table by scanning segment images; anything not flushed is lost (standard LFS
//! semantics). Cleaning never shrinks the durable window: a victim's slot is not reused
//! until the relocated copies of its live pages have been synced, and a relocated copy
//! keeps its original per-page write sequence so it can never shadow a newer user write
//! during recovery.

mod gc_driver;
mod read_path;
mod write_path;

pub(crate) use gc_driver::GcControl;
pub use gc_driver::{GcPhase, GcPhaseHook};

use crate::cleaner::CleaningReport;
use crate::config::StoreConfig;
use crate::device::{MemDevice, SegmentDevice};
use crate::error::{Error, Result};
use crate::freq::{PageHeat, Up2Average};
use crate::layout::{self, SegmentBuilder};
use crate::mapping::{PageTable, ShardedPageTable};
use crate::policy::{CleaningPolicy, SegmentStats};
use crate::segment::SegmentTable;
use crate::stats::{AtomicStats, StoreStats};
use crate::types::{
    PageId, PageLocation, PageWriteInfo, SealSeq, SegmentId, UpdateTick, WriteOrigin, WriteSeq,
};
use crate::util::{mix64, FxHashMap};
use crate::write_buffer::{PendingPage, WriteBuffer};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A segment currently being filled in memory.
///
/// The builder is shared with the read path through the store's `open_reads` index so
/// `get` can serve pages that live in a not-yet-sealed segment without taking any
/// write-side lock.
pub(crate) struct OpenSegment {
    pub(crate) id: SegmentId,
    pub(crate) builder: Arc<RwLock<SegmentBuilder>>,
    pub(crate) up2_avg: Up2Average,
    pub(crate) log: u16,
    /// Allocation generation of the slot (see [`LogStore::segment_gen`]); recorded so
    /// batched accounting for this open segment can be validated at apply time.
    pub(crate) gen: u64,
    /// Stream-local LRU tick, used to bound how many logs a stream keeps open at once.
    pub(crate) last_used: u64,
}

impl std::fmt::Debug for OpenSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenSegment")
            .field("id", &self.id)
            .field("entries", &self.builder.read().len())
            .field("log", &self.log)
            .finish()
    }
}

/// The mutable state of one write stream, guarded by the stream lock.
#[derive(Default)]
pub(crate) struct StreamState {
    /// Open user-origin output segment per output log.
    pub(crate) open: FxHashMap<u16, OpenSegment>,
    /// Monotonic counter stamping [`OpenSegment::last_used`].
    pub(crate) use_tick: u64,
}

/// One independent write stream: a slice of the sort buffer plus its open segments.
///
/// Pages are routed to streams by page-id hash ([`LogStore::stream_of_page`]), so all
/// writes to a given page — including its tombstone — serialise on the same stream lock
/// and per-page ordering is preserved without any global lock.
pub(crate) struct WriteStream {
    /// This stream's sort-buffer shard. Behind its own `RwLock` so the read path can
    /// consult it without the stream lock; writers mutate it while holding the stream
    /// lock (pushes and drains of one stream never interleave).
    pub(crate) buffer: RwLock<WriteBuffer>,
    /// Open segments and drain bookkeeping; the "write lock" of this stream.
    pub(crate) state: Mutex<StreamState>,
}

/// The GC output streams of one cleaning cycle: open segments the cycle relocates live
/// pages into. Each in-flight cycle owns its own instance (no lock needed — nothing
/// else can reach it); a cycle seals its outputs in its final phase. If a cycle aborts
/// on an I/O error, its leftover open segments are pushed into the store's *orphan
/// pool* ([`LogStore::gc_orphans`]) so a later flush or reclaim pass can still seal
/// them.
#[derive(Default)]
pub(crate) struct GcStreams {
    pub(crate) open: FxHashMap<u16, OpenSegment>,
}

/// Everything a checkpoint records, captured in one coherent critical section (see
/// [`LogStore::checkpoint_snapshot`]).
pub(crate) struct CheckpointSnapshot {
    /// Per-shard page-table snapshots, indexed by shard. `None` marks a shard that was
    /// clean since the previous checkpoint and is omitted from an incremental capture
    /// (the previous journal entry for it still holds).
    pub(crate) shards: Vec<Option<Vec<(PageId, PageLocation)>>>,
    pub(crate) sealed: Vec<SegmentStats>,
    /// Per-segment tombstone space charge (only non-zero entries), captured in the
    /// same central section as `sealed` so the two are coherent. Recorded in each
    /// segment's checkpoint record so recovery rebuilds the accounting exactly.
    pub(crate) tombstone_bytes: Vec<(SegmentId, u64)>,
    /// Seal-sequence frontier: every segment this snapshot describes — and the home of
    /// every mapping entry in it — was sealed with `seal_seq <= frontier`, so recovery
    /// only needs to replay segments sealed after it.
    pub(crate) frontier: SealSeq,
    pub(crate) next_seal_seq: SealSeq,
    pub(crate) unow: UpdateTick,
    pub(crate) next_write_seq: WriteSeq,
    /// The page-table dirty bits this capture consumed; re-marked if persisting fails
    /// so the next checkpoint rewrites the affected shards.
    pub(crate) dirty_mask: u64,
}

/// Book-keeping for the incremental checkpoint journal: which file the store has been
/// checkpointing to, whether its base record is on disk, and the update tick of the
/// last successful checkpoint (drives [`LogStore::checkpoint_due`]).
#[derive(Default)]
struct CheckpointTracker {
    path: Option<std::path::PathBuf>,
    base_written: bool,
    last_unow: u64,
}

/// The shared coordination layer of the sharded write path, guarded by the central lock.
///
/// Critical sections on this lock are short and bounded — allocation, seal bookkeeping,
/// victim selection and batched accounting — never payload copies or device I/O.
pub(crate) struct CentralState {
    /// Per-segment bookkeeping: free list, quarantine, seal sequences, `A`/`C`/`up2`.
    pub(crate) segments: SegmentTable,
    /// The cleaning policy (victim selection, log routing, separation keys).
    pub(crate) policy: Box<dyn CleaningPolicy>,
}

/// The log-structured page store.
pub struct LogStore {
    config: StoreConfig,
    policy_name: &'static str,
    device: Box<dyn SegmentDevice>,
    /// Sharded concurrent page table: `get` takes `&self` and locks one shard.
    mapping: ShardedPageTable,
    /// The independent write streams (see [`WriteStream`]).
    streams: Box<[WriteStream]>,
    /// The shared coordination layer (see [`CentralState`]).
    central: Mutex<CentralState>,
    /// Orphaned GC output segments: leftovers of cleaning cycles that aborted on an
    /// I/O error, parked here (together with the re-tagging of those cycles' quarantine
    /// entries to [`crate::segment::ORPHAN_CYCLE`], under this same lock) so the next
    /// flush or emergency reclaim can seal them and free the victims they relocated.
    gc_orphans: Mutex<Vec<OpenSegment>>,
    /// Sealed segments whose finished image failed to reach the device (an I/O error
    /// during the seal's device write). The rendered image is parked here and retried
    /// before every sync point; until it lands, the segment stays image-pending (never
    /// a cleaning victim), its builder stays in `open_reads` (pages stay readable), and
    /// `flush` keeps failing rather than falsely reporting durability.
    wounded_seals: Mutex<Vec<(SegmentId, Vec<u8>)>>,
    /// Builders of currently open segments, readable without any write-side lock.
    open_reads: RwLock<FxHashMap<SegmentId, Arc<RwLock<SegmentBuilder>>>>,
    /// Per-segment reader pin counts (see `read_path`); quarantined victims are only
    /// reused once their pin count is zero.
    pins: Box<[AtomicU32]>,
    /// Per-segment allocation generation, bumped (under the central lock) every time a
    /// slot is handed out by the allocator. Batched accounting records the generation it
    /// observed; an op whose generation no longer matches at apply time targeted a
    /// previous incarnation of the slot and is dropped.
    seg_gen: Box<[AtomicU64]>,
    /// Lock-free operation counters.
    stats: AtomicStats,
    /// Decayed per-page write-heat sketch, bumped on every `put`/`delete` and sampled
    /// by the cleaner (outside any lock) to route survivors into temperature-classed
    /// GC output streams. Purely advisory: collisions or staleness only cost placement
    /// efficiency, never correctness.
    heat: PageHeat,
    /// The update-count clock (one tick per user write or delete).
    unow: AtomicU64,
    /// Next per-page write sequence number. Global and atomic: per-page monotonicity
    /// follows from all writes to a page being serialised on its stream lock.
    next_write_seq: AtomicU64,
    /// Mirror of the segment table's free count, readable without the central lock (used
    /// by the cleaning trigger check on the hot write path).
    approx_free: AtomicUsize,
    /// Count of currently open output segments across all streams (user and GC): the
    /// cleaning trigger is raised when many output streams are open (multi-log keeps up
    /// to 32) so partially filled open segments never starve allocation.
    open_count: AtomicUsize,
    /// Cleaning coordination: concurrent-cycle gate and slots, background wakeup.
    pub(crate) gc: GcControl,
    /// Test/diagnostic instrumentation invoked at every cleaning-cycle phase boundary
    /// (see [`GcPhase`]); `None` in production.
    gc_phase_hook: RwLock<Option<GcPhaseHook>>,
    /// Incremental-checkpoint journal state (see [`CheckpointTracker`]). Taken *before*
    /// the cycle gate in [`LogStore::checkpoint_log_to`], serialising checkpoints
    /// against each other without widening any existing critical section.
    ckpt: Mutex<CheckpointTracker>,
    /// Seal-seq frontier of the last *committed* checkpoint (0 = none). The cleaner
    /// reads it (relaxed; staleness only delays a drop) to decide when a victim's
    /// tombstones are checkpoint-covered and may be dropped instead of re-emitted.
    ckpt_frontier: AtomicU64,
}

impl std::fmt::Debug for LogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogStore")
            .field("policy", &self.policy_name)
            .field("write_streams", &self.streams.len())
            .field("live_pages", &self.mapping.len())
            .field("free_segments", &self.approx_free.load(Ordering::Relaxed))
            .field("unow", &self.unow.load(Ordering::Relaxed))
            .finish()
    }
}

impl LogStore {
    /// Open a fresh store backed by an in-memory device.
    pub fn open_in_memory(config: StoreConfig) -> Result<Self> {
        let device = MemDevice::new(config.segment_bytes, config.num_segments);
        Self::open_with_device(config, Box::new(device))
    }

    /// Open a fresh store on the given device. Existing data on the device is ignored
    /// (use [`LogStore::recover_with_device`] to rebuild state from a previous run).
    pub fn open_with_device(config: StoreConfig, device: Box<dyn SegmentDevice>) -> Result<Self> {
        config.validate()?;
        let geom = device.geometry();
        if geom.segment_bytes != config.segment_bytes || geom.num_segments != config.num_segments {
            return Err(Error::GeometryMismatch {
                expected: format!(
                    "{} segments x {} bytes",
                    config.num_segments, config.segment_bytes
                ),
                actual: format!(
                    "{} segments x {} bytes",
                    geom.num_segments, geom.segment_bytes
                ),
            });
        }
        let policy = config.policy.build();
        let policy_name = policy.name();
        let num_segments = config.num_segments;
        Ok(Self {
            policy_name,
            mapping: ShardedPageTable::new(),
            streams: (0..config.write_streams.max(1))
                .map(|_| WriteStream {
                    buffer: RwLock::new(WriteBuffer::new(config.absorb_updates_in_buffer)),
                    state: Mutex::new(StreamState::default()),
                })
                .collect(),
            central: Mutex::new(CentralState {
                segments: SegmentTable::new(num_segments),
                policy,
            }),
            gc_orphans: Mutex::new(Vec::new()),
            wounded_seals: Mutex::new(Vec::new()),
            open_reads: RwLock::new(FxHashMap::default()),
            pins: (0..num_segments).map(|_| AtomicU32::new(0)).collect(),
            seg_gen: (0..num_segments).map(|_| AtomicU64::new(0)).collect(),
            stats: AtomicStats::default(),
            heat: PageHeat::for_physical_pages(config.physical_pages()),
            unow: AtomicU64::new(0),
            next_write_seq: AtomicU64::new(1),
            approx_free: AtomicUsize::new(num_segments),
            open_count: AtomicUsize::new(0),
            gc: GcControl::new(&config),
            gc_phase_hook: RwLock::new(None),
            ckpt: Mutex::new(CheckpointTracker::default()),
            ckpt_frontier: AtomicU64::new(0),
            device,
            config,
        })
    }

    /// Rebuild a store from an existing device by scanning every segment image
    /// (see [`crate::recovery`]). Pages that were never flushed before the previous
    /// process exited are not recovered.
    pub fn recover_with_device(
        config: StoreConfig,
        device: Box<dyn SegmentDevice>,
    ) -> Result<Self> {
        crate::recovery::recover(config, device)
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Write (or overwrite) a page.
    pub fn put(&self, page: PageId, data: &[u8]) -> Result<()> {
        let max = layout::max_single_payload(self.config.segment_bytes);
        if data.len() > max {
            return Err(Error::PageTooLarge {
                page,
                size: data.len(),
                max,
            });
        }
        self.unow.fetch_add(1, Ordering::Relaxed);
        if self.config.gc_temperature_classes > 1 {
            // The sketch is only consulted by classed GC output; with one class the
            // put path stays free of its per-write atomics.
            self.heat.record(page);
        }
        AtomicStats::bump(&self.stats.user_pages_written);
        AtomicStats::add(&self.stats.user_bytes_written, data.len() as u64);
        let pending = PendingPage {
            info: PageWriteInfo {
                page,
                size: data.len() as u32,
                up2: 0,
                exact_freq: None,
                origin: WriteOrigin::User,
            },
            data: Some(Bytes::copy_from_slice(data)),
        };
        write_path::submit(self, pending)
    }

    /// Delete a page. Subsequent reads return `None`; the space its last version occupied
    /// becomes reclaimable.
    pub fn delete(&self, page: PageId) -> Result<()> {
        self.unow.fetch_add(1, Ordering::Relaxed);
        if self.config.gc_temperature_classes > 1 {
            self.heat.record(page);
        }
        AtomicStats::bump(&self.stats.user_pages_written);
        let pending = PendingPage {
            info: PageWriteInfo {
                page,
                size: 0,
                up2: 0,
                exact_freq: None,
                origin: WriteOrigin::User,
            },
            data: None,
        };
        write_path::submit(self, pending)
    }

    /// Read the current version of a page. Returns `None` if the page does not exist or
    /// has been deleted.
    ///
    /// Takes `&self` and never acquires a write-side lock: reads proceed concurrently
    /// with writes on every stream and with an in-flight cleaning cycle.
    pub fn get(&self, page: PageId) -> Result<Option<Bytes>> {
        read_path::get(self, page)
    }

    /// True if the page currently exists (buffered or stored).
    pub fn contains(&self, page: PageId) -> bool {
        read_path::contains(self, page)
    }

    /// Drain every stream's sort buffer, seal every open segment and sync the device.
    /// This is the durability point.
    pub fn flush(&self) -> Result<()> {
        write_path::flush(self)
    }

    /// Run one cleaning cycle right now, regardless of the free-segment trigger.
    /// Returns what was accomplished.
    ///
    /// Up to [`StoreConfig::cleaner_threads`] cycles may run concurrently (on disjoint
    /// victim sets); beyond that, this call waits for a cycle slot.
    pub fn clean_now(&self) -> Result<CleaningReport> {
        gc_driver::run_cleaning_cycle(self)
    }

    /// Install (or clear, with `None`) a hook invoked at every phase boundary of every
    /// cleaning cycle. **Test/diagnostic instrumentation**: a blocking hook pauses the
    /// cycle at exactly that boundary, which is how the deterministic cleaner-race
    /// tests interleave cycles and foreground traffic at precise points. No store lock
    /// is held while the hook runs.
    pub fn set_gc_phase_hook(&self, hook: Option<GcPhaseHook>) {
        *self.gc_phase_hook.write() = hook;
    }

    /// Force one adaptive-controller decision right now (bypassing the internal rate
    /// limiter) and return the resulting concurrent-cycle target. A no-op returning
    /// `cleaner_threads` in [`crate::config::CleanerMode::Fixed`].
    ///
    /// The controller normally ticks by itself — on background-cleaner wake-ups, at
    /// cycle starts and on writer stalls — so production code never needs this;
    /// deterministic tests and embedders that schedule cleaning themselves use it to
    /// drive decisions at exact points.
    pub fn gc_controller_tick(&self) -> usize {
        gc_driver::controller_tick(self, true)
    }

    /// The current concurrent-cycle target: how many cleaning cycles the store will
    /// run at once right now. Constant `cleaner_threads` in fixed mode; moves between
    /// the configured bounds under [`crate::config::CleanerMode::Adaptive`].
    pub fn gc_target_cycles(&self) -> usize {
        self.gc.current_target()
    }

    /// Rate-limited controller tick for the internal periodic callers (the background
    /// pool's wake-ups); see [`LogStore::gc_controller_tick`] for the forced form.
    pub(crate) fn gc_controller_tick_rate_limited(&self) {
        gc_driver::controller_tick(self, false);
    }

    /// Snapshot of the operational statistics accumulated so far, including the live
    /// per-segment emptiness histogram (see
    /// [`StoreStats::emptiness_histogram`](crate::StoreStats::emptiness_histogram)).
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.stats.snapshot();
        let central = self.central.lock();
        let (hist, sealed, live) = central
            .segments
            .emptiness_histogram(crate::stats::EMPTINESS_HISTOGRAM_BINS);
        stats.emptiness_histogram = hist;
        stats.sealed_segments = sealed;
        stats.sealed_live_bytes = live;
        stats.claimed_victims = central.segments.claimed_count() as u64;
        stats.quarantined_segments = central.segments.quarantine_len() as u64;
        if self.config.gc_temperature_classes > 1 {
            stats.gc_class_segments = central
                .segments
                .sealed_counts_by_temperature(self.config.gc_temperature_classes);
        }
        drop(central);
        stats.gc_target_cycles = self.gc.current_target() as u64;
        stats
    }

    /// Reset statistics (e.g. after a load phase, so that a measurement phase starts
    /// from zero as the paper's evaluation does).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Name of the active cleaning policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// Number of independent write streams this store shards its write path into.
    pub fn write_stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The write stream a page routes to (diagnostic; stable for the store's lifetime).
    pub fn stream_of_page(&self, page: PageId) -> usize {
        (mix64(page) as usize) % self.streams.len()
    }

    /// The update-count clock (one tick per user write or delete).
    pub fn unow(&self) -> UpdateTick {
        self.unow.load(Ordering::Relaxed)
    }

    /// Number of live pages.
    pub fn live_pages(&self) -> usize {
        self.mapping.len()
    }

    /// Page ids currently live in `[start, end)`, in ascending order.
    ///
    /// Cost is proportional to the *live* page count, never to the width of the id
    /// range — which is what lets layered allocators (e.g. the KV layer's reopen
    /// sweep) reclaim stragglers from a sparsely used partition of the 2⁶⁴ id space.
    /// Like any concurrent gauge, the enumeration may miss pages written after the
    /// call started.
    pub fn live_page_ids_in(&self, start: PageId, end: PageId) -> Vec<PageId> {
        let mut ids: Vec<PageId> = self
            .mapping
            .snapshot()
            .into_iter()
            .map(|(page, _)| page)
            .filter(|page| (start..end).contains(page))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Bytes of live page payloads.
    pub fn live_bytes(&self) -> u64 {
        self.mapping.live_bytes()
    }

    /// Number of free segments (excluding quarantined victims awaiting reuse).
    pub fn free_segments(&self) -> usize {
        self.central.lock().segments.free_count()
    }

    /// Current fill factor: live payload bytes over total device payload capacity.
    pub fn fill_factor(&self) -> f64 {
        let capacity = self.config.num_segments as f64
            * layout::payload_capacity(self.config.segment_bytes, self.config.page_bytes) as f64;
        if capacity == 0.0 {
            0.0
        } else {
            self.mapping.live_bytes() as f64 / capacity
        }
    }

    /// Serialize a checkpoint of the current state (page table, segment metadata and
    /// counters). Only meaningful after [`LogStore::flush`]; see [`crate::checkpoint`].
    pub fn checkpoint_json(&self) -> Result<String> {
        crate::checkpoint::to_json(self)
    }

    /// Write a checkpoint to a file. Call [`LogStore::flush`] first.
    pub fn checkpoint_to<P: AsRef<std::path::Path>>(&self, path: P) -> Result<()> {
        let json = self.checkpoint_json()?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Append a checkpoint to the journal at `path` and return how many page-table
    /// shards it wrote versus skipped.
    ///
    /// Unlike [`LogStore::checkpoint_to`], this does **not** require a prior flush or a
    /// quiesced store: the capture itself seals every open output segment and syncs the
    /// device, so everything the journal describes is durable (pages still sitting in
    /// sort buffers are volatile, exactly as a crash would treat them). The first
    /// checkpoint to a given path writes the full page table; subsequent checkpoints to
    /// the *same* path append only the shards dirtied since the previous one (when
    /// [`crate::CheckpointConfig::incremental`] is on). Reopen with
    /// [`LogStore::recover_with_checkpoint`], which replays only the segments sealed
    /// after the journal's frontier instead of scanning the whole device.
    pub fn checkpoint_log_to<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> Result<crate::checkpoint::CheckpointStats> {
        let path = path.as_ref();
        let mut tracker = self.ckpt.lock();
        let continuing = tracker.base_written && tracker.path.as_deref() == Some(path);
        let dirty_only = self.config.checkpoint.incremental && continuing;
        let snapshot = self.checkpoint_snapshot(dirty_only, true)?;
        match crate::checkpoint::append_to_journal(path, &self.config, &snapshot, !continuing) {
            Ok(stats) => {
                tracker.path = Some(path.to_path_buf());
                tracker.base_written = true;
                tracker.last_unow = snapshot.unow;
                AtomicStats::add(&self.stats.checkpoint_shards_written, stats.shards_written);
                AtomicStats::add(&self.stats.checkpoint_shards_skipped, stats.shards_skipped);
                // The checkpoint is committed: publish its frontier so the cleaner may
                // drop (rather than re-emit) tombstones in covered victims, and lift
                // the tombstone space charge from every covered segment — their delete
                // facts are durable in the journal now, so those segments are
                // reclaimable at their true emptiness.
                self.ckpt_frontier
                    .store(snapshot.frontier, Ordering::Relaxed);
                self.central
                    .lock()
                    .segments
                    .uncharge_covered_tombstones(snapshot.frontier);
                Ok(stats)
            }
            Err(e) => {
                // The shards this capture consumed never reached the journal: re-mark
                // them dirty so the next checkpoint rewrites them, and recreate the
                // journal from scratch next time — appending after a torn tail would
                // hide the new records from the reader, which stops at the first
                // unparsable line.
                self.mapping.mark_dirty_mask(snapshot.dirty_mask);
                tracker.base_written = false;
                Err(e)
            }
        }
    }

    /// True once [`crate::CheckpointConfig::cadence_updates`] user updates have
    /// happened since the last successful [`LogStore::checkpoint_log_to`] (always false
    /// with the cadence at 0). The store never checkpoints by itself; embedders poll
    /// this from their maintenance loop.
    pub fn checkpoint_due(&self) -> bool {
        let cadence = self.config.checkpoint.cadence_updates;
        if cadence == 0 {
            return false;
        }
        let last = self.ckpt.lock().last_unow;
        self.unow.load(Ordering::Relaxed).saturating_sub(last) >= cadence
    }

    /// Rebuild a store from a device plus a checkpoint journal written by
    /// [`LogStore::checkpoint_log_to`]: bounded log-tail replay instead of the full
    /// device scan of [`LogStore::recover_with_device`] (see
    /// [`crate::recovery::recover_from_checkpoint`]).
    pub fn recover_with_checkpoint<P: AsRef<std::path::Path>>(
        config: StoreConfig,
        device: Box<dyn SegmentDevice>,
        path: P,
    ) -> Result<Self> {
        crate::recovery::recover_from_checkpoint(config, device, path.as_ref())
    }

    /// Consume the store and hand back its device (e.g. to reopen it with
    /// [`LogStore::recover_with_device`] in tests that simulate a restart).
    ///
    /// Unsealed data is discarded exactly as a crash would discard it; call
    /// [`LogStore::flush`] first if that matters.
    pub fn into_device(self) -> Box<dyn SegmentDevice> {
        self.device
    }

    // ------------------------------------------------------------------
    // Crate-internal accessors used by checkpoint/recovery and the layers
    // ------------------------------------------------------------------

    pub(crate) fn device(&self) -> &dyn SegmentDevice {
        self.device.as_ref()
    }

    pub(crate) fn mapping(&self) -> &ShardedPageTable {
        &self.mapping
    }

    /// The write stream owning a page.
    pub(crate) fn stream(&self, page: PageId) -> &WriteStream {
        &self.streams[self.stream_of_page(page)]
    }

    /// All write streams (flush and checkpoint walk them in index order).
    pub(crate) fn streams(&self) -> &[WriteStream] {
        &self.streams
    }

    pub(crate) fn central(&self) -> &Mutex<CentralState> {
        &self.central
    }

    pub(crate) fn gc_orphans(&self) -> &Mutex<Vec<OpenSegment>> {
        &self.gc_orphans
    }

    /// The installed cleaning-phase hook, if any (cloned out so it is invoked with no
    /// lock held).
    pub(crate) fn gc_phase_hook(&self) -> Option<GcPhaseHook> {
        self.gc_phase_hook.read().clone()
    }

    pub(crate) fn wounded_seals(&self) -> &Mutex<Vec<(SegmentId, Vec<u8>)>> {
        &self.wounded_seals
    }

    pub(crate) fn open_reads(&self) -> &RwLock<FxHashMap<SegmentId, Arc<RwLock<SegmentBuilder>>>> {
        &self.open_reads
    }

    pub(crate) fn atomic_stats(&self) -> &AtomicStats {
        &self.stats
    }

    /// Seal-seq frontier of the last committed checkpoint (0 = none). Relaxed read:
    /// a stale value only makes the cleaner re-emit a tombstone it could have
    /// dropped, never the reverse.
    pub(crate) fn checkpoint_frontier(&self) -> SealSeq {
        self.ckpt_frontier.load(Ordering::Relaxed)
    }

    /// Seed the committed-checkpoint frontier (used by checkpoint-anchored recovery:
    /// the journal the store was recovered from is itself a committed checkpoint).
    pub(crate) fn set_checkpoint_frontier(&self, frontier: SealSeq) {
        self.ckpt_frontier.store(frontier, Ordering::Relaxed);
    }

    /// The per-page heat sketch (sampled lock-free by the cleaner).
    pub(crate) fn heat(&self) -> &PageHeat {
        &self.heat
    }

    /// Claim the next per-page write sequence number.
    pub(crate) fn take_write_seq(&self) -> WriteSeq {
        self.next_write_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Current allocation generation of a segment slot (relaxed read; stable while the
    /// caller owns the slot or holds the central lock).
    pub(crate) fn segment_gen(&self, id: SegmentId) -> u64 {
        self.seg_gen[id.index()].load(Ordering::Relaxed)
    }

    /// Bump a slot's allocation generation. Call only under the central lock, right
    /// after the allocator hands the slot out.
    pub(crate) fn bump_segment_gen(&self, id: SegmentId) {
        self.seg_gen[id.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Reader pin count of a segment slot.
    pub(crate) fn pin_count(&self, id: SegmentId) -> u32 {
        self.pins[id.index()].load(Ordering::Acquire)
    }

    pub(crate) fn pin(&self, id: SegmentId) {
        self.pins[id.index()].fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn unpin(&self, id: SegmentId) {
        self.pins[id.index()].fetch_sub(1, Ordering::AcqRel);
    }

    /// Free-segment count readable without the central lock (updated after every segment
    /// table mutation; may lag a concurrent mutation by a moment).
    pub(crate) fn approx_free_segments(&self) -> usize {
        self.approx_free.load(Ordering::Relaxed)
    }

    /// Refresh [`LogStore::approx_free_segments`] from the authoritative table.
    pub(crate) fn publish_free(&self, segments: &SegmentTable) {
        self.approx_free
            .store(segments.free_count(), Ordering::Relaxed);
    }

    /// Record that an output segment was opened (`+1`) or closed (`-1`).
    pub(crate) fn note_open_delta(&self, delta: isize) {
        if delta >= 0 {
            self.open_count.fetch_add(delta as usize, Ordering::Relaxed);
        } else {
            self.open_count
                .fetch_sub((-delta) as usize, Ordering::Relaxed);
        }
    }

    /// How many output logs one user stream may keep open at once. Sized so the total
    /// across streams stays at the multi-log policy's bound (32): a stream that needs
    /// one more log seals its least-recently-used open segment first. Config validation
    /// caps `write_streams` at 16, so the division never lands below 2 and the
    /// aggregate bound holds for every allowed stream count. Single-log policies keep
    /// exactly one open segment per stream and never hit the bound.
    pub(crate) fn max_open_logs_per_stream(&self) -> usize {
        (crate::policy::MULTILOG_MAX_LOGS / self.streams.len()).max(2)
    }

    /// The free-segment level below which cleaning should run: the configured trigger,
    /// raised when many output segments are open (multi-log keeps up to 32 logs) so
    /// partially filled open segments never starve allocation — mirroring the
    /// simulator's `effective_trigger`.
    pub(crate) fn effective_clean_trigger(&self) -> usize {
        self.config
            .cleaning
            .trigger_free_segments
            .max(self.open_count.load(Ordering::Relaxed) + 2)
    }

    pub(crate) fn counters(&self) -> (UpdateTick, WriteSeq) {
        (
            self.unow.load(Ordering::Relaxed),
            self.next_write_seq.load(Ordering::Relaxed),
        )
    }

    /// One coherent snapshot of everything a checkpoint needs: the page table (whole or
    /// only the shards dirtied since the last capture), the sealed-segment records, the
    /// seal-sequence frontier and the counters.
    ///
    /// All of it is taken under a single quiesce of the cycle gate (waits out every
    /// in-flight cleaning cycle, so no GC remaps and no victim reaps) while holding
    /// every stream lock (no drains) — taking the pieces under separate critical
    /// sections would let a cycle slip between them and reap a victim that the page
    /// snapshot still references but the segment records would omit.
    ///
    /// The capture is **self-durable**: with the store quiesced it seals every open
    /// output segment (user streams and orphaned GC builders), retries wounded seals
    /// and syncs the device before reading the page table. Skipping that and snapping a
    /// mapping that points into open, unsealed segments would make the checkpoint
    /// *worse* than a full scan — a crash would lose the old durable copy of any page
    /// whose newest copy sat in an open segment the journal already claims to cover.
    /// Sealing never allocates, so this cannot deadlock with allocation pressure. The
    /// counters are read last so the recorded `next_write_seq` is `>=` every write
    /// sequence reachable from the snapshot and the frontier covers every seal the
    /// snapshot references.
    ///
    /// `dirty_only` captures only the page-table shards dirtied since the previous
    /// capture (incremental journal appends); `consume_dirty` controls whether the
    /// dirty bits are claimed by this capture (journal checkpoints) or left untouched
    /// (the monolithic [`LogStore::checkpoint_json`], which must not steal changes out
    /// from under a concurrent journal sequence).
    pub(crate) fn checkpoint_snapshot(
        &self,
        dirty_only: bool,
        consume_dirty: bool,
    ) -> Result<CheckpointSnapshot> {
        let _quiesced = self.gc.quiesce();
        let mut streams: Vec<_> = self.streams.iter().map(|s| s.state.lock()).collect();
        // Seal every open user output segment so no mapping entry points into an
        // unsealed builder. Empty builders are released, full ones written out; an I/O
        // failure parks the image as a wounded seal and fails the checkpoint.
        for ss in streams.iter_mut() {
            let mut ledger = write_path::MetaLedger::default();
            let logs: Vec<u16> = ss.open.keys().copied().collect();
            for log in logs {
                if let Some(open) = ss.open.remove(&log) {
                    write_path::seal_open(self, open, &mut ledger)?;
                }
            }
            ledger.flush_to_central(self);
        }
        // Seal orphaned GC output builders of aborted cycles, retry wounded seals and
        // sync: after this, everything the mapping references is durable on the device.
        write_path::seal_orphans_and_reap(self)?;

        let dirty_mask = if dirty_only {
            self.mapping.take_dirty()
        } else if consume_dirty {
            self.mapping.take_dirty();
            ShardedPageTable::all_dirty_mask()
        } else {
            ShardedPageTable::all_dirty_mask()
        };
        let include_mask = if dirty_only {
            dirty_mask
        } else {
            ShardedPageTable::all_dirty_mask()
        };
        let shards = (0..crate::mapping::PAGE_TABLE_SHARDS)
            .map(|i| (include_mask & (1u64 << i) != 0).then(|| self.mapping.shard_snapshot(i)))
            .collect();
        let (sealed, tombstone_bytes, next_seal_seq) = {
            let central = self.central.lock();
            (
                central.segments.sealed_stats_including_claimed(),
                central.segments.sealed_tombstone_bytes(),
                central.segments.next_seal_seq(),
            )
        };
        let (unow, next_write_seq) = self.counters();
        Ok(CheckpointSnapshot {
            shards,
            sealed,
            tombstone_bytes,
            frontier: next_seal_seq.saturating_sub(1),
            next_seal_seq,
            unow,
            next_write_seq,
            dirty_mask: if consume_dirty { dirty_mask } else { 0 },
        })
    }

    pub(crate) fn install_recovered_state(
        &mut self,
        mapping: PageTable,
        segments: SegmentTable,
        unow: UpdateTick,
        next_write_seq: WriteSeq,
    ) {
        self.mapping.install(mapping);
        let free = segments.free_count();
        let central = self.central.get_mut();
        central.segments = segments;
        self.next_write_seq.store(next_write_seq, Ordering::Relaxed);
        self.unow.store(unow, Ordering::Relaxed);
        self.approx_free.store(free, Ordering::Relaxed);
        // A freshly recovered store has no journal continuity: the next checkpoint
        // rewrites a full base, and the cadence clock starts from the recovered tick.
        // The committed-frontier also resets — after a full scan there is no journal
        // backing it (checkpoint-anchored recovery re-seeds it from its journal).
        *self.ckpt.get_mut() = CheckpointTracker {
            last_unow: unow,
            ..CheckpointTracker::default()
        };
        *self.ckpt_frontier.get_mut() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeparationConfig;
    use crate::policy::PolicyKind;

    fn small_store(policy: PolicyKind) -> LogStore {
        LogStore::open_in_memory(StoreConfig::small_for_tests().with_policy(policy)).unwrap()
    }

    #[test]
    fn put_get_roundtrip_through_buffer_and_device() {
        let store = small_store(PolicyKind::Greedy);
        store.put(1, b"one").unwrap();
        store.put(2, b"two").unwrap();
        // Served from the sort buffer before any flush.
        assert_eq!(store.get(1).unwrap().unwrap().as_ref(), b"one");
        store.flush().unwrap();
        // Served from the device after the flush.
        assert_eq!(store.get(1).unwrap().unwrap().as_ref(), b"one");
        assert_eq!(store.get(2).unwrap().unwrap().as_ref(), b"two");
        assert!(store.get(3).unwrap().is_none());
    }

    #[test]
    fn overwrite_returns_latest_version() {
        let store = small_store(PolicyKind::Greedy);
        store.put(7, b"v1").unwrap();
        store.flush().unwrap();
        store.put(7, b"v2-longer").unwrap();
        assert_eq!(store.get(7).unwrap().unwrap().as_ref(), b"v2-longer");
        store.flush().unwrap();
        assert_eq!(store.get(7).unwrap().unwrap().as_ref(), b"v2-longer");
        assert_eq!(store.live_pages(), 1);
    }

    #[test]
    fn delete_removes_page() {
        let store = small_store(PolicyKind::Greedy);
        store.put(5, b"hello").unwrap();
        store.flush().unwrap();
        assert!(store.contains(5));
        store.delete(5).unwrap();
        assert!(!store.contains(5));
        assert!(store.get(5).unwrap().is_none());
        store.flush().unwrap();
        assert!(store.get(5).unwrap().is_none());
        assert_eq!(store.live_pages(), 0);
    }

    #[test]
    fn delete_of_missing_page_is_a_noop() {
        let store = small_store(PolicyKind::Greedy);
        store.delete(99).unwrap();
        store.flush().unwrap();
        assert!(store.get(99).unwrap().is_none());
    }

    #[test]
    fn oversized_page_is_rejected() {
        let store = small_store(PolicyKind::Greedy);
        let huge = vec![1u8; store.config().segment_bytes];
        let err = store.put(1, &huge).unwrap_err();
        assert!(matches!(err, Error::PageTooLarge { .. }));
    }

    #[test]
    fn stats_count_user_writes_and_reads() {
        let store = small_store(PolicyKind::Greedy);
        for i in 0..10u64 {
            store.put(i, b"abcdefgh").unwrap();
        }
        store.flush().unwrap();
        for i in 0..10u64 {
            assert!(store.get(i).unwrap().is_some());
        }
        let s = store.stats();
        assert_eq!(s.user_pages_written, 10);
        assert_eq!(s.user_bytes_written, 80);
        assert_eq!(s.pages_read, 10);
        assert!(s.segments_sealed >= 1);
    }

    #[test]
    fn cleaning_reclaims_space_under_overwrites() {
        // Overwrite a small working set far more than the device could hold without
        // cleaning; the store must keep functioning and its write amplification must stay
        // sane.
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
        let pages = config.logical_pages_for_fill_factor(0.6) as u64;
        let store = LogStore::open_with_device(
            config.clone(),
            Box::new(MemDevice::new(config.segment_bytes, config.num_segments)),
        )
        .unwrap();
        let payload = vec![7u8; config.page_bytes];
        // Pre-fill, then overwrite in a scrambled order so victims are checkerboards
        // (sequential overwrites would let greedy find fully-empty segments and never
        // move a page).
        for i in 0..pages {
            store.put(i, &payload).unwrap();
        }
        let total_writes = (config.physical_pages() * 5) as u64;
        for i in 0..total_writes {
            store.put(crate::util::mix64(i) % pages, &payload).unwrap();
        }
        store.flush().unwrap();
        let s = store.stats();
        assert!(s.cleaning_cycles > 0, "cleaning never ran");
        assert!(s.gc_pages_written > 0);
        assert_eq!(store.live_pages() as u64, pages);
        // Every page must still be readable and current.
        for i in 0..pages {
            assert!(
                store.get(i).unwrap().is_some(),
                "page {i} lost after cleaning"
            );
        }
        // With F=0.6 the analysis bounds W_amp well below 2 for greedy under uniform.
        assert!(
            s.write_amplification() < 3.0,
            "write amplification {} unexpectedly high",
            s.write_amplification()
        );
    }

    #[test]
    fn cleaning_works_with_every_policy() {
        for kind in PolicyKind::ALL {
            let config = StoreConfig::small_for_tests().with_policy(kind);
            let pages = config.logical_pages_for_fill_factor(0.5) as u64;
            let store = LogStore::open_in_memory(config.clone()).unwrap();
            let payload = vec![1u8; config.page_bytes];
            for i in 0..(config.physical_pages() as u64 * 4) {
                store.put(i % pages, &payload).unwrap();
            }
            store.flush().unwrap();
            assert_eq!(store.live_pages() as u64, pages, "policy {kind} lost pages");
            for i in 0..pages {
                assert!(
                    store.get(i).unwrap().is_some(),
                    "policy {kind} lost page {i}"
                );
            }
        }
    }

    #[test]
    fn out_of_space_is_reported_not_hung() {
        // Fill factor ~1.0: more logical data than the device can hold with slack.
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
        let store = LogStore::open_in_memory(config.clone()).unwrap();
        let payload = vec![0u8; config.page_bytes];
        let mut result = Ok(());
        for i in 0..(config.physical_pages() as u64 * 2) {
            result = store.put(i, &payload); // never overwrites: pure growth
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(Error::OutOfSpace { .. })));
    }

    #[test]
    fn manual_clean_now_runs_a_cycle() {
        let store = small_store(PolicyKind::Greedy);
        let payload = vec![3u8; store.config().page_bytes];
        for i in 0..64u64 {
            store.put(i % 16, &payload).unwrap();
        }
        store.flush().unwrap();
        let report = store.clean_now().unwrap();
        // Overwrites above guarantee some segments have reclaimable space.
        assert!(!report.victims.is_empty());
        for i in 0..16u64 {
            assert!(store.get(i).unwrap().is_some());
        }
    }

    #[test]
    fn absorption_in_buffer_reduces_segment_writes() {
        let mut config = StoreConfig::small_for_tests();
        config.absorb_updates_in_buffer = true;
        config.sort_buffer_segments = 4;
        let absorbing = LogStore::open_in_memory(config.clone()).unwrap();
        for _ in 0..100 {
            absorbing.put(1, b"same-page").unwrap();
        }
        absorbing.flush().unwrap();
        assert!(absorbing.stats().absorbed_in_buffer > 0);
        assert_eq!(absorbing.live_pages(), 1);
    }

    #[test]
    fn separation_config_none_still_preserves_data() {
        let config = StoreConfig::small_for_tests()
            .with_policy(PolicyKind::Mdc)
            .with_separation(SeparationConfig::none());
        let pages = config.logical_pages_for_fill_factor(0.5) as u64;
        let store = LogStore::open_in_memory(config.clone()).unwrap();
        let payload = vec![9u8; config.page_bytes];
        for i in 0..(config.physical_pages() as u64 * 3) {
            store.put(i % pages, &payload).unwrap();
        }
        store.flush().unwrap();
        for i in 0..pages {
            assert!(store.get(i).unwrap().is_some());
        }
    }

    #[test]
    fn fill_factor_reflects_live_data() {
        let store = small_store(PolicyKind::Greedy);
        assert_eq!(store.fill_factor(), 0.0);
        let payload = vec![1u8; store.config().page_bytes];
        let quarter = store.config().logical_pages_for_fill_factor(0.25) as u64;
        for i in 0..quarter {
            store.put(i, &payload).unwrap();
        }
        store.flush().unwrap();
        let f = store.fill_factor();
        assert!((f - 0.25).abs() < 0.05, "fill factor {f} not near 0.25");
    }

    #[test]
    fn variable_size_payloads_are_supported() {
        let store = small_store(PolicyKind::Mdc);
        for i in 0..200u64 {
            let size = 1 + (i as usize * 7) % 200;
            store.put(i, &vec![i as u8; size]).unwrap();
        }
        store.flush().unwrap();
        for i in 0..200u64 {
            let size = 1 + (i as usize * 7) % 200;
            let v = store.get(i).unwrap().unwrap();
            assert_eq!(v.len(), size);
            assert!(v.iter().all(|&b| b == i as u8));
        }
    }

    #[test]
    fn reads_do_not_require_exclusive_access() {
        // `get` on a shared reference from several threads at once — the compile-time
        // core of the concurrent-pipeline refactor, exercised at runtime.
        let store = std::sync::Arc::new(small_store(PolicyKind::Mdc));
        for i in 0..64u64 {
            store.put(i, format!("v-{i}").as_bytes()).unwrap();
        }
        store.flush().unwrap();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..200u64 {
                    let page = (t * 31 + round) % 64;
                    let got = store.get(page).unwrap().unwrap();
                    assert_eq!(got.as_ref(), format!("v-{page}").as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn pages_route_to_stable_streams_and_cover_all_of_them() {
        let store = LogStore::open_in_memory(
            StoreConfig::small_for_tests()
                .with_policy(PolicyKind::Greedy)
                .with_write_streams(4),
        )
        .unwrap();
        assert_eq!(store.write_stream_count(), 4);
        let mut seen = vec![false; 4];
        for page in 0..256u64 {
            let s = store.stream_of_page(page);
            assert!(s < 4);
            // Routing is a pure function of the page id.
            assert_eq!(s, store.stream_of_page(page));
            seen[s] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "a stream received no pages: {seen:?}"
        );
    }
}
