//! The sharded write pipeline: per-stream buffering, batch draining, open-segment
//! management, and the short-critical-section coordination with the shared segment
//! table.
//!
//! `put`/`delete` route by page-id hash to one write stream and enqueue into that
//! stream's sort-buffer shard; when the shard reaches its configured size the stream
//! drains it as one batch under the *stream lock*: carry-forward `up2` estimates are
//! assigned (paper §5.2.2), the batch is optionally sorted by the policy's separation
//! key (paper §5.3), and each page is appended to the stream's open segment for its
//! output log. Streams never serialise against each other; they meet only at the
//! central lock, which is held for short bounded operations:
//!
//! * **allocation** — taking a segment off the shared free list (and bumping its
//!   allocation generation);
//! * **seal bookkeeping** — assigning the seal sequence and transitioning metadata; the
//!   (large) device write of the image happens *outside* the central lock, with the
//!   segment hidden from victim selection until the image lands (see
//!   [`crate::segment::SegmentTable::set_image_pending`]);
//! * **batched accounting** — per-page `live_bytes`/`live_pages`/`up2` bookkeeping is
//!   recorded into a [`MetaLedger`] while appending and applied in order under one lock
//!   acquisition per batch (guarded by slot generations, so an op that raced a
//!   clean-release-reuse of its segment is dropped instead of corrupting the new
//!   incarnation's counters).
//!
//! Cleaning is **not** run inline inside a drain. Before taking the stream lock,
//! `submit` checks the free-segment watermark and either kicks the background cleaner
//! or — with no cleaner attached — runs synchronous cycles on the caller's thread
//! ([`ensure_headroom`]); if a drain still runs out of segments, it parks the
//! unprocessed remainder back in the buffer shard, releases the stream lock, lets a
//! cleaning cycle run, and retries. Out-of-space is reported only when a full cycle
//! frees nothing.

use super::{gc_driver, CentralState, GcStreams, LogStore, OpenSegment, StreamState, WriteStream};
use crate::error::{Error, Result};
use crate::freq::{carry_forward_rewrite, first_write_up2, Up2Average};
use crate::layout::{self, SegmentBuilder};
use crate::policy::PolicyContext;
use crate::stats::AtomicStats;
use crate::types::{PageLocation, SegmentId, UpdateTick};
use crate::write_buffer::{sort_by_separation_key, PendingPage};
use parking_lot::{MutexGuard, RwLock};
use std::sync::Arc;

/// Result of draining a stream's buffer shard.
pub(crate) enum DrainOutcome {
    /// Everything was appended.
    Done,
    /// Allocation hit the reserve floor; the remainder was requeued and a cleaning cycle
    /// must run before retrying.
    NeedsCleaning,
}

/// Result of appending one pending page.
pub(crate) enum AppendOutcome {
    /// The page was appended (or was a no-op tombstone).
    Appended,
    /// No segment could be allocated without dipping below the reserve; nothing was
    /// appended (the page stays in the sort buffer for the post-cleaning retry).
    NeedsCleaning,
}

/// One batched per-page accounting operation against the shared segment table.
enum MetaOp {
    /// A live page of `len` bytes was appended to `seg`.
    Added {
        seg: SegmentId,
        gen: u64,
        len: u32,
        exact: Option<f64>,
    },
    /// A live page of `len` bytes in `seg` was superseded (overwritten or deleted) at
    /// update tick `at`.
    Dead {
        seg: SegmentId,
        gen: u64,
        len: u32,
        at: UpdateTick,
        exact: Option<f64>,
    },
    /// A tombstone entry was appended to `seg`: its entry-table footprint is charged
    /// as live space so tombstone-laden segments don't masquerade as empty (see
    /// [`crate::segment::SegmentMeta::tombstone_bytes`]).
    TombstoneAdded { seg: SegmentId, gen: u64 },
}

/// An ordered batch of per-page accounting, applied under one central-lock acquisition.
///
/// Each op carries the allocation generation of its segment slot as observed when the
/// op was recorded; if the slot has since been released and re-allocated (only possible
/// for deaths racing a full clean-reap-reuse of the segment), the op targets a dead
/// incarnation and is dropped. Ops for one segment incarnation are recorded in program
/// order by the only actor that can touch it, so `Added` always lands before the
/// matching `Dead`.
#[derive(Default)]
pub(crate) struct MetaLedger {
    ops: Vec<MetaOp>,
}

impl MetaLedger {
    fn record_added(&mut self, seg: SegmentId, gen: u64, len: u32, exact: Option<f64>) {
        self.ops.push(MetaOp::Added {
            seg,
            gen,
            len,
            exact,
        });
    }

    fn record_dead(
        &mut self,
        seg: SegmentId,
        gen: u64,
        len: u32,
        at: UpdateTick,
        exact: Option<f64>,
    ) {
        self.ops.push(MetaOp::Dead {
            seg,
            gen,
            len,
            at,
            exact,
        });
    }

    pub(crate) fn record_tombstone(&mut self, seg: SegmentId, gen: u64) {
        self.ops.push(MetaOp::TombstoneAdded { seg, gen });
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Apply (and clear) every recorded op against the authoritative segment table.
    /// Call with the central lock held.
    pub(crate) fn apply(&mut self, store: &LogStore, central: &mut CentralState) {
        for op in self.ops.drain(..) {
            match op {
                MetaOp::Added {
                    seg,
                    gen,
                    len,
                    exact,
                } => {
                    if store.segment_gen(seg) == gen {
                        if let Some(meta) = central.segments.meta_mut(seg) {
                            meta.on_page_added(len, exact);
                        }
                    }
                }
                MetaOp::Dead {
                    seg,
                    gen,
                    len,
                    at,
                    exact,
                } => {
                    // A `None` meta means the segment was already released (its
                    // metadata died wholesale with the victim) — nothing to account.
                    if store.segment_gen(seg) == gen {
                        if let Some(meta) = central.segments.meta_mut(seg) {
                            meta.on_page_dead(len, at, exact);
                        }
                    }
                }
                MetaOp::TombstoneAdded { seg, gen } => {
                    if store.segment_gen(seg) == gen {
                        if let Some(meta) = central.segments.meta_mut(seg) {
                            meta.on_tombstone_added();
                        }
                    }
                }
            }
        }
    }

    /// Apply the batch under a fresh central-lock acquisition, if anything is pending.
    pub(crate) fn flush_to_central(&mut self, store: &LogStore) {
        if self.is_empty() {
            return;
        }
        let mut central = store.central().lock();
        self.apply(store, &mut central);
    }
}

/// Entry point for `put`/`delete`: buffer the write into its page's stream and drain
/// that stream if its buffer shard is full.
pub(crate) fn submit(store: &LogStore, pending: PendingPage) -> Result<()> {
    ensure_headroom(store)?;
    let stream = store.stream(pending.info.page);
    let mut ss = stream.state.lock();
    {
        let mut buf = stream.buffer.write();
        if buf.push(pending) {
            AtomicStats::bump(&store.atomic_stats().absorbed_in_buffer);
        }
    }
    if !should_drain(store, stream) {
        return Ok(());
    }
    match drain_stream(store, stream, &mut ss)? {
        DrainOutcome::Done => Ok(()),
        DrainOutcome::NeedsCleaning => {
            drop(ss);
            drain_with_cleaning(store, stream)
        }
    }
}

/// Drain every stream, seal every open segment, sync the device and reap the
/// quarantine: the durability point.
pub(crate) fn flush(store: &LogStore) -> Result<()> {
    let mut stalled = 0;
    'retry: for attempt in 0..MAX_CLEAN_RETRIES {
        for stream in store.streams() {
            let mut ss = stream.state.lock();
            match drain_stream(store, stream, &mut ss)? {
                DrainOutcome::Done => {
                    let mut ledger = MetaLedger::default();
                    let logs: Vec<u16> = ss.open.keys().copied().collect();
                    for log in logs {
                        if let Some(open) = ss.open.remove(&log) {
                            seal_open(store, open, &mut ledger)?;
                        }
                    }
                    ledger.flush_to_central(store);
                }
                DrainOutcome::NeedsCleaning => {
                    drop(ss);
                    // Same escalation ladder as `drain_with_cleaning`: a selective
                    // policy (multi-log frees at most one segment per cycle) can
                    // ping-pong with the drain forever; greedy cycles monotonically
                    // reclaim whatever exists.
                    let mode = if attempt < 2 {
                        gc_driver::SelectionMode::Policy
                    } else {
                        gc_driver::SelectionMode::ForceGreedy
                    };
                    let report = gc_driver::run_cleaning_cycle_with(store, mode)?;
                    if report.segments_freed() == 0 && !reclaim_stragglers(store)? {
                        // Tolerate transient no-progress rounds under concurrent
                        // cleaning (see `drain_with_cleaning`).
                        stalled += 1;
                        if stalled >= MAX_STALLED_ROUNDS {
                            return Err(out_of_space(store));
                        }
                    } else {
                        stalled = 0;
                    }
                    continue 'retry;
                }
            }
        }
        // Every stream is drained and sealed. The tail seals any orphaned GC output
        // builders (left behind by aborted cycles) and syncs: quarantine entries whose
        // owning cycle has not yet sealed its outputs stay *parked* — the per-entry
        // sealed/synced state machine, not a lock, is what keeps this sync from
        // prematurely freeing a concurrent cycle's victims.
        seal_orphans_and_reap(store)?;
        return Ok(());
    }
    Err(out_of_space(store))
}

/// Seal every GC output stream of a cycle (used by the cycle's own phase 4 and by the
/// mid-cycle distress durability point). Device writes happen here; the caller marks
/// the matching quarantine entries sealed afterwards.
pub(crate) fn seal_streams(store: &LogStore, gcs: &mut GcStreams) -> Result<()> {
    let mut ledger = MetaLedger::default();
    let logs: Vec<u16> = gcs.open.keys().copied().collect();
    for log in logs {
        if let Some(open) = gcs.open.remove(&log) {
            seal_open(store, open, &mut ledger)?;
        }
    }
    ledger.flush_to_central(store);
    Ok(())
}

/// The durability tail every sync point shares: retry wounded seals, snapshot the
/// quarantine entries that are already *sealed* (their relocations' device writes were
/// issued before this sync), sync the device, mark exactly that snapshot synced, and
/// reap synced victims without reader pins.
///
/// Entries sealed concurrently *after* the snapshot may have writes the sync does not
/// cover; they simply wait for the next sync point. This is what makes the sequence
/// safe to run concurrently with in-flight cleaning cycles.
pub(crate) fn sync_and_reap(store: &LogStore) -> Result<()> {
    retry_wounded_seals(store)?;
    let candidates = store.central().lock().segments.quarantine_sealed_unsynced();
    store.device().sync()?;
    let mut central = store.central().lock();
    central.segments.mark_quarantine_synced(&candidates);
    central
        .segments
        .reap_quarantine(|id| store.pin_count(id) == 0);
    store.publish_free(&central.segments);
    Ok(())
}

/// Seal the orphaned GC output builders of aborted cycles, adopt their quarantine
/// entries (mark them sealed once every orphan builder and wounded seal has reached the
/// device), then sync and reap. The orphan lock is held across seal + adopt so a
/// concurrently aborting cycle either hands over its builders *and* entries before this
/// pass (both get processed) or after it (both wait for the next pass) — never one
/// without the other.
pub(crate) fn seal_orphans_and_reap(store: &LogStore) -> Result<()> {
    {
        let mut orphans = store.gc_orphans().lock();
        let mut ledger = MetaLedger::default();
        while let Some(open) = orphans.pop() {
            seal_open(store, open, &mut ledger)?;
        }
        ledger.flush_to_central(store);
        retry_wounded_seals(store)?;
        let mut central = store.central().lock();
        central
            .segments
            .quarantine_mark_sealed(crate::segment::ORPHAN_CYCLE);
    }
    sync_and_reap(store)
}

/// Maximum clean-and-retry iterations before reporting out-of-space. Each iteration
/// requires the preceding cycle to have freed at least one segment, so this bound is
/// only reached on pathological configurations.
const MAX_CLEAN_RETRIES: usize = 64;

/// How many *consecutive* rounds of "cycle freed nothing and the straggler sweep did
/// not grow the pool" a writer tolerates before declaring out-of-space. Under
/// concurrent cleaning a single such round is routinely transient (victims claimed by
/// peers, freed segments raced away by other writers).
const MAX_STALLED_ROUNDS: usize = 3;

fn out_of_space(store: &LogStore) -> Error {
    if std::env::var("LSS_DEBUG_OOS").is_ok() {
        let central = store.central().lock();
        let sealed = central.segments.sealed_stats();
        let meta_live: u64 = central.segments.iter_meta().map(|m| m.live_bytes).sum();
        let sealed_free: u64 = sealed.iter().map(|s| s.free_bytes).sum();
        eprintln!(
            "OOS: free={} quarantine={} claimed={} sealed={} sealed_free_bytes={} meta_live={} map_live={} map_pages={}",
            central.segments.free_count(),
            central.segments.quarantine_len(),
            central.segments.claimed_count(),
            sealed.len(),
            sealed_free,
            meta_live,
            store.mapping().live_bytes(),
            store.mapping().len(),
        );
    }
    Error::OutOfSpace {
        free_segments: store.approx_free_segments(),
        needed: store.config().cleaning.reserved_free_segments + 1,
    }
}

/// Keep the free pool above the cleaning trigger *before* entering the stream lock.
///
/// With a background cleaner attached this only kicks its condvar (and, at the hard
/// reserve floor, lends the caller's thread to one synchronous cycle so writers cannot
/// outrun the cleaner). Without one, cycles run synchronously here until the pool is
/// above the trigger or a cycle makes no progress.
pub(crate) fn ensure_headroom(store: &LogStore) -> Result<()> {
    let trigger = store.effective_clean_trigger();
    if store.approx_free_segments() > trigger {
        return Ok(());
    }
    if store.gc.background_attached() {
        store.gc.kick();
        if store.approx_free_segments() <= store.config().cleaning.reserved_free_segments + 1 {
            // The writer outran the pool all the way to the reserve floor: the
            // strongest pressure signal there is. Record it (and escalate the
            // adaptive target to its maximum) before lending this thread to a cycle.
            gc_driver::note_writer_stall(store, false);
            gc_driver::run_cleaning_cycle(store)?;
        }
        return Ok(());
    }
    for _ in 0..MAX_CLEAN_RETRIES {
        if store.approx_free_segments() > trigger {
            break;
        }
        let free_before = store.approx_free_segments();
        let report = gc_driver::run_cleaning_cycle(store)?;
        // Stop on no progress — no victims, or a cycle whose GC output consumed
        // everything it freed. The drain path escalates harder if allocation
        // actually fails.
        if report.segments_freed() == 0 || store.approx_free_segments() <= free_before {
            break;
        }
    }
    Ok(())
}

/// Last line of defence before declaring out-of-space: dead space can be parked in the
/// quarantine — either stragglers whose reap was skipped because a reader happened to
/// hold a pin at the wrong instant, or whole batches of victims that *concurrent*
/// cycles are about to recycle, or victims those cycles have claimed. None of that is
/// visible to victim selection, so a cycle that frees nothing does not prove the store
/// is full. This quiesces the cycle gate — waiting out every in-flight cycle, whose own
/// phase 4 reaps its victims (no stream lock is held here, so blocking is safe) — then
/// forces a seal-orphans + sync + reap pass. Returns true if the free pool grew — from
/// the concurrent cycles' own reaps or from ours — meaning the caller should retry
/// instead of erroring.
fn reclaim_stragglers(store: &LogStore) -> Result<bool> {
    // Straggler sweeps are the adaptive controller's second stall signal: a writer got
    // desperate enough to quiesce the cycle gate.
    gc_driver::note_writer_stall(store, true);
    let before = store.approx_free_segments();
    drop(store.gc.quiesce());
    emergency_reclaim(store, true)?;
    Ok(store.approx_free_segments() > before)
}

/// Clean-then-retry loop for a stream drain that ran out of segments mid-batch.
///
/// The first attempts let the configured policy pick victims; if that does not unblock
/// the drain (a selective policy can net almost nothing per cycle under distress), the
/// loop escalates to full-batch greedy cycles, which monotonically reclaim whatever is
/// reclaimable. Out-of-space is reported only once even a greedy cycle plus a
/// quarantine sweep ([`reclaim_stragglers`]) free nothing.
fn drain_with_cleaning(store: &LogStore, stream: &WriteStream) -> Result<()> {
    let mut stalled = 0;
    for attempt in 0..MAX_CLEAN_RETRIES {
        let mode = if attempt < 2 {
            gc_driver::SelectionMode::Policy
        } else {
            gc_driver::SelectionMode::ForceGreedy
        };
        let report = gc_driver::run_cleaning_cycle_with(store, mode)?;
        let mut ss = stream.state.lock();
        match drain_stream(store, stream, &mut ss)? {
            DrainOutcome::Done => return Ok(()),
            DrainOutcome::NeedsCleaning => {
                if report.segments_freed() > 0 {
                    stalled = 0;
                } else {
                    drop(ss);
                    if reclaim_stragglers(store)? {
                        stalled = 0;
                    } else {
                        // With concurrent cleaners, one empty round proves little:
                        // our cycle can find everything claimed by peers, and the
                        // segments a straggler sweep frees can be snapped up by
                        // other writers before we re-observe the pool. Only
                        // *consecutive* no-progress rounds — each having waited out
                        // every in-flight cycle — demonstrate genuine exhaustion.
                        stalled += 1;
                        if stalled >= MAX_STALLED_ROUNDS {
                            return Err(out_of_space(store));
                        }
                    }
                }
            }
        }
    }
    Err(out_of_space(store))
}

fn sort_buffer_capacity_bytes(store: &LogStore) -> usize {
    store.config().sort_buffer_segments
        * layout::payload_capacity(store.config().segment_bytes, store.config().page_bytes)
}

/// A stream drains when its shard holds the full configured sort-buffer budget.
///
/// The budget is deliberately *per stream*, not divided by the stream count: the
/// sort buffer exists to batch enough pages that carry-forward `up2` estimates and
/// frequency-separated packing work (paper §5.3, Figure 4), and that quality depends on
/// the *batch* size each drain sorts. Dividing the budget across streams was measured
/// to cost ~20-30% write amplification at 8 streams — the aggregate memory ceiling
/// (streams × budget) is the cheaper price.
fn should_drain(store: &LogStore, stream: &WriteStream) -> bool {
    let (payload_bytes, len) = {
        let buf = stream.buffer.read();
        (buf.payload_bytes(), buf.len())
    };
    let sbs = store.config().sort_buffer_segments;
    sbs == 0 || payload_bytes >= sort_buffer_capacity_bytes(store) || len >= sbs.max(1) * 4096
}

/// Ask the policy for a page's output log and separation key. Shared by the user drain
/// and the GC cycle so user and GC placement can never silently diverge. The caller
/// holds the central lock (the policy lives there).
pub(crate) fn route_page(
    policy: &mut Box<dyn crate::policy::CleaningPolicy>,
    unow: UpdateTick,
    separate: bool,
    info: &crate::types::PageWriteInfo,
) -> (u16, Option<f64>) {
    let log = if policy.num_logs() > 1 {
        let ctx = PolicyContext {
            unow,
            segments: &[],
        };
        policy.log_for_page(info, &ctx)
    } else {
        0
    };
    let key = if separate {
        policy.separation_key(info)
    } else {
        None
    };
    (log, key)
}

/// One snapshot entry being drained: the pending write plus its routing decisions.
struct DrainItem {
    slot: usize,
    page: PendingPage,
    log: u16,
    key: Option<f64>,
}

/// Assign carried `up2` values to the stream's buffered batch (paper §5.2.2) and hand
/// every page to an open segment, sorted by the policy's separation key if configured.
///
/// The buffer shard is *snapshotted*, not drained up front: an entry keeps serving
/// reads until its page has a page-table entry, and is removed individually right after
/// its append (all under the continuously held stream lock) — so a reader always finds
/// an acknowledged write in the buffer or in the page table, never in neither. If the
/// batch stops early for cleaning, only the unprocessed remainder stays buffered; the
/// post-cleaning retry re-snapshots exactly that remainder.
pub(crate) fn drain_stream(
    store: &LogStore,
    stream: &WriteStream,
    ss: &mut MutexGuard<'_, StreamState>,
) -> Result<DrainOutcome> {
    let mut batch = stream.buffer.read().snapshot_indexed();
    if batch.is_empty() {
        return Ok(DrainOutcome::Done);
    }
    let unow = store.unow();
    let separate = store.config().separation.separate_user_writes;

    // Prefetch each page's current location with no lock held: the page-table lookups
    // are the expensive part of the estimate pass, and they only feed heuristics — if
    // the cleaner relocates a page between this read and the metadata read below, the
    // worst case is a slightly-off `up2` estimate for that one page.
    let old_locs: Vec<Option<PageLocation>> = batch
        .iter()
        .map(|(_, p)| store.mapping().get(p.info.page))
        .collect();

    // One central-lock pass over the batch: carried `up2` (needs old-segment metadata),
    // output-log routing and separation keys (both need the policy).
    let mut items: Vec<DrainItem> = {
        let mut central = store.central().lock();
        let CentralState { segments, policy } = &mut *central;

        // First pass: pages with history inherit from their previous segment.
        let mut coldest = None;
        let mut has_history = vec![false; batch.len()];
        for (i, (_, p)) in batch.iter_mut().enumerate() {
            if let Some(loc) = old_locs[i] {
                let old_up2 = segments
                    .meta(loc.segment)
                    .map(|m| m.freq.up2())
                    .unwrap_or_default();
                p.info.up2 = carry_forward_rewrite(old_up2, unow);
                has_history[i] = true;
                coldest = Some(match coldest {
                    Some(c) if c < p.info.up2 => c,
                    _ => p.info.up2,
                });
            }
        }
        // Second pass: first writes get the coldest estimate seen in the batch.
        let cold = first_write_up2(coldest);
        for (i, (_, p)) in batch.iter_mut().enumerate() {
            if !has_history[i] {
                p.info.up2 = cold;
            }
        }

        batch
            .into_iter()
            .map(|(slot, p)| {
                let (log, key) = route_page(policy, unow, separate, &p.info);
                DrainItem {
                    slot,
                    page: p,
                    log,
                    key,
                }
            })
            .collect()
    };

    if separate {
        sort_by_separation_key(&mut items, |it: &DrainItem| it.key);
    }

    let mut ledger = MetaLedger::default();
    for item in items {
        match append_page(store, ss, &mut ledger, item.page, item.log)? {
            AppendOutcome::Appended => {
                // The page is mapped; its buffer copy is now redundant.
                stream.buffer.write().remove_slot(item.slot);
            }
            AppendOutcome::NeedsCleaning => {
                // The remainder (this page onward) stays in the buffer for the retry.
                ledger.flush_to_central(store);
                return Ok(DrainOutcome::NeedsCleaning);
            }
        }
    }
    ledger.flush_to_central(store);
    Ok(DrainOutcome::Done)
}

/// Append one pending user page to the stream's open segment for `log`, updating the
/// page table and recording the death of the previous version.
fn append_page(
    store: &LogStore,
    ss: &mut MutexGuard<'_, StreamState>,
    ledger: &mut MetaLedger,
    p: PendingPage,
    log: u16,
) -> Result<AppendOutcome> {
    if p.is_tombstone() {
        return append_tombstone(store, ss, ledger, p, log);
    }

    let data = p
        .data
        .clone()
        .expect("non-tombstone pending page must carry a payload in the real store");
    if !ensure_open(store, ss, ledger, log, data.len())? {
        return Ok(AppendOutcome::NeedsCleaning);
    }
    let seq = store.take_write_seq();
    ss.use_tick += 1;
    let tick = ss.use_tick;
    let open = ss
        .open
        .get_mut(&log)
        .expect("ensure_open just installed this log");
    open.last_used = tick;
    let offset = open.builder.write().push_page(p.info.page, seq, &data);
    open.up2_avg.add(p.info.up2);
    let loc = PageLocation {
        segment: open.id,
        offset,
        len: data.len() as u32,
        write_seq: seq,
    };
    ledger.record_added(open.id, open.gen, data.len() as u32, p.info.exact_freq);
    commit_user_remap(store, ledger, &p, loc);
    Ok(AppendOutcome::Appended)
}

/// Point the page table at a freshly appended user copy and record the death of the
/// previous copy against the segment incarnation that actually held it.
///
/// The old location's allocation generation must be captured while that location is
/// still *current* — a generation read after the transition could observe a slot that a
/// concurrent clean-release-reuse has already handed to a new open segment, and the
/// death would then corrupt the new incarnation's live counters. So the transition is a
/// compare-and-swap against the observed old location: if it succeeds, the mapping
/// still pointed at the old copy at swap time, which (by remap-before-release) proves
/// its segment was un-recycled for the whole observation window and the generation is
/// the right one. A failed swap means the cleaner relocated the page between our read
/// and the swap — retry with the new location; user writes to this page cannot race us
/// (they serialise on the stream lock we hold).
fn commit_user_remap(
    store: &LogStore,
    ledger: &mut MetaLedger,
    p: &PendingPage,
    loc: PageLocation,
) {
    loop {
        match store.mapping().get(p.info.page) {
            None => {
                // Absent pages stay absent until we insert (only user writes create
                // mappings, and they hold this stream's lock).
                let old = store.mapping().insert(p.info.page, loc);
                debug_assert!(old.is_none(), "page appeared while its stream was locked");
                return;
            }
            Some(old) => {
                let gen = store.segment_gen(old.segment);
                if store.mapping().replace_if_current(p.info.page, &old, loc) {
                    ledger.record_dead(old.segment, gen, old.len, store.unow(), p.info.exact_freq);
                    return;
                }
                // Lost a race with a GC relocation; re-observe and retry.
            }
        }
    }
}

fn append_tombstone(
    store: &LogStore,
    ss: &mut MutexGuard<'_, StreamState>,
    ledger: &mut MetaLedger,
    p: PendingPage,
    log: u16,
) -> Result<AppendOutcome> {
    let page = p.info.page;
    if store.mapping().get(page).is_none() {
        // The page does not exist on the device; nothing to delete or record.
        return Ok(AppendOutcome::Appended);
    }
    if !ensure_open(store, ss, ledger, log, 0)? {
        return Ok(AppendOutcome::NeedsCleaning);
    }
    // Same generation-capture discipline as `commit_user_remap`, for removal.
    loop {
        let Some(old) = store.mapping().get(page) else {
            return Ok(AppendOutcome::Appended);
        };
        let gen = store.segment_gen(old.segment);
        if store.mapping().remove_if_current(page, &old) {
            ledger.record_dead(old.segment, gen, old.len, store.unow(), None);
            break;
        }
    }
    let seq = store.take_write_seq();
    ss.use_tick += 1;
    let tick = ss.use_tick;
    let open = ss
        .open
        .get_mut(&log)
        .expect("ensure_open just installed this log");
    open.last_used = tick;
    open.builder.write().push_tombstone(page, seq);
    ledger.record_tombstone(open.id, open.gen);
    Ok(AppendOutcome::Appended)
}

/// Make sure the stream has an open segment for `log` with room for a payload of `len`
/// bytes, sealing the current one and allocating a fresh segment if necessary. Returns
/// false if allocation would dip below the user reserve (the caller must let cleaning
/// run).
fn ensure_open(
    store: &LogStore,
    ss: &mut MutexGuard<'_, StreamState>,
    ledger: &mut MetaLedger,
    log: u16,
    len: usize,
) -> Result<bool> {
    if let Some(open) = ss.open.get(&log) {
        if open.builder.read().fits(len) {
            return Ok(true);
        }
    }
    if let Some(full) = ss.open.remove(&log) {
        seal_open(store, full, ledger)?;
    }
    // Bound how many logs this stream keeps open at once (multi-log wants up to 32
    // across the whole store): seal the least-recently-used open segment to make room.
    let cap = store.max_open_logs_per_stream();
    while ss.open.len() >= cap {
        let lru = ss
            .open
            .iter()
            .min_by_key(|(_, o)| o.last_used)
            .map(|(&l, _)| l)
            .expect("open map is non-empty");
        let open = ss.open.remove(&lru).expect("lru key just observed");
        seal_open(store, open, ledger)?;
    }
    let Some((id, gen)) = allocate_user_segment(store, ledger, log)? else {
        return Ok(false);
    };
    let builder = Arc::new(RwLock::new(SegmentBuilder::new(
        store.config().segment_bytes,
    )));
    store.open_reads().write().insert(id, Arc::clone(&builder));
    ss.use_tick += 1;
    let tick = ss.use_tick;
    ss.open.insert(
        log,
        OpenSegment {
            id,
            builder,
            up2_avg: Up2Average::new(),
            log,
            gen,
            last_used: tick,
        },
    );
    store.note_open_delta(1);
    Ok(true)
}

/// Seal an open segment: finalise its image, write it to the device and transition its
/// metadata to `Sealed`. Empty builders just release the segment. Shared by the user
/// streams (caller holds the stream lock) and the GC streams (caller holds the cycle
/// lock).
///
/// The central lock is held only for the bookkeeping on either side of the device
/// write; while the image write is in flight the segment is flagged *image-pending* so
/// victim selection cannot pick a segment whose on-device image does not exist yet.
/// Ordering matters for the lock-free read path: the image is written to the device
/// *before* the builder is removed from the open-segment read index, so a reader that
/// misses the index is guaranteed to find the image on the device.
pub(crate) fn seal_open(
    store: &LogStore,
    open: OpenSegment,
    ledger: &mut MetaLedger,
) -> Result<()> {
    store.note_open_delta(-1);
    if open.builder.read().is_empty() {
        // Remove from the read index *before* releasing the slot: the moment the slot
        // is back on the free list another stream may allocate it and register a new
        // builder under the same id, which a late removal would clobber.
        store.open_reads().write().remove(&open.id);
        let mut central = store.central().lock();
        ledger.apply(store, &mut central);
        central.segments.release(open.id);
        store.publish_free(&central.segments);
        return Ok(());
    }
    let unow = store.unow();
    let carried_up2 = open.up2_avg.mean_or(unow);
    let seal_seq = {
        let mut central = store.central().lock();
        // Accounting recorded for this segment must land before its stats freeze.
        ledger.apply(store, &mut central);
        let seq = central
            .segments
            .seal(open.id, unow, carried_up2, store.config().up2_mode);
        central.segments.set_image_pending(open.id, true);
        seq
    };
    let image = open
        .builder
        .write()
        .finish_image(seal_seq, unow, carried_up2, open.log);
    if let Err(e) = store.device().write_segment(open.id, &image) {
        // Park the finished image as a *wounded seal*: the builder stays registered in
        // `open_reads` (pages remain readable), the segment stays image-pending (never
        // a victim), and every sync point retries the write via
        // [`retry_wounded_seals`] — so a later flush either lands this image or keeps
        // failing, instead of silently reporting durability for data that never
        // reached the device.
        store.wounded_seals().lock().push((open.id, image));
        return Err(e);
    }
    AtomicStats::bump(&store.atomic_stats().segments_sealed);
    store.open_reads().write().remove(&open.id);
    let mut central = store.central().lock();
    central.segments.set_image_pending(open.id, false);
    store.publish_free(&central.segments);
    Ok(())
}

/// Retry the device writes of any wounded seals (see [`seal_open`]). Called before
/// every sync point so a sync never "completes" a flush while a sealed image is still
/// missing from the device. On success the segment finishes its normal seal transition;
/// on failure the error propagates and the image stays parked for the next attempt.
fn retry_wounded_seals(store: &LogStore) -> Result<()> {
    let mut wounded = store.wounded_seals().lock();
    while let Some((id, image)) = wounded.last() {
        let id = *id;
        store.device().write_segment(id, image)?;
        AtomicStats::bump(&store.atomic_stats().segments_sealed);
        store.open_reads().write().remove(&id);
        {
            let mut central = store.central().lock();
            central.segments.set_image_pending(id, false);
            store.publish_free(&central.segments);
        }
        wounded.pop();
    }
    Ok(())
}

/// Allocate a free segment for a user stream.
///
/// User allocations stop at the reserve floor (returning `None` so the caller can let a
/// cleaning cycle run); the reserve exists so GC relocations always have destinations.
/// When the pool runs dry this first tries to reclaim quarantined victims via
/// [`try_emergency_reclaim`]. Returns the segment plus its new allocation generation.
fn allocate_user_segment(
    store: &LogStore,
    ledger: &mut MetaLedger,
    log: u16,
) -> Result<Option<(SegmentId, u64)>> {
    let reserved = store.config().cleaning.reserved_free_segments;
    let capacity =
        layout::payload_capacity(store.config().segment_bytes, store.config().page_bytes) as u64;
    for attempt in 0..2 {
        {
            let mut central = store.central().lock();
            ledger.apply(store, &mut central);
            if central.segments.free_count() > reserved {
                if let Some(id) = central
                    .segments
                    .allocate(capacity, log, store.config().up2_mode)
                {
                    store.bump_segment_gen(id);
                    let gen = store.segment_gen(id);
                    store.publish_free(&central.segments);
                    return Ok(Some((id, gen)));
                }
            }
        }
        if attempt == 0 {
            emergency_reclaim(store, false)?;
        }
    }
    Ok(None)
}

/// Escape hatch under allocation pressure: make already-sealed relocated pages durable
/// right now (sync the device) so quarantined victims become reusable, sealing any
/// orphaned GC output builders along the way.
///
/// Safe to run concurrently with in-flight cleaning cycles: the per-entry quarantine
/// state machine guarantees this pass can only free victims whose relocations are
/// already on the device — a live cycle's still-parked entries are untouched. The
/// allocation path calls it with `blocking = false` while holding a stream lock (it
/// must never touch the cycle gate there — a quiescing checkpoint acquires the gate
/// first and the stream locks second); `blocking = true` callers hold no stream lock
/// and additionally retry pin-skipped reaps (see [`reclaim_stragglers`]).
fn emergency_reclaim(store: &LogStore, blocking: bool) -> Result<()> {
    {
        let orphans_empty = store.gc_orphans().lock().is_empty();
        let wounded_empty = store.wounded_seals().lock().is_empty();
        if orphans_empty
            && wounded_empty
            && store.central().lock().segments.quarantine_reclaimable() == 0
        {
            // Nothing this pass could free: no orphan builders to seal, no wounded
            // images to retry, and every quarantined victim (if any) is still parked
            // under a live cycle whose own phase 4 is the only thing that can move it
            // forward. Skip the pointless device sync — the non-blocking caller holds
            // a stream lock, and an fsync there would stall the stream for nothing.
            return Ok(());
        }
    }
    seal_orphans_and_reap(store)?;
    if blocking {
        // Quarantine entries can survive the reap only because a reader happened to
        // hold a pin at that instant — pins last microseconds. When the caller is
        // about to declare out-of-space, a brief bounded retry is worth far more than
        // a false failure.
        for _ in 0..64 {
            let mut central = store.central().lock();
            if central.segments.quarantine_len() == 0 {
                break;
            }
            if central
                .segments
                .reap_quarantine(|id| store.pin_count(id) == 0)
                > 0
            {
                store.publish_free(&central.segments);
                break;
            }
            drop(central);
            std::thread::yield_now();
        }
    }
    Ok(())
}
