//! The write pipeline: buffering, batch draining, open-segment management and segment
//! allocation — everything guarded by the store's single write mutex.
//!
//! `put`/`delete` enqueue into the sort buffer and, when the buffer reaches its
//! configured size, drain it as one batch: carry-forward `up2` estimates are assigned
//! (paper §5.2.2), the batch is optionally sorted by the policy's separation key
//! (paper §5.3), and each page is appended to the open segment of its (origin, log)
//! stream.
//!
//! Cleaning is **not** run inline inside the drain (the seed design cleaned while
//! holding the write state, stalling every other writer). Instead:
//!
//! * before taking the write lock, `submit` checks the free-segment watermark and either
//!   kicks the background cleaner or — with no cleaner attached — runs synchronous
//!   cycles on the caller's thread ([`ensure_headroom`]);
//! * if a drain still runs out of segments (allocation would dip below the reserve), it
//!   parks the unprocessed remainder back at the front of the sort buffer, releases the
//!   write lock, lets a cleaning cycle run, and retries. Out-of-space is reported only
//!   when a full cycle frees nothing.

use super::{gc_driver, LogStore, OpenKey, OpenSegment, WriteState};
use crate::error::{Error, Result};
use crate::freq::{carry_forward_rewrite, first_write_up2, Up2Average};
use crate::layout::{self, SegmentBuilder};
use crate::policy::PolicyContext;
use crate::stats::AtomicStats;
use crate::types::{PageLocation, SegmentId, WriteOrigin};
use crate::write_buffer::{sort_by_separation_key, PendingPage};
use parking_lot::{MutexGuard, RwLock};
use std::sync::Arc;

/// Result of draining the sort buffer.
pub(crate) enum DrainOutcome {
    /// Everything was appended.
    Done,
    /// Allocation hit the reserve floor; the remainder was requeued and a cleaning cycle
    /// must run before retrying.
    NeedsCleaning,
}

/// Result of appending one pending page.
pub(crate) enum AppendOutcome {
    /// The page was appended (or was a no-op tombstone).
    Appended,
    /// No segment could be allocated without dipping below the reserve; nothing was
    /// appended (the page stays in the sort buffer for the post-cleaning retry).
    NeedsCleaning,
}

/// Entry point for `put`/`delete`: buffer the write and drain if the buffer is full.
pub(crate) fn submit(store: &LogStore, pending: PendingPage) -> Result<()> {
    ensure_headroom(store)?;
    let mut ws = store.write_state().lock();
    {
        let mut buf = store.buffer().write();
        if buf.push(pending) {
            AtomicStats::bump(&store.atomic_stats().absorbed_in_buffer);
        }
    }
    if !should_drain(store) {
        return Ok(());
    }
    match drain_user_buffer(store, &mut ws)? {
        DrainOutcome::Done => Ok(()),
        DrainOutcome::NeedsCleaning => {
            drop(ws);
            drain_with_cleaning(store)
        }
    }
}

/// Drain the sort buffer, seal every open segment, sync the device and reap the
/// quarantine: the durability point.
pub(crate) fn flush(store: &LogStore) -> Result<()> {
    for _attempt in 0..MAX_CLEAN_RETRIES {
        let mut ws = store.write_state().lock();
        match drain_user_buffer(store, &mut ws)? {
            DrainOutcome::Done => {
                let keys: Vec<OpenKey> = ws.open.keys().copied().collect();
                for key in keys {
                    if let Some(open) = ws.open.remove(&key) {
                        seal_open(store, &mut ws, open)?;
                    }
                }
                // Sync and mark the quarantine in the SAME critical section as the
                // seals: releasing the lock in between would let a concurrent cleaning
                // cycle quarantine a fresh victim whose relocated pages are still only
                // in unsealed GC builders — marking that victim synced here would allow
                // its slot to be rewritten before the copies are durable.
                store.device().sync()?;
                ws.segments.mark_quarantine_synced();
                ws.segments.reap_quarantine(|id| store.pin_count(id) == 0);
                store.publish_free(&ws);
                return Ok(());
            }
            DrainOutcome::NeedsCleaning => {
                drop(ws);
                let report = gc_driver::run_cleaning_cycle(store)?;
                if report.segments_freed() == 0 {
                    return Err(out_of_space(store));
                }
            }
        }
    }
    Err(out_of_space(store))
}

/// Maximum clean-and-retry iterations before reporting out-of-space. Each iteration
/// requires the preceding cycle to have freed at least one segment, so this bound is
/// only reached on pathological configurations.
const MAX_CLEAN_RETRIES: usize = 64;

fn out_of_space(store: &LogStore) -> Error {
    Error::OutOfSpace {
        free_segments: store.approx_free_segments(),
        needed: store.config().cleaning.reserved_free_segments + 1,
    }
}

/// Keep the free pool above the cleaning trigger *before* entering the write lock.
///
/// With a background cleaner attached this only kicks its condvar (and, at the hard
/// reserve floor, lends the caller's thread to one synchronous cycle so writers cannot
/// outrun the cleaner). Without one, cycles run synchronously here until the pool is
/// above the trigger or a cycle makes no progress.
pub(crate) fn ensure_headroom(store: &LogStore) -> Result<()> {
    let trigger = store.effective_clean_trigger();
    if store.approx_free_segments() > trigger {
        return Ok(());
    }
    if store.gc.background_attached() {
        store.gc.kick();
        if store.approx_free_segments() <= store.config().cleaning.reserved_free_segments + 1 {
            gc_driver::run_cleaning_cycle(store)?;
        }
        return Ok(());
    }
    for _ in 0..MAX_CLEAN_RETRIES {
        if store.approx_free_segments() > trigger {
            break;
        }
        let free_before = store.approx_free_segments();
        let report = gc_driver::run_cleaning_cycle(store)?;
        // Stop on no progress — no victims, or a cycle whose GC output consumed
        // everything it freed. The drain path escalates harder if allocation
        // actually fails.
        if report.segments_freed() == 0 || store.approx_free_segments() <= free_before {
            break;
        }
    }
    Ok(())
}

/// Clean-then-retry loop for a drain that ran out of segments mid-batch.
///
/// The first attempts let the configured policy pick victims; if that does not unblock
/// the drain (a selective policy can net almost nothing per cycle under distress), the
/// loop escalates to full-batch greedy cycles, which monotonically reclaim whatever is
/// reclaimable. Out-of-space is reported only once even a greedy cycle frees nothing.
fn drain_with_cleaning(store: &LogStore) -> Result<()> {
    for attempt in 0..MAX_CLEAN_RETRIES {
        let mode = if attempt < 2 {
            gc_driver::SelectionMode::Policy
        } else {
            gc_driver::SelectionMode::ForceGreedy
        };
        let report = gc_driver::run_cleaning_cycle_with(store, mode)?;
        let mut ws = store.write_state().lock();
        match drain_user_buffer(store, &mut ws)? {
            DrainOutcome::Done => return Ok(()),
            DrainOutcome::NeedsCleaning => {
                if report.segments_freed() == 0 {
                    return Err(out_of_space(store));
                }
            }
        }
    }
    Err(out_of_space(store))
}

fn sort_buffer_capacity_bytes(store: &LogStore) -> usize {
    store.config().sort_buffer_segments
        * layout::payload_capacity(store.config().segment_bytes, store.config().page_bytes)
}

fn should_drain(store: &LogStore) -> bool {
    let (payload_bytes, len) = {
        let buf = store.buffer().read();
        (buf.payload_bytes(), buf.len())
    };
    let sbs = store.config().sort_buffer_segments;
    sbs == 0 || payload_bytes >= sort_buffer_capacity_bytes(store) || len >= sbs.max(1) * 4096
}

/// Assign carried `up2` values to the buffered batch (paper §5.2.2) and hand every
/// page to an open segment, sorted by the policy's separation key if configured.
///
/// The buffer is *snapshotted*, not drained up front: an entry keeps serving reads
/// until its page has a page-table entry, and is removed individually right after its
/// append (all under the continuously held write lock) — so a reader always finds an
/// acknowledged write in the buffer or in the page table, never in neither. If the
/// batch stops early for cleaning, only the unprocessed remainder stays buffered; the
/// post-cleaning retry re-snapshots exactly that remainder.
pub(crate) fn drain_user_buffer(
    store: &LogStore,
    ws: &mut MutexGuard<'_, WriteState>,
) -> Result<DrainOutcome> {
    let mut batch = store.buffer().read().snapshot_indexed();
    if batch.is_empty() {
        return Ok(DrainOutcome::Done);
    }
    let unow = store.unow();

    // First pass: pages with history inherit from their previous segment.
    let mut coldest = None;
    let mut has_history = vec![false; batch.len()];
    for (i, (_, p)) in batch.iter_mut().enumerate() {
        if let Some(loc) = store.mapping().get(p.info.page) {
            let old_up2 = ws
                .segments
                .meta(loc.segment)
                .map(|m| m.freq.up2())
                .unwrap_or_default();
            p.info.up2 = carry_forward_rewrite(old_up2, unow);
            has_history[i] = true;
            coldest = Some(match coldest {
                Some(c) if c < p.info.up2 => c,
                _ => p.info.up2,
            });
        }
    }
    // Second pass: first writes get the coldest estimate seen in the batch.
    let cold = first_write_up2(coldest);
    for (i, (_, p)) in batch.iter_mut().enumerate() {
        if !has_history[i] {
            p.info.up2 = cold;
        }
    }

    if store.config().separation.separate_user_writes {
        let policy = &ws.policy;
        sort_by_separation_key(&mut batch, |(_, p): &(usize, PendingPage)| {
            policy.separation_key(&p.info)
        });
    }
    for (slot, p) in batch {
        match append_page(store, ws, p)? {
            AppendOutcome::Appended => {
                // The page is mapped; its buffer copy is now redundant.
                store.buffer().write().remove_slot(slot);
            }
            AppendOutcome::NeedsCleaning => {
                // The remainder (this page onward) stays in the buffer for the retry.
                return Ok(DrainOutcome::NeedsCleaning);
            }
        }
    }
    Ok(DrainOutcome::Done)
}

/// Append one pending page (user or GC) to the appropriate open segment, updating the
/// page table and invalidating the previous version.
pub(crate) fn append_page(
    store: &LogStore,
    ws: &mut MutexGuard<'_, WriteState>,
    p: PendingPage,
) -> Result<AppendOutcome> {
    let origin = p.info.origin;
    let log = if ws.policy.num_logs() > 1 {
        let ctx = PolicyContext {
            unow: store.unow(),
            segments: &[],
        };
        ws.policy.log_for_page(&p.info, &ctx)
    } else {
        0
    };
    let key = OpenKey { origin, log };

    if p.is_tombstone() {
        return append_tombstone(store, ws, key, p);
    }

    let data = p
        .data
        .clone()
        .expect("non-tombstone pending page must carry a payload in the real store");
    if !ensure_open(store, ws, key, data.len())? {
        return Ok(AppendOutcome::NeedsCleaning);
    }
    let seq = ws.next_write_seq;
    ws.next_write_seq += 1;

    let open = ws
        .open
        .get_mut(&key)
        .expect("ensure_open just installed this key");
    let offset = open.builder.write().push_page(p.info.page, seq, &data);
    open.up2_avg.add(p.info.up2);
    let seg_id = open.id;
    let loc = PageLocation {
        segment: seg_id,
        offset,
        len: data.len() as u32,
    };

    if let Some(meta) = ws.segments.meta_mut(seg_id) {
        meta.on_page_added(data.len() as u32, p.info.exact_freq);
    }
    let old = store.mapping().insert(p.info.page, loc);
    // GC relocations always move a page out of a victim segment that is about to be
    // released, so only user overwrites need to mark the previous copy dead (the
    // victim's metadata dies with the release; perturbing its `up2` estimate during the
    // relocation would bias nothing but wastes work).
    if origin == WriteOrigin::User {
        if let Some(old) = old {
            invalidate(store, ws, old, p.info.exact_freq);
        }
    }
    Ok(AppendOutcome::Appended)
}

fn append_tombstone(
    store: &LogStore,
    ws: &mut MutexGuard<'_, WriteState>,
    key: OpenKey,
    p: PendingPage,
) -> Result<AppendOutcome> {
    let page = p.info.page;
    if store.mapping().get(page).is_none() {
        // The page does not exist on the device; nothing to delete or record.
        return Ok(AppendOutcome::Appended);
    }
    if !ensure_open(store, ws, key, 0)? {
        return Ok(AppendOutcome::NeedsCleaning);
    }
    let Some(old) = store.mapping().remove(page) else {
        return Ok(AppendOutcome::Appended);
    };
    invalidate(store, ws, old, None);
    let seq = ws.next_write_seq;
    ws.next_write_seq += 1;
    let open = ws
        .open
        .get_mut(&key)
        .expect("ensure_open just installed this key");
    open.builder.write().push_tombstone(page, seq);
    Ok(AppendOutcome::Appended)
}

/// Make sure an open segment with room for a payload of `len` bytes exists for the
/// given (origin, log) stream, sealing the current one and allocating a fresh segment
/// if necessary. Returns false if allocation would dip below the user reserve (the
/// caller must let cleaning run).
fn ensure_open(
    store: &LogStore,
    ws: &mut MutexGuard<'_, WriteState>,
    key: OpenKey,
    len: usize,
) -> Result<bool> {
    if let Some(open) = ws.open.get(&key) {
        if open.builder.read().fits(len) {
            return Ok(true);
        }
    }
    if let Some(full) = ws.open.remove(&key) {
        seal_open(store, ws, full)?;
    }
    let Some(id) = allocate_segment(store, ws, key.origin, key.log)? else {
        return Ok(false);
    };
    let builder = Arc::new(RwLock::new(SegmentBuilder::new(
        store.config().segment_bytes,
    )));
    store.open_reads().write().insert(id, Arc::clone(&builder));
    ws.open.insert(
        key,
        OpenSegment {
            id,
            builder,
            up2_avg: Up2Average::new(),
            log: key.log,
        },
    );
    store.publish_free(ws);
    Ok(true)
}

/// Seal an open segment: finalise its image, write it to the device and transition its
/// metadata to `Sealed`. Empty builders just release the segment.
///
/// Ordering matters for the lock-free read path: the image is written to the device
/// *before* the builder is removed from the open-segment read index, so a reader that
/// misses the index is guaranteed to find the image on the device.
pub(crate) fn seal_open(
    store: &LogStore,
    ws: &mut MutexGuard<'_, WriteState>,
    open: OpenSegment,
) -> Result<()> {
    if open.builder.read().is_empty() {
        ws.segments.release(open.id);
        store.open_reads().write().remove(&open.id);
        store.publish_free(ws);
        return Ok(());
    }
    let unow = store.unow();
    let carried_up2 = open.up2_avg.mean_or(unow);
    let seal_seq = ws
        .segments
        .seal(open.id, unow, carried_up2, store.config().up2_mode);
    let image = open
        .builder
        .write()
        .finish_image(seal_seq, unow, carried_up2, open.log);
    store.device().write_segment(open.id, &image)?;
    AtomicStats::bump(&store.atomic_stats().segments_sealed);
    store.open_reads().write().remove(&open.id);
    store.publish_free(ws);
    Ok(())
}

/// Account for the death of a page's previous version.
fn invalidate(
    store: &LogStore,
    ws: &mut MutexGuard<'_, WriteState>,
    old: PageLocation,
    exact_freq: Option<f64>,
) {
    if let Some(meta) = ws.segments.meta_mut(old.segment) {
        meta.on_page_dead(old.len, store.unow(), exact_freq);
    }
}

/// Allocate a free segment for the given write stream.
///
/// User allocations stop at the reserve floor (returning `None` so the caller can run a
/// cleaning cycle); GC allocations may dip into the reserve — that is what it is for —
/// and fail hard only when the device is truly exhausted. Both first try to reclaim
/// quarantined victims via [`emergency_reclaim`] when the pool runs dry.
fn allocate_segment(
    store: &LogStore,
    ws: &mut MutexGuard<'_, WriteState>,
    origin: WriteOrigin,
    log: u16,
) -> Result<Option<SegmentId>> {
    let reserved = store.config().cleaning.reserved_free_segments;
    match origin {
        WriteOrigin::User => {
            if ws.segments.free_count() <= reserved {
                emergency_reclaim(store, ws)?;
                if ws.segments.free_count() <= reserved {
                    return Ok(None);
                }
            }
        }
        WriteOrigin::Gc => {
            if ws.segments.free_count() == 0 {
                emergency_reclaim(store, ws)?;
            }
        }
    }
    let capacity =
        layout::payload_capacity(store.config().segment_bytes, store.config().page_bytes) as u64;
    match ws.segments.allocate(capacity, log, store.config().up2_mode) {
        Some(id) => {
            store.publish_free(ws);
            Ok(Some(id))
        }
        None => match origin {
            WriteOrigin::User => Ok(None),
            WriteOrigin::Gc => Err(Error::OutOfSpace {
                free_segments: 0,
                needed: 1,
            }),
        },
    }
}

/// Escape hatch under allocation pressure: make relocated pages durable right now (seal
/// the GC output streams, sync the device) so quarantined victims become reusable.
fn emergency_reclaim(store: &LogStore, ws: &mut MutexGuard<'_, WriteState>) -> Result<()> {
    if ws.segments.quarantine_len() == 0 {
        return Ok(());
    }
    let gc_keys: Vec<OpenKey> = ws
        .open
        .keys()
        .copied()
        .filter(|k| k.origin == WriteOrigin::Gc)
        .collect();
    for key in gc_keys {
        if let Some(open) = ws.open.remove(&key) {
            seal_open(store, ws, open)?;
        }
    }
    store.device().sync()?;
    ws.segments.mark_quarantine_synced();
    ws.segments.reap_quarantine(|id| store.pin_count(id) == 0);
    store.publish_free(ws);
    Ok(())
}

/// Seal every GC-origin open stream (end of a cleaning cycle).
pub(crate) fn seal_gc_streams(store: &LogStore, ws: &mut MutexGuard<'_, WriteState>) -> Result<()> {
    let gc_keys: Vec<OpenKey> = ws
        .open
        .keys()
        .copied()
        .filter(|k| k.origin == WriteOrigin::Gc)
        .collect();
    for key in gc_keys {
        if let Some(open) = ws.open.remove(&key) {
            seal_open(store, ws, open)?;
        }
    }
    Ok(())
}
