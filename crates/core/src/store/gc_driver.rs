//! The cleaning driver: victim selection, live-page relocation and remap commit —
//! running as up to [`StoreConfig::cleaner_threads`](crate::StoreConfig::cleaner_threads)
//! **concurrent cycles on disjoint victim sets**.
//!
//! ### One cycle's life
//!
//! A cycle is structured so that the expensive work — reading and parsing whole victim
//! segment images from the device, and copying live payloads into GC output builders —
//! happens with **no store lock** held:
//!
//! 1. **Claim** (short central lock): the policy picks up to `segments_per_cycle`
//!    victims from the sealed-segment snapshots and the cycle *claims* them in the same
//!    critical section ([`crate::segment::SegmentTable::claim_for_cleaning`]). Claimed
//!    victims are hidden from selection, so two concurrent cycles can never pick the
//!    same slot; their emptiness/`up2` are recorded.
//! 2. **Read** (no locks): each victim's image is read from the device and its entry
//!    table decoded; entries that are no longer current are pre-filtered against the
//!    sharded page table. Reads are **pipelined across a small I/O pool**
//!    ([`StoreConfig::gc_read_pool`](crate::StoreConfig::gc_read_pool)): workers
//!    prefetch the next images (bounded lookahead) while the cycle relocates the
//!    current victim's pages.
//! 3. **Relocate & commit** (per victim): still-current pages are appended to the
//!    cycle's *own* GC output segments (no store lock; allocation and seals touch the
//!    central lock briefly), *keeping their original per-page write sequences*. Then,
//!    under one short central section, each staged page is committed with an atomic
//!    *compare-and-swap* on the page table
//!    ([`crate::mapping::ShardedPageTable::replace_if_current`]): a page the user
//!    rewrote since staging fails the swap and its stale copy is abandoned (the original
//!    write sequence guarantees the abandoned copy can also never win during recovery).
//!    The victim is then released into the quarantine tagged with this cycle's token
//!    (remap-before-release: by the time a victim is released, none of its pages are
//!    referenced by the mapping).
//! 4. **Seal + sync + reap**: the cycle's GC output streams are sealed, its quarantine
//!    entries are marked *sealed*, the device is synced, and quarantined victims whose
//!    seal preceded the sync — this cycle's and any other's — return to the free list
//!    once no reader pins remain.
//!
//! ### Why overlapping cycles are safe
//!
//! * **Disjoint victims** — claims make victim sets disjoint by construction, so two
//!   cycles never stage the same page from the same location, and the per-victim
//!   release/accounting paths never touch the same slot.
//! * **CAS commits** — relocation commits are per-page compare-and-swaps against the
//!   observed victim location; they are already safe against racing user writes and are
//!   equally safe against another cycle (which, by disjointness, can only be moving
//!   *other* pages).
//! * **Per-entry quarantine state** — each quarantine entry carries its owning cycle's
//!   token and a `parked → sealed → synced` state machine
//!   ([`crate::segment::SegmentTable::quarantine_mark_sealed`]): one cycle's device
//!   sync can therefore never free another cycle's victim while that cycle's relocated
//!   copies still sit in unsealed in-memory builders.
//! * **Crash safety at every boundary** — a victim's slot is untouched until its
//!   relocated copies are durable, and relocated copies keep their original write
//!   sequences, so recovery after a crash at any phase boundary reconstructs exactly
//!   the last flushed state no matter how many cycles were in flight.
//!
//! A cycle that aborts (I/O error) *orphans* its state: leftover GC output builders go
//! to the store's orphan pool and its quarantine entries are re-tagged
//! [`crate::segment::ORPHAN_CYCLE`], so the next flush or reclaim pass seals and frees
//! them on the dead cycle's behalf; its unprocessed victim claims are dropped so the
//! victims become selectable again.
//!
//! Cycles are started by the [`crate::shared::BackgroundCleaner`] pool, by writers at
//! the free-segment watermark, or explicitly via [`crate::LogStore::clean_now`]; all of
//! them acquire a cycle slot from [`GcControl`], which caps concurrency at
//! `cleaner_threads` (with `cleaner_threads = 1` cycles serialise exactly as in the
//! pre-concurrent design).

use super::write_path::{self, MetaLedger};
use super::{CentralState, GcStreams, LogStore, OpenSegment};
use crate::cleaner::{collect_live_pages, CleaningReport, LivePage};
use crate::error::{Error, Result};
use crate::freq::Up2Average;
use crate::layout::{self, decode_segment, SegmentBuilder};
use crate::policy::PolicyContext;
use crate::segment::ORPHAN_CYCLE;
use crate::stats::AtomicStats;
use crate::types::{PageId, PageLocation, SegmentId, UpdateTick};
use crate::write_buffer::sort_by_separation_key;
use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Externally observable phase boundaries of one cleaning cycle, in the order they are
/// crossed: `Claimed* → (VictimRead → Relocated)* → Sealed → Synced`.
///
/// Exposed for test instrumentation via [`LogStore::set_gc_phase_hook`]: a hook that
/// blocks pauses the cycle at exactly that boundary (no store lock is held while the
/// hook runs), which is what makes deterministic cleaner-race and crash-matrix tests
/// possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcPhase {
    /// A victim was claimed in the segment table (fired once per victim, after the
    /// selection critical section and before any image read).
    Claimed,
    /// One victim's image has been read and its live pages collected.
    VictimRead,
    /// One victim's relocations are committed and it entered the quarantine.
    Relocated,
    /// All of the cycle's GC output segments are sealed (device writes issued).
    Sealed,
    /// The cycle's device sync landed; its victims are reusable once unpinned.
    Synced,
}

/// Test/diagnostic instrumentation callback: `(cycle token, phase, victim)`.
/// The victim is present for the per-victim phases, absent for `Sealed`/`Synced`.
pub type GcPhaseHook = Arc<dyn Fn(u64, GcPhase, Option<SegmentId>) + Send + Sync>;

/// Coordination state for cleaning: the concurrent-cycle gate and slots, cycle tokens,
/// and background-cleaner wakeup.
pub(crate) struct GcControl {
    /// Running cycles hold this shared; checkpoint snapshots and the straggler reclaim
    /// hold it exclusive to wait out every in-flight cycle. Never acquired while
    /// holding a stream lock (a checkpoint holds it exclusive *and then* takes the
    /// stream locks).
    cycle_gate: RwLock<()>,
    /// Number of cycles currently running, bounded by `max_cycles`.
    active_cycles: Mutex<usize>,
    slot_cond: Condvar,
    /// Concurrency cap ([`crate::StoreConfig::cleaner_threads`]).
    max_cycles: usize,
    /// Next cycle token; starts above [`ORPHAN_CYCLE`], which is reserved for the
    /// quarantine entries of aborted cycles.
    next_token: AtomicU64,
    /// Wakeup flag for the background cleaner pool, guarded with [`GcControl::kick_cond`].
    kick: Mutex<KickState>,
    kick_cond: Condvar,
    /// True while a [`crate::shared::BackgroundCleaner`] pool is attached; writers
    /// then kick it instead of cleaning inline.
    background_attached: AtomicBool,
}

#[derive(Default)]
struct KickState {
    pending: bool,
    shutdown: bool,
}

/// Permission to run one cleaning cycle: holds the shared cycle gate plus one of the
/// `cleaner_threads` cycle slots, and carries the cycle's token. Dropping it frees the
/// slot.
pub(crate) struct CyclePermit<'a> {
    control: &'a GcControl,
    _gate: RwLockReadGuard<'a, ()>,
    token: u64,
}

impl Drop for CyclePermit<'_> {
    fn drop(&mut self) {
        let mut active = self.control.active_cycles.lock();
        *active -= 1;
        self.control.slot_cond.notify_one();
    }
}

impl GcControl {
    pub(crate) fn new(max_cycles: usize) -> Self {
        Self {
            cycle_gate: RwLock::new(()),
            active_cycles: Mutex::new(0),
            slot_cond: Condvar::new(),
            max_cycles: max_cycles.max(1),
            next_token: AtomicU64::new(ORPHAN_CYCLE + 1),
            kick: Mutex::new(KickState::default()),
            kick_cond: Condvar::new(),
            background_attached: AtomicBool::new(false),
        }
    }

    /// Acquire a cycle slot (blocks while `cleaner_threads` cycles are already in
    /// flight, or while a [`GcControl::quiesce`] holder drains the gate).
    pub(crate) fn begin_cycle(&self) -> CyclePermit<'_> {
        let gate = self.cycle_gate.read();
        let mut active = self.active_cycles.lock();
        while *active >= self.max_cycles {
            self.slot_cond.wait(&mut active);
        }
        *active += 1;
        drop(active);
        CyclePermit {
            control: self,
            _gate: gate,
            token: self.next_token.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Wait out every in-flight cleaning cycle and hold new ones off while the guard
    /// lives. Used by checkpoint snapshots (a stable mapping needs no concurrent GC
    /// remaps) and by the last-resort straggler reclaim (an in-flight cycle's own
    /// phase 4 is what frees its victims). Must not be called while holding a stream
    /// lock.
    pub(crate) fn quiesce(&self) -> RwLockWriteGuard<'_, ()> {
        self.cycle_gate.write()
    }

    /// Wake the background cleaner pool (writers call this at the free-segment
    /// watermark).
    pub(crate) fn kick(&self) {
        let mut k = self.kick.lock();
        k.pending = true;
        self.kick_cond.notify_all();
    }

    /// Ask the background cleaner pool to exit.
    pub(crate) fn shutdown(&self) {
        let mut k = self.kick.lock();
        k.shutdown = true;
        self.kick_cond.notify_all();
    }

    /// Block until kicked, shut down, or `timeout` elapses. Returns true on shutdown.
    pub(crate) fn wait_for_kick(&self, timeout: Duration) -> bool {
        let mut k = self.kick.lock();
        if !k.pending && !k.shutdown {
            self.kick_cond.wait_for(&mut k, timeout);
        }
        k.pending = false;
        k.shutdown
    }

    /// Mark a background cleaner as attached/detached (clears any stale shutdown flag
    /// on attach so a store can be re-shared after `try_into_inner` failed).
    pub(crate) fn set_background_attached(&self, attached: bool) {
        if attached {
            self.kick.lock().shutdown = false;
        }
        self.background_attached.store(attached, Ordering::Release);
    }

    /// True while a background cleaner serves this store.
    pub(crate) fn background_attached(&self) -> bool {
        self.background_attached.load(Ordering::Acquire)
    }
}

/// Victim-selection mode for a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SelectionMode {
    /// The configured policy picks (with a greedy fallback only if it picks nothing).
    Policy,
    /// Force a global greedy pick with the full configured batch: the space-driven
    /// escalation writers use when policy-driven cycles fail to relieve allocation
    /// pressure (multi-log nets almost nothing per cycle under distress).
    ForceGreedy,
}

/// One relocation appended to a GC builder, awaiting its page-table commit.
struct StagedRelocation {
    page: PageId,
    /// Where the page lived in the victim (the compare-and-swap's expected value).
    old: PageLocation,
    /// Where the relocated copy now lives (`new.segment` is the GC output segment and
    /// the accounting target on commit).
    new: PageLocation,
}

/// A collected live page plus its routing decisions.
struct GcItem {
    live: LivePage,
    log: u16,
    key: Option<f64>,
}

/// The private state of one in-flight cycle: its token, its own GC output streams
/// (no lock needed — nobody else can reach them) and the victims it has claimed but not
/// yet released.
struct CycleCtx {
    token: u64,
    gcs: GcStreams,
    claimed: Vec<SegmentId>,
}

/// One victim with its image read and live pages collected (the output of the phase-2
/// read pipeline).
struct PreparedVictim {
    victim: SegmentId,
    emptiness: f64,
    candidates: Vec<LivePage>,
}

/// Invoke the store's phase hook, if installed, with no lock held.
fn fire_phase_hook(store: &LogStore, token: u64, phase: GcPhase, victim: Option<SegmentId>) {
    let hook = store.gc_phase_hook();
    if let Some(h) = hook {
        h(token, phase, victim);
    }
}

/// Run one full cleaning cycle with the configured policy. Takes one of the
/// `cleaner_threads` cycle slots; safe to call from any thread, with no store locks
/// held.
pub(crate) fn run_cleaning_cycle(store: &LogStore) -> Result<CleaningReport> {
    run_cleaning_cycle_with(store, SelectionMode::Policy)
}

/// Run one cycle with explicit victim-selection mode (see [`SelectionMode`]).
pub(crate) fn run_cleaning_cycle_with(
    store: &LogStore,
    mode: SelectionMode,
) -> Result<CleaningReport> {
    let permit = store.gc.begin_cycle();
    let token = permit.token;
    let stats = store.atomic_stats();
    AtomicStats::bump(&stats.cleaning_cycles);
    let unow = store.unow();

    // Phase 1: select victims and claim them, in one short central critical section —
    // the claims are what make concurrent cycles' victim sets disjoint.
    let victims: Vec<(SegmentId, f64, UpdateTick)> = {
        let mut central = store.central().lock();
        let CentralState { segments, policy } = &mut *central;
        // The configured batch is an *aggregate* in-flight budget: divide it across
        // the concurrent cycles, or K cycles would claim K × segments_per_cycle
        // victims at once and could park most of a small device in claims +
        // quarantine while writers starve. With cleaner_threads = 1 this is exactly
        // the paper's serialised batch.
        let share = (store.config().cleaning.segments_per_cycle
            / store.config().cleaner_threads.max(1))
        .max(1);
        let batch = policy.preferred_batch().unwrap_or(share).max(1);
        let sealed = segments.sealed_stats();
        let ctx = PolicyContext {
            unow,
            segments: &sealed,
        };
        let mut picked = match mode {
            SelectionMode::Policy => policy.select_victims(&ctx, batch),
            SelectionMode::ForceGreedy => {
                let want = batch.max(share);
                let mut greedy = crate::policy::GreedyPolicy::new();
                crate::policy::CleaningPolicy::select_victims(&mut greedy, &ctx, want)
            }
        };
        if picked.is_empty() && mode == SelectionMode::Policy {
            // Space-driven escalation (the simulator's `emergency_greedy_clean`): a
            // selective policy — multi-log only inspects the written log's neighbourhood
            // — can find no victim even though reclaimable space exists elsewhere.
            // Real systems fall back to a global space-driven GC in that corner.
            let mut greedy = crate::policy::GreedyPolicy::new();
            picked = crate::policy::CleaningPolicy::select_victims(&mut greedy, &ctx, batch);
        }
        picked
            .into_iter()
            .filter_map(|v| {
                let m = segments.meta(v)?;
                let entry = (v, m.emptiness(), m.freq.up2());
                segments.claim_for_cleaning(v).then_some(entry)
            })
            .collect()
    };
    if victims.is_empty() {
        return Ok(CleaningReport::default());
    }
    for &(v, _, _) in &victims {
        fire_phase_hook(store, token, GcPhase::Claimed, Some(v));
    }

    let mut cycle = CycleCtx {
        token,
        gcs: GcStreams::default(),
        claimed: victims.iter().map(|&(v, _, _)| v).collect(),
    };
    let result = run_claimed_victims(store, &mut cycle, &victims, unow);
    finish_cycle(store, cycle, result)
}

/// Phases 2–4 over an already claimed victim set. Any error leaves `cycle` holding
/// whatever claims and GC output builders are still outstanding, for
/// [`finish_cycle`] to orphan.
fn run_claimed_victims(
    store: &LogStore,
    cycle: &mut CycleCtx,
    victims: &[(SegmentId, f64, UpdateTick)],
    unow: UpdateTick,
) -> Result<CleaningReport> {
    let mut report = CleaningReport::default();
    let mut emptiness_sum = 0.0;
    let mut released: Vec<SegmentId> = Vec::with_capacity(victims.len());

    // Phase 2 runs as a pipeline: a small pool prefetches and pre-filters victim
    // images while this thread relocates earlier victims' pages.
    for_each_prepared_victim(store, victims, |prepared| {
        fire_phase_hook(
            store,
            cycle.token,
            GcPhase::VictimRead,
            Some(prepared.victim),
        );
        if relocate_victim(
            store,
            cycle,
            prepared,
            unow,
            &mut report,
            &mut emptiness_sum,
        )? {
            released.push(prepared.victim);
            fire_phase_hook(
                store,
                cycle.token,
                GcPhase::Relocated,
                Some(prepared.victim),
            );
        }
        Ok(())
    })?;

    // Phase 4: make the relocated pages durable and recycle this cycle's victims.
    write_path::seal_streams(store, &mut cycle.gcs)?;
    fire_phase_hook(store, cycle.token, GcPhase::Sealed, None);
    {
        let mut central = store.central().lock();
        central.segments.quarantine_mark_sealed(cycle.token);
    }
    write_path::sync_and_reap(store)?;
    fire_phase_hook(store, cycle.token, GcPhase::Synced, None);

    if !released.is_empty() {
        report.mean_emptiness = emptiness_sum / released.len() as f64;
    }
    report.victims = released;
    Ok(report)
}

/// Common cycle epilogue: on success, drop the claims of skipped victims; on error,
/// orphan the cycle — leftover GC output builders go to the store's orphan pool and the
/// cycle's quarantine entries are re-tagged [`ORPHAN_CYCLE`] (both under the orphan
/// lock, so an orphan-seal pass can never adopt entries whose builders it has not yet
/// received), and unprocessed claims are dropped so the victims become selectable
/// again.
fn finish_cycle(
    store: &LogStore,
    mut cycle: CycleCtx,
    result: Result<CleaningReport>,
) -> Result<CleaningReport> {
    match result {
        Ok(report) => {
            if !cycle.claimed.is_empty() {
                let mut central = store.central().lock();
                for v in &cycle.claimed {
                    central.segments.unclaim(*v);
                }
            }
            Ok(report)
        }
        Err(e) => {
            let mut orphans = store.gc_orphans().lock();
            orphans.extend(cycle.gcs.open.drain().map(|(_, open)| open));
            let mut central = store.central().lock();
            for v in &cycle.claimed {
                central.segments.unclaim(*v);
            }
            central.segments.quarantine_orphan(cycle.token);
            Err(e)
        }
    }
}

/// Relocate one prepared victim: route and stage its still-current pages into the
/// cycle's GC outputs, commit the relocations by page-table compare-and-swap, and
/// release the victim into the quarantine. Returns false if the victim was skipped
/// because no output space could be found (its claim stays with the cycle and is
/// dropped at cycle end).
fn relocate_victim(
    store: &LogStore,
    cycle: &mut CycleCtx,
    prepared: &PreparedVictim,
    unow: UpdateTick,
    report: &mut CleaningReport,
    emptiness_sum: &mut f64,
) -> Result<bool> {
    let stats = store.atomic_stats();
    let victim = prepared.victim;

    // Route every candidate to an output log and fetch separation keys, under one
    // short central acquisition (the policy lives there). Same routing helper as
    // the user drain, so user and GC placement can never diverge.
    let separate = store.config().separation.separate_gc_writes;
    let mut items: Vec<GcItem> = {
        let mut central = store.central().lock();
        let CentralState { policy, .. } = &mut *central;
        prepared
            .candidates
            .iter()
            .map(|live| {
                let (log, key) = write_path::route_page(policy, unow, separate, &live.pending.info);
                GcItem {
                    live: live.clone(),
                    log,
                    key,
                }
            })
            .collect()
    };
    if separate {
        sort_by_separation_key(&mut items, |it: &GcItem| it.key);
    }

    // Phase 3a: stage — copy still-current pages into the GC output builders. No
    // store lock; the occasional seal/allocation touches the central lock briefly.
    // The ledger only satisfies `seal_open`'s batching interface and stays empty
    // here: GC accounting is applied directly at commit (phase 3b), in the same
    // central section as the page-table swap.
    let mut staged: Vec<StagedRelocation> = Vec::with_capacity(items.len());
    let mut ledger = MetaLedger::default();
    for item in items {
        let info = &item.live.pending.info;
        if !store.mapping().is_current(info.page, &item.live.loc) {
            // Rewritten or deleted since collection; skip before wasting output
            // space. The commit-time compare-and-swap below remains authoritative.
            continue;
        }
        let data = item
            .live
            .pending
            .data
            .as_ref()
            .expect("GC relocation always carries a payload");
        let Some(log) = ensure_gc_open(store, cycle, &mut ledger, item.log, data.len())? else {
            // No output space for this victim even after the distress fallbacks:
            // abandon it *gracefully*. Nothing of it has been committed — its pages
            // are still mapped into the sealed victim image, which stays exactly
            // where it is — and the few copies already staged into builders are
            // never swapped in, so they are recovery-safe garbage. Move on to the
            // remaining victims rather than giving up on the cycle: a later victim
            // may be fully dead (needing no output space at all) and releasing it
            // is exactly what relieves the pressure. The writers' escalation
            // ladder (greedy cycles, quarantine sweeps) decides whether the store
            // is genuinely full.
            return Ok(false);
        };
        let open = cycle
            .gcs
            .open
            .get_mut(&log)
            .expect("ensure_gc_open just installed this log");
        // The relocated copy keeps the original write sequence: it is the same
        // version of the page, just at a new address (see
        // [`crate::cleaner::LivePage::write_seq`]).
        let offset = open
            .builder
            .write()
            .push_page(info.page, item.live.write_seq, data);
        open.up2_avg.add(info.up2);
        staged.push(StagedRelocation {
            page: info.page,
            old: item.live.loc,
            new: PageLocation {
                segment: open.id,
                offset,
                len: data.len() as u32,
            },
        });
    }

    // Phase 3b: commit under one short central section. The swap and the output
    // segment's accounting land in the same critical section, so any later death of
    // the relocated copy (recorded by a writer only after it observes the new
    // location) is applied after this `on_page_added`, never before.
    {
        let mut central = store.central().lock();
        for s in staged {
            if store.mapping().replace_if_current(s.page, &s.old, s.new) {
                if let Some(meta) = central.segments.meta_mut(s.new.segment) {
                    meta.on_page_added(s.new.len, None);
                }
                AtomicStats::bump(&stats.gc_pages_written);
                AtomicStats::add(&stats.gc_bytes_written, s.new.len as u64);
                report.pages_moved += 1;
                report.bytes_moved += s.new.len as u64;
            }
            // A failed swap means the user rewrote the page after staging: the
            // stale copy in the output builder is dead on arrival and is simply
            // never accounted live (it will be reclaimed when that segment is
            // eventually cleaned).
        }
        // Remap-before-release now holds for every live page of this victim; park
        // the slot — tagged with this cycle's token — until the relocated copies are
        // durable and no reader pins remain.
        central.segments.release_quarantined(victim, cycle.token);
        AtomicStats::bump(&stats.segments_cleaned);
        stats.add_emptiness(prepared.emptiness);
        *emptiness_sum += prepared.emptiness;
        store.publish_free(&central.segments);
    }
    cycle.claimed.retain(|&s| s != victim);
    Ok(true)
}

/// Read one victim's image, decode it and pre-filter its live pages (the unit of work
/// of the phase-2 read pipeline; touches only the device and the lock-free page table).
fn prepare_victim(
    store: &LogStore,
    victim: SegmentId,
    emptiness: f64,
    up2: UpdateTick,
) -> Result<PreparedVictim> {
    let image = store.device().read_segment(victim)?;
    let parsed = decode_segment(victim, &image)?.ok_or_else(|| Error::CorruptSegment {
        segment: victim,
        detail: "sealed segment has a blank image".into(),
    })?;
    // Lock-free pre-filter against the sharded page table; the authoritative
    // conflict check is the compare-and-swap at commit time.
    let candidates = collect_live_pages(
        victim,
        &image,
        &parsed,
        |p, l| store.mapping().is_current(p, l),
        up2,
    )
    .pages;
    Ok(PreparedVictim {
        victim,
        emptiness,
        candidates,
    })
}

/// Shared state of the phase-2 read pipeline: an in-order slot per victim, a bounded
/// prefetch window, and a cancellation flag for early exit.
struct ReadPipeline {
    slots: Vec<Option<Result<PreparedVictim>>>,
    next_fetch: usize,
    consumed: usize,
    cancelled: bool,
}

/// Drive `process` over every victim **in order**, with victim images read and
/// pre-filtered by up to `gc_read_pool` I/O workers running ahead of the consumer
/// (bounded lookahead, so at most `2 × pool` images are in memory at once). With a pool
/// of 1 (or a single victim) this degrades to the plain sequential read-then-process
/// loop of the pre-concurrent design.
fn for_each_prepared_victim(
    store: &LogStore,
    victims: &[(SegmentId, f64, UpdateTick)],
    mut process: impl FnMut(&PreparedVictim) -> Result<()>,
) -> Result<()> {
    let pool = store.config().gc_read_pool.min(victims.len()).max(1);
    if pool <= 1 {
        for &(victim, emptiness, up2) in victims {
            let prepared = prepare_victim(store, victim, emptiness, up2)?;
            process(&prepared)?;
        }
        return Ok(());
    }

    let window = pool * 2;
    let state = Mutex::new(ReadPipeline {
        slots: victims.iter().map(|_| None).collect(),
        next_fetch: 0,
        consumed: 0,
        cancelled: false,
    });
    let space_cond = Condvar::new(); // workers wait here for window space
    let ready_cond = Condvar::new(); // the consumer waits here for its next slot

    std::thread::scope(|scope| -> Result<()> {
        for _ in 0..pool {
            scope.spawn(|| loop {
                let i = {
                    let mut st = state.lock();
                    loop {
                        if st.cancelled || st.next_fetch >= st.slots.len() {
                            return;
                        }
                        if st.next_fetch < st.consumed + window {
                            break;
                        }
                        space_cond.wait(&mut st);
                    }
                    let i = st.next_fetch;
                    st.next_fetch += 1;
                    i
                };
                let (victim, emptiness, up2) = victims[i];
                let prepared = prepare_victim(store, victim, emptiness, up2);
                let mut st = state.lock();
                st.slots[i] = Some(prepared);
                ready_cond.notify_all();
            });
        }

        let cancel = |err: Error| {
            let mut st = state.lock();
            st.cancelled = true;
            space_cond.notify_all();
            err
        };
        for i in 0..victims.len() {
            let prepared = {
                let mut st = state.lock();
                while st.slots[i].is_none() {
                    ready_cond.wait(&mut st);
                }
                let p = st.slots[i].take().expect("slot just observed filled");
                st.consumed = i + 1;
                space_cond.notify_all();
                p
            };
            let prepared = prepared.map_err(&cancel)?;
            process(&prepared).map_err(&cancel)?;
        }
        Ok(())
    })
}

/// Make sure the cycle has a GC output segment with room for `len` bytes, preferably
/// for `log`, sealing the full one and allocating a fresh segment if necessary. Returns
/// the log key of the open segment to append to, or `None` if no output space can be
/// found (the caller abandons the current victim rather than failing the cycle).
///
/// GC allocations may dip into the reserve — that is what it is for. Under allocation
/// distress the cycle degrades gracefully: it first redirects the relocation into *any*
/// of its open outputs with room (sacrificing log purity for progress), then seals its
/// output streams and syncs so its already quarantined victims become reusable.
fn ensure_gc_open(
    store: &LogStore,
    cycle: &mut CycleCtx,
    ledger: &mut MetaLedger,
    log: u16,
    len: usize,
) -> Result<Option<u16>> {
    if let Some(open) = cycle.gcs.open.get(&log) {
        if open.builder.read().fits(len) {
            return Ok(Some(log));
        }
    }
    if let Some(full) = cycle.gcs.open.remove(&log) {
        write_path::seal_open(store, full, ledger)?;
    }
    let capacity =
        layout::payload_capacity(store.config().segment_bytes, store.config().page_bytes) as u64;
    let mut allocated = try_allocate_gc(store, capacity, log);
    if allocated.is_none() {
        // Distress fallback 1: reuse another output stream's headroom.
        if let Some((&l, _)) = cycle
            .gcs
            .open
            .iter()
            .find(|(_, o)| o.builder.read().fits(len))
        {
            return Ok(Some(l));
        }
        // Distress fallback 2: make this cycle's own relocations durable so its
        // quarantined victims free up (their live pages are all in the builders about
        // to be sealed), then retry the allocation.
        make_own_relocations_durable(store, cycle)?;
        allocated = try_allocate_gc(store, capacity, log);
    }
    let Some((id, gen)) = allocated else {
        return Ok(None);
    };
    let builder = Arc::new(RwLock::new(SegmentBuilder::new(
        store.config().segment_bytes,
    )));
    store.open_reads().write().insert(id, Arc::clone(&builder));
    cycle.gcs.open.insert(
        log,
        OpenSegment {
            id,
            builder,
            up2_avg: Up2Average::new(),
            log,
            gen,
            last_used: 0,
        },
    );
    store.note_open_delta(1);
    Ok(Some(log))
}

/// Mid-cycle durability point (distress only): seal this cycle's own GC outputs, mark
/// its quarantine entries sealed and run a sync+reap pass, so the victims it has
/// already emptied re-enter the free pool while the cycle continues.
fn make_own_relocations_durable(store: &LogStore, cycle: &mut CycleCtx) -> Result<()> {
    write_path::seal_streams(store, &mut cycle.gcs)?;
    {
        let mut central = store.central().lock();
        central.segments.quarantine_mark_sealed(cycle.token);
    }
    write_path::sync_and_reap(store)
}

fn try_allocate_gc(store: &LogStore, capacity: u64, log: u16) -> Option<(SegmentId, u64)> {
    let mut central = store.central().lock();
    let id = central
        .segments
        .allocate(capacity, log, store.config().up2_mode)?;
    store.bump_segment_gen(id);
    let gen = store.segment_gen(id);
    store.publish_free(&central.segments);
    Some((id, gen))
}
