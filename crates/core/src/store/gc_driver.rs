//! The cleaning driver: victim selection, live-page relocation and remap commit.
//!
//! Extracted out of the old monolithic `LogStore` so that cleaning can run concurrently
//! with foreground traffic. A cycle is structured so that the expensive work — reading
//! and parsing whole victim segment images from the device — happens **outside** the
//! write lock:
//!
//! 1. **Select** (short write lock): the policy picks up to `segments_per_cycle` victims
//!    from the sealed-segment snapshots; their emptiness/`up2` are recorded.
//! 2. **Collect** (no locks): each victim's image is read from the device and its entry
//!    table decoded; entries that are no longer current are pre-filtered against the
//!    sharded page table.
//! 3. **Commit** (write lock, per victim): each candidate is re-checked with the
//!    *conflict check* — `mapping.is_current(page, victim_loc)` — so any page the user
//!    rewrote since victim selection is skipped; survivors are appended through the
//!    normal write machinery (GC origin) which remaps them atomically under the lock.
//!    The victim is then released into the quarantine (remap-before-release: by the time
//!    a victim is released, none of its pages are referenced by the mapping).
//! 4. **Seal + sync + reap** : GC output streams are sealed, the device is synced, and
//!    only then do quarantined victims with no reader pins return to the free list.
//!
//! Cycles are serialised by [`GcControl::cycle_lock`]; they are started by the
//! [`crate::shared::BackgroundCleaner`] thread, by writers at the free-segment
//! watermark, or explicitly via [`crate::LogStore::clean_now`].

use super::{write_path, LogStore};
use crate::cleaner::{collect_live_pages, CleaningReport, LivePage};
use crate::error::{Error, Result};
use crate::layout::decode_segment;
use crate::policy::PolicyContext;
use crate::stats::AtomicStats;
use crate::types::{SegmentId, UpdateTick};
use crate::write_buffer::sort_by_separation_key;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Coordination state for cleaning: cycle serialisation and background-cleaner wakeup.
pub(crate) struct GcControl {
    /// Serialises whole cleaning cycles (one at a time, whoever runs them).
    cycle_lock: Mutex<()>,
    /// Wakeup flag for the background cleaner, guarded with [`GcControl::kick_cond`].
    kick: Mutex<KickState>,
    kick_cond: Condvar,
    /// True while a [`crate::shared::BackgroundCleaner`] thread is attached; writers
    /// then kick it instead of cleaning inline.
    background_attached: AtomicBool,
}

#[derive(Default)]
struct KickState {
    pending: bool,
    shutdown: bool,
}

impl GcControl {
    pub(crate) fn new() -> Self {
        Self {
            cycle_lock: Mutex::new(()),
            kick: Mutex::new(KickState::default()),
            kick_cond: Condvar::new(),
            background_attached: AtomicBool::new(false),
        }
    }

    /// Wake the background cleaner (writers call this at the free-segment watermark).
    pub(crate) fn kick(&self) {
        let mut k = self.kick.lock();
        k.pending = true;
        self.kick_cond.notify_one();
    }

    /// Ask the background cleaner to exit.
    pub(crate) fn shutdown(&self) {
        let mut k = self.kick.lock();
        k.shutdown = true;
        self.kick_cond.notify_all();
    }

    /// Block until kicked, shut down, or `timeout` elapses. Returns true on shutdown.
    pub(crate) fn wait_for_kick(&self, timeout: Duration) -> bool {
        let mut k = self.kick.lock();
        if !k.pending && !k.shutdown {
            self.kick_cond.wait_for(&mut k, timeout);
        }
        k.pending = false;
        k.shutdown
    }

    /// Mark a background cleaner as attached/detached (clears any stale shutdown flag
    /// on attach so a store can be re-shared after `try_into_inner` failed).
    pub(crate) fn set_background_attached(&self, attached: bool) {
        if attached {
            self.kick.lock().shutdown = false;
        }
        self.background_attached.store(attached, Ordering::Release);
    }

    /// True while a background cleaner serves this store.
    pub(crate) fn background_attached(&self) -> bool {
        self.background_attached.load(Ordering::Acquire)
    }
}

/// Victim-selection mode for a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SelectionMode {
    /// The configured policy picks (with a greedy fallback only if it picks nothing).
    Policy,
    /// Force a global greedy pick with the full configured batch: the space-driven
    /// escalation writers use when policy-driven cycles fail to relieve allocation
    /// pressure (multi-log nets almost nothing per cycle under distress).
    ForceGreedy,
}

/// Run one full cleaning cycle with the configured policy. Serialised against other
/// cycles; safe to call from any thread, with no store locks held.
pub(crate) fn run_cleaning_cycle(store: &LogStore) -> Result<CleaningReport> {
    run_cleaning_cycle_with(store, SelectionMode::Policy)
}

/// Run one cycle with explicit victim-selection mode (see [`SelectionMode`]).
pub(crate) fn run_cleaning_cycle_with(
    store: &LogStore,
    mode: SelectionMode,
) -> Result<CleaningReport> {
    let _cycle = store.gc.cycle_lock.lock();
    let stats = store.atomic_stats();
    AtomicStats::bump(&stats.cleaning_cycles);
    let unow = store.unow();

    // Phase 1: select victims under a short write lock.
    let victims: Vec<(SegmentId, f64, UpdateTick)> = {
        let mut ws = store.write_state().lock();
        let batch = ws
            .policy
            .preferred_batch()
            .unwrap_or(store.config().cleaning.segments_per_cycle)
            .max(1);
        let sealed = ws.segments.sealed_stats();
        let ctx = PolicyContext {
            unow,
            segments: &sealed,
        };
        let mut picked = match mode {
            SelectionMode::Policy => ws.policy.select_victims(&ctx, batch),
            SelectionMode::ForceGreedy => {
                let want = batch.max(store.config().cleaning.segments_per_cycle);
                let mut greedy = crate::policy::GreedyPolicy::new();
                crate::policy::CleaningPolicy::select_victims(&mut greedy, &ctx, want)
            }
        };
        if picked.is_empty() && mode == SelectionMode::Policy {
            // Space-driven escalation (the simulator's `emergency_greedy_clean`): a
            // selective policy — multi-log only inspects the written log's neighbourhood
            // — can find no victim even though reclaimable space exists elsewhere.
            // Real systems fall back to a global space-driven GC in that corner.
            let mut greedy = crate::policy::GreedyPolicy::new();
            picked = crate::policy::CleaningPolicy::select_victims(&mut greedy, &ctx, batch);
        }
        picked
            .into_iter()
            .filter_map(|v| {
                ws.segments
                    .meta(v)
                    .map(|m| (v, m.emptiness(), m.freq.up2()))
            })
            .collect()
    };
    if victims.is_empty() {
        return Ok(CleaningReport::default());
    }

    let mut report = CleaningReport::default();
    let mut emptiness_sum = 0.0;
    for &(victim, emptiness, up2) in &victims {
        // Phase 2: read and parse the victim image without any store lock — foreground
        // reads and writes proceed while this (the dominant cost of cleaning) runs.
        let image = store.device().read_segment(victim)?;
        let parsed = decode_segment(victim, &image)?.ok_or_else(|| Error::CorruptSegment {
            segment: victim,
            detail: "sealed segment has a blank image".into(),
        })?;
        // Lock-free pre-filter against the sharded page table; the authoritative
        // conflict check happens again under the write lock below.
        let mut candidates = collect_live_pages(
            victim,
            &image,
            &parsed,
            |p, l| store.mapping().is_current(p, l),
            up2,
        )
        .pages;

        // Phase 3: commit relocations under the write lock, then quarantine the victim.
        let mut ws = store.write_state().lock();
        if store.config().separation.separate_gc_writes {
            let policy = &ws.policy;
            sort_by_separation_key(&mut candidates, |c: &LivePage| {
                policy.separation_key(&c.pending.info)
            });
        }
        for c in candidates {
            // The conflict check: skip any page rewritten by the user (or deleted)
            // since victim selection — its buffered/new copy is authoritative and the
            // stale payload in hand must not shadow it.
            if !store.mapping().is_current(c.pending.info.page, &c.loc) {
                continue;
            }
            AtomicStats::bump(&stats.gc_pages_written);
            AtomicStats::add(&stats.gc_bytes_written, c.pending.info.size as u64);
            report.pages_moved += 1;
            report.bytes_moved += c.pending.info.size as u64;
            match write_path::append_page(store, &mut ws, c.pending)? {
                write_path::AppendOutcome::Appended => {}
                write_path::AppendOutcome::NeedsCleaning => {
                    unreachable!("GC allocations dip into the reserve and never defer")
                }
            }
        }
        // Remap-before-release has now held for every live page of this victim; park the
        // slot until the relocated copies are durable and no reader pins remain.
        ws.segments.release_quarantined(victim);
        AtomicStats::bump(&stats.segments_cleaned);
        stats.add_emptiness(emptiness);
        emptiness_sum += emptiness;
        store.publish_free(&ws);
    }

    // Phase 4: make the relocated pages durable and recycle the victims.
    {
        let mut ws = store.write_state().lock();
        write_path::seal_gc_streams(store, &mut ws)?;
    }
    store.device().sync()?;
    {
        let mut ws = store.write_state().lock();
        ws.segments.mark_quarantine_synced();
        ws.segments.reap_quarantine(|id| store.pin_count(id) == 0);
        store.publish_free(&ws);
    }

    report.mean_emptiness = emptiness_sum / victims.len() as f64;
    report.victims = victims.iter().map(|&(v, _, _)| v).collect();
    Ok(report)
}
