//! The cleaning driver: victim selection, live-page relocation and remap commit.
//!
//! A cycle is structured so that the expensive work — reading and parsing whole victim
//! segment images from the device, and copying live payloads into GC output builders —
//! happens with **no store lock** held (only the cycle lock, which foreground traffic
//! never takes):
//!
//! 1. **Select** (short central lock): the policy picks up to `segments_per_cycle`
//!    victims from the sealed-segment snapshots; their emptiness/`up2` are recorded.
//! 2. **Collect** (no locks): each victim's image is read from the device and its entry
//!    table decoded; entries that are no longer current are pre-filtered against the
//!    sharded page table.
//! 3. **Stage & commit** (per victim): still-current pages are appended to the cycle's
//!    GC output segments (no store lock; allocation and seals touch the central lock
//!    briefly), *keeping their original per-page write sequences*. Then, under one
//!    short central section, each staged page is committed with an atomic
//!    *compare-and-swap* on the page table
//!    ([`crate::mapping::ShardedPageTable::replace_if_current`]): a page the user
//!    rewrote since staging fails the swap and its stale copy is abandoned (the original
//!    write sequence guarantees the abandoned copy can also never win during recovery).
//!    The victim is then released into the quarantine (remap-before-release: by the time
//!    a victim is released, none of its pages are referenced by the mapping).
//! 4. **Seal + sync + reap**: GC output streams are sealed, the device is synced, and
//!    only then do quarantined victims with no reader pins return to the free list.
//!
//! Unlike the pre-sharding design, committing relocations takes no write lock at all —
//! writers on every stream keep appending while a cycle runs; they only contend with the
//! cleaner on the short central-lock sections.
//!
//! Cycles are serialised by the cycle lock ([`GcControl::lock_cycle`]); they are started
//! by the [`crate::shared::BackgroundCleaner`] thread, by writers at the free-segment
//! watermark, or explicitly via [`crate::LogStore::clean_now`].

use super::write_path::{self, MetaLedger};
use super::{CentralState, GcStreams, LogStore, OpenSegment};
use crate::cleaner::{collect_live_pages, CleaningReport, LivePage};
use crate::error::{Error, Result};
use crate::freq::Up2Average;
use crate::layout::{self, decode_segment, SegmentBuilder};
use crate::policy::PolicyContext;
use crate::stats::AtomicStats;
use crate::types::{PageId, PageLocation, SegmentId, UpdateTick};
use crate::write_buffer::sort_by_separation_key;
use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Coordination state for cleaning: cycle serialisation and background-cleaner wakeup.
pub(crate) struct GcControl {
    /// Serialises whole cleaning cycles (one at a time, whoever runs them). Also taken
    /// by `flush` and the emergency reclaim path before syncing + marking the
    /// quarantine, so quarantine durability transitions are totally ordered against
    /// in-flight cycles.
    cycle_lock: Mutex<()>,
    /// Wakeup flag for the background cleaner, guarded with [`GcControl::kick_cond`].
    kick: Mutex<KickState>,
    kick_cond: Condvar,
    /// True while a [`crate::shared::BackgroundCleaner`] thread is attached; writers
    /// then kick it instead of cleaning inline.
    background_attached: AtomicBool,
}

#[derive(Default)]
struct KickState {
    pending: bool,
    shutdown: bool,
}

impl GcControl {
    pub(crate) fn new() -> Self {
        Self {
            cycle_lock: Mutex::new(()),
            kick: Mutex::new(KickState::default()),
            kick_cond: Condvar::new(),
            background_attached: AtomicBool::new(false),
        }
    }

    /// Acquire the cycle lock (blocks while a cycle, flush tail or reclaim runs).
    pub(crate) fn lock_cycle(&self) -> MutexGuard<'_, ()> {
        self.cycle_lock.lock()
    }

    /// Acquire the cycle lock without blocking, if free.
    pub(crate) fn try_lock_cycle(&self) -> Option<MutexGuard<'_, ()>> {
        self.cycle_lock.try_lock()
    }

    /// Wake the background cleaner (writers call this at the free-segment watermark).
    pub(crate) fn kick(&self) {
        let mut k = self.kick.lock();
        k.pending = true;
        self.kick_cond.notify_one();
    }

    /// Ask the background cleaner to exit.
    pub(crate) fn shutdown(&self) {
        let mut k = self.kick.lock();
        k.shutdown = true;
        self.kick_cond.notify_all();
    }

    /// Block until kicked, shut down, or `timeout` elapses. Returns true on shutdown.
    pub(crate) fn wait_for_kick(&self, timeout: Duration) -> bool {
        let mut k = self.kick.lock();
        if !k.pending && !k.shutdown {
            self.kick_cond.wait_for(&mut k, timeout);
        }
        k.pending = false;
        k.shutdown
    }

    /// Mark a background cleaner as attached/detached (clears any stale shutdown flag
    /// on attach so a store can be re-shared after `try_into_inner` failed).
    pub(crate) fn set_background_attached(&self, attached: bool) {
        if attached {
            self.kick.lock().shutdown = false;
        }
        self.background_attached.store(attached, Ordering::Release);
    }

    /// True while a background cleaner serves this store.
    pub(crate) fn background_attached(&self) -> bool {
        self.background_attached.load(Ordering::Acquire)
    }
}

/// Victim-selection mode for a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SelectionMode {
    /// The configured policy picks (with a greedy fallback only if it picks nothing).
    Policy,
    /// Force a global greedy pick with the full configured batch: the space-driven
    /// escalation writers use when policy-driven cycles fail to relieve allocation
    /// pressure (multi-log nets almost nothing per cycle under distress).
    ForceGreedy,
}

/// One relocation appended to a GC builder, awaiting its page-table commit.
struct StagedRelocation {
    page: PageId,
    /// Where the page lived in the victim (the compare-and-swap's expected value).
    old: PageLocation,
    /// Where the relocated copy now lives (`new.segment` is the GC output segment and
    /// the accounting target on commit).
    new: PageLocation,
}

/// A collected live page plus its routing decisions.
struct GcItem {
    live: LivePage,
    log: u16,
    key: Option<f64>,
}

/// Run one full cleaning cycle with the configured policy. Serialised against other
/// cycles; safe to call from any thread, with no store locks held.
pub(crate) fn run_cleaning_cycle(store: &LogStore) -> Result<CleaningReport> {
    run_cleaning_cycle_with(store, SelectionMode::Policy)
}

/// Run one cycle with explicit victim-selection mode (see [`SelectionMode`]).
pub(crate) fn run_cleaning_cycle_with(
    store: &LogStore,
    mode: SelectionMode,
) -> Result<CleaningReport> {
    let _cycle = store.gc.lock_cycle();
    let stats = store.atomic_stats();
    AtomicStats::bump(&stats.cleaning_cycles);
    let unow = store.unow();

    // Phase 1: select victims under a short central lock.
    let victims: Vec<(SegmentId, f64, UpdateTick)> = {
        let mut central = store.central().lock();
        let CentralState { segments, policy } = &mut *central;
        let batch = policy
            .preferred_batch()
            .unwrap_or(store.config().cleaning.segments_per_cycle)
            .max(1);
        let sealed = segments.sealed_stats();
        let ctx = PolicyContext {
            unow,
            segments: &sealed,
        };
        let mut picked = match mode {
            SelectionMode::Policy => policy.select_victims(&ctx, batch),
            SelectionMode::ForceGreedy => {
                let want = batch.max(store.config().cleaning.segments_per_cycle);
                let mut greedy = crate::policy::GreedyPolicy::new();
                crate::policy::CleaningPolicy::select_victims(&mut greedy, &ctx, want)
            }
        };
        if picked.is_empty() && mode == SelectionMode::Policy {
            // Space-driven escalation (the simulator's `emergency_greedy_clean`): a
            // selective policy — multi-log only inspects the written log's neighbourhood
            // — can find no victim even though reclaimable space exists elsewhere.
            // Real systems fall back to a global space-driven GC in that corner.
            let mut greedy = crate::policy::GreedyPolicy::new();
            picked = crate::policy::CleaningPolicy::select_victims(&mut greedy, &ctx, batch);
        }
        picked
            .into_iter()
            .filter_map(|v| segments.meta(v).map(|m| (v, m.emptiness(), m.freq.up2())))
            .collect()
    };
    if victims.is_empty() {
        return Ok(CleaningReport::default());
    }

    // The GC output streams belong to this cycle (we hold the cycle lock).
    let mut gcs = store.gc_streams().lock();
    let mut report = CleaningReport::default();
    let mut emptiness_sum = 0.0;
    let mut released: Vec<SegmentId> = Vec::with_capacity(victims.len());
    'victims: for &(victim, emptiness, up2) in &victims {
        // Phase 2: read and parse the victim image without any store lock — foreground
        // reads and writes proceed while this (the dominant cost of cleaning) runs.
        let image = store.device().read_segment(victim)?;
        let parsed = decode_segment(victim, &image)?.ok_or_else(|| Error::CorruptSegment {
            segment: victim,
            detail: "sealed segment has a blank image".into(),
        })?;
        // Lock-free pre-filter against the sharded page table; the authoritative
        // conflict check is the compare-and-swap at commit time.
        let candidates = collect_live_pages(
            victim,
            &image,
            &parsed,
            |p, l| store.mapping().is_current(p, l),
            up2,
        )
        .pages;

        // Route every candidate to an output log and fetch separation keys, under one
        // short central acquisition (the policy lives there). Same routing helper as
        // the user drain, so user and GC placement can never diverge.
        let separate = store.config().separation.separate_gc_writes;
        let mut items: Vec<GcItem> = {
            let mut central = store.central().lock();
            let CentralState { policy, .. } = &mut *central;
            candidates
                .into_iter()
                .map(|live| {
                    let (log, key) =
                        write_path::route_page(policy, unow, separate, &live.pending.info);
                    GcItem { live, log, key }
                })
                .collect()
        };
        if separate {
            sort_by_separation_key(&mut items, |it: &GcItem| it.key);
        }

        // Phase 3a: stage — copy still-current pages into the GC output builders. No
        // store lock; the occasional seal/allocation touches the central lock briefly.
        // The ledger only satisfies `seal_open`'s batching interface and stays empty
        // here: GC accounting is applied directly at commit (phase 3b), in the same
        // central section as the page-table swap.
        let mut staged: Vec<StagedRelocation> = Vec::with_capacity(items.len());
        let mut ledger = MetaLedger::default();
        for item in items {
            let info = &item.live.pending.info;
            if !store.mapping().is_current(info.page, &item.live.loc) {
                // Rewritten or deleted since collection; skip before wasting output
                // space. The commit-time compare-and-swap below remains authoritative.
                continue;
            }
            let data = item
                .live
                .pending
                .data
                .as_ref()
                .expect("GC relocation always carries a payload");
            let Some(log) = ensure_gc_open(store, &mut gcs, &mut ledger, item.log, data.len())?
            else {
                // No output space for this victim even after the distress fallbacks:
                // abandon it *gracefully*. Nothing of it has been committed — its pages
                // are still mapped into the sealed victim image, which stays exactly
                // where it is — and the few copies already staged into builders are
                // never swapped in, so they are recovery-safe garbage. Move on to the
                // remaining victims rather than giving up on the cycle: a later victim
                // may be fully dead (needing no output space at all) and releasing it
                // is exactly what relieves the pressure. The writers' escalation
                // ladder (greedy cycles, quarantine sweeps) decides whether the store
                // is genuinely full.
                continue 'victims;
            };
            let open = gcs
                .open
                .get_mut(&log)
                .expect("ensure_gc_open just installed this log");
            // The relocated copy keeps the original write sequence: it is the same
            // version of the page, just at a new address (see `LivePage::write_seq`).
            let offset = open
                .builder
                .write()
                .push_page(info.page, item.live.write_seq, data);
            open.up2_avg.add(info.up2);
            staged.push(StagedRelocation {
                page: info.page,
                old: item.live.loc,
                new: PageLocation {
                    segment: open.id,
                    offset,
                    len: data.len() as u32,
                },
            });
        }

        // Phase 3b: commit under one short central section. The swap and the output
        // segment's accounting land in the same critical section, so any later death of
        // the relocated copy (recorded by a writer only after it observes the new
        // location) is applied after this `on_page_added`, never before.
        {
            let mut central = store.central().lock();
            for s in staged {
                if store.mapping().replace_if_current(s.page, &s.old, s.new) {
                    if let Some(meta) = central.segments.meta_mut(s.new.segment) {
                        meta.on_page_added(s.new.len, None);
                    }
                    AtomicStats::bump(&stats.gc_pages_written);
                    AtomicStats::add(&stats.gc_bytes_written, s.new.len as u64);
                    report.pages_moved += 1;
                    report.bytes_moved += s.new.len as u64;
                }
                // A failed swap means the user rewrote the page after staging: the
                // stale copy in the output builder is dead on arrival and is simply
                // never accounted live (it will be reclaimed when that segment is
                // eventually cleaned).
            }
            // Remap-before-release now holds for every live page of this victim; park
            // the slot until the relocated copies are durable and no reader pins
            // remain.
            central.segments.release_quarantined(victim);
            released.push(victim);
            AtomicStats::bump(&stats.segments_cleaned);
            stats.add_emptiness(emptiness);
            emptiness_sum += emptiness;
            store.publish_free(&central.segments);
        }
    }

    // Phase 4: make the relocated pages durable and recycle the victims.
    write_path::seal_gc_and_reap(store, &mut gcs)?;

    if !released.is_empty() {
        report.mean_emptiness = emptiness_sum / released.len() as f64;
    }
    report.victims = released;
    Ok(report)
}

/// Make sure a GC output segment with room for `len` bytes exists, preferably for
/// `log`, sealing the full one and allocating a fresh segment if necessary. Returns the
/// log key of the open segment to append to, or `None` if no output space can be found
/// (the caller abandons the current victim rather than failing the cycle).
///
/// GC allocations may dip into the reserve — that is what it is for. Under allocation
/// distress the cycle degrades gracefully: it first redirects the relocation into *any*
/// of its open outputs with room (sacrificing log purity for progress), then seals its
/// output streams and syncs so its already quarantined victims become reusable.
fn ensure_gc_open(
    store: &LogStore,
    gcs: &mut GcStreams,
    ledger: &mut MetaLedger,
    log: u16,
    len: usize,
) -> Result<Option<u16>> {
    if let Some(open) = gcs.open.get(&log) {
        if open.builder.read().fits(len) {
            return Ok(Some(log));
        }
    }
    if let Some(full) = gcs.open.remove(&log) {
        write_path::seal_open(store, full, ledger)?;
    }
    let capacity =
        layout::payload_capacity(store.config().segment_bytes, store.config().page_bytes) as u64;
    let mut allocated = try_allocate_gc(store, capacity, log);
    if allocated.is_none() {
        // Distress fallback 1: reuse another output stream's headroom.
        if let Some((&l, _)) = gcs.open.iter().find(|(_, o)| o.builder.read().fits(len)) {
            return Ok(Some(l));
        }
        // Distress fallback 2: make this cycle's own relocations durable so its
        // quarantined victims free up (their live pages are all in the builders about
        // to be sealed), then retry the allocation.
        write_path::seal_gc_and_reap(store, gcs)?;
        allocated = try_allocate_gc(store, capacity, log);
    }
    let Some((id, gen)) = allocated else {
        return Ok(None);
    };
    let builder = Arc::new(RwLock::new(SegmentBuilder::new(
        store.config().segment_bytes,
    )));
    store.open_reads().write().insert(id, Arc::clone(&builder));
    gcs.open.insert(
        log,
        OpenSegment {
            id,
            builder,
            up2_avg: Up2Average::new(),
            log,
            gen,
            last_used: 0,
        },
    );
    store.note_open_delta(1);
    Ok(Some(log))
}

fn try_allocate_gc(store: &LogStore, capacity: u64, log: u16) -> Option<(SegmentId, u64)> {
    let mut central = store.central().lock();
    let id = central
        .segments
        .allocate(capacity, log, store.config().up2_mode)?;
    store.bump_segment_gen(id);
    let gen = store.segment_gen(id);
    store.publish_free(&central.segments);
    Some((id, gen))
}
