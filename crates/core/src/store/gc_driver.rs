//! The cleaning driver: victim selection, live-page relocation and remap commit —
//! running as up to [`StoreConfig::cleaner_threads`](crate::StoreConfig::cleaner_threads)
//! **concurrent cycles on disjoint victim sets**.
//!
//! ### One cycle's life
//!
//! A cycle is structured so that the expensive work — reading and parsing whole victim
//! segment images from the device, and copying live payloads into GC output builders —
//! happens with **no store lock** held:
//!
//! 1. **Claim** (short central lock): the policy picks up to `segments_per_cycle`
//!    victims from the sealed-segment snapshots and the cycle *claims* them in the same
//!    critical section ([`crate::segment::SegmentTable::claim_for_cleaning`]). Claimed
//!    victims are hidden from selection, so two concurrent cycles can never pick the
//!    same slot; their emptiness/`up2` are recorded.
//! 2. **Read** (no locks): each victim's image is read from the device and its entry
//!    table decoded; entries that are no longer current are pre-filtered against the
//!    sharded page table. Reads are **pipelined across a small I/O pool**
//!    ([`StoreConfig::gc_read_pool`](crate::StoreConfig::gc_read_pool)): workers
//!    prefetch the next images (bounded lookahead) while the cycle relocates the
//!    current victim's pages.
//! 3. **Relocate & commit** (per victim): still-current pages are appended to the
//!    cycle's *own* GC output segments (no store lock; allocation and seals touch the
//!    central lock briefly), *keeping their original per-page write sequences*. Then,
//!    under one short central section, each staged page is committed with an atomic
//!    *compare-and-swap* on the page table
//!    ([`crate::mapping::ShardedPageTable::replace_if_current`]): a page the user
//!    rewrote since staging fails the swap and its stale copy is abandoned (the original
//!    write sequence guarantees the abandoned copy can also never win during recovery).
//!    The victim is then released into the quarantine tagged with this cycle's token
//!    (remap-before-release: by the time a victim is released, none of its pages are
//!    referenced by the mapping).
//! 4. **Seal + sync + reap**: the cycle's GC output streams are sealed, its quarantine
//!    entries are marked *sealed*, the device is synced, and quarantined victims whose
//!    seal preceded the sync — this cycle's and any other's — return to the free list
//!    once no reader pins remain.
//!
//! ### Why overlapping cycles are safe
//!
//! * **Disjoint victims** — claims make victim sets disjoint by construction, so two
//!   cycles never stage the same page from the same location, and the per-victim
//!   release/accounting paths never touch the same slot.
//! * **CAS commits** — relocation commits are per-page compare-and-swaps against the
//!   observed victim location; they are already safe against racing user writes and are
//!   equally safe against another cycle (which, by disjointness, can only be moving
//!   *other* pages).
//! * **Per-entry quarantine state** — each quarantine entry carries its owning cycle's
//!   token and a `parked → sealed → synced` state machine
//!   ([`crate::segment::SegmentTable::quarantine_mark_sealed`]): one cycle's device
//!   sync can therefore never free another cycle's victim while that cycle's relocated
//!   copies still sit in unsealed in-memory builders.
//! * **Crash safety at every boundary** — a victim's slot is untouched until its
//!   relocated copies are durable, and relocated copies keep their original write
//!   sequences, so recovery after a crash at any phase boundary reconstructs exactly
//!   the last flushed state no matter how many cycles were in flight.
//!
//! A cycle that aborts (I/O error) *orphans* its state: leftover GC output builders go
//! to the store's orphan pool and its quarantine entries are re-tagged
//! [`crate::segment::ORPHAN_CYCLE`], so the next flush or reclaim pass seals and frees
//! them on the dead cycle's behalf; its unprocessed victim claims are dropped so the
//! victims become selectable again.
//!
//! Cycles are started by the [`crate::shared::BackgroundCleaner`] pool, by writers at
//! the free-segment watermark, or explicitly via [`crate::LogStore::clean_now`]; all of
//! them acquire a cycle slot from [`GcControl`], which caps concurrency at
//! [`StoreConfig::max_cleaner_cycles`] (with a cap of 1 cycles serialise exactly as in
//! the pre-concurrent design).
//!
//! ### Adaptive concurrency
//!
//! With [`CleanerMode::Adaptive`] a feedback controller decides, tick by tick, how
//! many of those slots should actually be used: the published *cycle target* (between
//! the mode's `min_cycles` and `max_cycles`) gates the background pool's workers and
//! sets the divisor of the per-cycle victim budget. Ticks run on background wake-ups
//! and at cycle starts (rate-limited), and writer stalls escalate the target to its
//! maximum immediately; see [`controller_tick`] for the signals and
//! [`desired_cycles`]/[`apply_damping`] for the decision rule and its
//! scale-down damping. Scaling is always *advisory to new work*: a decision never
//! cancels an in-flight cycle, so claims, quarantine entries and GC output builders
//! are handed through the exact same completion/orphan paths as in fixed mode.

use super::write_path::{self, MetaLedger};
use super::{CentralState, GcStreams, LogStore, OpenSegment};
use crate::cleaner::{collect_live_pages, CleaningReport, LivePage};
use crate::config::{AdaptiveTargets, CleanerMode, StoreConfig};
use crate::error::{Error, Result};
use crate::freq::{classify_heat, Up2Average, TEMPERATURE_UNCLASSIFIED};
use crate::layout::{self, decode_segment, SegmentBuilder};
use crate::policy::{PolicyContext, SegmentStats, MULTILOG_MAX_LOGS};
use crate::segment::ORPHAN_CYCLE;
use crate::stats::AtomicStats;
use crate::types::{PageId, PageLocation, SealSeq, SegmentId, UpdateTick, WriteSeq};
use crate::write_buffer::sort_by_separation_key;
use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Externally observable phase boundaries of one cleaning cycle, in the order they are
/// crossed: `Claimed* → (VictimRead → Relocated)* → Sealed → Synced`.
///
/// Exposed for test instrumentation via [`LogStore::set_gc_phase_hook`]: a hook that
/// blocks pauses the cycle at exactly that boundary (no store lock is held while the
/// hook runs), which is what makes deterministic cleaner-race and crash-matrix tests
/// possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcPhase {
    /// A victim was claimed in the segment table (fired once per victim, after the
    /// selection critical section and before any image read).
    Claimed,
    /// One victim's image has been read and its live pages collected.
    VictimRead,
    /// One victim's relocations are committed and it entered the quarantine.
    Relocated,
    /// All of the cycle's GC output segments are sealed (device writes issued).
    Sealed,
    /// The cycle's device sync landed; its victims are reusable once unpinned.
    Synced,
    /// The adaptive GC controller evaluated a tick (never fired in
    /// [`CleanerMode::Fixed`]). For this event the hook's first parameter carries the
    /// *decided concurrent-cycle target*, not a cycle token, and the victim is absent —
    /// which is what lets the deterministic harness script pressure transitions and
    /// observe every scale-up/scale-down decision.
    ControllerDecision,
}

/// Test/diagnostic instrumentation callback: `(cycle token, phase, victim)`.
/// The victim is present for the per-victim phases, absent for `Sealed`/`Synced`.
pub type GcPhaseHook = Arc<dyn Fn(u64, GcPhase, Option<SegmentId>) + Send + Sync>;

/// Coordination state for cleaning: the concurrent-cycle gate and slots, cycle tokens,
/// background-cleaner wakeup, and the adaptive concurrency controller.
pub(crate) struct GcControl {
    /// Running cycles hold this shared; checkpoint snapshots and the straggler reclaim
    /// hold it exclusive to wait out every in-flight cycle. Never acquired while
    /// holding a stream lock (a checkpoint holds it exclusive *and then* takes the
    /// stream locks).
    cycle_gate: RwLock<()>,
    /// Number of cycles currently running, bounded by `max_cycles`.
    active_cycles: Mutex<usize>,
    slot_cond: Condvar,
    /// Hard concurrency cap ([`StoreConfig::max_cleaner_cycles`]): the slot count and
    /// the background-pool size. The adaptive target never exceeds it, and `clean_now`
    /// callers may always run up to it, so scaling down can never wedge a writer that
    /// lends its thread to a synchronous cycle.
    max_cycles: usize,
    /// Lower bound of the adaptive target ([`StoreConfig::min_cleaner_cycles`]).
    min_cycles: usize,
    /// Adaptive thresholds; `None` in [`CleanerMode::Fixed`] (the controller is inert
    /// and `target` stays pinned at `max_cycles` forever).
    adaptive: Option<AdaptiveTargets>,
    /// The published concurrent-cycle target, in `min_cycles..=max_cycles`. Background
    /// pool threads with index `>= target` park between cycles; the per-cycle victim
    /// budget divides by it.
    target: AtomicUsize,
    /// Tick bookkeeping of the controller (damping streak, rate limiting, stall
    /// deltas). `try_lock` discipline: a contended tick is simply skipped.
    controller: Mutex<ControllerState>,
    /// Next cycle token; starts above [`ORPHAN_CYCLE`], which is reserved for the
    /// quarantine entries of aborted cycles.
    next_token: AtomicU64,
    /// Wakeup flag for the background cleaner pool, guarded with [`GcControl::kick_cond`].
    kick: Mutex<KickState>,
    kick_cond: Condvar,
    /// True while a [`crate::shared::BackgroundCleaner`] pool is attached; writers
    /// then kick it instead of cleaning inline.
    background_attached: AtomicBool,
}

#[derive(Default)]
struct KickState {
    pending: bool,
    shutdown: bool,
}

/// Mutable bookkeeping of the adaptive controller.
struct ControllerState {
    /// Consecutive ticks whose desired target was below the published one; a
    /// scale-down only happens once this reaches
    /// [`AdaptiveTargets::scale_down_ticks`] (the damping that stops square-wave
    /// loads from thrashing the pool).
    low_streak: u32,
    /// When the last (rate-limited) tick ran; `None` before the first.
    last_tick: Option<Instant>,
    /// Stall counter total (`writer_stall_events + straggler_reclaims`) observed at
    /// the last tick, so a tick can detect *new* stalls since the previous one.
    last_stall_count: u64,
}

/// Live inputs of one controller decision (see [`desired_cycles`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ControlSignals {
    /// Free segments right now.
    pub free: usize,
    /// The effective cleaning trigger (free-segment watermark).
    pub trigger: usize,
    /// The hard reserve floor user allocations stop at.
    pub reserve: usize,
    /// Fraction of sealed capacity that is dead space
    /// ([`crate::segment::PressureSnapshot::dead_fraction`]).
    pub dead_fraction: f64,
    /// Writer stall / straggler-reclaim events happened since the last tick.
    pub stalled: bool,
}

/// The controller's decision rule, a pure function of the signals:
///
/// * a writer stall since the last tick, or a free pool at the hard reserve floor,
///   demands everything: `max`;
/// * a free pool above the trigger means cleaning is idle: `min` (idle-phase CPU is
///   why the pool narrows — extra cycles with nothing to do still burn selection work
///   and wake-ups);
/// * in between, the target scales with the worse of two urgencies: *allocation
///   depth* — how far below the trigger the pool has sunk, normalised over the
///   trigger→reserve band — and *fragmentation* — how much of the sealed space is
///   dead, normalised over the configured `dead_space_low..high` band. Depth says how
///   badly segments are needed; dead fraction says how productive (cheap per freed
///   segment) extra concurrent cycles will be. Either justifies widening.
fn desired_cycles(min: usize, max: usize, targets: &AdaptiveTargets, s: &ControlSignals) -> usize {
    if s.stalled || s.free <= s.reserve + 1 {
        return max;
    }
    if s.free > s.trigger {
        return min;
    }
    let span = s.trigger.saturating_sub(s.reserve).max(1) as f64;
    let depth = ((s.trigger - s.free) as f64 / span).clamp(0.0, 1.0);
    let frag = ((s.dead_fraction - targets.dead_space_low)
        / (targets.dead_space_high - targets.dead_space_low))
        .clamp(0.0, 1.0);
    let urgency = depth.max(frag);
    (min + (urgency * (max - min) as f64).round() as usize).min(max)
}

/// Asymmetric damping around the published target: scale-*up* jumps straight to the
/// desired value (pressure must be answered now); scale-*down* shrinks by one cycle
/// only after `scale_down_ticks` consecutive ticks wanted less (so alternating
/// pressure cannot thrash the pool between ticks). Returns the new target.
fn apply_damping(
    current: usize,
    desired: usize,
    low_streak: &mut u32,
    scale_down_ticks: u32,
) -> usize {
    if desired > current {
        *low_streak = 0;
        desired
    } else if desired < current {
        *low_streak += 1;
        if *low_streak >= scale_down_ticks {
            *low_streak = 0;
            current - 1
        } else {
            current
        }
    } else {
        *low_streak = 0;
        current
    }
}

/// Permission to run one cleaning cycle: holds the shared cycle gate plus one of the
/// `cleaner_threads` cycle slots, and carries the cycle's token. Dropping it frees the
/// slot.
pub(crate) struct CyclePermit<'a> {
    control: &'a GcControl,
    _gate: RwLockReadGuard<'a, ()>,
    token: u64,
}

impl Drop for CyclePermit<'_> {
    fn drop(&mut self) {
        let mut active = self.control.active_cycles.lock();
        *active -= 1;
        self.control.slot_cond.notify_one();
    }
}

impl GcControl {
    pub(crate) fn new(config: &StoreConfig) -> Self {
        let max_cycles = config.max_cleaner_cycles();
        let min_cycles = config.min_cleaner_cycles().min(max_cycles);
        let adaptive = match config.cleaner_mode {
            CleanerMode::Fixed => None,
            CleanerMode::Adaptive { targets, .. } => Some(targets),
        };
        Self {
            cycle_gate: RwLock::new(()),
            active_cycles: Mutex::new(0),
            slot_cond: Condvar::new(),
            max_cycles: max_cycles.max(1),
            min_cycles: min_cycles.max(1),
            adaptive,
            // Adaptive stores wake up assuming idle (the controller widens on the
            // first pressured tick); fixed stores are pinned at the configured width.
            target: AtomicUsize::new(if adaptive.is_some() {
                min_cycles.max(1)
            } else {
                max_cycles.max(1)
            }),
            controller: Mutex::new(ControllerState {
                low_streak: 0,
                last_tick: None,
                last_stall_count: 0,
            }),
            next_token: AtomicU64::new(ORPHAN_CYCLE + 1),
            kick: Mutex::new(KickState::default()),
            kick_cond: Condvar::new(),
            background_attached: AtomicBool::new(false),
        }
    }

    /// The current concurrent-cycle target (always `cleaner_threads` in fixed mode).
    pub(crate) fn current_target(&self) -> usize {
        self.target.load(Ordering::Relaxed)
    }

    /// Acquire a cycle slot (blocks while `cleaner_threads` cycles are already in
    /// flight, or while a [`GcControl::quiesce`] holder drains the gate).
    pub(crate) fn begin_cycle(&self) -> CyclePermit<'_> {
        let gate = self.cycle_gate.read();
        let mut active = self.active_cycles.lock();
        while *active >= self.max_cycles {
            self.slot_cond.wait(&mut active);
        }
        *active += 1;
        drop(active);
        CyclePermit {
            control: self,
            _gate: gate,
            token: self.next_token.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Wait out every in-flight cleaning cycle and hold new ones off while the guard
    /// lives. Used by checkpoint snapshots (a stable mapping needs no concurrent GC
    /// remaps) and by the last-resort straggler reclaim (an in-flight cycle's own
    /// phase 4 is what frees its victims). Must not be called while holding a stream
    /// lock.
    pub(crate) fn quiesce(&self) -> RwLockWriteGuard<'_, ()> {
        self.cycle_gate.write()
    }

    /// Wake the background cleaner pool (writers call this at the free-segment
    /// watermark).
    pub(crate) fn kick(&self) {
        let mut k = self.kick.lock();
        k.pending = true;
        self.kick_cond.notify_all();
    }

    /// Ask the background cleaner pool to exit.
    pub(crate) fn shutdown(&self) {
        let mut k = self.kick.lock();
        k.shutdown = true;
        self.kick_cond.notify_all();
    }

    /// Block until kicked, shut down, or `timeout` elapses. Returns true on shutdown.
    pub(crate) fn wait_for_kick(&self, timeout: Duration) -> bool {
        let mut k = self.kick.lock();
        if !k.pending && !k.shutdown {
            self.kick_cond.wait_for(&mut k, timeout);
        }
        k.pending = false;
        k.shutdown
    }

    /// Mark a background cleaner as attached/detached (clears any stale shutdown flag
    /// on attach so a store can be re-shared after `try_into_inner` failed).
    pub(crate) fn set_background_attached(&self, attached: bool) {
        if attached {
            self.kick.lock().shutdown = false;
        }
        self.background_attached.store(attached, Ordering::Release);
    }

    /// True while a background cleaner serves this store.
    pub(crate) fn background_attached(&self) -> bool {
        self.background_attached.load(Ordering::Acquire)
    }
}

/// Victim-selection mode for a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SelectionMode {
    /// The configured policy picks (with a greedy fallback only if it picks nothing).
    Policy,
    /// Force a global greedy pick with the full configured batch: the space-driven
    /// escalation writers use when policy-driven cycles fail to relieve allocation
    /// pressure (multi-log nets almost nothing per cycle under distress).
    ForceGreedy,
}

/// One relocation appended to a GC builder, awaiting its page-table commit.
struct StagedRelocation {
    page: PageId,
    /// Where the page lived in the victim (the compare-and-swap's expected value).
    old: PageLocation,
    /// Where the relocated copy now lives (`new.segment` is the GC output segment and
    /// the accounting target on commit).
    new: PageLocation,
    /// Temperature class the page was routed to (for per-class accounting).
    class: u16,
}

/// A collected live page plus its routing decisions.
struct GcItem {
    live: LivePage,
    log: u16,
    /// Temperature class assigned from the page's decayed heat (0 = coldest; always 0
    /// with `gc_temperature_classes = 1`).
    class: u16,
    key: Option<f64>,
}

/// The composite GC-output stream key: each (temperature class, policy log) pair gets
/// its own open output segment, so cold survivors pack together instead of sharing
/// segments with hot ones. `class` is bounded by
/// [`crate::freq::MAX_TEMPERATURE_CLASSES`] (8) and `log` by [`MULTILOG_MAX_LOGS`]
/// (32), so the key always fits `u16`; with one temperature class the key collapses to
/// the plain log id, reproducing the pre-temperature stream layout exactly.
#[inline]
fn gc_stream_key(class: u16, log: u16) -> u16 {
    class * MULTILOG_MAX_LOGS as u16 + log
}

/// The private state of one in-flight cycle: its token, its own GC output streams
/// (no lock needed — nobody else can reach them) and the victims it has claimed but not
/// yet released.
struct CycleCtx {
    token: u64,
    gcs: GcStreams,
    claimed: Vec<SegmentId>,
}

/// One victim with its image read and live pages collected (the output of the phase-2
/// read pipeline).
struct PreparedVictim {
    victim: SegmentId,
    emptiness: f64,
    /// The victim's temperature tag at claim time ([`TEMPERATURE_UNCLASSIFIED`] for
    /// user-filled segments), compared against each survivor's fresh class to count
    /// promotions/demotions.
    temperature: u16,
    candidates: Vec<LivePage>,
    /// The victim's seal sequence, read from its on-device header. Compared against
    /// the committed checkpoint frontier to decide whether its delete facts are
    /// already durable in the checkpoint (and so need not be re-emitted).
    seal_seq: SealSeq,
    /// Tombstones found in the victim (deduplicated, newest write seq per page). Each
    /// one is re-emitted into a GC output stream unless the page has been recreated
    /// or a committed checkpoint covers the victim: the delete fact must survive the
    /// victim slot's reuse or scan recovery could resurrect the page from an older
    /// copy in a lower-seal-seq segment.
    tombstones: Vec<(PageId, WriteSeq)>,
}

/// A claimed victim: `(id, emptiness, up2, temperature)` recorded in the claim
/// critical section.
type ClaimedVictim = (SegmentId, f64, UpdateTick, u16);

/// Invoke the store's phase hook, if installed, with no lock held.
fn fire_phase_hook(store: &LogStore, token: u64, phase: GcPhase, victim: Option<SegmentId>) {
    let hook = store.gc_phase_hook();
    if let Some(h) = hook {
        h(token, phase, victim);
    }
}

/// Minimum interval between rate-limited controller ticks. Background wake-ups and
/// cycle starts tick through this limiter; the public
/// [`LogStore::gc_controller_tick`] forces a tick regardless (deterministic tests
/// drive pressure transitions through it).
const CONTROLLER_TICK_INTERVAL: Duration = Duration::from_millis(5);

/// Evaluate one adaptive-controller tick: sample the pressure signals, run the
/// decision rule, damp, publish the new target and fire the
/// [`GcPhase::ControllerDecision`] hook event. Returns the (possibly unchanged)
/// target; a no-op returning the current target in [`CleanerMode::Fixed`], when the
/// rate limiter says it is too soon, or when another tick is in progress.
///
/// Sampling cost: one short central-lock acquisition for the segment-table pressure
/// snapshot; everything else reads atomics. Never called on the foreground read path;
/// writers only reach it through stall escalation.
pub(crate) fn controller_tick(store: &LogStore, forced: bool) -> usize {
    let gc = &store.gc;
    let Some(targets) = gc.adaptive else {
        return gc.current_target();
    };
    let Some(mut state) = gc.controller.try_lock() else {
        return gc.current_target();
    };
    if !forced {
        if let Some(last) = state.last_tick {
            if last.elapsed() < CONTROLLER_TICK_INTERVAL {
                return gc.current_target();
            }
        }
    }
    state.last_tick = Some(Instant::now());
    let stats = store.atomic_stats();
    let stall_count = stats.writer_stall_events.load(Ordering::Relaxed)
        + stats.straggler_reclaims.load(Ordering::Relaxed);
    let stalled = stall_count > state.last_stall_count;
    state.last_stall_count = stall_count;
    let dead_fraction = store.central().lock().segments.pressure().dead_fraction();
    let signals = ControlSignals {
        free: store.approx_free_segments(),
        trigger: store.effective_clean_trigger(),
        reserve: store.config().cleaning.reserved_free_segments,
        dead_fraction,
        stalled,
    };
    let desired = desired_cycles(gc.min_cycles, gc.max_cycles, &targets, &signals);
    let before = gc.current_target();
    let next = apply_damping(
        before,
        desired,
        &mut state.low_streak,
        targets.scale_down_ticks,
    );
    gc.target.store(next, Ordering::Relaxed);
    drop(state);
    AtomicStats::bump(&stats.gc_controller_decisions);
    if next > before {
        AtomicStats::bump(&stats.gc_scale_ups);
        // A widened pool only helps if the parked threads hear about it.
        if gc.background_attached() {
            gc.kick();
        }
    } else if next < before {
        AtomicStats::bump(&stats.gc_scale_downs);
    }
    fire_phase_hook(store, next as u64, GcPhase::ControllerDecision, None);
    next
}

/// Record a writer-pressure event — a writer lending its thread at the hard reserve
/// floor (`straggler = false`) or a last-resort straggler reclaim
/// (`straggler = true`) — and, in adaptive mode, escalate the cycle target straight
/// to its maximum: a stalled writer is the one signal that must not wait for the next
/// rate-limited tick. Called with no stream lock held.
pub(crate) fn note_writer_stall(store: &LogStore, straggler: bool) {
    let stats = store.atomic_stats();
    if straggler {
        AtomicStats::bump(&stats.straggler_reclaims);
    } else {
        AtomicStats::bump(&stats.writer_stall_events);
    }
    let gc = &store.gc;
    if gc.adaptive.is_none() || gc.current_target() >= gc.max_cycles {
        return;
    }
    {
        let mut state = gc.controller.lock();
        state.low_streak = 0;
        gc.target.store(gc.max_cycles, Ordering::Relaxed);
    }
    AtomicStats::bump(&stats.gc_controller_decisions);
    AtomicStats::bump(&stats.gc_scale_ups);
    if gc.background_attached() {
        gc.kick();
    }
    fire_phase_hook(
        store,
        gc.max_cycles as u64,
        GcPhase::ControllerDecision,
        None,
    );
}

/// Run one full cleaning cycle with the configured policy. Takes one of the
/// `cleaner_threads` cycle slots; safe to call from any thread, with no store locks
/// held.
pub(crate) fn run_cleaning_cycle(store: &LogStore) -> Result<CleaningReport> {
    run_cleaning_cycle_with(store, SelectionMode::Policy)
}

/// Run one cycle with explicit victim-selection mode (see [`SelectionMode`]).
pub(crate) fn run_cleaning_cycle_with(
    store: &LogStore,
    mode: SelectionMode,
) -> Result<CleaningReport> {
    // Every cycle start is a natural controller tick: synchronous writer-driven
    // cycles keep the target fresh even when no background pool is attached.
    controller_tick(store, false);
    let permit = store.gc.begin_cycle();
    let token = permit.token;
    let stats = store.atomic_stats();
    AtomicStats::bump(&stats.cleaning_cycles);
    let unow = store.unow();

    // Phase 1: select victims and claim them, in one short central critical section —
    // the claims are what make concurrent cycles' victim sets disjoint.
    let victims: Vec<ClaimedVictim> = {
        let mut central = store.central().lock();
        let CentralState { segments, policy } = &mut *central;
        // The configured batch is an *aggregate* in-flight budget: divide it across
        // the concurrent cycles, or K cycles would claim K × segments_per_cycle
        // victims at once and could park most of a small device in claims +
        // quarantine while writers starve. The divisor is the *current* cycle target,
        // so an adaptive pool that narrows to 1 recovers the paper's full serialised
        // batch and a widened pool shrinks each cycle's bite; in fixed mode the
        // target is pinned at `cleaner_threads` and this is exactly the old division.
        let share =
            (store.config().cleaning.segments_per_cycle / store.gc.current_target().max(1)).max(1);
        let batch = policy.preferred_batch().unwrap_or(share).max(1);
        let sealed = segments.sealed_stats();
        let ctx = PolicyContext {
            unow,
            segments: &sealed,
        };
        let mut picked = match mode {
            SelectionMode::Policy => {
                // Temperature feedback into victim selection: segments filled with the
                // coldest survivor class decay slowly by construction, so cleaning them
                // at the usual dead-fraction is pure churn — hide them from the policy
                // until their emptiness is within `cold_victim_min_emptiness` of the
                // emptiest sealed segment. The bar is relative so cold segments ripen
                // at every fill factor instead of being starved out at high fill. The
                // filter is advisory only: if it empties the candidate set the
                // unfiltered pick runs, and the distress path (ForceGreedy) never
                // filters.
                let threshold = store.config().cleaning.cold_victim_min_emptiness;
                let use_filter = store.config().gc_temperature_classes > 1 && threshold > 0.0;
                let filtered: Vec<SegmentStats> = if use_filter {
                    let max_emptiness = sealed.iter().map(|s| s.emptiness()).fold(0.0f64, f64::max);
                    let bar = threshold * max_emptiness;
                    sealed
                        .iter()
                        .filter(|s| s.temperature != 0 || s.emptiness() >= bar)
                        .copied()
                        .collect()
                } else {
                    Vec::new()
                };
                let filtering = use_filter && filtered.len() < sealed.len();
                let mut p = if filtering {
                    let fctx = PolicyContext {
                        unow,
                        segments: &filtered,
                    };
                    policy.select_victims(&fctx, batch)
                } else {
                    policy.select_victims(&ctx, batch)
                };
                if p.is_empty() && filtering {
                    p = policy.select_victims(&ctx, batch);
                }
                p
            }
            SelectionMode::ForceGreedy => {
                // Distress cycles take the *full* configured batch, not the per-cycle
                // share: a 1-victim cycle whose victim carries a tombstone can spend a
                // whole fresh output segment on one 24-byte delete fact — net-zero
                // reclaim, forever. A full batch coalesces the tombstones (and the
                // stragglers' live pages) of many victims into one output, so a greedy
                // distress cycle is monotonic as the escalation ladder assumes.
                let want = batch
                    .max(share)
                    .max(store.config().cleaning.segments_per_cycle.max(1));
                let mut greedy = crate::policy::GreedyPolicy::new();
                crate::policy::CleaningPolicy::select_victims(&mut greedy, &ctx, want)
            }
        };
        if picked.is_empty() && mode == SelectionMode::Policy {
            // Space-driven escalation (the simulator's `emergency_greedy_clean`): a
            // selective policy — multi-log only inspects the written log's neighbourhood
            // — can find no victim even though reclaimable space exists elsewhere.
            // Real systems fall back to a global space-driven GC in that corner.
            let mut greedy = crate::policy::GreedyPolicy::new();
            picked = crate::policy::CleaningPolicy::select_victims(&mut greedy, &ctx, batch);
        }
        picked
            .into_iter()
            .filter_map(|v| {
                let m = segments.meta(v)?;
                let entry = (v, m.emptiness(), m.freq.up2(), m.temperature);
                segments.claim_for_cleaning(v).then_some(entry)
            })
            .collect()
    };
    if victims.is_empty() {
        return Ok(CleaningReport::default());
    }
    for &(v, _, _, _) in &victims {
        fire_phase_hook(store, token, GcPhase::Claimed, Some(v));
    }

    let mut cycle = CycleCtx {
        token,
        gcs: GcStreams::default(),
        claimed: victims.iter().map(|&(v, _, _, _)| v).collect(),
    };
    let result = run_claimed_victims(store, &mut cycle, &victims, unow);
    finish_cycle(store, cycle, result)
}

/// Phases 2–4 over an already claimed victim set. Any error leaves `cycle` holding
/// whatever claims and GC output builders are still outstanding, for
/// [`finish_cycle`] to orphan.
fn run_claimed_victims(
    store: &LogStore,
    cycle: &mut CycleCtx,
    victims: &[ClaimedVictim],
    unow: UpdateTick,
) -> Result<CleaningReport> {
    let mut report = CleaningReport::default();
    let mut emptiness_sum = 0.0;
    let mut released: Vec<SegmentId> = Vec::with_capacity(victims.len());

    // Phase 2 runs as a pipeline: a small pool prefetches and pre-filters victim
    // images while this thread relocates earlier victims' pages.
    for_each_prepared_victim(store, victims, |prepared| {
        fire_phase_hook(
            store,
            cycle.token,
            GcPhase::VictimRead,
            Some(prepared.victim),
        );
        if relocate_victim(
            store,
            cycle,
            prepared,
            unow,
            &mut report,
            &mut emptiness_sum,
        )? {
            released.push(prepared.victim);
            fire_phase_hook(
                store,
                cycle.token,
                GcPhase::Relocated,
                Some(prepared.victim),
            );
        }
        Ok(())
    })?;

    // Phase 4: make the relocated pages durable and recycle this cycle's victims.
    write_path::seal_streams(store, &mut cycle.gcs)?;
    fire_phase_hook(store, cycle.token, GcPhase::Sealed, None);
    {
        let mut central = store.central().lock();
        central.segments.quarantine_mark_sealed(cycle.token);
    }
    write_path::sync_and_reap(store)?;
    fire_phase_hook(store, cycle.token, GcPhase::Synced, None);

    if !released.is_empty() {
        report.mean_emptiness = emptiness_sum / released.len() as f64;
    }
    report.victims = released;
    Ok(report)
}

/// Common cycle epilogue: on success, drop the claims of skipped victims; on error,
/// orphan the cycle — leftover GC output builders go to the store's orphan pool and the
/// cycle's quarantine entries are re-tagged [`ORPHAN_CYCLE`] (both under the orphan
/// lock, so an orphan-seal pass can never adopt entries whose builders it has not yet
/// received), and unprocessed claims are dropped so the victims become selectable
/// again.
fn finish_cycle(
    store: &LogStore,
    mut cycle: CycleCtx,
    result: Result<CleaningReport>,
) -> Result<CleaningReport> {
    match result {
        Ok(report) => {
            if !cycle.claimed.is_empty() {
                let mut central = store.central().lock();
                for v in &cycle.claimed {
                    central.segments.unclaim(*v);
                }
            }
            Ok(report)
        }
        Err(e) => {
            let mut orphans = store.gc_orphans().lock();
            orphans.extend(cycle.gcs.open.drain().map(|(_, open)| open));
            let mut central = store.central().lock();
            for v in &cycle.claimed {
                central.segments.unclaim(*v);
            }
            central.segments.quarantine_orphan(cycle.token);
            Err(e)
        }
    }
}

/// Relocate one prepared victim: route and stage its still-current pages into the
/// cycle's GC outputs, commit the relocations by page-table compare-and-swap, and
/// release the victim into the quarantine. Returns false if the victim was skipped
/// because no output space could be found (its claim stays with the cycle and is
/// dropped at cycle end).
fn relocate_victim(
    store: &LogStore,
    cycle: &mut CycleCtx,
    prepared: &PreparedVictim,
    unow: UpdateTick,
    report: &mut CleaningReport,
    emptiness_sum: &mut f64,
) -> Result<bool> {
    let stats = store.atomic_stats();
    let victim = prepared.victim;

    // Classify every candidate's temperature from the decayed heat sketch, sampled
    // lock-free *before* any central acquisition. Ranking is per victim batch
    // (equal-depth quantiles), so the split adapts to whatever heat distribution the
    // victim actually carries. With one class everything is class 0 and the sketch is
    // never even read.
    let classes = store.config().gc_temperature_classes as u16;
    let class_of: Vec<u16> = if classes > 1 {
        let heats: Vec<u64> = prepared
            .candidates
            .iter()
            .map(|live| store.heat().heat(live.pending.info.page))
            .collect();
        classify_heat(&heats, classes)
    } else {
        vec![0; prepared.candidates.len()]
    };

    // Route every candidate to an output log and fetch separation keys, under one
    // short central acquisition (the policy lives there). Same routing helper as
    // the user drain, so user and GC placement can never diverge.
    let separate = store.config().separation.separate_gc_writes;
    let mut items: Vec<GcItem> = {
        let mut central = store.central().lock();
        let CentralState { policy, .. } = &mut *central;
        prepared
            .candidates
            .iter()
            .zip(&class_of)
            .map(|(live, &class)| {
                let (log, key) = write_path::route_page(policy, unow, separate, &live.pending.info);
                GcItem {
                    live: live.clone(),
                    log,
                    class,
                    key,
                }
            })
            .collect()
    };
    if separate {
        sort_by_separation_key(&mut items, |it: &GcItem| it.key);
    }
    if classes > 1 {
        // Group by class (stable, so the separation order inside each class is kept):
        // each class fills its own output segments contiguously. A no-op with one
        // class, preserving the pre-temperature staging order bit for bit.
        items.sort_by_key(|it| it.class);
    }

    // Phase 3a: stage — copy still-current pages into the GC output builders. No
    // store lock; the occasional seal/allocation touches the central lock briefly.
    // The ledger only satisfies `seal_open`'s batching interface and stays empty
    // here: GC accounting is applied directly at commit (phase 3b), in the same
    // central section as the page-table swap.
    let mut staged: Vec<StagedRelocation> = Vec::with_capacity(items.len());
    let mut ledger = MetaLedger::default();
    for item in items {
        let info = &item.live.pending.info;
        if !store.mapping().is_current(info.page, &item.live.loc) {
            // Rewritten or deleted since collection; skip before wasting output
            // space. The commit-time compare-and-swap below remains authoritative.
            continue;
        }
        let data = item
            .live
            .pending
            .data
            .as_ref()
            .expect("GC relocation always carries a payload");
        if classes > 1 && prepared.temperature != TEMPERATURE_UNCLASSIFIED {
            // Misprediction accounting: this survivor's fresh class disagrees with
            // the class its segment was filled as.
            if item.class > prepared.temperature {
                AtomicStats::bump(&stats.gc_class_promotions);
            } else if item.class < prepared.temperature {
                AtomicStats::bump(&stats.gc_class_demotions);
            }
        }
        let Some(stream) =
            ensure_gc_open(store, cycle, &mut ledger, item.class, item.log, data.len())?
        else {
            // No output space for this victim even after the distress fallbacks:
            // abandon it *gracefully*. Nothing of it has been committed — its pages
            // are still mapped into the sealed victim image, which stays exactly
            // where it is — and the few copies already staged into builders are
            // never swapped in, so they are recovery-safe garbage. Move on to the
            // remaining victims rather than giving up on the cycle: a later victim
            // may be fully dead (needing no output space at all) and releasing it
            // is exactly what relieves the pressure. The writers' escalation
            // ladder (greedy cycles, quarantine sweeps) decides whether the store
            // is genuinely full.
            return Ok(false);
        };
        let open = cycle
            .gcs
            .open
            .get_mut(&stream)
            .expect("ensure_gc_open just installed this stream");
        // The relocated copy keeps the original write sequence: it is the same
        // version of the page, just at a new address (see
        // [`crate::cleaner::LivePage`]).
        let offset = open
            .builder
            .write()
            .push_page(info.page, item.live.loc.write_seq, data);
        open.up2_avg.add(info.up2);
        staged.push(StagedRelocation {
            page: info.page,
            old: item.live.loc,
            new: PageLocation {
                segment: open.id,
                offset,
                len: data.len() as u32,
                write_seq: item.live.loc.write_seq,
            },
            class: item.class,
        });
    }

    // Phase 3a': preserve the victim's delete facts. A tombstone may only be dropped
    // once it is provably redundant, by one of two proofs:
    //
    //   1. *Superseded* — the page was recreated, so a strictly newer copy exists and
    //      will shadow every older one during recovery.
    //   2. *Checkpoint-covered* — a committed checkpoint's frontier is at or past the
    //      victim's seal seq. Checkpointing seals every open segment before reading
    //      the frontier, so every older copy of the deleted page also lives at or
    //      below the frontier and is never replayed by checkpoint-anchored recovery;
    //      the checkpoint itself records the page as absent.
    //
    // Otherwise the tombstone is re-emitted into a GC output stream with its original
    // write sequence: the re-emitted record rides the exact same seal+sync-before-reap
    // protocol as the relocated pages, so the delete fact is durable elsewhere before
    // the victim's slot can be reused. (Re-emitting a tombstone that a racing user
    // delete has just superseded is harmless — it loses every recovery comparison.)
    // This must happen before the victim is released below: if no output space can be
    // found the victim is abandoned intact, never released with its delete facts
    // dropped.
    let covered = prepared.seal_seq <= store.checkpoint_frontier();
    let mut retained_outputs: Vec<SegmentId> = Vec::new();
    for &(page, write_seq) in &prepared.tombstones {
        if covered || store.mapping().get(page).is_some() {
            AtomicStats::bump(&stats.tombstones_dropped);
            continue;
        }
        // A tombstone carries no payload, so *any* output with an entry slot free will
        // do: prefer one of the cycle's existing outputs over opening a dedicated
        // stream, so a victim whose only live content is delete facts never spends a
        // fresh segment on them.
        let reusable = cycle
            .gcs
            .open
            .iter()
            .find(|(_, o)| o.builder.read().fits(0))
            .map(|(&k, _)| k);
        let stream = match reusable {
            Some(k) => k,
            None => match ensure_gc_open(store, cycle, &mut ledger, 0, 0, 0)? {
                Some(k) => k,
                // Same graceful abandonment as above: nothing of this victim has been
                // committed yet, and tombstones already re-emitted for it are harmless.
                None => return Ok(false),
            },
        };
        let open = cycle
            .gcs
            .open
            .get_mut(&stream)
            .expect("ensure_gc_open just installed this stream");
        open.builder.write().push_tombstone(page, write_seq);
        retained_outputs.push(open.id);
        AtomicStats::bump(&stats.tombstones_retained);
    }

    // Phase 3b: commit under one short central section. The swap and the output
    // segment's accounting land in the same critical section, so any later death of
    // the relocated copy (recorded by a writer only after it observes the new
    // location) is applied after this `on_page_added`, never before.
    {
        let mut central = store.central().lock();
        for s in staged {
            if store.mapping().replace_if_current(s.page, &s.old, s.new) {
                if let Some(meta) = central.segments.meta_mut(s.new.segment) {
                    meta.on_page_added(s.new.len, None);
                }
                AtomicStats::bump(&stats.gc_pages_written);
                AtomicStats::add(&stats.gc_bytes_written, s.new.len as u64);
                stats.add_class_page(s.class, s.new.len as u64);
                report.pages_moved += 1;
                report.bytes_moved += s.new.len as u64;
            }
            // A failed swap means the user rewrote the page after staging: the
            // stale copy in the output builder is dead on arrival and is simply
            // never accounted live (it will be reclaimed when that segment is
            // eventually cleaned).
        }
        // Charge the re-emitted tombstones' entry-table footprint to their output
        // segments (the cycle owns its outputs, so no generation race is possible
        // here), mirroring the user write path's tombstone accounting.
        for seg in retained_outputs {
            if let Some(meta) = central.segments.meta_mut(seg) {
                meta.on_tombstone_added();
            }
        }
        // Remap-before-release now holds for every live page of this victim; park
        // the slot — tagged with this cycle's token — until the relocated copies are
        // durable and no reader pins remain.
        central.segments.release_quarantined(victim, cycle.token);
        AtomicStats::bump(&stats.segments_cleaned);
        stats.add_emptiness(prepared.emptiness);
        *emptiness_sum += prepared.emptiness;
        store.publish_free(&central.segments);
    }
    cycle.claimed.retain(|&s| s != victim);
    Ok(true)
}

/// Read one victim's image, decode it and pre-filter its live pages (the unit of work
/// of the phase-2 read pipeline; touches only the device and the lock-free page table).
fn prepare_victim(
    store: &LogStore,
    victim: SegmentId,
    emptiness: f64,
    up2: UpdateTick,
    temperature: u16,
) -> Result<PreparedVictim> {
    let image = store.device().read_segment(victim)?;
    let parsed = decode_segment(victim, &image)?.ok_or_else(|| Error::CorruptSegment {
        segment: victim,
        detail: "sealed segment has a blank image".into(),
    })?;
    // Lock-free pre-filter against the sharded page table; the authoritative
    // conflict check is the compare-and-swap at commit time.
    let collected = collect_live_pages(
        victim,
        &image,
        &parsed,
        |p, l| store.mapping().is_current(p, l),
        up2,
    );
    Ok(PreparedVictim {
        victim,
        emptiness,
        temperature,
        candidates: collected.pages,
        seal_seq: parsed.header.seal_seq,
        tombstones: collected.tombstones,
    })
}

/// Shared state of the phase-2 read pipeline: an in-order slot per victim, a bounded
/// prefetch window, and a cancellation flag for early exit.
struct ReadPipeline {
    slots: Vec<Option<Result<PreparedVictim>>>,
    next_fetch: usize,
    consumed: usize,
    cancelled: bool,
}

/// Drive `process` over every victim **in order**, with victim images read and
/// pre-filtered by up to `gc_read_pool` I/O workers running ahead of the consumer
/// (bounded lookahead, so at most `2 × pool` images are in memory at once). With a pool
/// of 1 (or a single victim) this degrades to the plain sequential read-then-process
/// loop of the pre-concurrent design.
fn for_each_prepared_victim(
    store: &LogStore,
    victims: &[ClaimedVictim],
    mut process: impl FnMut(&PreparedVictim) -> Result<()>,
) -> Result<()> {
    let pool = store.config().gc_read_pool.min(victims.len()).max(1);
    if pool <= 1 {
        for &(victim, emptiness, up2, temperature) in victims {
            let prepared = prepare_victim(store, victim, emptiness, up2, temperature)?;
            process(&prepared)?;
        }
        return Ok(());
    }

    let window = pool * 2;
    let state = Mutex::new(ReadPipeline {
        slots: victims.iter().map(|_| None).collect(),
        next_fetch: 0,
        consumed: 0,
        cancelled: false,
    });
    let space_cond = Condvar::new(); // workers wait here for window space
    let ready_cond = Condvar::new(); // the consumer waits here for its next slot

    std::thread::scope(|scope| -> Result<()> {
        for _ in 0..pool {
            scope.spawn(|| loop {
                let i = {
                    let mut st = state.lock();
                    loop {
                        if st.cancelled || st.next_fetch >= st.slots.len() {
                            return;
                        }
                        if st.next_fetch < st.consumed + window {
                            break;
                        }
                        space_cond.wait(&mut st);
                    }
                    let i = st.next_fetch;
                    st.next_fetch += 1;
                    i
                };
                let (victim, emptiness, up2, temperature) = victims[i];
                let prepared = prepare_victim(store, victim, emptiness, up2, temperature);
                let mut st = state.lock();
                st.slots[i] = Some(prepared);
                ready_cond.notify_all();
            });
        }

        let cancel = |err: Error| {
            let mut st = state.lock();
            st.cancelled = true;
            space_cond.notify_all();
            err
        };
        for i in 0..victims.len() {
            let prepared = {
                let mut st = state.lock();
                while st.slots[i].is_none() {
                    ready_cond.wait(&mut st);
                }
                let p = st.slots[i].take().expect("slot just observed filled");
                st.consumed = i + 1;
                space_cond.notify_all();
                p
            };
            let prepared = prepared.map_err(&cancel)?;
            process(&prepared).map_err(&cancel)?;
        }
        Ok(())
    })
}

/// Make sure the cycle has a GC output segment with room for `len` bytes, preferably
/// for the `(class, log)` output stream, sealing the full one and allocating a fresh
/// segment if necessary. Returns the [`gc_stream_key`] of the open segment to append
/// to, or `None` if no output space can be found (the caller abandons the current
/// victim rather than failing the cycle).
///
/// The open map is keyed by the composite stream key so each temperature class packs
/// its survivors into its own segments; the segment itself records only the *policy*
/// log (the persisted footer's routing identity) plus an in-memory temperature tag.
///
/// GC allocations may dip into the reserve — that is what it is for. Under allocation
/// distress the cycle degrades gracefully: it first redirects the relocation into *any*
/// of its open outputs with room (sacrificing log and temperature purity for
/// progress), then seals its output streams and syncs so its already quarantined
/// victims become reusable.
fn ensure_gc_open(
    store: &LogStore,
    cycle: &mut CycleCtx,
    ledger: &mut MetaLedger,
    class: u16,
    log: u16,
    len: usize,
) -> Result<Option<u16>> {
    let stream = gc_stream_key(class, log);
    if let Some(open) = cycle.gcs.open.get(&stream) {
        if open.builder.read().fits(len) {
            return Ok(Some(stream));
        }
    }
    if let Some(full) = cycle.gcs.open.remove(&stream) {
        write_path::seal_open(store, full, ledger)?;
    }
    let capacity =
        layout::payload_capacity(store.config().segment_bytes, store.config().page_bytes) as u64;
    let mut allocated = try_allocate_gc(store, capacity, log, class);
    if allocated.is_none() {
        // Distress fallback 1: reuse another output stream's headroom.
        if let Some((&l, _)) = cycle
            .gcs
            .open
            .iter()
            .find(|(_, o)| o.builder.read().fits(len))
        {
            return Ok(Some(l));
        }
        // Distress fallback 2: make this cycle's own relocations durable so its
        // quarantined victims free up (their live pages are all in the builders about
        // to be sealed), then retry the allocation.
        make_own_relocations_durable(store, cycle)?;
        allocated = try_allocate_gc(store, capacity, log, class);
    }
    let Some((id, gen)) = allocated else {
        return Ok(None);
    };
    let builder = Arc::new(RwLock::new(SegmentBuilder::new(
        store.config().segment_bytes,
    )));
    store.open_reads().write().insert(id, Arc::clone(&builder));
    cycle.gcs.open.insert(
        stream,
        OpenSegment {
            id,
            builder,
            up2_avg: Up2Average::new(),
            log,
            gen,
            last_used: 0,
        },
    );
    store.note_open_delta(1);
    Ok(Some(stream))
}

/// Mid-cycle durability point (distress only): seal this cycle's own GC outputs, mark
/// its quarantine entries sealed and run a sync+reap pass, so the victims it has
/// already emptied re-enter the free pool while the cycle continues.
fn make_own_relocations_durable(store: &LogStore, cycle: &mut CycleCtx) -> Result<()> {
    write_path::seal_streams(store, &mut cycle.gcs)?;
    {
        let mut central = store.central().lock();
        central.segments.quarantine_mark_sealed(cycle.token);
    }
    write_path::sync_and_reap(store)
}

fn try_allocate_gc(
    store: &LogStore,
    capacity: u64,
    log: u16,
    class: u16,
) -> Option<(SegmentId, u64)> {
    let mut central = store.central().lock();
    let id = central
        .segments
        .allocate(capacity, log, store.config().up2_mode)?;
    if store.config().gc_temperature_classes > 1 {
        // Tag the output with the class of the survivors it will be filled with, so
        // victim selection can treat cold segments differently. In-memory only; with
        // one class the tag stays UNCLASSIFIED exactly as before.
        if let Some(meta) = central.segments.meta_mut(id) {
            meta.temperature = class;
        }
    }
    store.bump_segment_gen(id);
    let gen = store.segment_gen(id);
    store.publish_free(&central.segments);
    Some((id, gen))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(free: usize, trigger: usize, reserve: usize) -> ControlSignals {
        ControlSignals {
            free,
            trigger,
            reserve,
            dead_fraction: 0.0,
            stalled: false,
        }
    }

    #[test]
    fn desired_cycles_clamps_to_the_configured_bounds() {
        let t = AdaptiveTargets::default();
        // Idle → min; reserve floor → max; never outside [min, max].
        assert_eq!(desired_cycles(2, 5, &t, &signals(100, 32, 4)), 2);
        assert_eq!(desired_cycles(2, 5, &t, &signals(5, 32, 4)), 5);
        for free in 0..200 {
            let d = desired_cycles(2, 5, &t, &signals(free, 32, 4));
            assert!((2..=5).contains(&d), "free={free} gave target {d}");
        }
        // Degenerate bounds collapse to a constant.
        for free in 0..100 {
            assert_eq!(desired_cycles(3, 3, &t, &signals(free, 32, 4)), 3);
        }
    }

    #[test]
    fn desired_cycles_scales_with_allocation_depth() {
        let t = AdaptiveTargets::default();
        // Deeper below the trigger (free decreasing) never wants fewer cycles.
        let mut prev = 0usize;
        for free in (4..=32).rev() {
            let d = desired_cycles(1, 4, &t, &signals(free, 32, 4));
            assert!(
                d >= prev,
                "non-monotone: free={free} wants {d}, shallower wanted {prev}"
            );
            prev = d;
        }
        assert_eq!(desired_cycles(1, 4, &t, &signals(32, 32, 4)), 1);
        assert_eq!(desired_cycles(1, 4, &t, &signals(4, 32, 4)), 4);
    }

    #[test]
    fn desired_cycles_widens_on_fragmentation_but_only_under_the_trigger() {
        let t = AdaptiveTargets::default();
        let mut hot = signals(31, 32, 4); // just under the trigger: depth ~0
        hot.dead_fraction = 0.9; // saturated fragmentation
        assert_eq!(desired_cycles(1, 4, &t, &hot), 4);
        let mut idle = signals(100, 32, 4); // above the trigger
        idle.dead_fraction = 0.9;
        assert_eq!(
            desired_cycles(1, 4, &t, &idle),
            1,
            "fragmentation alone must not spin cleaners on an idle store"
        );
        let mut mild = signals(31, 32, 4);
        mild.dead_fraction = t.dead_space_low; // at the low threshold: no boost yet
        assert_eq!(desired_cycles(1, 4, &t, &mild), 1);
    }

    #[test]
    fn stall_signal_demands_the_maximum() {
        let t = AdaptiveTargets::default();
        let mut s = signals(100, 32, 4); // otherwise idle
        s.stalled = true;
        assert_eq!(desired_cycles(1, 4, &t, &s), 4);
    }

    #[test]
    fn damping_scales_up_immediately_and_down_one_step_per_streak() {
        let mut streak = 0;
        // Up: straight jump.
        assert_eq!(apply_damping(1, 4, &mut streak, 3), 4);
        assert_eq!(streak, 0);
        // Down: needs 3 consecutive low ticks per single step.
        assert_eq!(apply_damping(4, 1, &mut streak, 3), 4);
        assert_eq!(apply_damping(4, 1, &mut streak, 3), 4);
        assert_eq!(apply_damping(4, 1, &mut streak, 3), 3);
        assert_eq!(streak, 0);
        // An equal tick resets the streak.
        assert_eq!(apply_damping(3, 1, &mut streak, 3), 3);
        assert_eq!(apply_damping(3, 3, &mut streak, 3), 3);
        assert_eq!(streak, 0);
    }

    #[test]
    fn square_wave_pressure_does_not_thrash_the_target() {
        // Alternate desired = max / min every tick (a square-wave load faster than
        // the damping window): the target must rise to max once and then *stay* there
        // — zero downward transitions, not down-up flapping.
        let t = AdaptiveTargets::default();
        let mut streak = 0;
        let mut target = 1usize;
        let mut transitions = 0;
        for tick in 0..100 {
            let desired = if tick % 2 == 0 { 4 } else { 1 };
            let next = apply_damping(target, desired, &mut streak, t.scale_down_ticks);
            if next != target {
                transitions += 1;
            }
            target = next;
        }
        assert_eq!(target, 4);
        assert_eq!(
            transitions, 1,
            "square-wave load caused {transitions} target moves (expected the single initial rise)"
        );

        // A slower square wave (period longer than the damping window) may follow the
        // load, but each low phase sheds at most phase_len / scale_down_ticks steps.
        let mut streak = 0;
        let mut target = 4usize;
        for _ in 0..4 {
            for _ in 0..6 {
                target = apply_damping(target, 1, &mut streak, 3);
            }
            assert!(target >= 2, "low phase shed too fast: {target}");
            for _ in 0..6 {
                target = apply_damping(target, 4, &mut streak, 3);
            }
            assert_eq!(target, 4);
        }
    }
}
