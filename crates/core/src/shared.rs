//! [`SharedLogStore`]: cloneable handles plus the background cleaner.
//!
//! Since the concurrent-pipeline refactor, [`crate::LogStore`] is internally
//! synchronised (`&self` everywhere), so this handle is a thin `Arc` — **not** a global
//! mutex like the pre-refactor design. Reads from any number of handles proceed in
//! parallel with writes and with cleaning.
//!
//! Creating a `SharedLogStore` also spawns a [`BackgroundCleaner`]: a pool of
//! [`StoreConfig::cleaner_threads`](crate::StoreConfig::cleaner_threads) threads that
//! wake when writers signal free-space pressure (or on a periodic poll), select
//! victims, relocate their live pages and commit the remaps with a conflict check — so
//! the cleaning cost leaves the foreground write path. With more than one thread the
//! pool runs that many **concurrent cleaning cycles on disjoint victim sets**, scaling
//! reclamation the way the sharded write path scales ingestion. Writers fall back to
//! lending their own thread to a synchronous cycle only at the hard reserve floor, and
//! the plain (un-shared) `LogStore` still cleans synchronously, so nothing requires the
//! pool.
//!
//! The cleaner threads hold only `Weak` references: dropping the last handle shuts
//! them down, and [`SharedLogStore::try_into_inner`] can recover the owned store.

use crate::cleaner::CleaningReport;
use crate::error::Result;
use crate::stats::StoreStats;
use crate::store::LogStore;
use crate::types::PageId;
use bytes::Bytes;
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// A cloneable, thread-safe handle to a [`LogStore`] with a background cleaner.
#[derive(Debug, Clone)]
pub struct SharedLogStore {
    // Declared before `store` so that when the last handle drops, the cleaner shuts
    // down (its Drop joins the pool threads) while the store is still alive.
    cleaner: Arc<BackgroundCleaner>,
    store: Arc<LogStore>,
}

impl SharedLogStore {
    /// Wrap a store and spawn its background cleaner pool
    /// ([`StoreConfig::cleaner_threads`](crate::StoreConfig::cleaner_threads) threads).
    pub fn new(store: LogStore) -> Self {
        let store = Arc::new(store);
        let cleaner = Arc::new(BackgroundCleaner::spawn(&store));
        Self { cleaner, store }
    }

    /// Wrap a store **without** a background cleaner: cleaning then runs synchronously
    /// on writer threads at the free-segment watermark, as in the plain `LogStore`.
    /// Useful for tests and for embedders that schedule cleaning themselves.
    pub fn without_background_cleaner(store: LogStore) -> Self {
        Self {
            cleaner: Arc::new(BackgroundCleaner::detached()),
            store: Arc::new(store),
        }
    }

    /// Write (or overwrite) a page.
    pub fn put(&self, page: PageId, data: &[u8]) -> Result<()> {
        self.store.put(page, data)
    }

    /// Read the current version of a page. Never blocks on writers or the cleaner.
    pub fn get(&self, page: PageId) -> Result<Option<Bytes>> {
        self.store.get(page)
    }

    /// Delete a page.
    pub fn delete(&self, page: PageId) -> Result<()> {
        self.store.delete(page)
    }

    /// True if the page currently exists.
    pub fn contains(&self, page: PageId) -> bool {
        self.store.contains(page)
    }

    /// Drain buffers, seal open segments and sync the device (the durability point).
    pub fn flush(&self) -> Result<()> {
        self.store.flush()
    }

    /// Run one cleaning cycle synchronously, regardless of the free-segment trigger.
    pub fn clean_now(&self) -> Result<CleaningReport> {
        self.store.clean_now()
    }

    /// Snapshot of the operational statistics.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Number of live pages.
    pub fn live_pages(&self) -> usize {
        self.store.live_pages()
    }

    /// Serialize a checkpoint of the current state (call [`SharedLogStore::flush`]
    /// first).
    pub fn checkpoint_json(&self) -> Result<String> {
        self.store.checkpoint_json()
    }

    /// Run a closure with shared access to the underlying store (for operations not
    /// mirrored on the handle).
    pub fn with_store<R>(&self, f: impl FnOnce(&LogStore) -> R) -> R {
        f(&self.store)
    }

    /// Unwrap the store if this is the last handle; otherwise returns `self` back.
    /// Shuts the background cleaner down first.
    pub fn try_into_inner(self) -> std::result::Result<LogStore, SharedLogStore> {
        let SharedLogStore { cleaner, store } = self;
        match Arc::try_unwrap(cleaner) {
            // Last handle: joining the cleaner (Drop) releases its transient refs.
            Ok(cleaner) => drop(cleaner),
            Err(cleaner) => return Err(SharedLogStore { cleaner, store }),
        }
        Arc::try_unwrap(store).map_err(|store| {
            // Unreachable in practice (the store Arc is never handed out), but recover
            // gracefully rather than panicking: re-attach a cleaner.
            let cleaner = Arc::new(BackgroundCleaner::spawn(&store));
            SharedLogStore { cleaner, store }
        })
    }
}

/// The background cleaning pool:
/// [`StoreConfig::max_cleaner_cycles`](crate::StoreConfig::max_cleaner_cycles) threads
/// that wake on writer pressure signals (or a periodic poll), then run cleaning
/// cycles — concurrently, on disjoint victim sets — until the free pool is back above
/// the trigger. Under [`CleanerMode::Adaptive`](crate::config::CleanerMode) only the
/// first *target* workers (the adaptive controller's current decision) run cycles;
/// the rest park on the wake-up condvar until a scale-up kicks them.
///
/// Owns nothing but `Weak` references to the store; the threads exit when the store is
/// dropped or a shutdown is signalled. Dropping the `BackgroundCleaner` signals shutdown
/// and joins every thread.
#[derive(Debug)]
pub struct BackgroundCleaner {
    store: Weak<LogStore>,
    threads: Vec<JoinHandle<()>>,
}

/// How often the cleaner polls the watermark even without a kick. Kicks make the common
/// case immediate; the poll only covers embedders that write through the plain
/// `LogStore` API while a cleaner is attached.
const CLEANER_POLL_INTERVAL: Duration = Duration::from_millis(20);

impl BackgroundCleaner {
    fn detached() -> Self {
        Self {
            store: Weak::new(),
            threads: Vec::new(),
        }
    }

    fn spawn(store: &Arc<LogStore>) -> Self {
        store.gc.set_background_attached(true);
        let weak = Arc::downgrade(store);
        // The pool is sized for the *maximum* the configuration allows
        // (`cleaner_threads` in fixed mode, the adaptive upper bound otherwise); under
        // `CleanerMode::Adaptive` the controller decides how many of them actually run
        // cycles at any moment, and the rest park on the kick condvar (see
        // `cleaner_loop`).
        let threads = (0..store.config().max_cleaner_cycles())
            .map(|i| {
                let thread_weak = weak.clone();
                std::thread::Builder::new()
                    .name(format!("lss-cleaner-{i}"))
                    .spawn(move || cleaner_loop(thread_weak, i))
                    .expect("spawning a background cleaner thread")
            })
            .collect();
        Self {
            store: weak,
            threads,
        }
    }
}

impl Drop for BackgroundCleaner {
    fn drop(&mut self) {
        if let Some(store) = self.store.upgrade() {
            store.gc.set_background_attached(false);
            store.gc.shutdown();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

fn cleaner_loop(weak: Weak<LogStore>, index: usize) {
    loop {
        // Wait without holding a strong reference so the store can be unwrapped.
        let shutdown = {
            let Some(store) = weak.upgrade() else { return };
            store.gc.wait_for_kick(CLEANER_POLL_INTERVAL)
        };
        if shutdown {
            return;
        }
        let Some(store) = weak.upgrade() else { return };
        // Every wake-up is a (rate-limited) controller tick, then the adaptive
        // decision gates this thread: workers above the current cycle target park —
        // they go straight back to the condvar without starting a cycle, which is
        // what keeps idle-phase cleaner CPU at the configured minimum. A later
        // scale-up kicks the condvar, so parked workers un-park promptly. In
        // `CleanerMode::Fixed` the target is pinned at the pool size and every
        // worker always passes.
        store.gc_controller_tick_rate_limited();
        if index >= store.gc_target_cycles() {
            continue;
        }
        let trigger = store.effective_clean_trigger();
        while store.approx_free_segments() <= trigger {
            if index >= store.gc_target_cycles() {
                // Scaled down mid-drain: stop after the cycle in flight, never
                // mid-cycle (the permit protocol already guarantees a cycle that
                // started runs to completion or orphans cleanly).
                break;
            }
            let free_before = store.approx_free_segments();
            match store.clean_now() {
                // No victims (nothing reclaimable yet): stop until the next kick.
                Ok(report) if report.segments_freed() == 0 => break,
                // Victims were cleaned but the pool did not grow (the cycle's GC
                // output consumed what it freed — possible under multi-log's
                // one-victim cycles). Back off instead of churning: the writers'
                // retry path escalates to space-driven greedy cycles when they
                // actually run out.
                Ok(_) if store.approx_free_segments() <= free_before => break,
                Ok(_) => {}
                // Cleaning I/O errors surface on the foreground paths too; the
                // background thread just backs off.
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StoreConfig;
    use crate::policy::PolicyKind;

    fn shared() -> SharedLogStore {
        let mut config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
        config.num_segments = 128;
        SharedLogStore::new(LogStore::open_in_memory(config).unwrap())
    }

    #[test]
    fn basic_operations_through_the_handle() {
        let store = shared();
        store.put(1, b"one").unwrap();
        store.put(2, b"two").unwrap();
        assert!(store.contains(1));
        assert_eq!(store.get(1).unwrap().unwrap().as_ref(), b"one");
        store.delete(1).unwrap();
        assert!(!store.contains(1));
        store.flush().unwrap();
        assert_eq!(store.live_pages(), 1);
        assert!(store.stats().user_pages_written >= 3);
    }

    #[test]
    fn handles_are_cloneable_and_share_state() {
        let a = shared();
        let b = a.clone();
        a.put(7, b"via-a").unwrap();
        assert_eq!(b.get(7).unwrap().unwrap().as_ref(), b"via-a");
        b.put(7, b"via-b").unwrap();
        assert_eq!(a.get(7).unwrap().unwrap().as_ref(), b"via-b");
    }

    #[test]
    fn concurrent_writers_on_disjoint_ranges_preserve_all_data() {
        let store = shared();
        let threads = 4u64;
        let per_thread = 200u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let page = t * 10_000 + i;
                    let payload = format!("thread-{t}-page-{i}");
                    store.put(page, payload.as_bytes()).unwrap();
                    // Overwrite a hot page repeatedly to force some cleaning pressure.
                    store
                        .put(t * 10_000, format!("hot-{t}-{i}").as_bytes())
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.live_pages() as u64, threads * per_thread);
        for t in 0..threads {
            for i in 1..per_thread {
                let page = t * 10_000 + i;
                let got = store
                    .get(page)
                    .unwrap()
                    .expect("page lost under concurrency");
                assert_eq!(got.as_ref(), format!("thread-{t}-page-{i}").as_bytes());
            }
            let hot = store.get(t * 10_000).unwrap().unwrap();
            assert_eq!(
                hot.as_ref(),
                format!("hot-{t}-{}", per_thread - 1).as_bytes()
            );
        }
    }

    #[test]
    fn readers_run_against_concurrent_writers() {
        let store = shared();
        for i in 0..256u64 {
            store.put(i, format!("init-{i}").as_bytes()).unwrap();
        }
        store.flush().unwrap();
        let writer = {
            let store = store.clone();
            std::thread::spawn(move || {
                for round in 0..20u64 {
                    for i in 0..256u64 {
                        store
                            .put(i, format!("round-{round}-{i}").as_bytes())
                            .unwrap();
                    }
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for round in 0..2_000u64 {
                        let page = (t * 97 + round) % 256;
                        let got = store.get(page).unwrap().expect("page must always exist");
                        let text = std::str::from_utf8(&got).unwrap().to_string();
                        assert!(
                            text == format!("init-{page}") || text.ends_with(&format!("-{page}")),
                            "read a foreign payload: {text} for page {page}"
                        );
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        store.flush().unwrap();
        for i in 0..256u64 {
            assert_eq!(
                store.get(i).unwrap().unwrap().as_ref(),
                format!("round-19-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn with_store_gives_access_to_advanced_operations() {
        let store = shared();
        for i in 0..200u64 {
            store.put(i % 32, &[3u8; 200]).unwrap();
        }
        let report = store.with_store(|s| s.clean_now()).unwrap();
        assert!(report.segments_freed() > 0 || report.pages_moved == 0);
        let json = store.with_store(|s| {
            s.flush().unwrap();
            s.checkpoint_json()
        });
        assert!(json.unwrap().contains("\"pages\""));
    }

    #[test]
    fn try_into_inner_returns_store_when_unique() {
        let store = shared();
        store.put(1, b"x").unwrap();
        let clone = store.clone();
        // Two handles: unwrap fails and hands the handle back.
        let store = match store.try_into_inner() {
            Err(s) => s,
            Ok(_) => panic!("unwrap should fail while a clone exists"),
        };
        drop(clone);
        let inner = store.try_into_inner().expect("last handle unwraps");
        assert_eq!(inner.get(1).unwrap().unwrap().as_ref(), b"x");
    }

    #[test]
    fn background_cleaner_keeps_free_pool_above_floor() {
        let mut config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
        config.num_segments = 64;
        let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());
        let pages = config.logical_pages_for_fill_factor(0.5) as u64;
        let payload = vec![5u8; config.page_bytes];
        for i in 0..(config.physical_pages() as u64 * 6) {
            store.put(i % pages, &payload).unwrap();
        }
        store.flush().unwrap();
        let stats = store.stats();
        assert!(stats.cleaning_cycles > 0, "cleaning never ran");
        for i in 0..pages {
            assert!(store.get(i).unwrap().is_some(), "page {i} lost");
        }
    }
}
