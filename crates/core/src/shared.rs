//! A thread-safe handle around [`LogStore`].
//!
//! The store itself is deliberately single-writer (`&mut self` everywhere): log
//! structuring serialises segment allocation and cleaning anyway, so internal fine-grained
//! locking would buy little. Embedders that want to share one store across threads wrap
//! it in [`SharedLogStore`], which provides cheap cloneable handles protected by a
//! `parking_lot` mutex (chosen over `std::sync::Mutex` for its smaller footprint and
//! poison-free API, per the performance guide this project follows).

use crate::error::Result;
use crate::stats::StoreStats;
use crate::store::LogStore;
use crate::types::PageId;
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

/// A cloneable, thread-safe handle to a [`LogStore`].
#[derive(Debug, Clone)]
pub struct SharedLogStore {
    inner: Arc<Mutex<LogStore>>,
}

impl SharedLogStore {
    /// Wrap a store.
    pub fn new(store: LogStore) -> Self {
        Self { inner: Arc::new(Mutex::new(store)) }
    }

    /// Write (or overwrite) a page.
    pub fn put(&self, page: PageId, data: &[u8]) -> Result<()> {
        self.inner.lock().put(page, data)
    }

    /// Read the current version of a page.
    pub fn get(&self, page: PageId) -> Result<Option<Bytes>> {
        self.inner.lock().get(page)
    }

    /// Delete a page.
    pub fn delete(&self, page: PageId) -> Result<()> {
        self.inner.lock().delete(page)
    }

    /// True if the page currently exists.
    pub fn contains(&self, page: PageId) -> bool {
        self.inner.lock().contains(page)
    }

    /// Drain buffers, seal open segments and sync the device (the durability point).
    pub fn flush(&self) -> Result<()> {
        self.inner.lock().flush()
    }

    /// Snapshot of the operational statistics.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats().clone()
    }

    /// Number of live pages.
    pub fn live_pages(&self) -> usize {
        self.inner.lock().live_pages()
    }

    /// Run a closure with exclusive access to the underlying store (for operations not
    /// mirrored on the handle, e.g. checkpointing or manual cleaning).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut LogStore) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Unwrap the store if this is the last handle; otherwise returns `self` back.
    pub fn try_into_inner(self) -> std::result::Result<LogStore, SharedLogStore> {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => Ok(mutex.into_inner()),
            Err(arc) => Err(SharedLogStore { inner: arc }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StoreConfig;
    use crate::policy::PolicyKind;

    fn shared() -> SharedLogStore {
        let mut config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
        config.num_segments = 128;
        SharedLogStore::new(LogStore::open_in_memory(config).unwrap())
    }

    #[test]
    fn basic_operations_through_the_handle() {
        let store = shared();
        store.put(1, b"one").unwrap();
        store.put(2, b"two").unwrap();
        assert!(store.contains(1));
        assert_eq!(store.get(1).unwrap().unwrap().as_ref(), b"one");
        store.delete(1).unwrap();
        assert!(!store.contains(1));
        store.flush().unwrap();
        assert_eq!(store.live_pages(), 1);
        assert!(store.stats().user_pages_written >= 3);
    }

    #[test]
    fn handles_are_cloneable_and_share_state() {
        let a = shared();
        let b = a.clone();
        a.put(7, b"via-a").unwrap();
        assert_eq!(b.get(7).unwrap().unwrap().as_ref(), b"via-a");
        b.put(7, b"via-b").unwrap();
        assert_eq!(a.get(7).unwrap().unwrap().as_ref(), b"via-b");
    }

    #[test]
    fn concurrent_writers_on_disjoint_ranges_preserve_all_data() {
        let store = shared();
        let threads = 4u64;
        let per_thread = 200u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let page = t * 10_000 + i;
                    let payload = format!("thread-{t}-page-{i}");
                    store.put(page, payload.as_bytes()).unwrap();
                    // Overwrite a hot page repeatedly to force some cleaning pressure.
                    store.put(t * 10_000, format!("hot-{t}-{i}").as_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.live_pages() as u64, threads * per_thread);
        for t in 0..threads {
            for i in 1..per_thread {
                let page = t * 10_000 + i;
                let got = store.get(page).unwrap().expect("page lost under concurrency");
                assert_eq!(got.as_ref(), format!("thread-{t}-page-{i}").as_bytes());
            }
            let hot = store.get(t * 10_000).unwrap().unwrap();
            assert_eq!(hot.as_ref(), format!("hot-{t}-{}", per_thread - 1).as_bytes());
        }
    }

    #[test]
    fn with_store_gives_access_to_advanced_operations() {
        let store = shared();
        for i in 0..200u64 {
            store.put(i % 32, &vec![3u8; 200]).unwrap();
        }
        let report = store.with_store(|s| s.clean_now()).unwrap();
        assert!(report.segments_freed() > 0 || report.pages_moved == 0);
        let json = store.with_store(|s| {
            s.flush().unwrap();
            s.checkpoint_json()
        });
        assert!(json.unwrap().contains("\"pages\""));
    }

    #[test]
    fn try_into_inner_returns_store_when_unique() {
        let store = shared();
        store.put(1, b"x").unwrap();
        let clone = store.clone();
        // Two handles: unwrap fails and hands the handle back.
        let store = match store.try_into_inner() {
            Err(s) => s,
            Ok(_) => panic!("unwrap should fail while a clone exists"),
        };
        drop(clone);
        let mut inner = store.try_into_inner().expect("last handle unwraps");
        assert_eq!(inner.get(1).unwrap().unwrap().as_ref(), b"x");
    }
}
