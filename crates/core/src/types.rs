//! Fundamental identifier and location types shared across the crate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a logical page (the unit of obsolescence).
///
/// Page ids are chosen by the caller; the store does not require them to be dense or
/// sequential. A page id identifies the *logical* page; its physical location changes on
/// every write because the store never updates in place.
pub type PageId = u64;

/// Index of a physical segment slot on the device (the unit of space reclamation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// Returns the segment id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg#{}", self.0)
    }
}

/// Monotonically increasing sequence number assigned to a segment when it is sealed.
///
/// Recovery replays segments in `SealSeq` order so newer page versions shadow older ones.
pub type SealSeq = u64;

/// Monotonically increasing per-page-write version used to disambiguate duplicate copies
/// of the same page during recovery (a GC relocation keeps the original version).
pub type WriteSeq = u64;

/// The "clock" of the store, measured in user updates (paper §4.2: one tick per update).
pub type UpdateTick = u64;

/// The current physical location of a live page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageLocation {
    /// Segment holding the current version.
    pub segment: SegmentId,
    /// Byte offset of the page payload within the segment data area.
    pub offset: u32,
    /// Length of the payload in bytes.
    pub len: u32,
    /// Write sequence of the version stored at this location. A GC relocation keeps the
    /// original write seq, so two copies of the same version compare equal here; carrying
    /// it in the location (a) makes the page table's compare-and-swap operations immune
    /// to offset-reuse ABA and (b) lets checkpoints record the ordering information that
    /// bounded log-tail replay needs to rank checkpoint entries against replayed copies.
    pub write_seq: WriteSeq,
}

/// Whether a page write originated from the user or from the cleaner relocating a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteOrigin {
    /// A user-initiated write (counts toward the update clock and the denominator of
    /// write amplification).
    User,
    /// A garbage-collection relocation (counts toward write amplification).
    Gc,
}

impl WriteOrigin {
    /// True for GC relocations.
    #[inline]
    pub fn is_gc(self) -> bool {
        matches!(self, WriteOrigin::Gc)
    }
}

/// Description of a single pending page write, as seen by write buffers and policies.
#[derive(Debug, Clone)]
pub struct PageWriteInfo {
    /// The logical page being written.
    pub page: PageId,
    /// Payload size in bytes.
    pub size: u32,
    /// Estimated penultimate-update time carried forward for this page (paper §5.2.2).
    pub up2: UpdateTick,
    /// Exact per-page update frequency normalised so that the average page has frequency
    /// 1.0. Only available to the "-opt" oracle policies (e.g. in the simulator, where the
    /// workload distribution is known).
    pub exact_freq: Option<f64>,
    /// Origin of the write.
    pub origin: WriteOrigin,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_id_display_and_index() {
        let s = SegmentId(7);
        assert_eq!(s.index(), 7);
        assert_eq!(format!("{s}"), "seg#7");
    }

    #[test]
    fn segment_id_ordering() {
        assert!(SegmentId(1) < SegmentId(2));
        assert_eq!(SegmentId(3), SegmentId(3));
    }

    #[test]
    fn write_origin_is_gc() {
        assert!(WriteOrigin::Gc.is_gc());
        assert!(!WriteOrigin::User.is_gc());
    }

    #[test]
    fn page_location_roundtrips_through_serde() {
        let loc = PageLocation {
            segment: SegmentId(9),
            offset: 4096,
            len: 512,
            write_seq: 77,
        };
        let json = serde_json::to_string(&loc).unwrap();
        let back: PageLocation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, loc);
    }
}
