//! Update-frequency estimation (paper §4.3 and §5.2.2).
//!
//! The MDC policy needs, for every segment, an estimate of how frequently its pages are
//! updated. Keeping exact per-page statistics would be expensive, so the paper uses a
//! cheap "age"-based estimate: the time `up2` of the *penultimate* update, measured on an
//! update-count clock `unow`. The update frequency of a segment is then estimated as
//! `Upf ≈ 2 / (unow − up2)` — two updates over the observed interval.
//!
//! `up2` values are carried forward across writes:
//!
//! * **User re-write of an existing page** — the page inherits the `up2` of the segment
//!   that held its previous version, and we assume the (untracked) last update `up1` was
//!   midway between `up2` and now: `new_up2 = old_up2 + ½·(unow − old_up2)`.
//! * **First write of a page** — there is no history, and most pages are cold, so the
//!   page is assigned the *coldest* (smallest) `up2` seen in the batch of new writes it
//!   belongs to.
//! * **GC relocation** — the page keeps the `up2` of its victim segment unchanged.
//! * **Sealing a segment** — the segment's `up2` becomes the mean of the `up2` values of
//!   the pages written into it.

use crate::config::Up2Mode;
use crate::types::{PageId, UpdateTick};
use std::sync::atomic::{AtomicU64, Ordering};

/// Carry-forward rule for a user re-write of an existing page (paper §5.2.2,
/// "Non-first Write").
///
/// `old_up2` is the `up2` of the segment holding the page's previous version.
#[inline]
pub fn carry_forward_rewrite(old_up2: UpdateTick, unow: UpdateTick) -> UpdateTick {
    debug_assert!(
        old_up2 <= unow,
        "up2 {old_up2} is in the future of unow {unow}"
    );
    old_up2 + (unow - old_up2) / 2
}

/// Carry-forward rule for a GC relocation: the page keeps its victim segment's `up2`.
#[inline]
pub fn carry_forward_gc(victim_up2: UpdateTick) -> UpdateTick {
    victim_up2
}

/// `up2` assigned to pages written for the first time: the coldest (oldest) `up2` in the
/// batch being processed, falling back to 0 (maximally cold) when the batch contains no
/// pages with history (paper §5.2.2, "First Write").
#[inline]
pub fn first_write_up2(coldest_in_batch: Option<UpdateTick>) -> UpdateTick {
    coldest_in_batch.unwrap_or(0)
}

/// The estimated per-segment update frequency `Upf ≈ 2 / (unow − up2)` (paper §4.3).
///
/// The interval is clamped to at least one tick so a segment updated this very tick does
/// not produce an infinite frequency.
#[inline]
pub fn estimated_upf(up2: UpdateTick, unow: UpdateTick) -> f64 {
    let interval = unow.saturating_sub(up2).max(1);
    2.0 / interval as f64
}

/// Per-segment update-recency tracker.
///
/// Depending on [`Up2Mode`], the tracker either freezes the carry-forward estimate set at
/// seal time, or additionally observes every overwrite of a live page in the segment and
/// keeps the true last-two update times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentFreq {
    mode: Up2Mode,
    /// Last observed update to the segment (only meaningful in `OnOverwrite` mode).
    up1: UpdateTick,
    /// Penultimate update estimate — the value the MDC formula consumes.
    up2: UpdateTick,
}

impl SegmentFreq {
    /// Create the tracker for a freshly sealed segment whose carried estimate is
    /// `initial_up2` (the mean of the `up2` values of the pages placed in the segment).
    pub fn new(mode: Up2Mode, initial_up2: UpdateTick, sealed_at: UpdateTick) -> Self {
        // Before the segment has received any updates of its own, treat the carried
        // estimate as the penultimate update and the midpoint between it and seal time as
        // the (assumed) last update. This mirrors the paper's midpoint assumption.
        let up1 = initial_up2 + (sealed_at.saturating_sub(initial_up2)) / 2;
        Self {
            mode,
            up1,
            up2: initial_up2,
        }
    }

    /// Record that one of the segment's live pages was just overwritten at `unow`.
    ///
    /// In `CarryForwardOnly` mode this is a no-op (the estimate stays frozen).
    #[inline]
    pub fn on_overwrite(&mut self, unow: UpdateTick) {
        if self.mode == Up2Mode::OnOverwrite {
            self.up2 = self.up1;
            self.up1 = unow;
        }
    }

    /// The current `up2` estimate consumed by cleaning policies.
    #[inline]
    pub fn up2(&self) -> UpdateTick {
        self.up2
    }

    /// The estimated update frequency of the segment at time `unow`.
    #[inline]
    pub fn upf(&self, unow: UpdateTick) -> f64 {
        estimated_upf(self.up2, unow)
    }
}

/// Upper bound on [`crate::StoreConfig::gc_temperature_classes`] (and the width of the
/// per-class statistics arrays in [`crate::StoreStats`]).
pub const MAX_TEMPERATURE_CLASSES: usize = 8;

/// A segment temperature tag meaning "never classified": the segment was filled by a
/// user stream (or recovered), so the cleaner treats it as hot until its survivors are
/// classified during a relocation. Class `0` is the coldest class; larger classes are
/// hotter (see [`classify_heat`]).
pub const TEMPERATURE_UNCLASSIFIED: u16 = u16::MAX;

/// Number of bits of a [`PageHeat`] slot holding the decayed count (the upper 16 bits
/// hold the decay epoch the count was last folded to).
const HEAT_COUNT_BITS: u32 = 48;
const HEAT_COUNT_MAX: u64 = (1 << HEAT_COUNT_BITS) - 1;

/// Lock-free decayed per-page write-count sketch (the cleaner's "heat" estimate).
///
/// A single hash-indexed row of `2^k` atomic slots, each packing `(epoch, count)` into
/// one `u64`. [`PageHeat::record`] is called on the user write path (one hash, one CAS
/// on an uncontended-by-design slot) and [`PageHeat::heat`] is sampled by the cleaner
/// at relocation time with **no lock held** — both are wait-free apart from the CAS
/// retry under same-slot contention.
///
/// Decay is *lazy*: a global epoch advances every `decay_interval` recorded writes, and
/// a slot touched (or read) `d` epochs later first halves its count `d` times
/// (`count >> d`). So heat is an exponentially decayed write count with a half-life of
/// `decay_interval` writes — a page that stops being written fades to 0 instead of
/// staying hot forever, which is what lets demoted pages re-pack as cold.
///
/// Distinct pages may share a slot (it is a sketch, not a map); collisions only ever
/// *overstate* heat, which merely routes a cold page to a hotter output class — an
/// efficiency loss, never a correctness issue.
#[derive(Debug)]
pub struct PageHeat {
    slots: Box<[AtomicU64]>,
    mask: u64,
    /// Current decay epoch (low 16 bits are stored in the slots).
    epoch: AtomicU64,
    /// Writes recorded since the last epoch advance.
    since_epoch: AtomicU64,
    decay_interval: u64,
}

impl PageHeat {
    /// A sketch with at least `min_slots` slots (rounded up to a power of two and
    /// clamped to a sane range) decaying every `decay_interval` recorded writes.
    pub fn new(min_slots: usize, decay_interval: u64) -> Self {
        let slots = min_slots.clamp(1024, 1 << 16).next_power_of_two();
        Self {
            slots: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            mask: (slots - 1) as u64,
            epoch: AtomicU64::new(0),
            since_epoch: AtomicU64::new(0),
            decay_interval: decay_interval.max(1),
        }
    }

    /// Size the sketch for a store that can hold `physical_pages` pages: one slot per
    /// page up to the clamp, with a half-life of four sketch-fills so steady heat
    /// ranks stay stable while dead pages fade within a few overwrite passes.
    pub fn for_physical_pages(physical_pages: usize) -> Self {
        let slots = physical_pages.clamp(1024, 1 << 16).next_power_of_two();
        Self::new(slots, 4 * slots as u64)
    }

    #[inline]
    fn slot_of(&self, page: PageId) -> &AtomicU64 {
        &self.slots[(crate::util::mix64(page) & self.mask) as usize]
    }

    #[inline]
    fn unpack(packed: u64) -> (u16, u64) {
        ((packed >> HEAT_COUNT_BITS) as u16, packed & HEAT_COUNT_MAX)
    }

    #[inline]
    fn pack(epoch: u16, count: u64) -> u64 {
        ((epoch as u64) << HEAT_COUNT_BITS) | count.min(HEAT_COUNT_MAX)
    }

    /// Fold a slot's count forward to `now_epoch`: halve once per elapsed epoch.
    #[inline]
    fn decayed(slot_epoch: u16, count: u64, now_epoch: u16) -> u64 {
        let delta = now_epoch.wrapping_sub(slot_epoch) as u32;
        if delta >= HEAT_COUNT_BITS {
            0
        } else {
            count >> delta
        }
    }

    /// Record one write of `page`. Saturates at the 48-bit count ceiling.
    pub fn record(&self, page: PageId) {
        // Advance the global epoch once per `decay_interval` records. The CAS means
        // exactly one of the racing recorders at the boundary advances it.
        let n = self.since_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.decay_interval
            && self
                .since_epoch
                .compare_exchange(n, 0, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
        let now_epoch = self.epoch.load(Ordering::Relaxed) as u16;
        let slot = self.slot_of(page);
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let (e, c) = Self::unpack(cur);
            let next = Self::pack(now_epoch, Self::decayed(e, c, now_epoch).saturating_add(1));
            match slot.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The decayed write count of `page` right now. One atomic load; never blocks.
    pub fn heat(&self, page: PageId) -> u64 {
        let now_epoch = self.epoch.load(Ordering::Relaxed) as u16;
        let (e, c) = Self::unpack(self.slot_of(page).load(Ordering::Relaxed));
        Self::decayed(e, c, now_epoch)
    }

    /// Number of slots in the sketch (diagnostics).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

/// Rank a relocation batch's heats into temperature classes.
///
/// Returns one class per input, `0 ..= classes-1`, `0` being coldest:
///
/// * `classes <= 1` → everything is class 0 (temperature-unaware behaviour);
/// * heat 0 → class 0 unconditionally (a page nobody has written since the sketch last
///   decayed it to nothing is cold in the absolute, not relative to its batch);
/// * non-zero heats are ranked *within the batch* and split into equal-depth quantiles
///   over classes `1 ..= classes-1` — relative rank, not absolute thresholds, so the
///   split adapts to any workload's heat scale without tuning.
///
/// Deterministic: ties rank by input position, so equal inputs give equal outputs.
pub fn classify_heat(heats: &[u64], classes: u16) -> Vec<u16> {
    let n = heats.len();
    if classes <= 1 || n == 0 {
        return vec![0; n];
    }
    let mut out = vec![0u16; n];
    let mut warm: Vec<usize> = (0..n).filter(|&i| heats[i] > 0).collect();
    if warm.is_empty() {
        return out;
    }
    warm.sort_by_key(|&i| (heats[i], i));
    let buckets = (classes - 1) as usize;
    let per = warm.len().div_ceil(buckets);
    for (rank, &i) in warm.iter().enumerate() {
        out[i] = 1 + (rank / per) as u16;
    }
    out
}

/// Running mean used to compute a sealed segment's initial `up2` from the pages written
/// into it without collecting them in a vector first.
#[derive(Debug, Clone, Copy, Default)]
pub struct Up2Average {
    sum: u128,
    count: u64,
}

impl Up2Average {
    /// Create an empty average.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one page's carried `up2`.
    #[inline]
    pub fn add(&mut self, up2: UpdateTick) {
        self.sum += up2 as u128;
        self.count += 1;
    }

    /// The mean, or `default` if no pages were added.
    #[inline]
    pub fn mean_or(&self, default: UpdateTick) -> UpdateTick {
        if self.count == 0 {
            default
        } else {
            (self.sum / self.count as u128) as UpdateTick
        }
    }

    /// Number of samples added.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrite_carry_forward_moves_halfway_to_now() {
        assert_eq!(carry_forward_rewrite(100, 200), 150);
        assert_eq!(carry_forward_rewrite(0, 1000), 500);
        // Repeated rewrites converge toward "now", i.e. the page looks hotter and hotter.
        let mut up2 = 0;
        for now in [100u64, 200, 300, 400] {
            up2 = carry_forward_rewrite(up2, now);
        }
        assert!(
            up2 > 300,
            "after several recent rewrites the page should look hot, up2={up2}"
        );
    }

    #[test]
    fn rewrite_carry_forward_is_idempotent_at_now() {
        assert_eq!(carry_forward_rewrite(500, 500), 500);
    }

    #[test]
    fn gc_carry_forward_keeps_value() {
        assert_eq!(carry_forward_gc(1234), 1234);
    }

    #[test]
    fn first_write_defaults_to_cold() {
        assert_eq!(first_write_up2(None), 0);
        assert_eq!(first_write_up2(Some(77)), 77);
    }

    #[test]
    fn estimated_upf_clamps_zero_interval() {
        assert_eq!(estimated_upf(100, 100), 2.0);
        assert!((estimated_upf(0, 1000) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn hotter_segments_have_larger_upf() {
        let hot = estimated_upf(990, 1000);
        let cold = estimated_upf(10, 1000);
        assert!(hot > cold);
    }

    #[test]
    fn on_overwrite_mode_advances_estimates() {
        let mut f = SegmentFreq::new(Up2Mode::OnOverwrite, 100, 200);
        assert_eq!(f.up2(), 100);
        f.on_overwrite(300);
        // up2 becomes the assumed midpoint (150), up1 becomes 300.
        assert_eq!(f.up2(), 150);
        f.on_overwrite(310);
        assert_eq!(f.up2(), 300);
        f.on_overwrite(320);
        assert_eq!(f.up2(), 310);
    }

    #[test]
    fn carry_forward_only_mode_freezes_estimate() {
        let mut f = SegmentFreq::new(Up2Mode::CarryForwardOnly, 100, 200);
        f.on_overwrite(900);
        f.on_overwrite(950);
        assert_eq!(f.up2(), 100);
    }

    #[test]
    fn up2_average_mean() {
        let mut avg = Up2Average::new();
        assert_eq!(avg.mean_or(42), 42);
        avg.add(10);
        avg.add(20);
        avg.add(30);
        assert_eq!(avg.count(), 3);
        assert_eq!(avg.mean_or(42), 20);
    }
}
