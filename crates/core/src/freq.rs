//! Update-frequency estimation (paper §4.3 and §5.2.2).
//!
//! The MDC policy needs, for every segment, an estimate of how frequently its pages are
//! updated. Keeping exact per-page statistics would be expensive, so the paper uses a
//! cheap "age"-based estimate: the time `up2` of the *penultimate* update, measured on an
//! update-count clock `unow`. The update frequency of a segment is then estimated as
//! `Upf ≈ 2 / (unow − up2)` — two updates over the observed interval.
//!
//! `up2` values are carried forward across writes:
//!
//! * **User re-write of an existing page** — the page inherits the `up2` of the segment
//!   that held its previous version, and we assume the (untracked) last update `up1` was
//!   midway between `up2` and now: `new_up2 = old_up2 + ½·(unow − old_up2)`.
//! * **First write of a page** — there is no history, and most pages are cold, so the
//!   page is assigned the *coldest* (smallest) `up2` seen in the batch of new writes it
//!   belongs to.
//! * **GC relocation** — the page keeps the `up2` of its victim segment unchanged.
//! * **Sealing a segment** — the segment's `up2` becomes the mean of the `up2` values of
//!   the pages written into it.

use crate::config::Up2Mode;
use crate::types::UpdateTick;

/// Carry-forward rule for a user re-write of an existing page (paper §5.2.2,
/// "Non-first Write").
///
/// `old_up2` is the `up2` of the segment holding the page's previous version.
#[inline]
pub fn carry_forward_rewrite(old_up2: UpdateTick, unow: UpdateTick) -> UpdateTick {
    debug_assert!(
        old_up2 <= unow,
        "up2 {old_up2} is in the future of unow {unow}"
    );
    old_up2 + (unow - old_up2) / 2
}

/// Carry-forward rule for a GC relocation: the page keeps its victim segment's `up2`.
#[inline]
pub fn carry_forward_gc(victim_up2: UpdateTick) -> UpdateTick {
    victim_up2
}

/// `up2` assigned to pages written for the first time: the coldest (oldest) `up2` in the
/// batch being processed, falling back to 0 (maximally cold) when the batch contains no
/// pages with history (paper §5.2.2, "First Write").
#[inline]
pub fn first_write_up2(coldest_in_batch: Option<UpdateTick>) -> UpdateTick {
    coldest_in_batch.unwrap_or(0)
}

/// The estimated per-segment update frequency `Upf ≈ 2 / (unow − up2)` (paper §4.3).
///
/// The interval is clamped to at least one tick so a segment updated this very tick does
/// not produce an infinite frequency.
#[inline]
pub fn estimated_upf(up2: UpdateTick, unow: UpdateTick) -> f64 {
    let interval = unow.saturating_sub(up2).max(1);
    2.0 / interval as f64
}

/// Per-segment update-recency tracker.
///
/// Depending on [`Up2Mode`], the tracker either freezes the carry-forward estimate set at
/// seal time, or additionally observes every overwrite of a live page in the segment and
/// keeps the true last-two update times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentFreq {
    mode: Up2Mode,
    /// Last observed update to the segment (only meaningful in `OnOverwrite` mode).
    up1: UpdateTick,
    /// Penultimate update estimate — the value the MDC formula consumes.
    up2: UpdateTick,
}

impl SegmentFreq {
    /// Create the tracker for a freshly sealed segment whose carried estimate is
    /// `initial_up2` (the mean of the `up2` values of the pages placed in the segment).
    pub fn new(mode: Up2Mode, initial_up2: UpdateTick, sealed_at: UpdateTick) -> Self {
        // Before the segment has received any updates of its own, treat the carried
        // estimate as the penultimate update and the midpoint between it and seal time as
        // the (assumed) last update. This mirrors the paper's midpoint assumption.
        let up1 = initial_up2 + (sealed_at.saturating_sub(initial_up2)) / 2;
        Self {
            mode,
            up1,
            up2: initial_up2,
        }
    }

    /// Record that one of the segment's live pages was just overwritten at `unow`.
    ///
    /// In `CarryForwardOnly` mode this is a no-op (the estimate stays frozen).
    #[inline]
    pub fn on_overwrite(&mut self, unow: UpdateTick) {
        if self.mode == Up2Mode::OnOverwrite {
            self.up2 = self.up1;
            self.up1 = unow;
        }
    }

    /// The current `up2` estimate consumed by cleaning policies.
    #[inline]
    pub fn up2(&self) -> UpdateTick {
        self.up2
    }

    /// The estimated update frequency of the segment at time `unow`.
    #[inline]
    pub fn upf(&self, unow: UpdateTick) -> f64 {
        estimated_upf(self.up2, unow)
    }
}

/// Running mean used to compute a sealed segment's initial `up2` from the pages written
/// into it without collecting them in a vector first.
#[derive(Debug, Clone, Copy, Default)]
pub struct Up2Average {
    sum: u128,
    count: u64,
}

impl Up2Average {
    /// Create an empty average.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one page's carried `up2`.
    #[inline]
    pub fn add(&mut self, up2: UpdateTick) {
        self.sum += up2 as u128;
        self.count += 1;
    }

    /// The mean, or `default` if no pages were added.
    #[inline]
    pub fn mean_or(&self, default: UpdateTick) -> UpdateTick {
        if self.count == 0 {
            default
        } else {
            (self.sum / self.count as u128) as UpdateTick
        }
    }

    /// Number of samples added.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrite_carry_forward_moves_halfway_to_now() {
        assert_eq!(carry_forward_rewrite(100, 200), 150);
        assert_eq!(carry_forward_rewrite(0, 1000), 500);
        // Repeated rewrites converge toward "now", i.e. the page looks hotter and hotter.
        let mut up2 = 0;
        for now in [100u64, 200, 300, 400] {
            up2 = carry_forward_rewrite(up2, now);
        }
        assert!(
            up2 > 300,
            "after several recent rewrites the page should look hot, up2={up2}"
        );
    }

    #[test]
    fn rewrite_carry_forward_is_idempotent_at_now() {
        assert_eq!(carry_forward_rewrite(500, 500), 500);
    }

    #[test]
    fn gc_carry_forward_keeps_value() {
        assert_eq!(carry_forward_gc(1234), 1234);
    }

    #[test]
    fn first_write_defaults_to_cold() {
        assert_eq!(first_write_up2(None), 0);
        assert_eq!(first_write_up2(Some(77)), 77);
    }

    #[test]
    fn estimated_upf_clamps_zero_interval() {
        assert_eq!(estimated_upf(100, 100), 2.0);
        assert!((estimated_upf(0, 1000) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn hotter_segments_have_larger_upf() {
        let hot = estimated_upf(990, 1000);
        let cold = estimated_upf(10, 1000);
        assert!(hot > cold);
    }

    #[test]
    fn on_overwrite_mode_advances_estimates() {
        let mut f = SegmentFreq::new(Up2Mode::OnOverwrite, 100, 200);
        assert_eq!(f.up2(), 100);
        f.on_overwrite(300);
        // up2 becomes the assumed midpoint (150), up1 becomes 300.
        assert_eq!(f.up2(), 150);
        f.on_overwrite(310);
        assert_eq!(f.up2(), 300);
        f.on_overwrite(320);
        assert_eq!(f.up2(), 310);
    }

    #[test]
    fn carry_forward_only_mode_freezes_estimate() {
        let mut f = SegmentFreq::new(Up2Mode::CarryForwardOnly, 100, 200);
        f.on_overwrite(900);
        f.on_overwrite(950);
        assert_eq!(f.up2(), 100);
    }

    #[test]
    fn up2_average_mean() {
        let mut avg = Up2Average::new();
        assert_eq!(avg.mean_or(42), 42);
        avg.add(10);
        avg.add(20);
        avg.add(30);
        assert_eq!(avg.count(), 3);
        assert_eq!(avg.mean_or(42), 20);
    }
}
