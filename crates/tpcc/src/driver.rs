//! The TPC-C driver: database load, the five-transaction mix, and page-write trace
//! collection.

use crate::schema::{cardinality, embedded_value, key, row, Table};
use lss_btree::{BTree, BufferPool, MemPageStore, TracingPageStore};
use lss_core::Result;
use lss_workload::WriteTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration of a TPC-C run. The defaults in [`TpccConfig::scaled_experiment`] are a
/// deliberately scaled-down version of the paper's setup (scale factor 350–560 with a
/// 4 GiB buffer cache); DESIGN.md records the substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpccConfig {
    /// Number of warehouses (TPC-C scale factor).
    pub warehouses: u32,
    /// Districts per warehouse (spec: 10).
    pub districts_per_warehouse: u32,
    /// Customers per district (spec: 3000; scaled down by default).
    pub customers_per_district: u32,
    /// Items in the catalogue (spec: 100 000; scaled down by default).
    pub items: u32,
    /// Initial orders per district (spec: 3000; scaled down by default).
    pub initial_orders_per_district: u32,
    /// B+-tree page size in bytes.
    pub page_size: usize,
    /// Buffer pool capacity in pages.
    pub buffer_pool_pages: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl TpccConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny_for_tests() -> Self {
        Self {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 60,
            items: 200,
            initial_orders_per_district: 30,
            page_size: 4096,
            buffer_pool_pages: 64,
            seed: 7,
        }
    }

    /// The scaled-down experiment configuration used by the Figure 6 harness.
    pub fn scaled_experiment(warehouses: u32) -> Self {
        Self {
            warehouses,
            districts_per_warehouse: cardinality::DISTRICTS_PER_WAREHOUSE,
            customers_per_district: 600,
            items: 10_000,
            initial_orders_per_district: 300,
            page_size: 4096,
            buffer_pool_pages: 2048, // 8 MiB cache, scaled down with the data set
            seed: 42,
        }
    }
}

/// Transaction counts executed by a driver.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TpccStats {
    /// New-Order transactions.
    pub new_orders: u64,
    /// Payment transactions.
    pub payments: u64,
    /// Order-Status transactions.
    pub order_status: u64,
    /// Delivery transactions.
    pub deliveries: u64,
    /// Stock-Level transactions.
    pub stock_levels: u64,
}

impl TpccStats {
    /// Total transactions executed.
    pub fn total(&self) -> u64 {
        self.new_orders + self.payments + self.order_status + self.deliveries + self.stock_levels
    }
}

/// Runs TPC-C against a B+-tree on a traced in-memory page store.
pub struct TpccDriver {
    config: TpccConfig,
    tree: BTree<TracingPageStore<MemPageStore>>,
    rng: StdRng,
    /// Next order id per (warehouse, district).
    next_o_id: HashMap<(u32, u32), u32>,
    /// Oldest undelivered order id per (warehouse, district).
    next_delivery: HashMap<(u32, u32), u32>,
    history_seq: u32,
    stats: TpccStats,
    /// Page writes recorded during the load phase (excluded from the run trace).
    load_writes: usize,
}

impl TpccDriver {
    /// Create a driver and load the initial database.
    pub fn new(config: TpccConfig) -> Result<Self> {
        let store = TracingPageStore::new(MemPageStore::new(config.page_size));
        let pool = BufferPool::new(store, config.buffer_pool_pages);
        let tree = BTree::open(pool)?;
        let mut driver = Self {
            rng: StdRng::seed_from_u64(config.seed),
            tree,
            next_o_id: HashMap::new(),
            next_delivery: HashMap::new(),
            history_seq: 0,
            stats: TpccStats::default(),
            load_writes: 0,
            config,
        };
        driver.load()?;
        Ok(driver)
    }

    /// Transaction counts so far.
    pub fn stats(&self) -> TpccStats {
        self.stats
    }

    /// Number of rows currently in the tree.
    pub fn rows(&self) -> u64 {
        self.tree.len()
    }

    /// Execute `n` transactions with the standard TPC-C mix
    /// (45/43/4/4/4 New-Order/Payment/Order-Status/Delivery/Stock-Level).
    pub fn run(&mut self, n: u64) -> Result<()> {
        for _ in 0..n {
            let dice = self.rng.gen_range(0..100u32);
            if dice < 45 {
                self.new_order()?;
            } else if dice < 88 {
                self.payment()?;
            } else if dice < 92 {
                self.order_status()?;
            } else if dice < 96 {
                self.delivery()?;
            } else {
                self.stock_level()?;
            }
        }
        Ok(())
    }

    /// Flush the buffer pool and return the page-write trace of the *run* phase only
    /// (the load phase writes are excluded, as in the paper's methodology), together with
    /// the number of distinct pages the whole database occupies.
    pub fn finish(self) -> Result<(WriteTrace, u64)> {
        self.tree.flush()?;
        let load_writes = self.load_writes;
        let store = self.tree.into_store()?;
        let (trace, inner) = store.into_parts();
        let run_trace = WriteTrace {
            writes: trace.writes[load_writes..].to_vec(),
        };
        Ok((run_trace, inner.distinct_pages() as u64))
    }

    // ------------------------------------------------------------------
    // Load phase
    // ------------------------------------------------------------------

    fn load(&mut self) -> Result<()> {
        let c = self.config.clone();
        for i in 0..c.items {
            self.tree
                .insert(&key(Table::Item, &[i]), &row(Table::Item, i as u64))?;
        }
        for w in 0..c.warehouses {
            self.tree
                .insert(&key(Table::Warehouse, &[w]), &row(Table::Warehouse, 0))?;
            for i in 0..c.items {
                self.tree
                    .insert(&key(Table::Stock, &[w, i]), &row(Table::Stock, 100))?;
            }
            for d in 0..c.districts_per_warehouse {
                self.tree
                    .insert(&key(Table::District, &[w, d]), &row(Table::District, 0))?;
                for cu in 0..c.customers_per_district {
                    self.tree
                        .insert(&key(Table::Customer, &[w, d, cu]), &row(Table::Customer, 0))?;
                }
                for o in 0..c.initial_orders_per_district {
                    let customer = o % c.customers_per_district;
                    self.insert_order(w, d, o, customer, 5)?;
                }
                self.next_o_id.insert((w, d), c.initial_orders_per_district);
                // The last 30% of the initial orders are undelivered, per the spec.
                let undelivered_from =
                    c.initial_orders_per_district - (c.initial_orders_per_district * 3 / 10).max(1);
                self.next_delivery.insert((w, d), undelivered_from);
                for o in undelivered_from..c.initial_orders_per_district {
                    self.tree
                        .insert(&key(Table::NewOrder, &[w, d, o]), &row(Table::NewOrder, 0))?;
                }
            }
        }
        self.tree.flush()?;
        self.load_writes = self.tree.store().trace_len();
        Ok(())
    }

    fn insert_order(&mut self, w: u32, d: u32, o: u32, customer: u32, lines: u32) -> Result<()> {
        self.tree.insert(
            &key(Table::Order, &[w, d, o]),
            &row(Table::Order, customer as u64),
        )?;
        for l in 0..lines {
            let item = (o.wrapping_mul(31).wrapping_add(l * 7)) % self.config.items;
            self.tree.insert(
                &key(Table::OrderLine, &[w, d, o, l]),
                &row(Table::OrderLine, item as u64),
            )?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    fn pick_warehouse(&mut self) -> u32 {
        self.rng.gen_range(0..self.config.warehouses)
    }

    fn pick_district(&mut self) -> u32 {
        self.rng.gen_range(0..self.config.districts_per_warehouse)
    }

    /// NURand-style skewed customer choice: a third of accesses hit a "favourite" subset.
    fn pick_customer(&mut self) -> u32 {
        let n = self.config.customers_per_district;
        if self.rng.gen_bool(0.35) {
            self.rng.gen_range(0..(n / 10).max(1))
        } else {
            self.rng.gen_range(0..n)
        }
    }

    fn pick_item(&mut self) -> u32 {
        let n = self.config.items;
        if self.rng.gen_bool(0.3) {
            self.rng.gen_range(0..(n / 20).max(1))
        } else {
            self.rng.gen_range(0..n)
        }
    }

    fn bump(&mut self, k: &[u8], delta: u64) -> Result<()> {
        if let Some(cur) = self.tree.get(k)? {
            let v = embedded_value(&cur).wrapping_add(delta);
            let table_len = cur.len();
            let mut new = cur;
            let n = table_len.min(8);
            new[..n].copy_from_slice(&v.to_le_bytes()[..n]);
            self.tree.insert(k, &new)?;
        }
        Ok(())
    }

    fn new_order(&mut self) -> Result<()> {
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let c = self.pick_customer();
        let o = *self.next_o_id.entry((w, d)).or_insert(0);
        self.next_o_id.insert((w, d), o + 1);

        // Read warehouse + customer, update the district's next order id.
        let _ = self.tree.get(&key(Table::Warehouse, &[w]))?;
        let _ = self.tree.get(&key(Table::Customer, &[w, d, c]))?;
        self.bump(&key(Table::District, &[w, d]), 1)?;

        let lines = self.rng.gen_range(5..=15u32);
        self.tree
            .insert(&key(Table::Order, &[w, d, o]), &row(Table::Order, c as u64))?;
        self.tree
            .insert(&key(Table::NewOrder, &[w, d, o]), &row(Table::NewOrder, 0))?;
        for l in 0..lines {
            let item = self.pick_item();
            let _ = self.tree.get(&key(Table::Item, &[item]))?;
            self.bump(&key(Table::Stock, &[w, item]), 1)?;
            self.tree.insert(
                &key(Table::OrderLine, &[w, d, o, l]),
                &row(Table::OrderLine, item as u64),
            )?;
        }
        self.stats.new_orders += 1;
        Ok(())
    }

    fn payment(&mut self) -> Result<()> {
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let c = self.pick_customer();
        self.bump(&key(Table::Warehouse, &[w]), 7)?;
        self.bump(&key(Table::District, &[w, d]), 7)?;
        self.bump(&key(Table::Customer, &[w, d, c]), 7)?;
        let h = self.history_seq;
        self.history_seq += 1;
        self.tree.insert(
            &key(Table::History, &[w, d, c, h]),
            &row(Table::History, h as u64),
        )?;
        self.stats.payments += 1;
        Ok(())
    }

    fn order_status(&mut self) -> Result<()> {
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let c = self.pick_customer();
        let _ = self.tree.get(&key(Table::Customer, &[w, d, c]))?;
        let last_o = self
            .next_o_id
            .get(&(w, d))
            .copied()
            .unwrap_or(0)
            .saturating_sub(1);
        let _ = self.tree.get(&key(Table::Order, &[w, d, last_o]))?;
        let _ = self.tree.range(
            &key(Table::OrderLine, &[w, d, last_o, 0]),
            &key(Table::OrderLine, &[w, d, last_o + 1, 0]),
        )?;
        self.stats.order_status += 1;
        Ok(())
    }

    fn delivery(&mut self) -> Result<()> {
        let w = self.pick_warehouse();
        for d in 0..self.config.districts_per_warehouse {
            let oldest = self.next_delivery.get(&(w, d)).copied().unwrap_or(0);
            let newest = self.next_o_id.get(&(w, d)).copied().unwrap_or(0);
            if oldest >= newest {
                continue;
            }
            self.next_delivery.insert((w, d), oldest + 1);
            self.tree.delete(&key(Table::NewOrder, &[w, d, oldest]))?;
            self.bump(&key(Table::Order, &[w, d, oldest]), 1)?;
            let lines = self.tree.range(
                &key(Table::OrderLine, &[w, d, oldest, 0]),
                &key(Table::OrderLine, &[w, d, oldest + 1, 0]),
            )?;
            let mut customer = 0u32;
            if let Some(order_row) = self.tree.get(&key(Table::Order, &[w, d, oldest]))? {
                customer =
                    (embedded_value(&order_row) % self.config.customers_per_district as u64) as u32;
            }
            for (k, _) in lines {
                self.bump(&k, 1)?;
            }
            self.bump(&key(Table::Customer, &[w, d, customer]), 3)?;
        }
        self.stats.deliveries += 1;
        Ok(())
    }

    fn stock_level(&mut self) -> Result<()> {
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let _ = self.tree.get(&key(Table::District, &[w, d]))?;
        let newest = self.next_o_id.get(&(w, d)).copied().unwrap_or(0);
        let from = newest.saturating_sub(20);
        let lines = self.tree.range(
            &key(Table::OrderLine, &[w, d, from, 0]),
            &key(Table::OrderLine, &[w, d, newest, 0]),
        )?;
        for (_, v) in lines.iter().take(40) {
            let item = (embedded_value(v) % self.config.items as u64) as u32;
            let _ = self.tree.get(&key(Table::Stock, &[w, item]))?;
        }
        self.stats.stock_levels += 1;
        Ok(())
    }
}

impl std::fmt::Debug for TpccDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpccDriver")
            .field("warehouses", &self.config.warehouses)
            .field("rows", &self.tree.len())
            .field("transactions", &self.stats.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_populates_all_tables() {
        let cfg = TpccConfig::tiny_for_tests();
        let driver = TpccDriver::new(cfg.clone()).unwrap();
        // items + warehouse + stock + districts + customers + orders + order lines (5 per
        // order) + new orders (30%).
        let per_district = cfg.customers_per_district
            + cfg.initial_orders_per_district * (1 + 5)
            + (cfg.initial_orders_per_district * 3 / 10).max(1)
            + 1;
        let expected = cfg.items
            + cfg.warehouses * (1 + cfg.items)
            + cfg.warehouses * cfg.districts_per_warehouse * per_district;
        assert_eq!(driver.rows(), expected as u64);
    }

    #[test]
    fn transactions_run_and_modify_the_database() {
        let mut driver = TpccDriver::new(TpccConfig::tiny_for_tests()).unwrap();
        let rows_before = driver.rows();
        driver.run(300).unwrap();
        let stats = driver.stats();
        assert_eq!(stats.total(), 300);
        assert!(stats.new_orders > 80, "new orders: {stats:?}");
        assert!(stats.payments > 80, "payments: {stats:?}");
        assert!(stats.order_status + stats.deliveries + stats.stock_levels > 0);
        // New-Order and Payment insert rows, so the database grows.
        assert!(driver.rows() > rows_before);
    }

    #[test]
    fn run_trace_excludes_the_load_phase_and_is_skewed() {
        let mut driver = TpccDriver::new(TpccConfig::tiny_for_tests()).unwrap();
        driver.run(500).unwrap();
        let (trace, distinct_pages) = driver.finish().unwrap();
        assert!(!trace.is_empty(), "running TPC-C must produce page writes");
        assert!(distinct_pages > 0);
        // The trace touches a strict subset of the database's pages far more often than
        // uniformly: compare the most-written page against the mean.
        let (dense, n) = trace.densify();
        let freqs = dense.empirical_frequencies(n);
        let max = freqs.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max > 2.0,
            "TPC-C page-write trace should be skewed (hottest page at {max}x the mean)"
        );
        assert!(
            n <= distinct_pages,
            "trace cannot touch more pages than exist"
        );
    }

    #[test]
    fn driver_is_deterministic_for_a_seed() {
        let run = || {
            let mut d = TpccDriver::new(TpccConfig::tiny_for_tests()).unwrap();
            d.run(200).unwrap();
            let (trace, _) = d.finish().unwrap();
            trace.writes
        };
        assert_eq!(run(), run());
    }
}
