//! # lss-tpcc — a TPC-C-style workload for generating page-write traces
//!
//! The paper's Figure 6 evaluates the cleaning policies on *"I/O traces collected from
//! running the TPC-C benchmark on a B+-tree-based storage engine"* (§6.3). The original
//! traces are not available, so this crate regenerates the experiment end-to-end:
//!
//! 1. [`schema`] defines the nine TPC-C tables, their composite keys (encoded as ordered
//!    byte strings) and realistic row payload sizes;
//! 2. [`driver`] loads a scaled-down database into a [`lss_btree::BTree`] behind a buffer
//!    pool and runs the standard transaction mix (New-Order 45%, Payment 43%,
//!    Order-Status 4%, Delivery 4%, Stock-Level 4%);
//! 3. every page write that reaches storage (i.e. survives the buffer cache) is recorded
//!    into an [`lss_workload::WriteTrace`], which the simulator then replays exactly as
//!    the paper replays its traces.
//!
//! The substitution (scaled-down warehouses and buffer pool instead of scale factor
//! 350–560 with a 4 GiB cache) is documented in DESIGN.md: what matters to the cleaning
//! study is the *skew and drift* of the page-write stream produced by a B+-tree under
//! TPC-C, which is preserved.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod schema;

pub use driver::{TpccConfig, TpccDriver, TpccStats};
