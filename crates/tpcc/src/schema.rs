//! TPC-C tables, key encoding, and row payloads.
//!
//! All nine tables live in a single B+-tree; each key is prefixed with a one-byte table
//! tag followed by the big-endian components of the composite primary key, so rows of the
//! same table (and district, and order) cluster together exactly as a per-table clustered
//! index would.
//!
//! Row payloads are opaque byte strings of realistic sizes (the cleaning study only cares
//! about which *pages* are dirtied, not about the column values); a few bytes of real
//! content (ids, balances) are encoded at the front so transactions can read-modify-write
//! them meaningfully.

/// Table tags (key prefix byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Table {
    /// WAREHOUSE (w_id)
    Warehouse = 1,
    /// DISTRICT (w_id, d_id)
    District = 2,
    /// CUSTOMER (w_id, d_id, c_id)
    Customer = 3,
    /// HISTORY (w_id, d_id, c_id, seq)
    History = 4,
    /// NEW-ORDER (w_id, d_id, o_id)
    NewOrder = 5,
    /// ORDER (w_id, d_id, o_id)
    Order = 6,
    /// ORDER-LINE (w_id, d_id, o_id, ol_number)
    OrderLine = 7,
    /// ITEM (i_id)
    Item = 8,
    /// STOCK (w_id, i_id)
    Stock = 9,
}

/// Approximate row sizes in bytes, close to the TPC-C specification's average row widths.
pub fn row_size(table: Table) -> usize {
    match table {
        Table::Warehouse => 92,
        Table::District => 98,
        Table::Customer => 560,
        Table::History => 46,
        Table::NewOrder => 8,
        Table::Order => 24,
        Table::OrderLine => 54,
        Table::Item => 82,
        Table::Stock => 306,
    }
}

/// Standard TPC-C cardinalities per warehouse.
pub mod cardinality {
    /// Districts per warehouse.
    pub const DISTRICTS_PER_WAREHOUSE: u32 = 10;
    /// Customers per district.
    pub const CUSTOMERS_PER_DISTRICT: u32 = 3000;
    /// Items in the catalogue (global).
    pub const ITEMS: u32 = 100_000;
    /// Initial orders per district.
    pub const INITIAL_ORDERS_PER_DISTRICT: u32 = 3000;
}

/// Encode a composite key: table tag then big-endian components (big-endian keeps the
/// byte-string order equal to the numeric order).
pub fn key(table: Table, components: &[u32]) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + components.len() * 4);
    k.push(table as u8);
    for c in components {
        k.extend_from_slice(&c.to_be_bytes());
    }
    k
}

/// Upper bound (exclusive) for a prefix scan over a table.
pub fn table_end_key(table: Table) -> Vec<u8> {
    vec![table as u8 + 1]
}

/// Generate a row payload of the right size for the table, embedding a counter value in
/// the first 8 bytes so read-modify-write transactions have something to update.
pub fn row(table: Table, embedded: u64) -> Vec<u8> {
    let size = row_size(table);
    let mut v = vec![0xAB; size];
    let n = size.min(8);
    v[..n].copy_from_slice(&embedded.to_le_bytes()[..n]);
    v
}

/// Read back the embedded counter of a row (see [`row`]).
pub fn embedded_value(data: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = data.len().min(8);
    buf[..n].copy_from_slice(&data[..n]);
    u64::from_le_bytes(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_order_numerically_within_a_table() {
        let a = key(Table::Customer, &[1, 2, 10]);
        let b = key(Table::Customer, &[1, 2, 200]);
        let c = key(Table::Customer, &[1, 3, 1]);
        assert!(a < b && b < c);
        // Different tables never interleave.
        let d = key(Table::District, &[9, 9]);
        assert!(d < a);
        assert!(key(Table::Stock, &[0, 0]) > c);
    }

    #[test]
    fn table_end_key_bounds_prefix_scans() {
        let end = table_end_key(Table::Customer);
        assert!(key(Table::Customer, &[u32::MAX, u32::MAX, u32::MAX]) < end);
        assert!(key(Table::History, &[0, 0, 0, 0]) >= end);
    }

    #[test]
    fn rows_have_realistic_sizes_and_roundtrip_their_counter() {
        for t in [
            Table::Warehouse,
            Table::District,
            Table::Customer,
            Table::History,
            Table::NewOrder,
            Table::Order,
            Table::OrderLine,
            Table::Item,
            Table::Stock,
        ] {
            let r = row(t, 123456789);
            assert_eq!(r.len(), row_size(t));
            assert!(r.len() >= 8 || t == Table::NewOrder);
            assert_eq!(embedded_value(&r) & 0xFFFF_FFFF, 123456789 & 0xFFFF_FFFF);
        }
        // Customer rows are the big ones, stock second — matching TPC-C's relative sizes.
        assert!(row_size(Table::Customer) > row_size(Table::Stock));
        assert!(row_size(Table::Stock) > row_size(Table::OrderLine));
    }
}
