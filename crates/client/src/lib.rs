//! # lss-client — sync client for the LSS KV server
//!
//! A blocking client for the wire protocol specified in **docs/PROTOCOL.md** and
//! served by `lss-server`. Three layers, use whichever fits:
//!
//! * **One-shot calls** — [`Client::get`], [`Client::put`], [`Client::delete`],
//!   [`Client::scan`], [`Client::flush`], [`Client::stats`]: send one request,
//!   wait for its reply. On a broken connection they transparently reconnect with
//!   exponential backoff and retry once (mutations too, unless
//!   [`ClientOptions::retry_mutations`] is off — a retried PUT is an idempotent
//!   full-value write, so at-least-once delivery is safe; a retried DELETE may
//!   report `existed = false` for a key its first attempt already removed).
//! * **Pipelining** — [`Client::send`] queues any number of requests without
//!   waiting; [`Client::recv`] returns completions in whatever order the server
//!   replies (PROTOCOL.md §7), matched by correlation id; [`Client::drain`]
//!   collects everything outstanding. Deep pipelines are how durable PUTs share
//!   one superblock flip (PROTOCOL.md §5.2) — see the `kv_server` bench.
//! * **Reconnection** — [`Client::reconnect`] redials with exponential backoff
//!   (capped by [`ClientOptions`]); in-flight pipelined requests are abandoned as
//!   PROTOCOL.md §8 requires (their fates are unknown; acked durable writes remain
//!   trustworthy).
//!
//! ## Example: round trip against an in-process server
//!
//! ```
//! use lss_core::{LogStore, StoreConfig};
//! use lss_btree::kv::KvStore;
//! use lss_server::{Server, ServerConfig};
//! use lss_client::Client;
//! use std::sync::Arc;
//!
//! let kv = Arc::new(KvStore::open(
//!     LogStore::open_in_memory(StoreConfig::small_for_tests()).unwrap(),
//! ).unwrap());
//! let server = Server::start(kv, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
//! client.put(b"answer", b"42").unwrap();                 // durable: acked after commit
//! assert_eq!(client.get(b"answer").unwrap().as_deref(), Some(&b"42"[..]));
//!
//! // Pipelined: three PUTs in flight at once share one group-commit flip.
//! let mut corrs = Vec::new();
//! for i in 0..3u8 {
//!     corrs.push(client.send(&lss_server::protocol::Request::Put {
//!         key: vec![b'k', i], value: vec![i], durable: true,
//!     }).unwrap());
//! }
//! let replies = client.drain().unwrap();
//! assert_eq!(replies.len(), 3);
//!
//! let (items, _truncated) = client.scan(b"k", b"l", 0).unwrap();
//! assert_eq!(items.len(), 3);
//! server.shutdown();
//! ```

use lss_server::protocol::{read_frame, FrameError, Request, Response, RESPONSE_BIT};
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Dial attempts per connect/reconnect before giving up.
    pub connect_attempts: u32,
    /// Backoff before the second dial attempt; doubles per attempt.
    pub backoff_initial: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Socket read timeout (`None` = block forever). With a timeout set,
    /// [`Client::recv`] surfaces [`ClientError::Io`] with `WouldBlock`/`TimedOut`.
    pub read_timeout: Option<Duration>,
    /// Frame-length ceiling accepted from the server (PROTOCOL.md §3.1).
    pub max_frame_bytes: u32,
    /// Whether one-shot `put`/`delete` retry after a transparent reconnect
    /// (at-least-once; see the crate docs). One-shot reads always retry.
    pub retry_mutations: bool,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            connect_attempts: 5,
            backoff_initial: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            read_timeout: None,
            max_frame_bytes: lss_server::protocol::MAX_FRAME_BYTES,
            retry_mutations: true,
        }
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes read timeouts).
    Io(io::Error),
    /// The server broke the protocol (bad frame, wrong correlation id, malformed
    /// response payload).
    Protocol(String),
    /// The server answered with a non-OK status (PROTOCOL.md §6).
    Server { status: u8 },
    /// Every dial attempt failed; the client is not connected.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
            ClientError::Server { status } => {
                write!(f, "server error status {status} (PROTOCOL.md \u{a7}6)")
            }
            ClientError::Disconnected => write!(f, "disconnected: all dial attempts failed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Fatal(why) => ClientError::Protocol(why),
        }
    }
}

/// Alias for results of client calls.
pub type Result<T> = std::result::Result<T, ClientError>;

/// One scan page: the returned `(key, value)` pairs (PROTOCOL.md §5.4).
pub type ScanItems = Vec<(Vec<u8>, Vec<u8>)>;

/// A blocking connection to one `lss-server`. Not internally synchronised: wrap in
/// a mutex or give each thread its own `Client` (the bench gives one per
/// connection; that is the unit the server schedules fairly).
pub struct Client {
    addr: String,
    opts: ClientOptions,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_corr: u64,
    /// Correlation id → request opcode for every in-flight pipelined request, so
    /// replies can be decoded and matched out of order (PROTOCOL.md §7).
    pending: HashMap<u64, u8>,
}

impl Client {
    /// Connect with default options, dialing with backoff.
    pub fn connect(addr: &str) -> Result<Client> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connect with explicit options, dialing with backoff.
    pub fn connect_with(addr: &str, opts: ClientOptions) -> Result<Client> {
        let stream = dial(addr, &opts)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            addr: addr.to_string(),
            opts,
            stream,
            reader,
            next_corr: 1,
            pending: HashMap::new(),
        })
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// In-flight pipelined requests ([`Client::send`] minus [`Client::recv`]).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Drop the current connection and redial with exponential backoff. In-flight
    /// requests are abandoned: their fates are unknown (PROTOCOL.md §8).
    pub fn reconnect(&mut self) -> Result<()> {
        self.pending.clear();
        let stream = dial(&self.addr, &self.opts)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.stream = stream;
        Ok(())
    }

    /// Queue one request without waiting for its reply; returns the correlation id
    /// its reply will echo. This is the pipelining primitive (PROTOCOL.md §7).
    pub fn send(&mut self, request: &Request) -> Result<u64> {
        let corr_id = self.next_corr;
        self.next_corr += 1;
        let mut payload = Vec::new();
        request.encode_payload(&mut payload);
        let mut frame = Vec::with_capacity(20 + payload.len());
        lss_server::protocol::encode_frame(&mut frame, request.opcode(), corr_id, &payload);
        self.stream.write_all(&frame)?;
        self.pending.insert(corr_id, request.opcode());
        Ok(corr_id)
    }

    /// Wait for the next reply, in whatever order the server finished
    /// (PROTOCOL.md §7). Returns the echoed correlation id and the decoded
    /// response — including error responses ([`Response::Err`]); one-shot callers
    /// turn those into [`ClientError::Server`], pipelining callers see them inline.
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        let frame = read_frame(&mut self.reader, self.opts.max_frame_bytes)?
            .ok_or_else(|| ClientError::Io(io::ErrorKind::UnexpectedEof.into()))?;
        if frame.opcode & RESPONSE_BIT == 0 {
            return Err(ClientError::Protocol(format!(
                "server sent a request opcode {:#04x} (PROTOCOL.md \u{a7}3.4)",
                frame.opcode
            )));
        }
        let Some(req_opcode) = self.pending.remove(&frame.corr_id) else {
            return Err(ClientError::Protocol(format!(
                "reply to unknown correlation id {} (PROTOCOL.md \u{a7}3.5)",
                frame.corr_id
            )));
        };
        if frame.opcode != req_opcode | RESPONSE_BIT {
            return Err(ClientError::Protocol(format!(
                "reply opcode {:#04x} does not match request opcode {req_opcode:#04x}",
                frame.opcode
            )));
        }
        let response = Response::decode(frame.opcode, &frame.payload)?;
        Ok((frame.corr_id, response))
    }

    /// Collect every outstanding reply, in completion order.
    pub fn drain(&mut self) -> Result<Vec<(u64, Response)>> {
        let mut out = Vec::with_capacity(self.pending.len());
        while !self.pending.is_empty() {
            out.push(self.recv()?);
        }
        Ok(out)
    }

    /// Point lookup (PROTOCOL.md §5.1). `None` = key absent.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.call(&Request::Get { key: key.to_vec() }, true)? {
            Response::Get(value) => Ok(value),
            other => Err(unexpected(&other)),
        }
    }

    /// Durable upsert: the OK ack means the write survived a crash barrier
    /// (PROTOCOL.md §5.2).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.put_opts(key, value, true)
    }

    /// Buffered upsert: acked on apply, durable at the next commit (PROTOCOL.md §5.2).
    pub fn put_buffered(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.put_opts(key, value, false)
    }

    fn put_opts(&mut self, key: &[u8], value: &[u8], durable: bool) -> Result<()> {
        let retry = self.opts.retry_mutations;
        match self.call(
            &Request::Put {
                key: key.to_vec(),
                value: value.to_vec(),
                durable,
            },
            retry,
        )? {
            Response::Put => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Durable delete (PROTOCOL.md §5.3); returns whether the key existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let retry = self.opts.retry_mutations;
        match self.call(
            &Request::Delete {
                key: key.to_vec(),
                durable: true,
            },
            retry,
        )? {
            Response::Delete { existed } => Ok(existed),
            other => Err(unexpected(&other)),
        }
    }

    /// One SCAN frame's worth of `[start, end)` (PROTOCOL.md §5.4). `max_items = 0`
    /// leaves the cap to the server. The `bool` is the `truncated` flag; resume with
    /// [`Client::scan_all`] or a successor-key start.
    pub fn scan(&mut self, start: &[u8], end: &[u8], max_items: u32) -> Result<(ScanItems, bool)> {
        match self.call(
            &Request::Scan {
                start: start.to_vec(),
                end: end.to_vec(),
                max_items,
            },
            true,
        )? {
            Response::Scan { items, truncated } => Ok((items, truncated)),
            other => Err(unexpected(&other)),
        }
    }

    /// Full `[start, end)` scan, following truncation with successor-key resumes
    /// (PROTOCOL.md §5.4).
    pub fn scan_all(&mut self, start: &[u8], end: &[u8]) -> Result<ScanItems> {
        let mut out = Vec::new();
        let mut cursor = start.to_vec();
        loop {
            let (mut items, truncated) = self.scan(&cursor, end, 0)?;
            let last = items.last().map(|(k, _)| k.clone());
            out.append(&mut items);
            if !truncated {
                return Ok(out);
            }
            let Some(mut next) = last else {
                return Ok(out); // truncated with zero items: nothing fits; stop.
            };
            next.push(0); // byte-wise successor (PROTOCOL.md §5.4)
            cursor = next;
        }
    }

    /// Force a commit covering every previously acked write (PROTOCOL.md §5.5).
    pub fn flush(&mut self) -> Result<()> {
        match self.call(&Request::Flush, true)? {
            Response::Flush => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's STATS JSON document (PROTOCOL.md §5.6; fields in
    /// docs/OPERATIONS.md).
    pub fn stats(&mut self) -> Result<String> {
        match self.call(&Request::Stats, true)? {
            Response::Stats(json) => Ok(json),
            other => Err(unexpected(&other)),
        }
    }

    /// One-shot call: send, wait for exactly this request's reply, map error
    /// statuses, and — on a dead connection — reconnect with backoff and retry once
    /// (`retry` gates the resend; the reconnect itself always happens so the client
    /// is usable afterwards).
    fn call(&mut self, request: &Request, retry: bool) -> Result<Response> {
        match self.call_once(request) {
            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {
                self.reconnect()?;
                if !retry {
                    return Err(ClientError::Disconnected);
                }
                self.call_once(request)
            }
            other => other,
        }
    }

    fn call_once(&mut self, request: &Request) -> Result<Response> {
        let want = self.send(request)?;
        let (corr_id, response) = self.recv()?;
        if corr_id != want {
            return Err(ClientError::Protocol(format!(
                "one-shot call interleaved with pipelined replies (corr {corr_id}, want {want})"
            )));
        }
        match response {
            Response::Err { status } => Err(ClientError::Server { status }),
            ok => Ok(ok),
        }
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::Protocol(format!("response variant mismatch: {resp:?}"))
}

/// Dial with exponential backoff per [`ClientOptions`].
fn dial(addr: &str, opts: &ClientOptions) -> Result<TcpStream> {
    let mut backoff = opts.backoff_initial;
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..opts.connect_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(opts.backoff_max);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true)?; // PROTOCOL.md §1
                stream.set_read_timeout(opts.read_timeout)?;
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    match last_err {
        Some(e) => Err(ClientError::Io(e)),
        None => Err(ClientError::Disconnected),
    }
}
