//! # lss-bench — the benchmark harness that regenerates every table and figure
//!
//! One binary per experiment (see DESIGN.md §5 for the full index):
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | Table 1 — fill factor vs emptiness/cost/W_amp, analysis + MDC-opt simulation |
//! | `table2` | Table 2 — minimum cost managing hot and cold data separately + MDC-opt simulation |
//! | `fig3` | Figure 3 — breakdown analysis on hot-cold distributions |
//! | `fig4` | Figure 4 — sort-buffer size sweep |
//! | `fig5` | Figure 5 — uniform / Zipfian-0.99 / Zipfian-1.35 fill-factor sweeps |
//! | `fig6` | Figure 6 — TPC-C trace replay |
//! | `ablation` | DESIGN.md §4 design-knob ablations |
//!
//! Every binary accepts `--quick` (smaller stores, fewer writes) and `--full` (closer to
//! paper scale); the default sits in between so the whole suite finishes in minutes on a
//! laptop. Results are printed as aligned text tables and also as JSON lines prefixed
//! with `#json ` so they can be scraped into plots.
//!
//! The `benches/` directory contains Criterion micro-benchmarks for the hot paths
//! (policy victim selection, simulator throughput, store put/get, workload sampling,
//! B+-tree operations).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use lss_core::config::SeparationConfig;
use lss_core::policy::PolicyKind;
use lss_sim::{run_simulation, SimConfig, SimResult};
use lss_workload::PageWorkload;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small stores, few writes — smoke-test the harness in seconds.
    Quick,
    /// The default: large enough for stable write-amplification numbers, minutes overall.
    Default,
    /// Closer to the paper's scale (slower).
    Full,
}

impl Scale {
    /// Parse from command-line arguments (`--quick` / `--full`).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Default
        }
    }

    /// Number of physical segments for simulator experiments.
    ///
    /// The paper simulates a 100 GB store (51 200 segments), so its cleaning batch of 64
    /// touches 0.125 % of the store per cycle. These laptop-scale defaults keep that
    /// ratio small enough (≤ ~3 %) that the absolute write-amplification numbers stay
    /// close to the paper's; `--quick` trades some of that fidelity for speed.
    pub fn num_segments(self) -> usize {
        match self {
            Scale::Quick => 512,
            Scale::Default => 2048,
            Scale::Full => 8192,
        }
    }

    /// Pages per segment for simulator experiments (the paper uses 512 = 2 MiB / 4 KiB).
    pub fn pages_per_segment(self) -> usize {
        match self {
            Scale::Quick => 128,
            Scale::Default => 512,
            Scale::Full => 512,
        }
    }

    /// Measured user writes, as a multiple of the physical page count.
    pub fn writes_multiplier(self) -> u64 {
        match self {
            Scale::Quick => 8,
            Scale::Default => 12,
            Scale::Full => 40,
        }
    }
}

/// Configuration for one simulator experiment point.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Policy under test.
    pub policy: PolicyKind,
    /// Fill factor.
    pub fill_factor: f64,
    /// Separation configuration (MDC ablations).
    pub separation: SeparationConfig,
    /// Sort-buffer size in segments.
    pub sort_buffer_segments: usize,
    /// Label override (e.g. "MDC-no-sep-user"); defaults to the policy's paper name.
    pub label: Option<String>,
}

impl ExperimentPoint {
    /// A plain point for a policy at a fill factor.
    pub fn new(policy: PolicyKind, fill_factor: f64) -> Self {
        Self {
            policy,
            fill_factor,
            separation: SeparationConfig::default(),
            sort_buffer_segments: 16,
            label: None,
        }
    }

    /// Override the separation configuration.
    pub fn with_separation(mut self, sep: SeparationConfig, label: &str) -> Self {
        self.separation = sep;
        self.label = Some(label.to_string());
        self
    }

    /// Override the sort-buffer size.
    pub fn with_sort_buffer(mut self, segments: usize) -> Self {
        self.sort_buffer_segments = segments;
        self
    }

    /// The display label.
    pub fn label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| self.policy.paper_name().to_string())
    }
}

/// Build the simulator configuration for a point at a given scale.
pub fn sim_config(point: &ExperimentPoint, scale: Scale) -> SimConfig {
    let mut num_segments = scale.num_segments();
    // Very high fill factors need more absolute slack segments for the cleaning batch and
    // open segments to fit; scale the store up so slack stays comfortably above the
    // trigger (the paper's 100 GB store has thousands of slack segments at F = 0.95).
    if (1.0 - point.fill_factor) * (num_segments as f64) < 96.0 {
        num_segments = (96.0 / (1.0 - point.fill_factor)).ceil() as usize;
    }
    SimConfig {
        pages_per_segment: scale.pages_per_segment(),
        num_segments,
        fill_factor: point.fill_factor,
        policy: point.policy,
        separation: point.separation,
        sort_buffer_segments: point.sort_buffer_segments,
        cleaning: Default::default(),
        up2_mode: Default::default(),
        use_exact_frequencies: None,
        gc_temperature_classes: 1,
        seed: 42,
    }
}

/// Seed for stress/bench workloads: `LSS_STRESS_SEED` if set, else `default`.
pub fn stress_seed_or(default: u64) -> u64 {
    std::env::var("LSS_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A GC tuning recommendation: the knobs the `autotune` binary sweeps and the
/// skewed cleaner-bench phase can replay. Serialised inside `BENCH_autotune.json`
/// under `"recommended"`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GcTuning {
    /// Cleaning policy.
    pub policy: PolicyKind,
    /// GC output temperature classes (see `StoreConfig::gc_temperature_classes`).
    pub gc_temperature_classes: usize,
    /// Cold-victim ripening bar (see `CleaningConfig::cold_victim_min_emptiness`).
    pub cold_victim_min_emptiness: f64,
}

impl GcTuning {
    /// The untuned baseline: the store's defaults with temperature classes off.
    pub fn baseline(policy: PolicyKind) -> Self {
        Self {
            policy,
            gc_temperature_classes: 1,
            cold_victim_min_emptiness: 0.0,
        }
    }

    /// A short display label such as `mdc-c2-t0.50`.
    pub fn label(&self) -> String {
        format!(
            "{}-c{}-t{:.2}",
            self.policy.paper_name().to_lowercase(),
            self.gc_temperature_classes,
            self.cold_victim_min_emptiness
        )
    }
}

/// The subset of `BENCH_autotune.json` other binaries care about.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AutotuneRecommendation {
    /// The winning configuration across all workload families.
    pub recommended: GcTuning,
}

/// Load an autotune recommendation if the user pointed at one, either with
/// `--autotune-config <path>` or the `LSS_AUTOTUNE_CONFIG` env var. Returns `None`
/// when neither is set; panics (with the parse error) when a path is given but
/// unreadable, so a mis-wired CI step fails loudly instead of silently benching the
/// defaults.
pub fn load_autotune_recommendation() -> Option<GcTuning> {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .iter()
        .position(|a| a == "--autotune-config")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("LSS_AUTOTUNE_CONFIG").ok())?;
    let data = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read autotune config {path}: {e}"));
    let rec: AutotuneRecommendation = serde_json::from_str(&data)
        .unwrap_or_else(|e| panic!("cannot parse autotune config {path}: {e}"));
    Some(rec.recommended)
}

/// Run one experiment point with a freshly built workload.
///
/// `make_workload` receives the number of logical pages and must return the workload to
/// drive the run with.
pub fn run_point<F>(point: &ExperimentPoint, scale: Scale, make_workload: F) -> SimResult
where
    F: FnOnce(u64) -> Box<dyn PageWorkload>,
{
    let config = sim_config(point, scale);
    let mut workload = make_workload(config.logical_pages());
    let total = config.physical_pages() * scale.writes_multiplier();
    let warmup = total / 4;
    let mut result = run_simulation(&config, workload.as_mut(), total, warmup);
    result.policy = point.label();
    result
}

/// Print a row-aligned results table followed by machine-readable JSON lines.
pub fn print_results(title: &str, results: &[SimResult]) {
    println!("\n== {title} ==");
    println!(
        "{:<24} {:<16} {:>6} {:>10} {:>10}",
        "algorithm", "workload", "F", "Wamp", "E_clean"
    );
    for r in results {
        println!(
            "{:<24} {:<16} {:>6.2} {:>10.3} {:>10.3}",
            r.policy, r.workload, r.fill_factor, r.write_amplification, r.mean_emptiness_at_clean
        );
    }
    for r in results {
        println!("#json {}", serde_json::to_string(r).unwrap());
    }
}

/// Convenience used by several figures: run one policy over a fill-factor sweep.
pub fn sweep_fill_factors<F>(
    policy: PolicyKind,
    fills: &[f64],
    scale: Scale,
    mut make_workload: F,
) -> Vec<SimResult>
where
    F: FnMut(u64) -> Box<dyn PageWorkload>,
{
    fills
        .iter()
        .map(|&f| run_point(&ExperimentPoint::new(policy, f), scale, &mut make_workload))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_workload::UniformWorkload;

    #[test]
    fn scale_parameters_are_ordered() {
        assert!(Scale::Quick.num_segments() < Scale::Full.num_segments());
        assert!(Scale::Quick.writes_multiplier() < Scale::Full.writes_multiplier());
    }

    #[test]
    fn high_fill_factors_get_extra_segments() {
        let p = ExperimentPoint::new(PolicyKind::Greedy, 0.95);
        let c = sim_config(&p, Scale::Quick);
        assert!((1.0 - 0.95) * c.num_segments as f64 >= 95.0);
        let p = ExperimentPoint::new(PolicyKind::Greedy, 0.5);
        let c = sim_config(&p, Scale::Quick);
        assert_eq!(c.num_segments, Scale::Quick.num_segments());
    }

    #[test]
    fn run_point_produces_a_labelled_result() {
        let point = ExperimentPoint::new(PolicyKind::Greedy, 0.6)
            .with_separation(SeparationConfig::none(), "greedy-nosort")
            .with_sort_buffer(4);
        // Shrink the run drastically so this stays a unit test.
        let mut cfg = sim_config(&point, Scale::Quick);
        cfg.num_segments = 64;
        cfg.pages_per_segment = 64;
        let mut w = UniformWorkload::new(cfg.logical_pages(), 1);
        let total = cfg.physical_pages() * 4;
        let mut r = run_simulation(&cfg, &mut w, total, total / 4);
        r.policy = point.label();
        assert_eq!(r.policy, "greedy-nosort");
        assert!(r.write_amplification.is_finite());
    }
}
