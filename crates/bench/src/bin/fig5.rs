//! Regenerates **Figure 5** of the paper: write amplification vs fill factor
//! (0.5 … 0.95) for all seven cleaning algorithms under
//! (a) a uniform distribution, (b) the 80-20 Zipfian (θ = 0.99), and
//! (c) the 90-10 Zipfian (θ = 1.35).
//!
//! Usage: `fig5 [uniform|zipf99|zipf135|all] [--quick|--full]` (default: all).

use lss_bench::{print_results, run_point, ExperimentPoint, Scale};
use lss_core::policy::PolicyKind;
use lss_sim::SimResult;
use lss_workload::{PageWorkload, UniformWorkload, ZipfianWorkload};

#[derive(Clone, Copy)]
enum Dist {
    Uniform,
    Zipf099,
    Zipf135,
}

impl Dist {
    fn name(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Zipf099 => "zipfian-0.99 (80-20)",
            Dist::Zipf135 => "zipfian-1.35 (90-10)",
        }
    }

    fn workload(self, pages: u64) -> Box<dyn PageWorkload> {
        match self {
            Dist::Uniform => Box::new(UniformWorkload::new(pages, 42)),
            Dist::Zipf099 => Box::new(ZipfianWorkload::new(pages, 0.99, 42)),
            Dist::Zipf135 => Box::new(ZipfianWorkload::new(pages, 1.35, 42)),
        }
    }
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .map(String::as_str);
    let dists: Vec<Dist> = match which {
        Some("uniform") => vec![Dist::Uniform],
        Some("zipf99") => vec![Dist::Zipf099],
        Some("zipf135") => vec![Dist::Zipf135],
        _ => vec![Dist::Uniform, Dist::Zipf099, Dist::Zipf135],
    };
    let fills: Vec<f64> = match scale {
        Scale::Quick => vec![0.5, 0.7, 0.8, 0.9],
        _ => vec![0.5, 0.6, 0.7, 0.8, 0.9, 0.95],
    };

    for dist in dists {
        let mut results: Vec<SimResult> = Vec::new();
        for &fill in &fills {
            for policy in PolicyKind::PAPER_FIGURE5 {
                let point = ExperimentPoint::new(policy, fill);
                let r = run_point(&point, scale, |pages| dist.workload(pages));
                results.push(r);
            }
        }
        print_results(
            &format!(
                "Figure 5: write amplification vs fill factor — {}",
                dist.name()
            ),
            &results,
        );
    }
}
