//! Regenerates **Figure 4** of the paper: the impact of the sort-buffer size (in
//! segments) on MDC's write amplification under the 80-20 Zipfian distribution
//! (θ = 0.99) at fill factor 0.8. The paper finds 16 segments already near-optimal.

use lss_bench::{print_results, run_point, ExperimentPoint, Scale};
use lss_core::policy::PolicyKind;
use lss_workload::ZipfianWorkload;

fn main() {
    let scale = Scale::from_args();
    let fill = 0.8;
    let buffer_sizes: [usize; 7] = [0, 1, 4, 16, 64, 256, 1024];

    let mut results = Vec::new();
    for &buf in &buffer_sizes {
        let point = ExperimentPoint::new(PolicyKind::Mdc, fill).with_sort_buffer(buf);
        let mut r = run_point(&point, scale, |pages| {
            Box::new(ZipfianWorkload::new(pages, 0.99, 42))
        });
        r.policy = format!("MDC buffer={buf}");
        results.push(r);
    }
    print_results(
        "Figure 4: cleaning impact of the sort-buffer size (80-20 Zipfian, F = 0.8, MDC)",
        &results,
    );
}
