//! Regenerates **Table 1** of the paper: fill factor `F` vs the segment emptiness `E`
//! reached under age-based cleaning of a uniformly updated store, the resulting cost
//! `2/E`, the ratio `R = E/(1−F)`, the write amplification `(1−E)/E` — and the `MDC-opt`
//! column obtained by simulation, which the paper uses to show that analysis and
//! simulation agree to two significant digits (§8.1).

use lss_analysis::table1::{table1_row, PAPER_TABLE1_FILL_FACTORS};
use lss_bench::{run_point, ExperimentPoint, Scale};
use lss_core::policy::PolicyKind;
use lss_workload::UniformWorkload;

fn main() {
    let scale = Scale::from_args();
    // The simulation column is the slow part; restrict it to the fill factors the paper
    // discusses most (all of them under --full).
    let simulate: Vec<f64> = match scale {
        Scale::Full => PAPER_TABLE1_FILL_FACTORS.to_vec(),
        _ => vec![0.95, 0.90, 0.85, 0.80, 0.70, 0.60, 0.50],
    };

    println!("Table 1: fill factor vs segment emptiness when cleaned (uniform distribution)");
    println!(
        "{:>6} {:>6} {:>9} {:>11} {:>8} {:>7} {:>8}",
        "F", "1-F", "E(anal.)", "MDC-opt(sim)", "Cost", "R", "Wamp"
    );
    for &f in PAPER_TABLE1_FILL_FACTORS.iter() {
        let row = table1_row(f);
        let sim_e = if simulate.contains(&f) {
            let point = ExperimentPoint::new(PolicyKind::MdcOpt, f);
            let result = run_point(&point, scale, |pages| {
                Box::new(UniformWorkload::new(pages, 42))
            });
            format!("{:.3}", result.mean_emptiness_at_clean)
        } else {
            "-".to_string()
        };
        println!(
            "{:>6.3} {:>6.3} {:>9.3} {:>11} {:>8.2} {:>7.2} {:>8.3}",
            row.fill_factor,
            row.slack,
            row.emptiness,
            sim_e,
            row.cost,
            row.r,
            row.write_amplification
        );
    }
    println!(
        "\n(analysis: fixpoint E = 1 - e^(-E/F); simulation: MDC-opt, geometry per --quick/--full)"
    );
}
