//! Regenerates **Table 2** of the paper: the minimum cleaning cost when hot and cold data
//! are managed separately at fill factor 0.8, for the m:(1−m) distributions 90:10 … 50:50,
//! plus the costs at 60%/40% slack splits and the `MDC-opt` simulation column that
//! demonstrates MDC achieves the analytical optimum (§8.1).

use lss_analysis::hotcold::{table2, PAPER_TABLE2_SKEWS};
use lss_bench::{run_point, ExperimentPoint, Scale};
use lss_core::policy::PolicyKind;
use lss_workload::HotColdWorkload;

fn main() {
    let scale = Scale::from_args();
    let fill = 0.8;
    let rows = table2(fill);

    println!("Table 2: minimum cost managing hot and cold data separately (F = {fill})");
    println!(
        "{:>10} {:>9} {:>9} {:>9} {:>14} {:>14}",
        "Cold-Hot", "MinCost", "Hot:60%", "Hot:40%", "MDC-opt(cost)", "MDC-opt(Wamp)"
    );
    for (m, row) in PAPER_TABLE2_SKEWS.iter().zip(rows.iter()) {
        let point = ExperimentPoint::new(PolicyKind::MdcOpt, fill);
        let result = run_point(&point, scale, |pages| {
            Box::new(HotColdWorkload::from_skew_percent(pages, *m, 42))
        });
        // Convert the simulated write amplification back to the paper's cost metric:
        // Cost = 2/E = 2·(1 + Wamp).
        let sim_cost = 2.0 * (1.0 + result.write_amplification);
        println!(
            "{:>7}:{:<2} {:>9.2} {:>9.2} {:>9.2} {:>14.2} {:>14.3}",
            m,
            100 - m,
            row.min_cost,
            row.cost_hot_60,
            row.cost_hot_40,
            sim_cost,
            result.write_amplification
        );
    }
    println!("\n(MinCost/Hot:60%/Hot:40% from the slack-division analysis; MDC-opt simulated)");
}
