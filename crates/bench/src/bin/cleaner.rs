//! Cleaner scaling benchmark: reclaim throughput and foreground interference at
//! 1/2/4 concurrent cleaning cycles (`cleaner_threads`), plus an adaptive-vs-fixed
//! A/B under a ramping load.
//!
//! Two phases per thread count:
//!
//! * **reclaim** — the store is preloaded and overwritten into a live/dead
//!   checkerboard, then `cleaner_threads` threads drain all reclaimable segments with
//!   back-to-back cycles: segments reclaimed per second is the cleaner's scaling
//!   metric (cycles run on disjoint victim sets and pipeline their victim reads
//!   across `gc_read_pool` I/O workers).
//! * **interference** — 8 writer threads run a hot overwrite workload against a store
//!   whose background cleaner pool has `cleaner_threads` threads: foreground puts/s
//!   must hold up (compare BENCH_concurrency.json's put scaling) while the pool keeps
//!   up with the garbage.
//!
//! Then the **ramp** scenario drives write pressure up and down
//! (burst → idle → burst → idle) against three cleaner configurations — static 1,
//! static 4, and `CleanerMode::Adaptive` between those bounds — recording foreground
//! throughput, cycles started and the controller's concurrency-vs-time per phase: the
//! adaptive pool should match the best static setting during bursts while starting
//! measurably fewer cycles than static-max when idle.
//!
//! Finally the **skew** phases replay Zipfian-0.99 and hot-cold 90:10 overwrite
//! workloads with the GC output split into temperature classes
//! (`gc_temperature_classes` 1 vs 2 vs 4), reporting write amplification and the
//! per-class relocation/misprediction counters. An autotune recommendation
//! (`--autotune-config <path>` or `LSS_AUTOTUNE_CONFIG`) adds one more row with the
//! recommended knobs. Workload seeds honour `LSS_STRESS_SEED`.
//!
//! A final **recovery** phase times reopening the churned store two ways — through an
//! incremental checkpoint journal (bounded log-tail replay, `recovery_ms`) and with
//! the raw full-device scan (`full_scan_ms`) — so the CI gate catches a bounded
//! replay quietly degrading back into a full scan.
//!
//! Emits `BENCH_cleaner.json`. Run with:
//! `cargo run --release -p lss-bench --bin cleaner [--quick|--full]`

use lss_bench::{load_autotune_recommendation, stress_seed_or, GcTuning, Scale};
use lss_core::device::{DeviceGeometry, MemDevice, SegmentDevice};
use lss_core::policy::PolicyKind;
use lss_core::{CleanerMode, LogStore, Result, SegmentId, SharedLogStore, StoreConfig};
use lss_workload::{HotColdWorkload, PageWorkload, ZipfianWorkload};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured point: cleaner behaviour at a given pool size.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CleanerPoint {
    cleaner_threads: usize,
    /// Segments reclaimed per second while draining a fully checkerboarded store.
    reclaim_segments_per_sec: f64,
    /// Segments the reclaim phase cleaned (work-capped at 4 × num_segments).
    reclaim_segments_cleaned: u64,
    /// Pages the reclaim phase relocated.
    reclaim_pages_moved: u64,
    /// Foreground puts/s with 8 writer threads and the background pool running.
    foreground_puts_per_sec: f64,
    /// Write amplification observed during the interference phase.
    interference_write_amplification: f64,
    /// Cleaning cycles the pool ran during the interference phase.
    interference_cleaning_cycles: u64,
}

/// One phase of the ramp scenario, for one cleaner configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RampPhase {
    /// `burst-1` / `idle-1` / `burst-2` / `idle-2`.
    phase: String,
    seconds: f64,
    /// Foreground throughput during burst phases; 0 for idle phases.
    puts_per_sec: f64,
    /// Cleaning cycles *started* during the phase (empty cycles included — this is
    /// the idle-CPU metric: a parked adaptive pool starts almost none).
    cycles_started: u64,
    /// Victims processed during the phase (reclaim throughput context).
    segments_cleaned: u64,
    /// Mean of the concurrency target sampled every few ms over the phase
    /// (constant `cleaner_threads` for the fixed configurations).
    mean_target: f64,
    /// Largest sampled target.
    max_target: u64,
}

/// The ramp scenario for one cleaner configuration (concurrency-vs-time under a
/// square-wave load).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RampPoint {
    /// `fixed-1`, `fixed-4` or `adaptive-1-4`.
    mode: String,
    phases: Vec<RampPhase>,
}

/// One skewed-workload measurement at a given temperature-class configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SkewPoint {
    /// `zipfian-0.99` or `hotcold-90:10`.
    workload: String,
    /// `mdc-c1-t0.00`-style label of the knobs in effect.
    config: String,
    gc_temperature_classes: usize,
    cold_victim_min_emptiness: f64,
    foreground_puts_per_sec: f64,
    write_amplification: f64,
    cleaning_cycles: u64,
    /// GC relocations per temperature class (class 0 = coldest).
    gc_class_pages_written: Vec<u64>,
    gc_class_bytes_written: Vec<u64>,
    /// Survivors reclassified hotter/colder than the segment they were read from —
    /// the misprediction signal.
    gc_class_promotions: u64,
    gc_class_demotions: u64,
    /// Sealed segments per temperature class at the end of the run.
    gc_class_segments: Vec<u64>,
}

/// Recovery-latency measurement on the churned store image (one row, appended so the
/// CI gate's `_ms` rule catches bounded-tail replay degrading into a full scan).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RecoveryPoint {
    /// Reopen through the incremental checkpoint journal (bounded log-tail replay).
    recovery_ms: f64,
    /// Reopen with the raw full-device scan of the same image.
    full_scan_ms: f64,
    /// Post-frontier segments the journal reopen actually decoded and replayed.
    segments_replayed: u64,
    /// All sealed segments the journal reopen installed (records + tail).
    segments_sealed: u64,
    /// Live pages in the recovered store (sanity anchor for the baseline).
    live_pages: u64,
}

/// The full benchmark record written to `BENCH_cleaner.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CleanerReport {
    benchmark: String,
    policy: String,
    page_bytes: usize,
    segment_bytes: usize,
    num_segments: usize,
    write_streams: usize,
    gc_read_pool: usize,
    foreground_threads: usize,
    ops_per_thread: u64,
    results: Vec<CleanerPoint>,
    /// Adaptive-vs-fixed A/B under the ramping (burst/idle) load.
    ramp: Vec<RampPoint>,
    /// Skewed-workload W_amp at 1/2/4 temperature classes (plus autotuned, if given).
    skew: Vec<SkewPoint>,
    /// Reopen latency: checkpoint-journal replay vs raw full-device scan.
    recovery: RecoveryPoint,
}

const FOREGROUND_THREADS: usize = 8;

fn store_config(scale: Scale, cleaner_threads: usize) -> StoreConfig {
    let mut c = StoreConfig::paper_default().with_policy(PolicyKind::Mdc);
    c.segment_bytes = 256 * 1024;
    c.num_segments = match scale {
        Scale::Quick => 128,
        Scale::Default => 512,
        Scale::Full => 1024,
    };
    c.sort_buffer_segments = 4;
    c.cleaner_threads = cleaner_threads;
    c.gc_read_pool = 4;
    c.write_streams = std::env::var("LSS_WRITE_STREAMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    c
}

fn ops_per_thread(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 20_000,
        Scale::Default => 200_000,
        Scale::Full => 1_000_000,
    }
}

/// Cheap deterministic page scrambler (splitmix64 finalizer).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Preload to a 0.5 fill and overwrite a scrambled full pass so every sealed segment
/// decays into a live/dead checkerboard (the cleaner must relocate, not just free).
fn checkerboard(store: &SharedLogStore, config: &StoreConfig, payload: &[u8]) -> u64 {
    let pages = config.logical_pages_for_fill_factor(0.5) as u64;
    for p in 0..pages {
        store.put(p, payload).unwrap();
    }
    for i in 0..pages {
        store.put(mix(i) % pages, payload).unwrap();
    }
    store.flush().unwrap();
    pages
}

/// Phase 1: how fast `threads` concurrent cycles chew through reclaimable segments.
/// The metric is cleaning-machinery throughput (victims processed per second):
/// concurrent cycles may re-clean each other's partially filled outputs, so the phase
/// is bounded by a fixed work cap to keep runs comparable.
fn measure_reclaim(threads: usize, scale: Scale) -> (f64, u64, u64) {
    let config = store_config(scale, threads);
    let payload = vec![0xA5u8; config.page_bytes];
    // No background pool: the measurement threads drive the cycles themselves.
    let store = SharedLogStore::without_background_cleaner(
        LogStore::open_in_memory(config.clone()).unwrap(),
    );
    checkerboard(&store, &config, &payload);
    store.with_store(|s| s.reset_stats());

    let work_cap = 4 * config.num_segments as u64;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let store = store.clone();
            scope.spawn(move || {
                // Drain until the work cap, or until cycles run dry (claims make
                // empty results possible while peers still hold victims, so require
                // two consecutive empty cycles before giving up).
                let mut dry = 0;
                while dry < 2 && store.stats().segments_cleaned < work_cap {
                    match store.clean_now() {
                        Ok(report) if report.segments_freed() == 0 => dry += 1,
                        Ok(_) => dry = 0,
                        Err(_) => break,
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let stats = store.stats();
    (
        stats.segments_cleaned as f64 / elapsed,
        stats.segments_cleaned,
        stats.gc_pages_written,
    )
}

/// Phase 2: foreground put throughput with the background pool of `threads` cleaners.
fn measure_interference(threads: usize, scale: Scale) -> (f64, f64, u64) {
    let config = store_config(scale, threads);
    let payload = vec![0xA5u8; config.page_bytes];
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());
    let pages = checkerboard(&store, &config, &payload);
    store.with_store(|s| s.reset_stats());

    let ops = ops_per_thread(scale);
    let start = Instant::now();
    let total = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..FOREGROUND_THREADS {
            let store = store.clone();
            let payload = &payload;
            let total = Arc::clone(&total);
            scope.spawn(move || {
                for i in 0..ops {
                    let page = mix(t as u64 * ops + i) % pages;
                    store.put(page, payload).unwrap();
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
    });
    let puts_per_sec = total.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64();
    let stats = store.stats();
    (
        puts_per_sec,
        stats.write_amplification(),
        stats.cleaning_cycles,
    )
}

/// Build the per-thread skewed workload: same hot set across threads (both families
/// key hotness off the page id alone), thread-distinct RNG streams.
fn skew_workload(kind: &str, pages: u64, seed: u64) -> Box<dyn PageWorkload + Send> {
    match kind {
        "zipfian-0.99" => Box::new(ZipfianWorkload::new(pages, 0.99, seed)),
        "hotcold-90:10" => Box::new(HotColdWorkload::from_skew_percent(pages, 90, seed)),
        other => panic!("unknown skew workload {other}"),
    }
}

/// Fill factor for the skew phase. 0.75 sits in the band where cleaning pressure is
/// high enough for placement to matter but victim selection still has real choices —
/// the temperature-class separation shows its stable ~25% hot-cold W_amp win here,
/// with run-to-run noise well below the effect size.
const SKEW_FILL: f64 = 0.75;

/// The skew phase runs twice the scaling-phase op count: W_amp needs the store to
/// reach cleaning steady state before the ratio stabilises.
fn skew_ops_per_thread(scale: Scale) -> u64 {
    2 * ops_per_thread(scale)
}

/// Skew phase: preload to a `SKEW_FILL` fill, then 8 writer threads replay a skewed
/// overwrite workload against a store whose GC output is split into
/// `tuning.gc_temperature_classes` streams. W_amp is the headline number; the
/// per-class counters show where survivors went and how often they were
/// reclassified.
fn measure_skew(kind: &str, tuning: &GcTuning, scale: Scale, seed: u64) -> SkewPoint {
    let mut config = store_config(scale, 1)
        .with_policy(tuning.policy)
        .with_gc_temperature_classes(tuning.gc_temperature_classes);
    config.cleaning.cold_victim_min_emptiness = tuning.cold_victim_min_emptiness;
    let payload = vec![0xA5u8; config.page_bytes];
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());
    let pages = config.logical_pages_for_fill_factor(SKEW_FILL) as u64;
    for p in 0..pages {
        store.put(p, &payload).unwrap();
    }
    store.flush().unwrap();
    store.with_store(|s| s.reset_stats());

    let ops = skew_ops_per_thread(scale);
    let start = Instant::now();
    let total = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..FOREGROUND_THREADS {
            let store = store.clone();
            let payload = &payload;
            let total = Arc::clone(&total);
            let mut workload = skew_workload(kind, pages, seed.wrapping_add(t as u64));
            scope.spawn(move || {
                for _ in 0..ops {
                    store.put(workload.next_page(), payload).unwrap();
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
    });
    let puts_per_sec = total.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64();
    let stats = store.stats();
    SkewPoint {
        workload: kind.to_string(),
        config: tuning.label(),
        gc_temperature_classes: tuning.gc_temperature_classes,
        cold_victim_min_emptiness: tuning.cold_victim_min_emptiness,
        foreground_puts_per_sec: puts_per_sec,
        write_amplification: stats.write_amplification(),
        cleaning_cycles: stats.cleaning_cycles,
        gc_class_pages_written: stats.gc_class_pages_written,
        gc_class_bytes_written: stats.gc_class_bytes_written,
        gc_class_promotions: stats.gc_class_promotions,
        gc_class_demotions: stats.gc_class_demotions,
        gc_class_segments: stats.gc_class_segments,
    }
}

/// Sample the store's published cycle target every few milliseconds while `f` runs,
/// returning `(result of f, mean target, max target)`.
fn with_target_sampler<R>(store: &SharedLogStore, f: impl FnOnce() -> R) -> (R, f64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let store = store.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let (mut sum, mut n, mut max) = (0u64, 0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                let t = store.with_store(|s| s.gc_target_cycles()) as u64;
                sum += t;
                n += 1;
                max = max.max(t);
                std::thread::sleep(Duration::from_millis(3));
            }
            (sum, n, max)
        })
    };
    let out = f();
    stop.store(true, Ordering::Relaxed);
    let (sum, n, max) = sampler.join().unwrap();
    (out, sum as f64 / n.max(1) as f64, max)
}

/// The ramp scenario: burst → idle → burst → idle against one cleaner
/// configuration, recording per-phase foreground throughput, cycles started and the
/// sampled concurrency target.
fn measure_ramp(label: &str, mode: CleanerMode, threads: usize, scale: Scale) -> RampPoint {
    let mut config = store_config(scale, threads);
    config.cleaner_mode = mode;
    let payload = vec![0xA5u8; config.page_bytes];
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());
    let pages = checkerboard(&store, &config, &payload);
    store.with_store(|s| s.reset_stats());

    let burst_ops = ops_per_thread(scale) / 2;
    // The "idle" phase is a single-writer trickle that dips the free pool *just*
    // below the cleaning trigger a few times and then backs off: the lightest load
    // that still kicks the pools. A static-max pool answers every kick by waking all
    // of its threads (each starting a cycle); a narrowed adaptive pool answers with
    // one or two — the *cycles started while nearly idle* are the idle-CPU metric.
    let trickle_dips = 6u32;
    let mut phases = Vec::new();
    for round in 1..=2u32 {
        for (name, burst) in [
            (format!("burst-{round}"), true),
            (format!("idle-{round}"), false),
        ] {
            let before = store.stats();
            let start = Instant::now();
            let (puts, mean_target, max_target) = with_target_sampler(&store, || {
                if !burst {
                    let trigger = config.cleaning.trigger_free_segments;
                    let mut i = 0u64;
                    for _ in 0..trickle_dips {
                        while store.with_store(|s| s.free_segments()) >= trigger {
                            let page = mix(0xFEED_0000 + i) % pages;
                            store.put(page, &payload).unwrap();
                            i += 1;
                            if i.is_multiple_of(16) {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                        }
                        std::thread::sleep(Duration::from_millis(40));
                    }
                    return 0u64;
                }
                let total = Arc::new(AtomicU64::new(0));
                std::thread::scope(|scope| {
                    for t in 0..FOREGROUND_THREADS {
                        let store = store.clone();
                        let payload = &payload;
                        let total = Arc::clone(&total);
                        scope.spawn(move || {
                            for i in 0..burst_ops {
                                let page = mix(t as u64 * burst_ops + i) % pages;
                                store.put(page, payload).unwrap();
                            }
                            total.fetch_add(burst_ops, Ordering::Relaxed);
                        });
                    }
                });
                total.load(Ordering::Relaxed)
            });
            let seconds = start.elapsed().as_secs_f64();
            let after = store.stats();
            phases.push(RampPhase {
                phase: name,
                seconds,
                puts_per_sec: if burst { puts as f64 / seconds } else { 0.0 },
                cycles_started: after.cleaning_cycles - before.cleaning_cycles,
                segments_cleaned: after.segments_cleaned - before.segments_cleaned,
                mean_target,
                max_target,
            });
        }
    }
    RampPoint {
        mode: label.to_string(),
        phases,
    }
}

/// Cloneable handle over one `MemDevice`, so the same churned image can be
/// reopened twice (journal replay, then raw scan) after the store is dropped.
#[derive(Clone)]
struct SharedDevice(Arc<MemDevice>);

impl SegmentDevice for SharedDevice {
    fn geometry(&self) -> DeviceGeometry {
        self.0.geometry()
    }
    fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>> {
        self.0.read_segment(seg)
    }
    fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>> {
        self.0.read_range(seg, offset, len)
    }
    fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()> {
        self.0.write_segment(seg, image)
    }
    fn erase_segment(&self, seg: SegmentId) -> Result<()> {
        self.0.erase_segment(seg)
    }
    fn sync(&self) -> Result<()> {
        self.0.sync()
    }
    fn segment_writes(&self) -> u64 {
        self.0.segment_writes()
    }
}

/// Recovery phase: churn a store (checkerboard + delete stripe + a couple of
/// cleaning rounds), checkpoint it, append a small log tail, then time the two
/// reopen paths against the identical device image. No cleaning happens after the
/// checkpoint, so both reopens must land on the same live-page count — asserted,
/// since a silently inexact reopen would make the latency numbers meaningless.
fn measure_recovery(scale: Scale) -> RecoveryPoint {
    let config = store_config(scale, 2);
    let payload = vec![0xA5u8; config.page_bytes];
    let device = SharedDevice(Arc::new(MemDevice::new(
        config.segment_bytes,
        config.num_segments,
    )));
    let journal = std::env::temp_dir().join(format!(
        "lss-bench-cleaner-recovery-{}.ckpt",
        std::process::id()
    ));
    let store = SharedLogStore::without_background_cleaner(
        LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap(),
    );
    let pages = checkerboard(&store, &config, &payload);
    for p in (0..pages).step_by(7) {
        store.delete(p).unwrap();
    }
    store.flush().unwrap();
    for _ in 0..2 {
        store.clean_now().unwrap();
    }
    store.with_store(|s| s.checkpoint_log_to(&journal)).unwrap();
    // Post-checkpoint tail: the bounded replay the journal reopen has to do.
    for i in 0..pages / 20 {
        store.put(mix(0xDEAD_0000 + i) % pages, &payload).unwrap();
    }
    store.flush().unwrap();
    let live = store.live_pages() as u64;
    drop(store);

    let start = Instant::now();
    let (recovered, report) = lss_core::recovery::recover_from_checkpoint_with_report(
        config.clone(),
        Box::new(device.clone()),
        &journal,
    )
    .unwrap();
    let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        recovered.live_pages() as u64,
        live,
        "journal reopen diverged from the pre-crash store"
    );
    drop(recovered);

    let start = Instant::now();
    let scanned = LogStore::recover_with_device(config, Box::new(device)).unwrap();
    let full_scan_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        scanned.live_pages() as u64,
        live,
        "raw scan diverged from the pre-crash store"
    );
    drop(scanned);
    let _ = std::fs::remove_file(&journal);

    RecoveryPoint {
        recovery_ms,
        full_scan_ms,
        segments_replayed: report.replayed_segments as u64,
        segments_sealed: report.sealed_segments as u64,
        live_pages: live,
    }
}

fn main() {
    let scale = Scale::from_args();
    let config = store_config(scale, 1);
    println!(
        "cleaner scaling: MDC, {} x {} KiB segments, {} write streams, gc_read_pool {}, {} ops/thread",
        config.num_segments,
        config.segment_bytes / 1024,
        config.write_streams,
        config.gc_read_pool,
        ops_per_thread(scale)
    );
    println!(
        "{:>8} {:>16} {:>10} {:>12} {:>14} {:>8} {:>10}",
        "cleaners", "reclaim seg/s", "segments", "pages", "fg puts/s", "Wamp", "cycles"
    );

    let mut results = Vec::new();
    for threads in [1usize, 2, 4] {
        let (reclaim_rate, cleaned, moved) = measure_reclaim(threads, scale);
        let (puts, wamp, cycles) = measure_interference(threads, scale);
        println!(
            "{:>8} {:>16.1} {:>10} {:>12} {:>14.0} {:>8.3} {:>10}",
            threads, reclaim_rate, cleaned, moved, puts, wamp, cycles
        );
        results.push(CleanerPoint {
            cleaner_threads: threads,
            reclaim_segments_per_sec: reclaim_rate,
            reclaim_segments_cleaned: cleaned,
            reclaim_pages_moved: moved,
            foreground_puts_per_sec: puts,
            interference_write_amplification: wamp,
            interference_cleaning_cycles: cycles,
        });
    }

    println!(
        "\nramp scenario (burst/idle square wave, {} ops/thread per burst):",
        ops_per_thread(scale) / 2
    );
    println!(
        "{:>14} {:>8} {:>14} {:>10} {:>10} {:>12} {:>10}",
        "mode", "phase", "fg puts/s", "cycles", "segments", "mean tgt", "max tgt"
    );
    let mut ramp = Vec::new();
    for (label, mode, threads) in [
        ("fixed-1", CleanerMode::Fixed, 1usize),
        ("fixed-4", CleanerMode::Fixed, 4),
        ("adaptive-1-4", CleanerMode::adaptive(1, 4), 4),
    ] {
        let point = measure_ramp(label, mode, threads, scale);
        for p in &point.phases {
            println!(
                "{:>14} {:>8} {:>14.0} {:>10} {:>10} {:>12.2} {:>10}",
                point.mode,
                p.phase,
                p.puts_per_sec,
                p.cycles_started,
                p.segments_cleaned,
                p.mean_target,
                p.max_target
            );
        }
        ramp.push(point);
    }

    let seed = stress_seed_or(0x5EED_C0DE);
    println!("\nskew phases (8 writers, fill {SKEW_FILL}, seed {seed:#x}):");
    println!(
        "{:>14} {:>16} {:>14} {:>8} {:>8} {:>10} {:>8} {:>8}",
        "workload", "config", "fg puts/s", "Wamp", "cycles", "class mix", "promo", "demo"
    );
    let mut tunings: Vec<GcTuning> = [1usize, 2, 4]
        .iter()
        .map(|&classes| GcTuning {
            policy: PolicyKind::Mdc,
            gc_temperature_classes: classes,
            cold_victim_min_emptiness: if classes == 2 {
                // The autotune sweep's winner for two classes; c4 keeps the stricter
                // bar to show the classification-noise regime (see BENCHMARKS.md).
                0.5
            } else if classes > 1 {
                0.75
            } else {
                0.0
            },
        })
        .collect();
    if let Some(rec) = load_autotune_recommendation() {
        println!("(adding autotuned row: {})", rec.label());
        tunings.push(rec);
    }
    let mut skew = Vec::new();
    for kind in ["zipfian-0.99", "hotcold-90:10"] {
        for tuning in &tunings {
            let p = measure_skew(kind, tuning, scale, seed);
            let mix: Vec<String> = p
                .gc_class_pages_written
                .iter()
                .map(|n| n.to_string())
                .collect();
            println!(
                "{:>14} {:>16} {:>14.0} {:>8.3} {:>8} {:>10} {:>8} {:>8}",
                p.workload,
                p.config,
                p.foreground_puts_per_sec,
                p.write_amplification,
                p.cleaning_cycles,
                mix.join("/"),
                p.gc_class_promotions,
                p.gc_class_demotions
            );
            skew.push(p);
        }
    }

    println!("\nrecovery phase (journal replay vs raw full scan):");
    let recovery = measure_recovery(scale);
    println!(
        "  journal reopen {:.2} ms ({} of {} sealed segments replayed, {} live pages); raw scan {:.2} ms",
        recovery.recovery_ms,
        recovery.segments_replayed,
        recovery.segments_sealed,
        recovery.live_pages,
        recovery.full_scan_ms
    );

    let report = CleanerReport {
        benchmark: "cleaner_scaling".to_string(),
        policy: "MDC".to_string(),
        page_bytes: config.page_bytes,
        segment_bytes: config.segment_bytes,
        num_segments: config.num_segments,
        write_streams: config.write_streams,
        gc_read_pool: config.gc_read_pool,
        foreground_threads: FOREGROUND_THREADS,
        ops_per_thread: ops_per_thread(scale),
        results,
        ramp,
        skew,
        recovery,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_cleaner.json", &json).unwrap();
    println!("#json {}", serde_json::to_string(&report).unwrap());
    println!("wrote BENCH_cleaner.json");
}
