//! Cleaner scaling benchmark: reclaim throughput and foreground interference at
//! 1/2/4 concurrent cleaning cycles (`cleaner_threads`).
//!
//! Two phases per thread count:
//!
//! * **reclaim** — the store is preloaded and overwritten into a live/dead
//!   checkerboard, then `cleaner_threads` threads drain all reclaimable segments with
//!   back-to-back cycles: segments reclaimed per second is the cleaner's scaling
//!   metric (cycles run on disjoint victim sets and pipeline their victim reads
//!   across `gc_read_pool` I/O workers).
//! * **interference** — 8 writer threads run a hot overwrite workload against a store
//!   whose background cleaner pool has `cleaner_threads` threads: foreground puts/s
//!   must hold up (compare BENCH_concurrency.json's put scaling) while the pool keeps
//!   up with the garbage.
//!
//! Emits `BENCH_cleaner.json`. Run with:
//! `cargo run --release -p lss-bench --bin cleaner [--quick|--full]`

use lss_bench::Scale;
use lss_core::policy::PolicyKind;
use lss_core::{LogStore, SharedLogStore, StoreConfig};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One measured point: cleaner behaviour at a given pool size.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CleanerPoint {
    cleaner_threads: usize,
    /// Segments reclaimed per second while draining a fully checkerboarded store.
    reclaim_segments_per_sec: f64,
    /// Segments the reclaim phase cleaned (work-capped at 4 × num_segments).
    reclaim_segments_cleaned: u64,
    /// Pages the reclaim phase relocated.
    reclaim_pages_moved: u64,
    /// Foreground puts/s with 8 writer threads and the background pool running.
    foreground_puts_per_sec: f64,
    /// Write amplification observed during the interference phase.
    interference_write_amplification: f64,
    /// Cleaning cycles the pool ran during the interference phase.
    interference_cleaning_cycles: u64,
}

/// The full benchmark record written to `BENCH_cleaner.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CleanerReport {
    benchmark: String,
    policy: String,
    page_bytes: usize,
    segment_bytes: usize,
    num_segments: usize,
    write_streams: usize,
    gc_read_pool: usize,
    foreground_threads: usize,
    ops_per_thread: u64,
    results: Vec<CleanerPoint>,
}

const FOREGROUND_THREADS: usize = 8;

fn store_config(scale: Scale, cleaner_threads: usize) -> StoreConfig {
    let mut c = StoreConfig::paper_default().with_policy(PolicyKind::Mdc);
    c.segment_bytes = 256 * 1024;
    c.num_segments = match scale {
        Scale::Quick => 128,
        Scale::Default => 512,
        Scale::Full => 1024,
    };
    c.sort_buffer_segments = 4;
    c.cleaner_threads = cleaner_threads;
    c.gc_read_pool = 4;
    c.write_streams = std::env::var("LSS_WRITE_STREAMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    c
}

fn ops_per_thread(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 20_000,
        Scale::Default => 200_000,
        Scale::Full => 1_000_000,
    }
}

/// Cheap deterministic page scrambler (splitmix64 finalizer).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Preload to a 0.5 fill and overwrite a scrambled full pass so every sealed segment
/// decays into a live/dead checkerboard (the cleaner must relocate, not just free).
fn checkerboard(store: &SharedLogStore, config: &StoreConfig, payload: &[u8]) -> u64 {
    let pages = config.logical_pages_for_fill_factor(0.5) as u64;
    for p in 0..pages {
        store.put(p, payload).unwrap();
    }
    for i in 0..pages {
        store.put(mix(i) % pages, payload).unwrap();
    }
    store.flush().unwrap();
    pages
}

/// Phase 1: how fast `threads` concurrent cycles chew through reclaimable segments.
/// The metric is cleaning-machinery throughput (victims processed per second):
/// concurrent cycles may re-clean each other's partially filled outputs, so the phase
/// is bounded by a fixed work cap to keep runs comparable.
fn measure_reclaim(threads: usize, scale: Scale) -> (f64, u64, u64) {
    let config = store_config(scale, threads);
    let payload = vec![0xA5u8; config.page_bytes];
    // No background pool: the measurement threads drive the cycles themselves.
    let store = SharedLogStore::without_background_cleaner(
        LogStore::open_in_memory(config.clone()).unwrap(),
    );
    checkerboard(&store, &config, &payload);
    store.with_store(|s| s.reset_stats());

    let work_cap = 4 * config.num_segments as u64;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let store = store.clone();
            scope.spawn(move || {
                // Drain until the work cap, or until cycles run dry (claims make
                // empty results possible while peers still hold victims, so require
                // two consecutive empty cycles before giving up).
                let mut dry = 0;
                while dry < 2 && store.stats().segments_cleaned < work_cap {
                    match store.clean_now() {
                        Ok(report) if report.segments_freed() == 0 => dry += 1,
                        Ok(_) => dry = 0,
                        Err(_) => break,
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let stats = store.stats();
    (
        stats.segments_cleaned as f64 / elapsed,
        stats.segments_cleaned,
        stats.gc_pages_written,
    )
}

/// Phase 2: foreground put throughput with the background pool of `threads` cleaners.
fn measure_interference(threads: usize, scale: Scale) -> (f64, f64, u64) {
    let config = store_config(scale, threads);
    let payload = vec![0xA5u8; config.page_bytes];
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());
    let pages = checkerboard(&store, &config, &payload);
    store.with_store(|s| s.reset_stats());

    let ops = ops_per_thread(scale);
    let start = Instant::now();
    let total = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..FOREGROUND_THREADS {
            let store = store.clone();
            let payload = &payload;
            let total = Arc::clone(&total);
            scope.spawn(move || {
                for i in 0..ops {
                    let page = mix(t as u64 * ops + i) % pages;
                    store.put(page, payload).unwrap();
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
    });
    let puts_per_sec = total.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64();
    let stats = store.stats();
    (
        puts_per_sec,
        stats.write_amplification(),
        stats.cleaning_cycles,
    )
}

fn main() {
    let scale = Scale::from_args();
    let config = store_config(scale, 1);
    println!(
        "cleaner scaling: MDC, {} x {} KiB segments, {} write streams, gc_read_pool {}, {} ops/thread",
        config.num_segments,
        config.segment_bytes / 1024,
        config.write_streams,
        config.gc_read_pool,
        ops_per_thread(scale)
    );
    println!(
        "{:>8} {:>16} {:>10} {:>12} {:>14} {:>8} {:>10}",
        "cleaners", "reclaim seg/s", "segments", "pages", "fg puts/s", "Wamp", "cycles"
    );

    let mut results = Vec::new();
    for threads in [1usize, 2, 4] {
        let (reclaim_rate, cleaned, moved) = measure_reclaim(threads, scale);
        let (puts, wamp, cycles) = measure_interference(threads, scale);
        println!(
            "{:>8} {:>16.1} {:>10} {:>12} {:>14.0} {:>8.3} {:>10}",
            threads, reclaim_rate, cleaned, moved, puts, wamp, cycles
        );
        results.push(CleanerPoint {
            cleaner_threads: threads,
            reclaim_segments_per_sec: reclaim_rate,
            reclaim_segments_cleaned: cleaned,
            reclaim_pages_moved: moved,
            foreground_puts_per_sec: puts,
            interference_write_amplification: wamp,
            interference_cleaning_cycles: cycles,
        });
    }

    let report = CleanerReport {
        benchmark: "cleaner_scaling".to_string(),
        policy: "MDC".to_string(),
        page_bytes: config.page_bytes,
        segment_bytes: config.segment_bytes,
        num_segments: config.num_segments,
        write_streams: config.write_streams,
        gc_read_pool: config.gc_read_pool,
        foreground_threads: FOREGROUND_THREADS,
        ops_per_thread: ops_per_thread(scale),
        results,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_cleaner.json", &json).unwrap();
    println!("#json {}", serde_json::to_string(&report).unwrap());
    println!("wrote BENCH_cleaner.json");
}
