//! Network front-end benchmark: ops/s and request latency through `lss-server`'s
//! TCP protocol, across a grid of client connections × pipelining depth.
//!
//! The point of the grid is the interaction of the two batching effects the server
//! stacks (docs/PROTOCOL.md §7): durable PUTs from concurrent connections share one
//! superblock flip through the KV layer's group-commit window, and replies to a
//! pipelined window share one socket flush. Depth 1 pays full network round-trip
//! and commit latency per op; at depth 8 both costs amortise — the acceptance bar
//! for this benchmark is durable-PUT throughput at 4 connections × depth 8 being
//! at least 2× the depth-1 figure.
//!
//! Environment:
//! * `LSS_KV_GROUP_COMMIT_US` — group-commit window (default 200 µs here);
//! * `LSS_SERVER_THREADS` — executor workers (default: auto).
//!
//! Emits `BENCH_server.json`. Run with:
//! `cargo run --release -p lss-bench --bin kv_server [--quick|--full]`

use lss_bench::Scale;
use lss_btree::kv::{KvOptions, KvStore};
use lss_client::{Client, ClientOptions};
use lss_core::policy::PolicyKind;
use lss_core::util::mix64 as mix;
use lss_core::{LogStore, StoreConfig};
use lss_server::protocol::{Request, Response};
use lss_server::{Server, ServerConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured point: a request mode at (connections, pipelining depth).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServerPoint {
    /// `"durable-put"` or `"get"`.
    mode: String,
    /// Client connections, each driven by its own thread.
    threads: usize,
    /// `"depth<N>"` — the pipelining window, encoded here so the bench gate's
    /// identity keys (which include `phase`, not `depth`) keep rows distinct.
    phase: String,
    depth: usize,
    ops_per_sec: f64,
    /// Per-request latency from send to matched reply (PROTOCOL.md §7 correlation).
    p50_ms: f64,
    p99_ms: f64,
    total_ops: u64,
    /// Superblock flips during the run (durable-put mode; 0 for gets).
    flips: u64,
    /// Durable acks amortised per flip — the group-commit batching factor.
    ops_per_flip: f64,
}

/// The full benchmark record written to `BENCH_server.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServerReport {
    benchmark: String,
    policy: String,
    group_commit_window_us: u64,
    server_threads: usize,
    value_bytes: usize,
    ops_per_connection: u64,
    results: Vec<ServerPoint>,
}

const VALUE_BYTES: usize = 128;

fn ops_per_connection(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 4_000,
        Scale::Default => 20_000,
        Scale::Full => 60_000,
    }
}

fn grid(scale: Scale) -> (Vec<usize>, Vec<usize>) {
    match scale {
        // Quick keeps exactly the acceptance grid: 4 connections at depths 1 and 8,
        // plus the single-connection baseline.
        Scale::Quick => (vec![1, 4], vec![1, 8]),
        Scale::Default => (vec![1, 4, 8], vec![1, 4, 8, 16]),
        Scale::Full => (vec![1, 2, 4, 8, 16], vec![1, 4, 8, 16, 32]),
    }
}

fn key(conn: usize, i: u64) -> Vec<u8> {
    format!("srv:c{conn}:k{i:07}").into_bytes()
}

/// Drive one connection: `ops` pipelined requests at `depth`, returning each
/// request's send→reply latency.
fn drive(
    addr: &str,
    conn: usize,
    ops: u64,
    depth: usize,
    gets: bool,
    preload_keys: u64,
) -> Vec<Duration> {
    let mut client = Client::connect_with(addr, ClientOptions::default()).unwrap();
    let value = vec![0x5Au8; VALUE_BYTES];
    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let mut latencies = Vec::with_capacity(ops as usize);
    let mut reap = |client: &mut Client, sent_at: &mut HashMap<u64, Instant>| {
        let (corr, reply) = client.recv().unwrap();
        match reply {
            Response::Put | Response::Get(_) => {}
            other => panic!("unexpected reply {other:?}"),
        }
        latencies.push(sent_at.remove(&corr).unwrap().elapsed());
    };
    for n in 0..ops {
        while sent_at.len() >= depth {
            reap(&mut client, &mut sent_at);
        }
        let request = if gets {
            Request::Get {
                key: key(conn, mix(conn as u64 * ops + n) % preload_keys),
            }
        } else {
            Request::Put {
                key: key(conn, n),
                value: value.clone(),
                durable: true,
            }
        };
        let at = Instant::now();
        let corr = client.send(&request).unwrap();
        sent_at.insert(corr, at);
    }
    while !sent_at.is_empty() {
        reap(&mut client, &mut sent_at);
    }
    latencies
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let at = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[at].as_secs_f64() * 1e3
}

fn measure(
    connections: usize,
    depth: usize,
    gets: bool,
    scale: Scale,
    group_commit_us: u64,
) -> ServerPoint {
    let mut config = StoreConfig::paper_default().with_policy(PolicyKind::Mdc);
    config.segment_bytes = 256 * 1024;
    config.num_segments = 512;
    config.page_bytes = 1024;
    let store = LogStore::open_in_memory(config).unwrap();
    let kv = Arc::new(
        KvStore::open_with(
            store,
            KvOptions {
                pool_pages: 2048,
                tree_page_bytes: None,
                group_commit_window_us: group_commit_us,
            },
        )
        .unwrap(),
    );
    // Size the executor to the offered concurrency (connections × depth): group
    // commit can only batch PUTs that are *in* their flush window simultaneously,
    // so fewer workers than in-flight requests caps ops/flip at the worker count.
    // LSS_SERVER_THREADS still overrides (applied last).
    let server_config = ServerConfig {
        server_threads: (connections * depth).clamp(2, 32),
        ..ServerConfig::default()
    }
    .with_env_overrides();
    let server = Server::start(Arc::clone(&kv), "127.0.0.1:0", server_config).unwrap();
    let addr = server.local_addr().to_string();

    let ops = ops_per_connection(scale);
    // The get mode reads a preloaded population instead of its own writes.
    let preload_keys = if gets { ops.min(10_000) } else { 0 };
    if gets {
        let value = vec![0x5Au8; VALUE_BYTES];
        for conn in 0..connections {
            for i in 0..preload_keys {
                kv.put(&key(conn, i), &value).unwrap();
            }
        }
        kv.flush().unwrap();
    }

    let flips_before = kv.stats().superblock_commits;
    let start = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|conn| {
            let addr = addr.clone();
            std::thread::spawn(move || drive(&addr, conn, ops, depth, gets, preload_keys.max(1)))
        })
        .collect();
    let mut latencies: Vec<Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    let flips = if gets {
        0
    } else {
        kv.stats().superblock_commits - flips_before
    };
    server.shutdown();

    latencies.sort_unstable();
    let total_ops = ops * connections as u64;
    ServerPoint {
        mode: if gets { "get" } else { "durable-put" }.to_string(),
        threads: connections,
        phase: format!("depth{depth}"),
        depth,
        ops_per_sec: total_ops as f64 / elapsed,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        total_ops,
        flips,
        ops_per_flip: if flips == 0 {
            0.0
        } else {
            total_ops as f64 / flips as f64
        },
    }
}

fn main() {
    let scale = Scale::from_args();
    let group_commit_us = std::env::var("LSS_KV_GROUP_COMMIT_US")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let server_threads = ServerConfig::default()
        .with_env_overrides()
        .effective_threads();
    let (conn_grid, depth_grid) = grid(scale);
    println!(
        "kv_server: {} worker threads, group-commit window {} us, {} B values, {} ops/connection",
        server_threads,
        group_commit_us,
        VALUE_BYTES,
        ops_per_connection(scale)
    );
    println!(
        "{:>12} {:>6} {:>7} {:>12} {:>9} {:>9} {:>8} {:>10}",
        "mode", "conns", "depth", "ops/s", "p50 ms", "p99 ms", "flips", "ops/flip"
    );

    let mut results = Vec::new();
    for gets in [false, true] {
        for &connections in &conn_grid {
            for &depth in &depth_grid {
                let point = measure(connections, depth, gets, scale, group_commit_us);
                println!(
                    "{:>12} {:>6} {:>7} {:>12.0} {:>9.3} {:>9.3} {:>8} {:>10.1}",
                    point.mode,
                    point.threads,
                    point.depth,
                    point.ops_per_sec,
                    point.p50_ms,
                    point.p99_ms,
                    point.flips,
                    point.ops_per_flip
                );
                results.push(point);
            }
        }
    }

    // The headline claim (also the CI acceptance bar): pipelining pays. At 4
    // connections, depth 8 must at least double depth-1 durable-PUT throughput.
    let rate = |depth: usize| {
        results
            .iter()
            .find(|p| p.mode == "durable-put" && p.threads == 4 && p.depth == depth)
            .map(|p| p.ops_per_sec)
    };
    if let (Some(d1), Some(d8)) = (rate(1), rate(8)) {
        println!(
            "pipelining speedup at 4 connections: depth8/depth1 = {:.2}x",
            d8 / d1
        );
    }

    let report = ServerReport {
        benchmark: "kv_server".to_string(),
        policy: "MDC".to_string(),
        group_commit_window_us: group_commit_us,
        server_threads,
        value_bytes: VALUE_BYTES,
        ops_per_connection: ops_per_connection(scale),
        results,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_server.json", &json).unwrap();
    println!("#json {}", serde_json::to_string(&report).unwrap());
    println!("wrote BENCH_server.json");
}
