//! KV-layer benchmark: multi-threaded ops/s and **index write amplification** for the
//! paged B+-tree index vs the legacy JSON index, at 1/2/4/8 threads.
//!
//! Each measured point preloads a key population, then runs a mixed workload
//! (50% get / 40% put / 10% delete+reinsert) from N threads on disjoint key ranges,
//! committing the index every `ops/8` operations per thread 0 — the checkpoint cadence
//! is what exposes the index formats' very different persistence costs: the paged
//! index writes only dirty tree pages (plus their root path), the JSON format rewrites
//! every chunk on every flush.
//!
//! Environment:
//! * `LSS_KV_INDEX=paged|json` restricts the run to one format (default: both);
//! * `LSS_WRITE_STREAMS` overrides the store's write-stream count (default 8);
//! * `LSS_KV_GROUP_COMMIT_US` sets the paged store's group-commit window in
//!   microseconds (default 0 = per-call commit).
//!
//! Emits `BENCH_kv.json`. Run with:
//! `cargo run --release -p lss-bench --bin kv [--quick|--full]`

use lss_bench::Scale;
use lss_btree::kv::{KvOptions, KvStats, KvStore};
use lss_btree::LegacyJsonKvStore;
use lss_core::policy::PolicyKind;
use lss_core::util::mix64 as mix;
use lss_core::{LogStore, StoreConfig};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One measured point: a format at a thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KvPoint {
    /// `"paged"` or `"json"`.
    format: String,
    threads: usize,
    /// Mixed workload (50% get / 40% put / 10% delete+reinsert, with periodic
    /// commits) throughput.
    ops_per_sec: f64,
    /// Pure point-read throughput at the same thread count (read-latch scaling).
    get_ops_per_sec: f64,
    total_ops: u64,
    /// Index bytes written per user value byte written.
    index_write_amplification: f64,
    index_pages_written: u64,
    index_bytes_written: u64,
    value_bytes_written: u64,
    /// Index commits (superblock flips / JSON index flushes) during the run.
    index_commits: u64,
    /// Buffer-pool hit ratio for the paged index (0 for JSON — it has no pool).
    pool_hit_ratio: f64,
    /// Store-level write amplification (GC pages per user page) during the run.
    store_write_amplification: f64,
    /// Optimistic-read restarts in the index tree during the run (0 for JSON).
    index_read_restarts: u64,
    /// Writer restarts (failed validations/locks) in the index tree (0 for JSON).
    index_write_restarts: u64,
    /// Mean version locks per index mutation (crab depth; 0 for JSON).
    index_avg_crab_depth: f64,
    /// Mean flush calls absorbed per superblock flip (group-commit batch size;
    /// 1.0 = no batching, 0 for JSON).
    commit_batch: f64,
    /// Flush calls that rode another caller's group-commit flip (0 for JSON).
    group_commit_riders: u64,
}

/// The full benchmark record written to `BENCH_kv.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KvReport {
    benchmark: String,
    policy: String,
    page_bytes: usize,
    segment_bytes: usize,
    num_segments: usize,
    write_streams: usize,
    keys_per_thread: u64,
    value_bytes: usize,
    ops_per_thread: u64,
    results: Vec<KvPoint>,
}

/// Either index format behind one face, so the workload driver is shared.
enum AnyKv {
    Paged(Box<KvStore>),
    Json(LegacyJsonKvStore),
}

impl AnyKv {
    fn put(&self, k: &[u8], v: &[u8]) -> lss_core::Result<()> {
        match self {
            AnyKv::Paged(kv) => kv.put(k, v),
            AnyKv::Json(kv) => kv.put(k, v),
        }
    }
    fn get(&self, k: &[u8]) -> lss_core::Result<Option<bytes::Bytes>> {
        match self {
            AnyKv::Paged(kv) => kv.get(k),
            AnyKv::Json(kv) => kv.get(k),
        }
    }
    fn delete(&self, k: &[u8]) -> lss_core::Result<bool> {
        match self {
            AnyKv::Paged(kv) => kv.delete(k),
            AnyKv::Json(kv) => kv.delete(k),
        }
    }
    fn flush(&self) -> lss_core::Result<()> {
        match self {
            AnyKv::Paged(kv) => kv.flush(),
            AnyKv::Json(kv) => kv.flush(),
        }
    }
    fn stats(&self) -> KvStats {
        match self {
            AnyKv::Paged(kv) => kv.stats(),
            AnyKv::Json(kv) => kv.stats(),
        }
    }
    fn store_stats(&self) -> lss_core::StoreStats {
        match self {
            AnyKv::Paged(kv) => kv.store().stats(),
            AnyKv::Json(kv) => kv.store().stats(),
        }
    }
    fn reset_store_stats(&self) {
        match self {
            AnyKv::Paged(kv) => kv.store().reset_stats(),
            AnyKv::Json(kv) => kv.store().reset_stats(),
        }
    }
}

fn store_config(scale: Scale) -> StoreConfig {
    let mut c = StoreConfig::paper_default().with_policy(PolicyKind::Mdc);
    c.segment_bytes = 256 * 1024;
    c.num_segments = match scale {
        Scale::Quick => 320,
        Scale::Default => 768,
        Scale::Full => 1536,
    };
    c.page_bytes = 1024;
    c.sort_buffer_segments = 4;
    c.write_streams = std::env::var("LSS_WRITE_STREAMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    c
}

fn ops_per_thread(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 10_000,
        Scale::Default => 60_000,
        Scale::Full => 250_000,
    }
}

/// Keys per thread: sized so the index is big enough that persisting it matters (the
/// legacy JSON format rewrites all of it on every commit).
fn keys_per_thread(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 5_000,
        Scale::Default => 15_000,
        Scale::Full => 40_000,
    }
}

const VALUE_BYTES: usize = 200;

fn key(t: usize, i: u64) -> Vec<u8> {
    format!("bench:t{t}:k{i:08}").into_bytes()
}

fn open(format: &str, scale: Scale) -> AnyKv {
    let config = store_config(scale);
    let store = LogStore::open_in_memory(config).unwrap();
    match format {
        "paged" => AnyKv::Paged(Box::new(
            KvStore::open_with(
                store,
                KvOptions {
                    pool_pages: 2048,
                    tree_page_bytes: None,
                    group_commit_window_us: std::env::var("LSS_KV_GROUP_COMMIT_US")
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0),
                },
            )
            .unwrap(),
        )),
        _ => AnyKv::Json(LegacyJsonKvStore::new(store)),
    }
}

fn measure(format: &str, threads: usize, scale: Scale) -> KvPoint {
    let kv = open(format, scale);
    let value = vec![0xABu8; VALUE_BYTES];
    let keys = keys_per_thread(scale);

    // Preload every thread's key population and commit it, so the measured phase is
    // steady-state (overwrites + checkpoints, not first-touch growth).
    for t in 0..threads {
        for i in 0..keys {
            kv.put(&key(t, i), &value).unwrap();
        }
    }
    kv.flush().unwrap();
    kv.reset_store_stats();
    let base = kv.stats();

    let ops = ops_per_thread(scale);
    let flush_every = (ops / 8).max(1);
    let total = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let kv = &kv;
            let value = &value;
            let total = &total;
            scope.spawn(move || {
                for n in 0..ops {
                    // Hot/cold skew (the paper's workload shape): 80% of operations
                    // hit the hottest 10% of each thread's keys. This is exactly
                    // where a dirty-page index commit beats rewriting the index:
                    // most tree pages stay clean across an epoch.
                    let r = mix(t as u64 * ops + n);
                    let i = if r % 10 < 8 {
                        (r >> 8) % (keys / 10).max(1)
                    } else {
                        (r >> 8) % keys
                    };
                    let k = key(t, i);
                    match mix(n * 31 + t as u64) % 10 {
                        0..=4 => {
                            let _ = kv.get(&k).unwrap();
                        }
                        5..=8 => kv.put(&k, value).unwrap(),
                        _ => {
                            kv.delete(&k).unwrap();
                            kv.put(&k, value).unwrap();
                        }
                    }
                    // Thread 0 is the checkpointer: periodic index commits are part
                    // of the measured workload for both formats.
                    if t == 0 && n % flush_every == flush_every - 1 {
                        kv.flush().unwrap();
                    }
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    kv.flush().unwrap();

    let stats = kv.stats();
    let store = kv.store_stats();
    let index_bytes = stats.index_bytes_written - base.index_bytes_written;
    let value_bytes = stats.value_bytes_written - base.value_bytes_written;

    // Pure point-read phase: read-side scaling with no writer in sight.
    let get_total = AtomicU64::new(0);
    let get_start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let kv = &kv;
            let get_total = &get_total;
            scope.spawn(move || {
                for n in 0..ops {
                    let i = mix(0xDEAD_0000 + t as u64 * ops + n) % keys;
                    let _ = kv.get(&key(t, i)).unwrap();
                }
                get_total.fetch_add(ops, Ordering::Relaxed);
            });
        }
    });
    let get_elapsed = get_start.elapsed().as_secs_f64();

    KvPoint {
        format: format.to_string(),
        threads,
        ops_per_sec: total.load(Ordering::Relaxed) as f64 / elapsed,
        get_ops_per_sec: get_total.load(Ordering::Relaxed) as f64 / get_elapsed,
        total_ops: total.load(Ordering::Relaxed),
        index_write_amplification: if value_bytes == 0 {
            0.0
        } else {
            index_bytes as f64 / value_bytes as f64
        },
        index_pages_written: stats.index_pages_written - base.index_pages_written,
        index_bytes_written: index_bytes,
        value_bytes_written: value_bytes,
        index_commits: stats.superblock_commits - base.superblock_commits,
        pool_hit_ratio: stats.pool.hit_ratio(),
        store_write_amplification: store.write_amplification(),
        index_read_restarts: stats.tree.read_restarts - base.tree.read_restarts,
        index_write_restarts: stats.tree.write_restarts - base.tree.write_restarts,
        index_avg_crab_depth: {
            let ops = stats.tree.writer_ops - base.tree.writer_ops;
            let locks = stats.tree.writer_locks - base.tree.writer_locks;
            if ops == 0 {
                0.0
            } else {
                locks as f64 / ops as f64
            }
        },
        commit_batch: {
            let flips = stats.superblock_commits - base.superblock_commits;
            let calls = stats.flush_calls - base.flush_calls;
            if flips == 0 {
                0.0
            } else {
                calls as f64 / flips as f64
            }
        },
        group_commit_riders: stats.group_commit_riders - base.group_commit_riders,
    }
}

fn main() {
    let scale = Scale::from_args();
    let config = store_config(scale);
    let formats: Vec<&str> = match std::env::var("LSS_KV_INDEX").as_deref() {
        Ok("paged") => vec!["paged"],
        Ok("json") => vec!["json"],
        _ => vec!["paged", "json"],
    };
    println!(
        "kv scaling: MDC, {} x {} KiB segments, {} write streams, {} keys/thread, {} ops/thread",
        config.num_segments,
        config.segment_bytes / 1024,
        config.write_streams,
        keys_per_thread(scale),
        ops_per_thread(scale)
    );
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>9} {:>9} {:>6} {:>7}",
        "format",
        "threads",
        "mixed ops/s",
        "gets/s",
        "idx Wamp",
        "idx pages",
        "commits",
        "pool hit",
        "rd-rstrt",
        "wr-rstrt",
        "crab",
        "batch"
    );

    let mut results = Vec::new();
    for format in &formats {
        for threads in [1usize, 2, 4, 8] {
            let point = measure(format, threads, scale);
            println!(
                "{:>6} {:>8} {:>12.0} {:>12.0} {:>12.5} {:>12} {:>10} {:>10.3} {:>9} {:>9} {:>6.2} {:>7.2}",
                point.format,
                point.threads,
                point.ops_per_sec,
                point.get_ops_per_sec,
                point.index_write_amplification,
                point.index_pages_written,
                point.index_commits,
                point.pool_hit_ratio,
                point.index_read_restarts,
                point.index_write_restarts,
                point.index_avg_crab_depth,
                point.commit_batch
            );
            results.push(point);
        }
    }

    let report = KvReport {
        benchmark: "kv_scaling".to_string(),
        policy: "MDC".to_string(),
        page_bytes: config.page_bytes,
        segment_bytes: config.segment_bytes,
        num_segments: config.num_segments,
        write_streams: config.write_streams,
        keys_per_thread: keys_per_thread(scale),
        value_bytes: VALUE_BYTES,
        ops_per_thread: ops_per_thread(scale),
        results,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_kv.json", &json).unwrap();
    println!("#json {}", serde_json::to_string(&report).unwrap());
    println!("wrote BENCH_kv.json");
}
