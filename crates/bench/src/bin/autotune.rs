//! Trace-driven GC policy auto-tuning: replay three workload families — Zipfian-0.99,
//! hot-cold 90:10, and a TPC-C page-write trace — against the real store across a grid
//! of `policy × gc_temperature_classes × cold_victim_min_emptiness`, score each
//! configuration by write amplification, and emit the winner as a ready-to-load
//! `StoreConfig`.
//!
//! The store (not the simulator) is the tuning target on purpose: with the paper's
//! global sort-buffer separation the simulator shows temperature classes as largely
//! redundant, but 8 interleaved writer threads defeat global sorting and that is where
//! classed GC output pays off. Tuning must see the same machine the benchmarks run on.
//!
//! Emits `BENCH_autotune.json`; the `recommended` object is what
//! `cleaner --autotune-config BENCH_autotune.json` (or `LSS_AUTOTUNE_CONFIG`) replays.
//! Workload seeds honour `LSS_STRESS_SEED`. Run with:
//! `cargo run --release -p lss-bench --bin autotune [--quick|--full]`

use lss_bench::{stress_seed_or, GcTuning, Scale};
use lss_core::policy::PolicyKind;
use lss_core::{LogStore, SharedLogStore, StoreConfig};
use lss_tpcc::{TpccConfig, TpccDriver};
use lss_workload::{HotColdWorkload, PageWorkload, TraceWorkload, WriteTrace, ZipfianWorkload};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const FOREGROUND_THREADS: usize = 8;
const FILL_FACTOR: f64 = 0.7;

/// One measured grid point within a family.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TunePoint {
    config: GcTuning,
    label: String,
    write_amplification: f64,
    puts_per_sec: f64,
    cleaning_cycles: u64,
    gc_class_pages_written: Vec<u64>,
    gc_class_promotions: u64,
    gc_class_demotions: u64,
}

/// All grid points for one workload family, best first label called out.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FamilyReport {
    family: String,
    results: Vec<TunePoint>,
    best: String,
}

/// The full `BENCH_autotune.json` record. `recommended` is the cross-family winner;
/// `recommended_store_config` is the same knobs folded into a complete store
/// configuration, ready to deserialize and open a store with.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AutotuneReport {
    benchmark: String,
    foreground_threads: usize,
    ops_per_thread: u64,
    seed: u64,
    families: Vec<FamilyReport>,
    recommended: GcTuning,
    recommended_store_config: StoreConfig,
}

fn store_config(scale: Scale, tuning: &GcTuning) -> StoreConfig {
    let mut c = StoreConfig::paper_default()
        .with_policy(tuning.policy)
        .with_gc_temperature_classes(tuning.gc_temperature_classes);
    c.cleaning.cold_victim_min_emptiness = tuning.cold_victim_min_emptiness;
    c.segment_bytes = 256 * 1024;
    c.num_segments = match scale {
        Scale::Quick => 128,
        Scale::Default => 256,
        Scale::Full => 512,
    };
    c.sort_buffer_segments = 4;
    c.gc_read_pool = 4;
    c
}

fn ops_per_thread(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 15_000,
        Scale::Default => 60_000,
        Scale::Full => 250_000,
    }
}

/// Per-thread workload for a family. Synthetic families share their hot set across
/// threads (hotness keys off the page id) with thread-distinct RNG streams; the TPC-C
/// family replays clones of the same trace, desynchronised by thread scheduling.
fn family_workload(
    family: &str,
    tpcc: &WriteTrace,
    pages: u64,
    seed: u64,
) -> Box<dyn PageWorkload + Send> {
    match family {
        "zipfian-0.99" => Box::new(ZipfianWorkload::new(pages, 0.99, seed)),
        "hotcold-90:10" => Box::new(HotColdWorkload::from_skew_percent(pages, 90, seed)),
        "tpcc" => Box::new(TraceWorkload::new("tpcc", tpcc)),
        other => panic!("unknown family {other}"),
    }
}

/// Collect a TPC-C page-write trace sized for the scale (paper §6.3 collects the I/O
/// trace of a B+-tree engine and replays it through the store).
fn collect_tpcc_trace(scale: Scale, seed: u64) -> WriteTrace {
    // Even `--quick` uses the scaled database: the tiny test schema's working set fits
    // inside the store's sort buffer, absorbs every overwrite and never triggers
    // cleaning — there would be nothing to tune against.
    let (mut config, transactions) = match scale {
        Scale::Quick => (TpccConfig::scaled_experiment(1), 4_000),
        Scale::Default => (TpccConfig::scaled_experiment(1), 12_000),
        Scale::Full => (TpccConfig::scaled_experiment(2), 25_000),
    };
    config.seed = seed;
    let mut driver = TpccDriver::new(config).expect("tpcc load");
    driver.run(transactions).expect("tpcc run");
    let (trace, _) = driver.finish().expect("tpcc finish");
    trace
}

/// Replay one family against one configuration and measure W_amp. The store is
/// preloaded to the fill target; trace families that address fewer pages than that get
/// cold filler pages behind them, the way a real store carries data the trace never
/// touches.
fn measure(
    family: &str,
    tpcc: &WriteTrace,
    tuning: &GcTuning,
    scale: Scale,
    seed: u64,
) -> TunePoint {
    let config = store_config(scale, tuning);
    let payload = vec![0xA5u8; config.page_bytes];
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());
    let fill_pages = config.logical_pages_for_fill_factor(FILL_FACTOR) as u64;
    let workload_pages = if family == "tpcc" {
        let distinct = tpcc.distinct_pages() as u64;
        assert!(
            distinct <= fill_pages,
            "tpcc trace addresses {distinct} pages but the store only fits {fill_pages} \
             at fill {FILL_FACTOR}; raise num_segments for this scale"
        );
        distinct
    } else {
        fill_pages
    };
    for p in 0..fill_pages {
        store.put(p, &payload).unwrap();
    }
    store.flush().unwrap();
    store.with_store(|s| s.reset_stats());

    let ops = ops_per_thread(scale);
    let start = Instant::now();
    let total = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..FOREGROUND_THREADS {
            let store = store.clone();
            let payload = &payload;
            let total = Arc::clone(&total);
            let mut workload =
                family_workload(family, tpcc, workload_pages, seed.wrapping_add(t as u64));
            scope.spawn(move || {
                for _ in 0..ops {
                    store.put(workload.next_page(), payload).unwrap();
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
    });
    let puts_per_sec = total.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64();
    let stats = store.stats();
    TunePoint {
        config: tuning.clone(),
        label: tuning.label(),
        write_amplification: stats.write_amplification(),
        puts_per_sec,
        cleaning_cycles: stats.cleaning_cycles,
        gc_class_pages_written: stats.gc_class_pages_written,
        gc_class_promotions: stats.gc_class_promotions,
        gc_class_demotions: stats.gc_class_demotions,
    }
}

/// The tuning grid: policy × temperature classes × cold-victim ripening bar. Classes=1
/// runs once per policy (the bar is inert there).
fn grid() -> Vec<GcTuning> {
    let mut tunings = Vec::new();
    for policy in [PolicyKind::Mdc, PolicyKind::Greedy] {
        tunings.push(GcTuning::baseline(policy));
        for classes in [2usize, 4] {
            for thr in [0.0, 0.5, 0.75] {
                tunings.push(GcTuning {
                    policy,
                    gc_temperature_classes: classes,
                    cold_victim_min_emptiness: thr,
                });
            }
        }
    }
    tunings
}

fn main() {
    let scale = Scale::from_args();
    let seed = stress_seed_or(0xA070_7E5E);
    let tunings = grid();
    println!(
        "autotune: {} configurations x 3 families, {} writers x {} ops, seed {seed:#x}",
        tunings.len(),
        FOREGROUND_THREADS,
        ops_per_thread(scale)
    );
    let tpcc = collect_tpcc_trace(scale, seed);
    println!(
        "tpcc trace: {} writes over {} distinct pages",
        tpcc.len(),
        tpcc.distinct_pages()
    );

    let mut families = Vec::new();
    // Geometric-mean W_amp across families per configuration, so no single family's
    // absolute scale dominates the pick.
    let mut log_wamp_sum = vec![0.0f64; tunings.len()];
    for family in ["zipfian-0.99", "hotcold-90:10", "tpcc"] {
        println!("\n== {family} ==");
        println!(
            "{:>18} {:>8} {:>14} {:>8} {:>10} {:>8}",
            "config", "Wamp", "puts/s", "cycles", "promo", "demo"
        );
        let mut results = Vec::new();
        for (i, tuning) in tunings.iter().enumerate() {
            let p = measure(family, &tpcc, tuning, scale, seed);
            println!(
                "{:>18} {:>8.3} {:>14.0} {:>8} {:>10} {:>8}",
                p.label,
                p.write_amplification,
                p.puts_per_sec,
                p.cleaning_cycles,
                p.gc_class_promotions,
                p.gc_class_demotions
            );
            // Guard against a degenerate zero (no cleaning at all) poisoning the log.
            log_wamp_sum[i] += p.write_amplification.max(1e-6).ln();
            results.push(p);
        }
        let best = results
            .iter()
            .min_by(|a, b| a.write_amplification.total_cmp(&b.write_amplification))
            .map(|p| p.label.clone())
            .unwrap();
        println!("best for {family}: {best}");
        families.push(FamilyReport {
            family: family.to_string(),
            results,
            best,
        });
    }

    let winner = log_wamp_sum
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    let recommended = tunings[winner].clone();
    let recommended_store_config = store_config(scale, &recommended);
    println!(
        "\nrecommended across all families: {} (geo-mean Wamp {:.3})",
        recommended.label(),
        (log_wamp_sum[winner] / families.len() as f64).exp()
    );

    let report = AutotuneReport {
        benchmark: "autotune".to_string(),
        foreground_threads: FOREGROUND_THREADS,
        ops_per_thread: ops_per_thread(scale),
        seed,
        families,
        recommended,
        recommended_store_config,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_autotune.json", &json).unwrap();
    println!("#json {}", serde_json::to_string(&report).unwrap());
    println!("wrote BENCH_autotune.json");
}
